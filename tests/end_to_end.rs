//! Cross-crate integration: the full pipeline from trace generation
//! through simulation, for every router, with conservation invariants.

use dtn_flow::prelude::*;

fn tiny_campus() -> Trace {
    CampusModel::new(CampusConfig::tiny()).generate()
}

fn light_cfg() -> SimConfig {
    SimConfig {
        packets_per_landmark_per_day: 30.0,
        ..SimConfig::dart()
    }
}

/// Every packet ends in exactly one of: delivered, expired, lost to an
/// injected fault, or still live somewhere; counts reconcile with the
/// metrics.
fn assert_conservation(outcome: &SimOutcome) {
    let m = &outcome.metrics;
    let mut delivered = 0u64;
    let mut expired = 0u64;
    let mut lost = 0u64;
    let mut live = 0u64;
    for p in &outcome.packets {
        match p.loc {
            PacketLoc::Delivered(at) => {
                delivered += 1;
                assert!(at >= p.created, "delivery before creation");
                assert!(
                    at.since(p.created) <= p.ttl,
                    "delivered after TTL: {:?}",
                    p.id
                );
            }
            PacketLoc::Expired => expired += 1,
            PacketLoc::Lost => lost += 1,
            _ => live += 1,
        }
    }
    assert_eq!(delivered, m.delivered);
    assert_eq!(expired, m.expired);
    assert_eq!(lost, m.lost(), "Lost packets must match outage+churn loss");
    assert_eq!(delivered + expired + lost + live, m.generated);
    assert_eq!(m.delays.len() as u64, m.delivered);
}

#[test]
fn flow_router_end_to_end() {
    let trace = tiny_campus();
    let cfg = light_cfg();
    let mut router = FlowRouter::new(
        FlowConfig::default(),
        trace.num_nodes(),
        trace.num_landmarks(),
    );
    let outcome = run(&trace, &cfg, &mut router);
    assert!(outcome.metrics.generated > 100);
    assert!(outcome.metrics.delivered > 0, "FLOW must deliver something");
    assert_conservation(&outcome);
    // Station relaying really happened: some delivery visited >= 2
    // stations.
    assert!(outcome
        .packets
        .iter()
        .any(|p| matches!(p.loc, PacketLoc::Delivered(_)) && p.visited.len() >= 2));
}

#[test]
fn every_baseline_end_to_end() {
    let trace = tiny_campus();
    let cfg = light_cfg();
    let routers: Vec<Box<dyn Router>> = vec![
        Box::new(UtilityRouter::new(SimBet::new(
            trace.num_nodes(),
            trace.num_landmarks(),
        ))),
        Box::new(UtilityRouter::new(Prophet::new(
            trace.num_nodes(),
            trace.num_landmarks(),
        ))),
        Box::new(UtilityRouter::new(Pgr::new(
            trace.num_nodes(),
            trace.num_landmarks(),
        ))),
        Box::new(UtilityRouter::new(GeoComm::new(
            trace.num_nodes(),
            trace.num_landmarks(),
        ))),
        Box::new(UtilityRouter::new(Per::new(
            trace.num_nodes(),
            trace.num_landmarks(),
        ))),
        Box::new(Direct::new()),
    ];
    for mut router in routers {
        let outcome = run(&trace, &cfg, router.as_mut());
        assert!(
            outcome.metrics.delivered > 0,
            "{} delivered nothing",
            router.name()
        );
        assert_conservation(&outcome);
    }
}

#[test]
fn fault_injected_run_conserves_and_still_delivers() {
    let trace = tiny_campus();
    let cfg = light_cfg();
    let wl = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
    let plan = FaultPlan::generate(
        &FaultConfig {
            station_outage_duty: 0.2,
            node_failures_per_day: 0.5,
            contact_truncation_rate: 0.15,
            record_loss_rate: 0.1,
            seed: 0xFA,
            ..FaultConfig::default()
        },
        &trace,
    );
    assert!(!plan.is_empty());
    let mut router = FlowRouter::new(
        FlowConfig::with_degradation(),
        trace.num_nodes(),
        trace.num_landmarks(),
    );
    let outcome = run_with_faults(&trace, &cfg, &wl, &plan, &mut router);
    assert_conservation(&outcome);
    assert!(
        outcome.metrics.delivered > 0,
        "faulted FLOW must still deliver"
    );
    assert!(
        outcome.metrics.lost() > 0,
        "this fault plan must cost something"
    );
}

#[test]
fn relaying_beats_direct_delivery() {
    let trace = tiny_campus();
    let cfg = light_cfg();
    let mut flow = FlowRouter::new(
        FlowConfig::default(),
        trace.num_nodes(),
        trace.num_landmarks(),
    );
    let flow_out = run(&trace, &cfg, &mut flow);
    let mut direct = Direct::new();
    let direct_out = run(&trace, &cfg, &mut direct);
    assert!(
        flow_out.metrics.success_rate() > direct_out.metrics.success_rate(),
        "FLOW {} vs direct {}",
        flow_out.metrics.success_rate(),
        direct_out.metrics.success_rate()
    );
}

#[test]
fn single_copy_semantics_hold() {
    // Forwarding ops per delivered packet equal its hop count; no packet
    // is ever duplicated, so hops == ops attributable to it.
    let trace = tiny_campus();
    let cfg = light_cfg();
    let mut router = FlowRouter::new(
        FlowConfig::default(),
        trace.num_nodes(),
        trace.num_landmarks(),
    );
    let outcome = run(&trace, &cfg, &mut router);
    let total_hops: u64 = outcome.packets.iter().map(|p| p.hops as u64).sum();
    assert_eq!(total_hops, outcome.metrics.forwarding_ops);
}

#[test]
fn landmark_pipeline_from_raw_places() {
    // Raw place stats -> selection -> division -> every trace position is
    // assigned to exactly one subarea.
    let trace = tiny_campus();
    let stats: Vec<PlaceStat> = (0..trace.num_landmarks())
        .map(|l| PlaceStat {
            position: trace.positions()[l],
            visits: trace
                .visits()
                .iter()
                .filter(|v| v.landmark.index() == l)
                .count() as u64,
        })
        .collect();
    let selected = select_landmarks(&stats, &SelectionConfig::default());
    assert!(!selected.is_empty());
    let sites: Vec<_> = selected.iter().map(|&i| stats[i].position).collect();
    let division = SubareaDivision::new(sites);
    for p in trace.positions() {
        let lm = division.assign(*p);
        assert!(lm.index() < division.len());
    }
}
