//! Tracing must be a pure observer: attaching a sink (even a tiny,
//! constantly-wrapping flight-recorder ring) must not perturb the
//! simulation in any way, for arbitrary traces, workloads, and fault
//! plans. Also pins the ring-bound guarantee end-to-end.

use dtn_flow::prelude::*;
use dtn_flow::sim::run_traced;
use proptest::prelude::*;

/// A random but *valid* trace (same shape as `invariants_props`).
fn arb_trace() -> impl Strategy<Value = Trace> {
    let nodes = 2usize..6;
    let landmarks = 2usize..7;
    (
        nodes,
        landmarks,
        proptest::collection::vec(0u64..2_000, 1..40),
        0u64..u64::MAX,
    )
        .prop_map(|(num_nodes, num_landmarks, raw, salt)| {
            let mut visits = Vec::new();
            for n in 0..num_nodes {
                let mut t = (salt % 1_000) + n as u64;
                for (i, r) in raw.iter().enumerate() {
                    if i % num_nodes != n {
                        continue;
                    }
                    let lm = ((r ^ salt) as usize + i) % num_landmarks;
                    let gap = 100 + (r % 1_500);
                    let stay = 200 + ((r * 7 + salt) % 3_000);
                    t += gap;
                    visits.push(Visit::new(
                        NodeId::from(n),
                        LandmarkId::from(lm),
                        SimTime(t),
                        SimTime(t + stay),
                    ));
                    t += stay;
                }
            }
            let positions = (0..num_landmarks)
                .map(|i| dtn_flow::core::geometry::Point::new(i as f64 * 50.0, 0.0))
                .collect();
            Trace::new("obs-prop", num_nodes, num_landmarks, positions, visits)
                .expect("constructed trace is valid")
        })
}

fn prop_cfg(ttl_secs: u64, rate: f64) -> SimConfig {
    SimConfig {
        packets_per_landmark_per_day: rate,
        ttl: SimDuration::from_secs(ttl_secs),
        time_unit: SimDuration::from_secs(900),
        node_memory: 8 * 1_024,
        warmup_fraction: 0.1,
        ..SimConfig::default()
    }
}

fn build(trace: &Trace) -> FlowRouter {
    FlowRouter::new(
        FlowConfig::with_degradation(),
        trace.num_nodes(),
        trace.num_landmarks(),
    )
}

/// `true` when the two outcomes agree on every observable: metrics and
/// per-packet fates.
fn same_outcome(a: &SimOutcome, b: &SimOutcome) -> Result<(), String> {
    if format!("{:?}", a.metrics) != format!("{:?}", b.metrics) {
        return Err(format!(
            "metrics diverge:\n  untraced: {:?}\n  traced:   {:?}",
            a.metrics, b.metrics
        ));
    }
    if a.packets.len() != b.packets.len() {
        return Err("packet count diverges".into());
    }
    for (i, (pa, pb)) in a.packets.iter().zip(&b.packets).enumerate() {
        if pa.loc != pb.loc || pa.visited != pb.visited || pa.hops != pb.hops {
            return Err(format!("packet {i} diverges: {pa:?} vs {pb:?}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    /// A tiny ring that wraps constantly still leaves the run untouched.
    #[test]
    fn tracing_does_not_perturb_the_simulation(
        trace in arb_trace(),
        ttl in 4_000u64..40_000,
        rate in 50.0f64..800.0,
        fseed in 0u64..100,
        capacity in 1usize..96,
    ) {
        let cfg = prop_cfg(ttl, rate);
        let wl = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        let fc = FaultConfig {
            station_outage_duty: 0.3,
            mean_outage_secs: 2_000.0,
            node_failures_per_day: 2.0,
            mean_node_downtime_secs: 1_500.0,
            contact_truncation_rate: 0.2,
            record_loss_rate: 0.15,
            seed: fseed,
        };
        let plan = FaultPlan::generate(&fc, &trace);

        let mut r1 = build(&trace);
        let untraced = run_with_faults(&trace, &cfg, &wl, &plan, &mut r1);
        prop_assert!(untraced.trace.is_none(), "untraced run must carry no sink");

        let mut r2 = build(&trace);
        let mut traced = run_traced(
            &trace, &cfg, &wl, &plan, &mut r2,
            Box::new(Recorder::new(capacity)),
        );
        if let Err(why) = same_outcome(&untraced, &traced) {
            prop_assert!(false, "tracing perturbed the run: {why}");
        }

        // The ring honours its bound and its books balance.
        let rec = traced.trace.take().and_then(Recorder::downcast)
            .expect("recorder comes back from a traced run");
        prop_assert!(rec.len() <= capacity.max(1), "ring exceeded its bound");
        prop_assert!(rec.recorded() >= rec.len() as u64);
        prop_assert!(rec.recorded() == rec.dropped() + rec.len() as u64,
            "recorded ({}) != dropped ({}) + retained ({})",
            rec.recorded(), rec.dropped(), rec.len());
    }

    /// A `NoopSink` (tracing attached but discarded) is equally invisible.
    #[test]
    fn noop_sink_is_invisible(
        trace in arb_trace(),
        ttl in 4_000u64..30_000,
        rate in 50.0f64..500.0,
    ) {
        let cfg = prop_cfg(ttl, rate);
        let wl = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        let plan = FaultPlan::none();

        let mut r1 = build(&trace);
        let untraced = run_with_faults(&trace, &cfg, &wl, &plan, &mut r1);
        let mut r2 = build(&trace);
        let traced = run_traced(&trace, &cfg, &wl, &plan, &mut r2, Box::new(NoopSink));
        if let Err(why) = same_outcome(&untraced, &traced) {
            prop_assert!(false, "noop sink perturbed the run: {why}");
        }
    }
}
