//! Property-based invariants: random small traces and workloads, every
//! router, and the conservation/ordering rules that must always hold.

use dtn_flow::prelude::*;
use proptest::prelude::*;

/// A random but *valid* trace: per node, a sorted sequence of
/// non-overlapping visits to random landmarks.
fn arb_trace() -> impl Strategy<Value = Trace> {
    let nodes = 2usize..6;
    let landmarks = 2usize..7;
    (
        nodes,
        landmarks,
        proptest::collection::vec(0u64..2_000, 1..40),
        0u64..u64::MAX,
    )
        .prop_map(|(num_nodes, num_landmarks, raw, salt)| {
            let mut visits = Vec::new();
            for n in 0..num_nodes {
                let mut t = (salt % 1_000) + n as u64;
                for (i, r) in raw.iter().enumerate() {
                    if i % num_nodes != n {
                        continue;
                    }
                    let lm = ((r ^ salt) as usize + i) % num_landmarks;
                    let gap = 100 + (r % 1_500);
                    let stay = 200 + ((r * 7 + salt) % 3_000);
                    t += gap;
                    visits.push(Visit::new(
                        NodeId::from(n),
                        LandmarkId::from(lm),
                        SimTime(t),
                        SimTime(t + stay),
                    ));
                    t += stay;
                }
            }
            let positions = (0..num_landmarks)
                .map(|i| dtn_flow::core::geometry::Point::new(i as f64 * 50.0, 0.0))
                .collect();
            Trace::new("prop", num_nodes, num_landmarks, positions, visits)
                .expect("constructed trace is valid")
        })
}

fn prop_cfg(ttl_secs: u64, rate: f64) -> SimConfig {
    SimConfig {
        packets_per_landmark_per_day: rate,
        ttl: SimDuration::from_secs(ttl_secs),
        time_unit: SimDuration::from_secs(900),
        node_memory: 8 * 1_024,
        warmup_fraction: 0.1,
        ..SimConfig::default()
    }
}

fn check_invariants(outcome: &SimOutcome, name: &str) {
    let m = &outcome.metrics;
    let mut delivered = 0u64;
    let mut expired = 0u64;
    let mut lost = 0u64;
    let mut live = 0u64;
    for p in &outcome.packets {
        match p.loc {
            PacketLoc::Delivered(at) => {
                delivered += 1;
                // Delivery within TTL and after creation.
                prop_assert_eq_like(at >= p.created, name, "delivered before created");
                prop_assert_eq_like(at.since(p.created) <= p.ttl, name, "delivered after TTL");
            }
            PacketLoc::Expired => expired += 1,
            PacketLoc::Lost => lost += 1,
            _ => live += 1,
        }
        // Visited landmark paths only ever grow with station visits and
        // never contain an out-of-range landmark.
        for lm in &p.visited {
            prop_assert_eq_like(lm.index() < 64, name, "landmark id in range");
        }
    }
    assert_eq!(delivered, m.delivered, "{name}: delivered mismatch");
    assert_eq!(expired, m.expired, "{name}: expired mismatch");
    assert_eq!(lost, m.lost(), "{name}: lost mismatch");
    assert_eq!(
        delivered + expired + lost + live,
        m.generated,
        "{name}: conservation"
    );
    assert_eq!(m.delays.len() as u64, m.delivered, "{name}: delay count");
    let total_hops: u64 = outcome.packets.iter().map(|p| p.hops as u64).sum();
    assert_eq!(
        total_hops, m.forwarding_ops,
        "{name}: hops must equal forwarding ops (single copy)"
    );
}

fn prop_assert_eq_like(cond: bool, name: &str, what: &str) {
    assert!(cond, "{name}: {what}");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn flow_invariants_on_random_traces(
        trace in arb_trace(),
        ttl in 2_000u64..40_000,
        rate in 20.0f64..2_000.0,
    ) {
        let cfg = prop_cfg(ttl, rate);
        let mut router = FlowRouter::new(
            FlowConfig::with_all_extensions(),
            trace.num_nodes(),
            trace.num_landmarks(),
        );
        let outcome = run(&trace, &cfg, &mut router);
        check_invariants(&outcome, "FLOW");
    }

    #[test]
    fn baseline_invariants_on_random_traces(
        trace in arb_trace(),
        ttl in 2_000u64..40_000,
        rate in 20.0f64..2_000.0,
        which in 0usize..3,
    ) {
        let cfg = prop_cfg(ttl, rate);
        let (n, l) = (trace.num_nodes(), trace.num_landmarks());
        let mut router: Box<dyn Router> = match which {
            0 => Box::new(UtilityRouter::new(Prophet::new(n, l))),
            1 => Box::new(UtilityRouter::new(Per::new(n, l))),
            _ => Box::new(UtilityRouter::new(SimBet::new(n, l))),
        };
        let outcome = run(&trace, &cfg, router.as_mut());
        check_invariants(&outcome, router.name());
    }

    #[test]
    fn fault_plans_are_deterministic(
        trace in arb_trace(),
        seed in 0u64..1_000,
    ) {
        let fc = FaultConfig {
            station_outage_duty: 0.25,
            node_failures_per_day: 1.0,
            contact_truncation_rate: 0.2,
            record_loss_rate: 0.1,
            seed,
            ..FaultConfig::default()
        };
        let a = FaultPlan::generate(&fc, &trace);
        let b = FaultPlan::generate(&fc, &trace);
        prop_assert!(a == b, "same (seed, config, trace) must give one plan");
    }

    #[test]
    fn fault_runs_same_plan_same_outcome(
        trace in arb_trace(),
        ttl in 4_000u64..40_000,
        fseed in 0u64..100,
    ) {
        let cfg = prop_cfg(ttl, 200.0);
        let wl = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        let fc = FaultConfig {
            station_outage_duty: 0.3,
            mean_outage_secs: 2_000.0,
            node_failures_per_day: 2.0,
            mean_node_downtime_secs: 1_500.0,
            contact_truncation_rate: 0.2,
            record_loss_rate: 0.15,
            seed: fseed,
        };
        let plan = FaultPlan::generate(&fc, &trace);
        let go = || {
            let mut router = FlowRouter::new(
                FlowConfig::with_degradation(),
                trace.num_nodes(),
                trace.num_landmarks(),
            );
            run_with_faults(&trace, &cfg, &wl, &plan, &mut router)
        };
        let a = go();
        let b = go();
        prop_assert!(a.metrics.delivered == b.metrics.delivered);
        prop_assert!(a.metrics.lost_to_outage == b.metrics.lost_to_outage);
        prop_assert!(a.metrics.lost_to_churn == b.metrics.lost_to_churn);
        prop_assert!(a.metrics.retries == b.metrics.retries);
        prop_assert!(a.packets.len() == b.packets.len());
        for (pa, pb) in a.packets.iter().zip(&b.packets) {
            prop_assert!(pa.loc == pb.loc);
            prop_assert!(pa.visited == pb.visited);
            prop_assert!(pa.hops == pb.hops);
        }
        check_invariants(&a, "FLOW+faults");
    }

    #[test]
    fn zero_rate_faults_identical_to_no_faults(
        trace in arb_trace(),
        ttl in 4_000u64..40_000,
        rate in 20.0f64..500.0,
    ) {
        let cfg = prop_cfg(ttl, rate);
        let wl = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        let plan = FaultPlan::generate(&FaultConfig::default(), &trace);
        prop_assert!(plan.is_empty());
        let build = || FlowRouter::new(
            FlowConfig::with_degradation(),
            trace.num_nodes(),
            trace.num_landmarks(),
        );
        let mut r1 = build();
        let clean = run_with_workload(&trace, &cfg, &wl, &mut r1);
        let mut r2 = build();
        let faulted = run_with_faults(&trace, &cfg, &wl, &plan, &mut r2);
        // Byte-identical outcomes: same counters, same per-packet fates.
        prop_assert!(clean.metrics.generated == faulted.metrics.generated);
        prop_assert!(clean.metrics.delivered == faulted.metrics.delivered);
        prop_assert!(clean.metrics.expired == faulted.metrics.expired);
        prop_assert!(clean.metrics.forwarding_ops == faulted.metrics.forwarding_ops);
        prop_assert!(clean.metrics.delays == faulted.metrics.delays);
        prop_assert!(faulted.metrics.lost() == 0);
        prop_assert!(clean.packets.len() == faulted.packets.len());
        for (pa, pb) in clean.packets.iter().zip(&faulted.packets) {
            prop_assert!(pa.loc == pb.loc);
            prop_assert!(pa.visited == pb.visited);
            prop_assert!(pa.hops == pb.hops);
        }
    }

    #[test]
    fn flow_invariants_under_faults(
        trace in arb_trace(),
        ttl in 4_000u64..40_000,
        fseed in 0u64..50,
    ) {
        let cfg = prop_cfg(ttl, 300.0);
        let wl = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        let fc = FaultConfig {
            station_outage_duty: 0.4,
            mean_outage_secs: 1_500.0,
            node_failures_per_day: 4.0,
            mean_node_downtime_secs: 1_000.0,
            contact_truncation_rate: 0.3,
            record_loss_rate: 0.25,
            seed: fseed,
        };
        let plan = FaultPlan::generate(&fc, &trace);
        let mut router = FlowRouter::new(
            FlowConfig::with_degradation(),
            trace.num_nodes(),
            trace.num_landmarks(),
        );
        let outcome = run_with_faults(&trace, &cfg, &wl, &plan, &mut router);
        check_invariants(&outcome, "FLOW+heavy-faults");
    }

    #[test]
    fn markov_probabilities_are_a_distribution(
        seq in proptest::collection::vec(0u16..12, 2..200),
        k in 1usize..4,
    ) {
        let mut p = MarkovPredictor::new(k);
        for &s in &seq {
            p.observe(LandmarkId(s));
        }
        let dist = p.distribution();
        let total: f64 = dist.iter().map(|&(_, q)| q).sum();
        prop_assert!(dist.iter().all(|&(_, q)| (0.0..=1.0).contains(&q)));
        prop_assert!(total == 0.0 || (total - 1.0).abs() < 1e-9);
        if let Some((best, q)) = p.predict() {
            // The argmax is in the distribution with the same probability.
            prop_assert!(dist.iter().any(|&(lm, qq)| lm == best && (qq - q).abs() < 1e-12));
            prop_assert!(dist.iter().all(|&(_, qq)| qq <= q + 1e-12));
        }
    }

    #[test]
    fn visit_history_averages_bound_by_extremes(
        stays in proptest::collection::vec((0u16..4, 100u64..10_000), 1..50),
    ) {
        let mut h = VisitHistory::new(4);
        let mut t = 0u64;
        for &(lm, d) in &stays {
            h.record(LandmarkId(lm), SimTime(t), SimTime(t + d));
            t += d + 10;
        }
        let overall = h.avg_stay_overall().unwrap().secs();
        let min = stays.iter().map(|&(_, d)| d).min().unwrap();
        let max = stays.iter().map(|&(_, d)| d).max().unwrap();
        prop_assert!(overall >= min.saturating_sub(1) && overall <= max);
    }
}
