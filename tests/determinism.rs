//! Reproducibility: equal seeds give bit-identical outcomes, different
//! seeds differ, across trace generation, workloads, and full runs.

use dtn_flow::prelude::*;

fn run_flow(seed: u64) -> SimOutcome {
    let trace = CampusModel::new(CampusConfig::tiny()).generate();
    let cfg = SimConfig {
        packets_per_landmark_per_day: 25.0,
        ..SimConfig::dart()
    }
    .with_seed(seed);
    let mut router = FlowRouter::new(
        FlowConfig::default(),
        trace.num_nodes(),
        trace.num_landmarks(),
    );
    run(&trace, &cfg, &mut router)
}

#[test]
fn same_seed_same_everything() {
    let a = run_flow(42);
    let b = run_flow(42);
    assert_eq!(a.metrics.generated, b.metrics.generated);
    assert_eq!(a.metrics.delivered, b.metrics.delivered);
    assert_eq!(a.metrics.expired, b.metrics.expired);
    assert_eq!(a.metrics.forwarding_ops, b.metrics.forwarding_ops);
    assert_eq!(a.metrics.delays, b.metrics.delays);
    assert_eq!(a.packets.len(), b.packets.len());
    for (pa, pb) in a.packets.iter().zip(&b.packets) {
        assert_eq!(pa.loc, pb.loc);
        assert_eq!(pa.visited, pb.visited);
        assert_eq!(pa.hops, pb.hops);
    }
}

#[test]
fn different_seed_different_workload() {
    let a = run_flow(1);
    let b = run_flow(2);
    // Same trace, different packet schedule: some outcome differs.
    let same = a.metrics.delivered == b.metrics.delivered
        && a.metrics.forwarding_ops == b.metrics.forwarding_ops
        && a.metrics.delays == b.metrics.delays;
    assert!(!same, "different seeds produced identical runs");
}

#[test]
fn trace_generation_is_pure() {
    let a = CampusModel::new(CampusConfig::tiny()).generate();
    let b = CampusModel::new(CampusConfig::tiny()).generate();
    assert_eq!(a.visits(), b.visits());
    assert_eq!(a.positions(), b.positions());
    let bus_a = BusModel::new(BusConfig::tiny()).generate();
    let bus_b = BusModel::new(BusConfig::tiny()).generate();
    assert_eq!(bus_a.visits(), bus_b.visits());
}

#[test]
fn workload_is_pure() {
    let cfg = SimConfig::dart().with_seed(9);
    let a = Workload::uniform(&cfg, 10, DAY.mul(8));
    let b = Workload::uniform(&cfg, 10, DAY.mul(8));
    assert_eq!(a.events(), b.events());
}

#[test]
fn fault_injected_runs_are_deterministic() {
    let trace = CampusModel::new(CampusConfig::tiny()).generate();
    let cfg = SimConfig {
        packets_per_landmark_per_day: 25.0,
        ..SimConfig::dart()
    }
    .with_seed(7);
    let wl = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
    let fc = FaultConfig {
        station_outage_duty: 0.25,
        node_failures_per_day: 1.0,
        contact_truncation_rate: 0.2,
        record_loss_rate: 0.1,
        seed: 0xD7,
        ..FaultConfig::default()
    };
    let plan_a = FaultPlan::generate(&fc, &trace);
    let plan_b = FaultPlan::generate(&fc, &trace);
    assert_eq!(plan_a, plan_b, "plan generation must be pure");
    let go = |plan: &FaultPlan| {
        let mut router = FlowRouter::new(
            FlowConfig::with_degradation(),
            trace.num_nodes(),
            trace.num_landmarks(),
        );
        run_with_faults(&trace, &cfg, &wl, plan, &mut router)
    };
    let a = go(&plan_a);
    let b = go(&plan_b);
    assert_eq!(a.metrics.delivered, b.metrics.delivered);
    assert_eq!(a.metrics.lost_to_outage, b.metrics.lost_to_outage);
    assert_eq!(a.metrics.lost_to_churn, b.metrics.lost_to_churn);
    assert_eq!(a.metrics.retries, b.metrics.retries);
    assert_eq!(a.metrics.delays, b.metrics.delays);
    for (pa, pb) in a.packets.iter().zip(&b.packets) {
        assert_eq!(pa.loc, pb.loc);
        assert_eq!(pa.visited, pb.visited);
        assert_eq!(pa.hops, pb.hops);
    }
}

#[test]
fn baseline_runs_are_deterministic_too() {
    let trace = BusModel::new(BusConfig::tiny()).generate();
    let cfg = SimConfig {
        packets_per_landmark_per_day: 25.0,
        ..SimConfig::dnet()
    };
    let go = || {
        let mut r = UtilityRouter::new(Per::new(trace.num_nodes(), trace.num_landmarks()));
        run(&trace, &cfg, &mut r).metrics
    };
    let a = go();
    let b = go();
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.forwarding_ops, b.forwarding_ops);
    assert_eq!(a.delays, b.delays);
}
