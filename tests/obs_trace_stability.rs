//! The recorded event stream is byte-stable: running the same scenario
//! with the same seed twice (in this process or any other) must produce
//! an identical rendered event log and an identical snapshot JSON/CSV.
//! Any ambient nondeterminism (hash ordering, wall-clock time, global
//! RNG) sneaking into the tracer or the engine shows up here as a byte
//! diff.

use dtn_flow::prelude::*;
use dtn_flow::sim::run_traced;

fn scenario() -> (Trace, SimConfig) {
    let mut v = Vec::new();
    for d in 0..10u64 {
        let base = d * 86_400;
        v.push(Visit::new(
            NodeId(0),
            LandmarkId(0),
            SimTime(base + 1_000),
            SimTime(base + 9_000),
        ));
        v.push(Visit::new(
            NodeId(0),
            LandmarkId(1),
            SimTime(base + 18_000),
            SimTime(base + 26_000),
        ));
        v.push(Visit::new(
            NodeId(1),
            LandmarkId(1),
            SimTime(base + 28_000),
            SimTime(base + 36_000),
        ));
        v.push(Visit::new(
            NodeId(1),
            LandmarkId(2),
            SimTime(base + 45_000),
            SimTime(base + 53_000),
        ));
    }
    let positions = (0..3)
        .map(|i| dtn_flow::core::geometry::Point::new(i as f64 * 400.0, 0.0))
        .collect();
    let trace = Trace::new("stability", 2, 3, positions, v).expect("valid trace");
    let cfg = SimConfig {
        packets_per_landmark_per_day: 8.0,
        ttl: DAY.mul(4),
        time_unit: DAY,
        seed: 23,
        ..SimConfig::default()
    };
    (trace, cfg)
}

fn record_once() -> Recorder {
    let (trace, cfg) = scenario();
    let wl = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
    let fc = FaultConfig {
        station_outage_duty: 0.2,
        mean_outage_secs: 15_000.0,
        node_failures_per_day: 0.5,
        mean_node_downtime_secs: 10_000.0,
        contact_truncation_rate: 0.1,
        record_loss_rate: 0.1,
        seed: 5,
    };
    let plan = FaultPlan::generate(&fc, &trace);
    let mut router = FlowRouter::new(
        FlowConfig::with_degradation(),
        trace.num_nodes(),
        trace.num_landmarks(),
    );
    let mut out = run_traced(
        &trace,
        &cfg,
        &wl,
        &plan,
        &mut router,
        Box::new(Recorder::new(1 << 16)),
    );
    out.trace
        .take()
        .and_then(Recorder::downcast)
        .expect("recorder sink attached")
}

#[test]
fn recorded_stream_is_byte_stable() {
    let a = record_once();
    let b = record_once();

    let log_a = a.render_log();
    assert!(!log_a.is_empty(), "scenario recorded no events");
    assert_eq!(log_a, b.render_log(), "rendered event logs diverge");
    assert_eq!(a.recorded(), b.recorded());
    assert_eq!(a.dropped(), b.dropped());

    assert_eq!(
        a.snapshot().to_json(),
        b.snapshot().to_json(),
        "snapshot JSON diverges"
    );
    assert_eq!(
        a.snapshot().to_csv(),
        b.snapshot().to_csv(),
        "snapshot CSV diverges"
    );
}

const PINNED_FIRST_LINE: &str = "@0 unit_boundary u0";
const PINNED_LINE_COUNT: usize = 931;
const PINNED_LOG_FNV1A: u64 = 0x854b_485b_24c9_bf2c;
const PINNED_SNAPSHOT_FNV1A: u64 = 0xbd5c_c6b6_4e2b_13ef;

/// FNV-1a 64 over the log bytes: a tiny, dependency-free fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cross-*process* byte stability: the log below was recorded by an
/// earlier build in a different process; every future process must
/// reproduce it bit-for-bit. If an intentional engine or tracer change
/// shifts the stream, re-pin these constants — any *unintentional* diff
/// is a nondeterminism bug.
#[test]
fn recorded_stream_is_byte_stable_across_processes() {
    let rec = record_once();
    let log = rec.render_log();
    let first = log.lines().next().expect("log is non-empty");
    assert_eq!(first, PINNED_FIRST_LINE, "first event diverged");
    assert_eq!(
        log.lines().count(),
        PINNED_LINE_COUNT,
        "event count diverged"
    );
    assert_eq!(
        fnv1a(log.as_bytes()),
        PINNED_LOG_FNV1A,
        "log bytes diverged"
    );
    assert_eq!(
        fnv1a(rec.snapshot().to_json().as_bytes()),
        PINNED_SNAPSHOT_FNV1A,
        "snapshot JSON bytes diverged"
    );
}

/// Observe points drive the gauge exports end-to-end: a traced run with
/// `observe_points > 0` must surface per-landmark route coverage AND the
/// route-cache hit/miss gauge in the snapshot (DESIGN.md §14). The two
/// ride the same `on_observe` emission path; neither appears in untraced
/// or zero-observe-point runs.
#[test]
fn observe_points_populate_route_gauges() {
    let (trace, mut cfg) = scenario();
    cfg.observe_points = 4;
    let wl = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
    let plan = FaultPlan::generate(&FaultConfig::default(), &trace);
    let mut router = FlowRouter::new(
        FlowConfig::default(),
        trace.num_nodes(),
        trace.num_landmarks(),
    );
    let mut out = run_traced(
        &trace,
        &cfg,
        &wl,
        &plan,
        &mut router,
        Box::new(Recorder::new(1 << 16)),
    );
    let rec = out
        .trace
        .take()
        .and_then(Recorder::downcast)
        .expect("recorder sink attached");
    let snap = rec.snapshot();
    assert!(!snap.route_coverage.is_empty(), "no coverage gauge rows");
    assert!(!snap.route_cache.is_empty(), "no route-cache gauge rows");
    let (hits, misses) = snap
        .route_cache
        .iter()
        .fold((0u64, 0u64), |(h, m), &(_, hh, mm)| (h + hh, m + mm));
    assert!(
        hits + misses > 0,
        "route-cache counters never moved: hits={hits} misses={misses}"
    );
    // The gauge must survive the JSON round trip the validator checks.
    let json = snap.to_json();
    assert!(json.contains("\"route_cache\""), "key missing from JSON");
    assert!(json.contains("\"hits\""), "hits missing from JSON");
}

/// The log renders in simulation order with non-decreasing timestamps —
/// the property downstream diff tooling relies on.
#[test]
fn recorded_stream_is_time_ordered() {
    let rec = record_once();
    let mut last = SimTime(0);
    for ev in rec.events() {
        assert!(
            ev.at() >= last,
            "event out of order: {ev} after t={}",
            last.secs()
        );
        last = ev.at();
    }
}

/// Re-pin helper after an *intentional* stream change:
/// `cargo test --test obs_trace_stability -- --ignored --nocapture probe_pins`
#[test]
#[ignore = "probe: prints pin constants"]
fn probe_pins() {
    let rec = record_once();
    let log = rec.render_log();
    println!("FIRST: {:?}", log.lines().next().unwrap());
    println!("COUNT: {}", log.lines().count());
    println!("LOG_FNV: {:#x}", fnv1a(log.as_bytes()));
    println!(
        "SNAP_FNV: {:#x}",
        fnv1a(rec.snapshot().to_json().as_bytes())
    );
}
