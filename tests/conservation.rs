//! Engine conservation invariant, checked with the flight recorder
//! attached: every generated packet must end the run in exactly one of
//! the terminal or live states,
//!
//! ```text
//! generated == delivered + expired + lost_to_outage + lost_to_churn + live
//! ```
//!
//! both with faults off and with heavy station/node faults on. When the
//! books don't balance, the recorded event stream localises the leak: the
//! failure message prints the full per-packet event history of every
//! packet whose trace disagrees with its final state.

use dtn_flow::prelude::*;
use dtn_flow::sim::run_traced;

/// A 16-day, 3-landmark corridor: node 0 commutes l0 → l1 → l0, node 1
/// commutes l1 → l2 → l1, so l1 is the interchange every cross-corridor
/// packet must flow through.
fn corridor() -> Trace {
    let mut v = Vec::new();
    for d in 0..16u64 {
        let base = d * 86_400;
        v.push(Visit::new(
            NodeId(0),
            LandmarkId(0),
            SimTime(base + 1_000),
            SimTime(base + 10_000),
        ));
        v.push(Visit::new(
            NodeId(0),
            LandmarkId(1),
            SimTime(base + 20_000),
            SimTime(base + 30_000),
        ));
        v.push(Visit::new(
            NodeId(0),
            LandmarkId(0),
            SimTime(base + 40_000),
            SimTime(base + 50_000),
        ));
        v.push(Visit::new(
            NodeId(1),
            LandmarkId(1),
            SimTime(base + 32_000),
            SimTime(base + 42_000),
        ));
        v.push(Visit::new(
            NodeId(1),
            LandmarkId(2),
            SimTime(base + 52_000),
            SimTime(base + 62_000),
        ));
        v.push(Visit::new(
            NodeId(1),
            LandmarkId(1),
            SimTime(base + 72_000),
            SimTime(base + 82_000),
        ));
    }
    let positions = (0..3)
        .map(|i| dtn_flow::core::geometry::Point::new(i as f64 * 500.0, 0.0))
        .collect();
    Trace::new("conservation-corridor", 2, 3, positions, v).expect("valid corridor trace")
}

fn cfg() -> SimConfig {
    SimConfig {
        packets_per_landmark_per_day: 6.0,
        ttl: DAY.mul(6),
        time_unit: DAY,
        seed: 11,
        ..SimConfig::default()
    }
}

/// The packet an event concerns, if any.
fn pkt_of(ev: &SimEvent) -> Option<PacketId> {
    match *ev {
        SimEvent::PacketGenerated { pkt, .. }
        | SimEvent::PacketForwarded { pkt, .. }
        | SimEvent::PacketDelivered { pkt, .. }
        | SimEvent::PacketExpired { pkt, .. }
        | SimEvent::PacketLost { pkt, .. }
        | SimEvent::MisTransit { pkt, .. }
        | SimEvent::RetryQueued { pkt, .. } => Some(pkt),
        _ => None,
    }
}

/// Check the conservation equation on `out`, using the recorder to write
/// an actionable failure message if a packet leaks.
fn assert_conserved(mut out: SimOutcome, name: &str) {
    let rec = out
        .trace
        .take()
        .and_then(Recorder::downcast)
        .expect("recorder sink attached");

    let m = &out.metrics;
    let live = out.packets.iter().filter(|p| p.loc.is_live()).count() as u64;
    let accounted = m.delivered + m.expired + m.lost_to_outage + m.lost_to_churn + live;

    // Cross-check the event stream against the engine's own counters: the
    // recorder saw every lifecycle event, so its fold must agree exactly.
    let t = &rec.metrics().totals;
    assert_eq!(
        t.generated, m.generated,
        "{name}: event-stream generated count"
    );
    assert_eq!(
        t.delivered, m.delivered,
        "{name}: event-stream delivered count"
    );
    assert_eq!(t.expired, m.expired, "{name}: event-stream expired count");
    assert_eq!(
        t.lost_outage, m.lost_to_outage,
        "{name}: event-stream outage losses"
    );
    assert_eq!(
        t.lost_churn, m.lost_to_churn,
        "{name}: event-stream churn losses"
    );

    if accounted != m.generated {
        // Localise the leak: rebuild each packet's fate from its events
        // and print the histories that disagree with the final state.
        use std::collections::BTreeMap;
        let mut hist: BTreeMap<PacketId, Vec<String>> = BTreeMap::new();
        for ev in rec.events() {
            if let Some(pkt) = pkt_of(ev) {
                hist.entry(pkt).or_default().push(ev.to_string());
            }
        }
        let mut report = String::new();
        for (i, p) in out.packets.iter().enumerate() {
            let id = PacketId(i as u32);
            let terminal = matches!(
                p.loc,
                PacketLoc::Delivered(_) | PacketLoc::Expired | PacketLoc::Lost
            );
            let saw_terminal = hist.get(&id).is_some_and(|h| {
                h.iter().any(|line| {
                    line.contains("packet_delivered")
                        || line.contains("packet_expired")
                        || line.contains("packet_lost")
                })
            });
            if terminal != saw_terminal {
                report.push_str(&format!("\n{id} final={:?} events:\n", p.loc));
                for line in hist.get(&id).map(Vec::as_slice).unwrap_or(&[]) {
                    report.push_str("  ");
                    report.push_str(line);
                    report.push('\n');
                }
            }
        }
        panic!(
            "{name}: conservation broken: generated {} != delivered {} + expired {} \
             + lost_to_outage {} + lost_to_churn {} + live {live}\nleaking packets:{report}",
            m.generated, m.delivered, m.expired, m.lost_to_outage, m.lost_to_churn
        );
    }
}

fn run_conserved(plan: &FaultPlan, name: &str) {
    let trace = corridor();
    let cfg = cfg();
    let wl = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
    let mut router = FlowRouter::new(
        FlowConfig::with_degradation(),
        trace.num_nodes(),
        trace.num_landmarks(),
    );
    let out = run_traced(
        &trace,
        &cfg,
        &wl,
        plan,
        &mut router,
        Box::new(Recorder::new(1 << 16)),
    );
    assert!(
        out.metrics.generated > 0,
        "{name}: workload generated nothing"
    );
    assert_conserved(out, name);
}

#[test]
fn packets_are_conserved_without_faults() {
    run_conserved(&FaultPlan::none(), "no-faults");
}

#[test]
fn packets_are_conserved_under_faults() {
    let trace = corridor();
    for seed in [1u64, 7, 42] {
        let fc = FaultConfig {
            station_outage_duty: 0.35,
            mean_outage_secs: 20_000.0,
            node_failures_per_day: 1.5,
            mean_node_downtime_secs: 15_000.0,
            contact_truncation_rate: 0.25,
            record_loss_rate: 0.2,
            seed,
        };
        let plan = FaultPlan::generate(&fc, &trace);
        assert!(!plan.is_empty(), "fault plan for seed {seed} is empty");
        run_conserved(&plan, &format!("faults-seed-{seed}"));
    }
}
