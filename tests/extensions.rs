//! The §IV-E extensions exercised through the public API: dead-end
//! prevention, loop detection/correction, load balancing, and routing to
//! mobile nodes.

use dtn_flow::prelude::*;
use dtn_flow::router::LoopInjection;
use dtn_flow::sim::World;

fn bus_trace() -> Trace {
    BusModel::new(BusConfig {
        garage_prob: 0.2,
        ..BusConfig::tiny()
    })
    .generate()
}

fn bus_cfg() -> SimConfig {
    SimConfig {
        packets_per_landmark_per_day: 40.0,
        ..SimConfig::dnet()
    }
}

#[test]
fn dead_end_prevention_detects_garage_trips() {
    let trace = bus_trace();
    let cfg = bus_cfg();
    let flow = FlowConfig {
        dead_end: Some(DeadEndConfig {
            gamma: 2.0,
            min_stays: 8,
        }),
        ..FlowConfig::default()
    };
    let mut router = FlowRouter::new(flow, trace.num_nodes(), trace.num_landmarks());
    let _ = run(&trace, &cfg, &mut router);
    assert!(
        router.stats().dead_ends_detected > 0,
        "garage-heavy trace must trigger detections"
    );
}

#[test]
fn loop_injection_is_noticed_with_correction_enabled() {
    let trace = bus_trace();
    let cfg = bus_cfg();
    let total_units = trace.duration().secs() / cfg.time_unit.secs();
    let flow = FlowConfig {
        loop_correction: true,
        inject_loops: vec![LoopInjection {
            at_unit: total_units / 2,
            members: vec![LandmarkId(0), LandmarkId(1)],
            dest: LandmarkId(4),
        }],
        ..FlowConfig::default()
    };
    let mut router = FlowRouter::new(flow, trace.num_nodes(), trace.num_landmarks());
    // Exclude the (undeliverable) garage from the workload.
    let garage = LandmarkId::from(trace.num_landmarks() - 1);
    let wl = Workload::uniform_excluding(&cfg, trace.num_landmarks(), trace.duration(), &[garage]);
    let out = run_with_workload(&trace, &cfg, &wl, &mut router);
    // The run completes and still delivers; detection may or may not fire
    // depending on whether the falsified detour is ever attractive, but
    // delivery must not collapse.
    assert!(
        out.metrics.success_rate() > 0.3,
        "success {}",
        out.metrics.success_rate()
    );
}

#[test]
fn load_balancing_reroutes_under_pressure() {
    let trace = bus_trace();
    let mut cfg = bus_cfg();
    cfg.packets_per_landmark_per_day = 600.0;
    let flow = FlowConfig {
        load_balance: Some(LoadBalanceConfig {
            theta: 1.5,
            min_incoming: 5,
            max_detour: 3.0,
        }),
        ..FlowConfig::default()
    };
    let mut router = FlowRouter::new(flow, trace.num_nodes(), trace.num_landmarks());
    let out = run(&trace, &cfg, &mut router);
    assert!(out.metrics.delivered > 0);
    assert!(
        router.stats().lb_reroutes > 0,
        "overload must push packets onto backup next hops"
    );
}

#[test]
fn send_to_node_delivers_to_a_mobile_node() {
    // Drive the §IV-E.4 extension mid-run via a wrapper router.
    struct Sender {
        inner: FlowRouter,
        created: Vec<PacketId>,
    }
    impl Router for Sender {
        fn name(&self) -> &'static str {
            "sender"
        }
        fn uses_stations(&self) -> bool {
            true
        }
        fn on_arrive(&mut self, w: &mut World, n: NodeId, l: LandmarkId) {
            self.inner.on_arrive(w, n, l);
        }
        fn on_depart(&mut self, w: &mut World, n: NodeId, l: LandmarkId) {
            self.inner.on_depart(w, n, l);
        }
        fn on_packet_generated(&mut self, w: &mut World, p: PacketId) {
            self.inner.on_packet_generated(w, p);
        }
        fn on_timer(&mut self, w: &mut World, t: u64) {
            self.inner.on_timer(w, t);
        }
        fn on_time_unit(&mut self, w: &mut World, u: u64) {
            self.inner.on_time_unit(w, u);
            // The tiny bus trace spans ~12 half-day units; send from the
            // hub (every route passes it) once registrations exist.
            if u >= 4
                && self.created.is_empty()
                && !self.inner.registered_landmarks(NodeId(1)).is_empty()
            {
                self.created = self.inner.send_to_node(w, LandmarkId(0), NodeId(1));
            }
        }
    }
    // Default (rarely-garaged) tiny bus trace so node 1 keeps circulating.
    let trace = BusModel::new(BusConfig::tiny()).generate();
    let cfg = bus_cfg();
    let mut router = Sender {
        inner: FlowRouter::new(
            FlowConfig::default(),
            trace.num_nodes(),
            trace.num_landmarks(),
        ),
        created: Vec::new(),
    };
    let out = run(&trace, &cfg, &mut router);
    assert!(
        !router.created.is_empty(),
        "registrations should exist by unit 20"
    );
    let delivered = router
        .created
        .iter()
        .any(|&p| matches!(out.packets[p.index()].loc, PacketLoc::Delivered(_)));
    assert!(delivered, "at least one copy must reach node 1");
    // Node-addressed copies never count as landmark deliveries at their
    // via landmark.
    for &p in &router.created {
        let pkt = &out.packets[p.index()];
        assert_eq!(pkt.dst_node, Some(NodeId(1)));
    }
}
