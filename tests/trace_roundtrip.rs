//! Trace serialization: a generated trace survives the text format, and a
//! reloaded trace simulates identically to the original.

use dtn_flow::mobility::io;
use dtn_flow::prelude::*;

#[test]
fn generated_traces_roundtrip_through_text() {
    for trace in [
        CampusModel::new(CampusConfig::tiny()).generate(),
        BusModel::new(BusConfig::tiny()).generate(),
        DeploymentModel::new(DeploymentConfig::default()).generate(),
    ] {
        let text = io::to_text(&trace);
        let back = io::from_text(&text).expect("roundtrip parses");
        assert_eq!(back.name(), trace.name());
        assert_eq!(back.num_nodes(), trace.num_nodes());
        assert_eq!(back.num_landmarks(), trace.num_landmarks());
        assert_eq!(back.visits(), trace.visits());
        assert_eq!(back.positions(), trace.positions());
    }
}

#[test]
fn reloaded_trace_simulates_identically() {
    let trace = CampusModel::new(CampusConfig::tiny()).generate();
    let reloaded = io::from_text(&io::to_text(&trace)).unwrap();
    let cfg = SimConfig {
        packets_per_landmark_per_day: 25.0,
        ..SimConfig::dart()
    };
    let go = |t: &Trace| {
        let mut r = FlowRouter::new(FlowConfig::default(), t.num_nodes(), t.num_landmarks());
        run(t, &cfg, &mut r).metrics
    };
    let a = go(&trace);
    let b = go(&reloaded);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.forwarding_ops, b.forwarding_ops);
    assert_eq!(a.delays, b.delays);
}

#[test]
fn transit_statistics_survive_roundtrip() {
    use dtn_flow::mobility::stats;
    let trace = BusModel::new(BusConfig::tiny()).generate();
    let back = io::from_text(&io::to_text(&trace)).unwrap();
    let unit = SimDuration::from_days(0.5);
    let a = stats::link_bandwidths(&trace, unit);
    let b = stats::link_bandwidths(&back, unit);
    for i in 0..trace.num_landmarks() {
        for j in 0..trace.num_landmarks() {
            let (li, lj) = (LandmarkId::from(i), LandmarkId::from(j));
            assert_eq!(a.get(li, lj), b.get(li, lj));
        }
    }
}
