//! # dtn-flow
//!
//! A reproduction of **“DTN-FLOW: Inter-Landmark Data Flow for
//! High-Throughput Routing in DTNs”** (Chen & Shen, IEEE IPDPS 2013 /
//! IEEE/ACM ToN 2015) as a Rust workspace: the DTN-FLOW router, the
//! trace-driven delay-tolerant-network simulator it runs on, synthetic
//! substitutes for the paper's DART/DNET traces, the five baseline
//! routers it is compared against, and a harness regenerating every table
//! and figure of the paper's evaluation.
//!
//! This crate is the facade: it re-exports the workspace crates under one
//! roof and hosts the runnable examples and cross-crate integration tests.
//!
//! ## Quick start
//!
//! ```
//! use dtn_flow::prelude::*;
//!
//! // A small synthetic campus trace (students moving among buildings).
//! let trace = CampusModel::new(CampusConfig::tiny()).generate();
//!
//! // Simulate DTN-FLOW routing a light packet workload over it.
//! let cfg = SimConfig {
//!     packets_per_landmark_per_day: 20.0,
//!     ..SimConfig::dart()
//! };
//! let mut router = FlowRouter::new(
//!     FlowConfig::default(),
//!     trace.num_nodes(),
//!     trace.num_landmarks(),
//! );
//! let outcome = run(&trace, &cfg, &mut router);
//!
//! assert!(outcome.metrics.generated > 0);
//! println!(
//!     "success rate {:.2}, average delay {:.0} min",
//!     outcome.metrics.success_rate(),
//!     outcome.metrics.average_delay_secs() / 60.0
//! );
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] | ids, time, packets, config, metrics, geometry |
//! | [`mobility`] | traces, preprocessing, statistics, synthetic generators |
//! | [`predictor`] | order-k Markov transit predictor (§IV-B) |
//! | [`landmark`] | landmark selection + Voronoi subarea division (§IV-A) |
//! | [`sim`] | the trace-driven discrete-event simulator |
//! | [`obs`] | event tracing, counters, delay histograms, snapshots |
//! | [`router`] | the DTN-FLOW router with all §IV-E extensions |
//! | [`baselines`] | SimBet, PROPHET, PGR, GeoComm, PER |

#![forbid(unsafe_code)]

pub use dtnflow_baselines as baselines;
pub use dtnflow_core as core;
pub use dtnflow_landmark as landmark;
pub use dtnflow_mobility as mobility;
pub use dtnflow_obs as obs;
pub use dtnflow_predictor as predictor;
pub use dtnflow_router as router;
pub use dtnflow_sim as sim;

/// The names most programs need, in one import.
pub mod prelude {
    pub use dtnflow_baselines::{
        Direct, GeoComm, Per, Pgr, Prophet, SimBet, UtilityModel, UtilityRouter,
    };
    pub use dtnflow_core::config::SimConfig;
    pub use dtnflow_core::ids::{LandmarkId, NodeId, PacketId};
    pub use dtnflow_core::metrics::{FiveNum, MetricsSummary, RunMetrics};
    pub use dtnflow_core::packet::{Packet, PacketLoc};
    pub use dtnflow_core::time::{SimDuration, SimTime, DAY, HOUR, MINUTE};
    pub use dtnflow_landmark::{select_landmarks, PlaceStat, SelectionConfig, SubareaDivision};
    pub use dtnflow_mobility::synth::bus::{BusConfig, BusModel};
    pub use dtnflow_mobility::synth::campus::{CampusConfig, CampusModel};
    pub use dtnflow_mobility::synth::deployment::{DeploymentConfig, DeploymentModel};
    pub use dtnflow_mobility::{Trace, Visit};
    pub use dtnflow_obs::{NoopSink, Recorder, SimEvent, Snapshot, TraceSink};
    pub use dtnflow_predictor::{AccuracyTracker, MarkovPredictor, VisitHistory};
    pub use dtnflow_router::{
        DeadEndConfig, DegradationConfig, FlowConfig, FlowRouter, HybridFlowRouter, LinkDelayModel,
        LoadBalanceConfig,
    };
    pub use dtnflow_sim::{
        run, run_traced, run_with_faults, run_with_workload, FaultConfig, FaultPlan, LossReason,
        NodeOutage, Router, SimOutcome, StationOutage, Workload, World, WorldError,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let cfg = SimConfig::default();
        assert_eq!(cfg.packets_per_node(), 2_000);
        let _ = FlowConfig::default();
    }
}
