//! Quickstart: generate a small campus trace, run DTN-FLOW over it, and
//! print the paper's four evaluation metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dtn_flow::prelude::*;

fn main() {
    // 1. A mobility trace: 20 synthetic students across 10 campus
    //    buildings for 12 days. Any `Trace` works here — load your own
    //    association logs with `dtn_flow::mobility::io::from_text`.
    let trace = CampusModel::new(CampusConfig::tiny()).generate();
    println!(
        "trace: {} nodes, {} landmarks, {} visits, {} transits",
        trace.num_nodes(),
        trace.num_landmarks(),
        trace.visits().len(),
        trace.transits().len()
    );

    // 2. Experiment settings (the paper's DART defaults, lighter load).
    let cfg = SimConfig {
        packets_per_landmark_per_day: 50.0,
        ..SimConfig::dart()
    };

    // 3. The DTN-FLOW router: landmark stations, bandwidth measurement,
    //    distance-vector routing, transit-prediction carrier selection.
    let mut router = FlowRouter::new(
        FlowConfig::default(),
        trace.num_nodes(),
        trace.num_landmarks(),
    );

    // 4. Run and report.
    let outcome = run(&trace, &cfg, &mut router);
    let m = &outcome.metrics;
    println!("generated        {}", m.generated);
    println!("success rate     {:.3}", m.success_rate());
    println!("average delay    {:.0} min", m.average_delay_secs() / 60.0);
    println!("forwarding cost  {} ops", m.forwarding_ops);
    println!("total cost       {:.0} ops", m.total_cost());

    // The routing tables the landmarks learned are inspectable:
    let rows = router.routing_rows(LandmarkId(0));
    println!("\nrouting table on l0 ({} destinations):", rows.len());
    for (dest, next, delay) in rows.iter().take(5) {
        println!("  -> {dest} via {next} (expected {:.1} h)", delay / 3_600.0);
    }
}
