//! Rural inter-village communication — the paper's motivating application
//! (§I): villages linked only by buses that pass a market-town hub. The
//! example pits DTN-FLOW against PROPHET and direct delivery on the same
//! bus trace and prints the comparison.
//!
//! ```text
//! cargo run --release --example rural_villages
//! ```

use dtn_flow::prelude::*;

fn main() {
    // Villages = bus stops; bus lines only meet at the hub, so most
    // village pairs need inter-landmark relaying.
    let bus_cfg = BusConfig::default();
    let garage = bus_cfg.garage();
    let trace = BusModel::new(bus_cfg).generate();
    let cfg = SimConfig {
        packets_per_landmark_per_day: 200.0,
        ..SimConfig::dnet()
    };
    // The garage is not a village: it neither sends nor receives.
    let workload =
        Workload::uniform_excluding(&cfg, trace.num_landmarks(), trace.duration(), &[garage]);
    println!(
        "{} villages, {} buses, {} messages to route\n",
        trace.num_landmarks() - 1,
        trace.num_nodes(),
        workload.len()
    );

    println!(
        "{:<10} {:>9} {:>12} {:>12}",
        "method", "success", "delay (min)", "fwd ops"
    );
    let show = |name: &str, outcome: &SimOutcome| {
        println!(
            "{:<10} {:>9.3} {:>12.0} {:>12}",
            name,
            outcome.metrics.success_rate(),
            outcome.metrics.average_delay_secs() / 60.0,
            outcome.metrics.forwarding_ops
        );
    };

    let mut flow = FlowRouter::new(
        FlowConfig::with_all_extensions(),
        trace.num_nodes(),
        trace.num_landmarks(),
    );
    let flow_out = run_with_workload(&trace, &cfg, &workload, &mut flow);
    show("DTN-FLOW", &flow_out);

    let mut prophet = UtilityRouter::new(Prophet::new(trace.num_nodes(), trace.num_landmarks()));
    let prophet_out = run_with_workload(&trace, &cfg, &workload, &mut prophet);
    show("PROPHET", &prophet_out);

    let mut direct = Direct::new();
    let direct_out = run_with_workload(&trace, &cfg, &workload, &mut direct);
    show("direct", &direct_out);

    // The architectural point: how many DTN-FLOW deliveries crossed at
    // least one intermediate landmark — traffic no single bus could serve?
    let relayed = flow_out
        .packets
        .iter()
        .filter(|p| matches!(p.loc, PacketLoc::Delivered(_)) && p.visited.len() >= 2)
        .count();
    println!(
        "\n{relayed} of {} DTN-FLOW deliveries were relayed through intermediate villages",
        flow_out.metrics.delivered
    );
    println!(
        "dead ends rescued: {}, routing loops noticed: {}",
        flow.stats().dead_ends_detected,
        flow.stats().loops_detected
    );
}
