//! Campus data collection — the paper's §V-C deployment scenario: every
//! building generates reports that must reach the library, carried only by
//! the phones of nine students going about their day.
//!
//! ```text
//! cargo run --release --example campus_data_collection
//! ```

use dtn_flow::mobility::synth::deployment::LIBRARY;
use dtn_flow::prelude::*;

fn main() {
    let trace = DeploymentModel::new(DeploymentConfig::default()).generate();
    let mut cfg = SimConfig::deployment();
    // Give every packet its full TTL window, like the real deployment.
    cfg.gen_tail_margin = cfg.ttl;

    // All packets target the library.
    let workload = Workload::sink(&cfg, trace.num_landmarks(), trace.duration(), LIBRARY);
    println!(
        "collecting {} reports from {} buildings into the library...",
        workload.len(),
        trace.num_landmarks() - 1
    );

    let mut router = FlowRouter::new(
        FlowConfig::default(),
        trace.num_nodes(),
        trace.num_landmarks(),
    );
    let outcome = run_with_workload(&trace, &cfg, &workload, &mut router);
    let m = &outcome.metrics;

    println!("success rate  {:.3}", m.success_rate());
    if let Some(f) = m.delay_summary() {
        println!(
            "delay (min)   min {:.0} | q1 {:.0} | mean {:.0} | q3 {:.0} | max {:.0}",
            f.min / 60.0,
            f.q1 / 60.0,
            f.mean / 60.0,
            f.q3 / 60.0,
            f.max / 60.0
        );
    }

    // Which inter-building flows carried the data? (Fig. 16b)
    println!("\nmajor transit links (>= 0.14 transits/unit):");
    let n = trace.num_landmarks();
    let mut links = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let bw = router.bandwidth(LandmarkId::from(i), LandmarkId::from(j));
                if bw >= 0.14 {
                    links.push((i, j, bw));
                }
            }
        }
    }
    links.sort_by(|a, b| b.2.total_cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
    for (i, j, bw) in links.iter().take(8) {
        println!("  l{i} -> l{j}: {bw:.2}");
    }

    // How does each building reach the library? (Table X)
    println!("\nroutes to the library:");
    for l in 1..n {
        let rows = router.routing_rows(LandmarkId::from(l));
        if let Some((_, next, delay)) = rows.iter().find(|(d, _, _)| *d == LIBRARY) {
            println!("  l{l} -> via {next} ({:.0} min expected)", delay / 60.0);
        } else {
            println!("  l{l} -> (no route learned)");
        }
    }
}
