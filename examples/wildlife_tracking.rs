//! Wildlife tracking — the ZebraNet-style application the paper cites
//! (§I): collared animals wander between waterholes; their loggers
//! opportunistically haul data to a ranger base station. This example
//! builds the mobility trace by hand through the public API, runs the
//! paper's landmark-selection procedure on raw place statistics, and then
//! routes the collected logs with DTN-FLOW.
//!
//! ```text
//! cargo run --release --example wildlife_tracking
//! ```

use dtn_flow::core::geometry::Point;
use dtn_flow::core::rngutil::{log_normal, rng_for, weighted_choice, zipf_weights};
use dtn_flow::prelude::*;
use rand::Rng;

const ANIMALS: usize = 24;
const WATERHOLES: usize = 9; // index 0 is the ranger base station
const DAYS: u64 = 30;

/// Hand-rolled semi-Markov wildlife mobility: each animal favours a home
/// range of waterholes, visiting 2–4 per day with long drinking stays.
fn wildlife_trace() -> Trace {
    let mut layout = rng_for(7, "wildlife-layout");
    let positions: Vec<Point> = (0..WATERHOLES)
        .map(|_| {
            Point::new(
                layout.random::<f64>() * 8_000.0,
                layout.random::<f64>() * 8_000.0,
            )
        })
        .collect();

    let mut visits = Vec::new();
    for a in 0..ANIMALS {
        let mut rng = rng_for(7, &format!("animal-{a}"));
        // Home-range preferences: a Zipf over a rotated waterhole order,
        // plus the base station for herds that graze near the rangers.
        let zipf = zipf_weights(WATERHOLES, 1.1);
        let offset = rng.random_range(0..WATERHOLES);
        let mut weights = vec![0.0; WATERHOLES];
        for (k, w) in zipf.iter().enumerate() {
            weights[(k + offset) % WATERHOLES] = *w;
        }
        let mut t = a as u64 * 600; // stagger starts
        let mut current = usize::MAX;
        for _day in 0..DAYS {
            let outings = 2 + rng.random_range(0..3);
            for _ in 0..outings {
                let mut w = weights.clone();
                if current != usize::MAX {
                    w[current] = 0.0;
                }
                let next = weighted_choice(&mut rng, &w);
                // Trek between waterholes: 1–5 hours.
                t += (3_600.0 * (1.0 + rng.random::<f64>() * 4.0)) as u64;
                let stay = (60.0 * log_normal(&mut rng, 90.0, 0.5)) as u64;
                visits.push(Visit::new(
                    NodeId::from(a),
                    LandmarkId::from(next),
                    SimTime(t),
                    SimTime(t + stay),
                ));
                t += stay;
                current = next;
            }
            // Overnight away from any waterhole.
            t += 8 * 3_600;
        }
    }
    Trace::new("wildlife", ANIMALS, WATERHOLES, positions, visits).expect("wildlife trace is valid")
}

fn main() {
    let trace = wildlife_trace();
    println!(
        "wildlife trace: {} animals, {} waterholes, {} visits",
        trace.num_nodes(),
        trace.num_landmarks(),
        trace.visits().len()
    );

    // Landmark selection (paper §IV-A.1) from raw place statistics: keep
    // the popular waterholes at least 500 m apart.
    let stats: Vec<PlaceStat> = (0..trace.num_landmarks())
        .map(|l| PlaceStat {
            position: trace.positions()[l],
            visits: trace
                .visits()
                .iter()
                .filter(|v| v.landmark.index() == l)
                .count() as u64,
        })
        .collect();
    let selected = select_landmarks(
        &stats,
        &SelectionConfig {
            min_distance: 500.0,
            ..SelectionConfig::default()
        },
    );
    println!(
        "landmark selection keeps {} of {WATERHOLES} waterholes",
        selected.len()
    );

    // Route every waterhole's sensor logs to the base station (l0).
    let base = LandmarkId(0);
    let cfg = SimConfig {
        packets_per_landmark_per_day: 30.0,
        ttl: DAY.mul(6),
        time_unit: DAY,
        node_memory: 200 * 1_024,
        ..SimConfig::default()
    };
    let workload = Workload::sink(&cfg, trace.num_landmarks(), trace.duration(), base);
    let mut router = FlowRouter::new(
        FlowConfig::with_all_extensions(),
        trace.num_nodes(),
        trace.num_landmarks(),
    );
    let out = run_with_workload(&trace, &cfg, &workload, &mut router);
    println!(
        "\nlog collection: {:.1}% of {} readings reached the rangers, median haul {:.1} h",
        100.0 * out.metrics.success_rate(),
        out.metrics.generated,
        out.metrics
            .delay_summary()
            .map(|f| (f.q1 + f.q3) / 2.0 / 3_600.0)
            .unwrap_or(0.0)
    );

    // The §IV-E.4 extension: address a packet to a *collared animal* (a
    // mobile node) via its frequently visited waterholes.
    for animal in [NodeId(0), NodeId(5)] {
        let regs = router.registered_landmarks(animal).to_vec();
        println!(
            "animal {animal} frequents {:?}; rangers can reach it there",
            regs.iter().map(|l| l.to_string()).collect::<Vec<_>>()
        );
    }
}
