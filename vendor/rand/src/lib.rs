//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact surface the workspace uses: [`SeedableRng`],
//! [`Rng::random`], [`Rng::random_range`], [`Rng::random_bool`] and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — a different stream than upstream `StdRng` (ChaCha12), but
//! every guarantee the simulator relies on holds: a seed fully determines
//! the stream, distinct seeds give distinct streams, and sampling is
//! identical across platforms.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from uniform random bits (the `StandardUniform`
/// distribution in upstream `rand`).
pub trait StandardSample: Sized {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in [0, 1) with 24 bits of precision.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable to a `T` (the `SampleRange` trait upstream).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // modulo bias of the simple fallback would be fine too,
                // but this is branch-cheap and exact enough.
                let hi = (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as u128).wrapping_sub(start as u128) as u64 + 1;
                let hi = (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}
range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_from(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Sample a value of an inferred type from uniform bits.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Sample uniformly from a range (`0..n`, `a..=b`, `0.0..1.0`).
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x: u64 = r.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = r.random_range(0..3);
            assert!(y < 3);
            let z: i64 = r.random_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_roughly_holds() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
