//! Offline stand-in for the `proptest` crate (API subset).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the surface the workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / `Just` / mapped strategies,
//! [`collection::vec`], [`prop_oneof!`], `any::<T>()` and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking** — a failing case panics with the assertion message
//!   but is not minimized.
//! * Cases are seeded deterministically from the test name and case
//!   index, so failures reproduce exactly across runs and machines.
//! * `PROPTEST_CASES` overrides the per-test case count, as upstream.

pub mod strategy;

pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// The strategy returned by [`any`] for primitive types.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    macro_rules! arb_prim {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random()
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any(core::marker::PhantomData)
                }
            }
        )*};
    }
    arb_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Strategy for Any<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning many magnitudes.
            let mag: f64 = rng.random::<f64>() * 600.0 - 300.0;
            let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
            sign * mag.exp2().min(f64::MAX)
        }
    }
    impl Arbitrary for f64 {
        type Strategy = Any<f64>;
        fn arbitrary() -> Any<f64> {
            Any(core::marker::PhantomData)
        }
    }

    /// `any::<T>()`: the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Vector lengths accepted by [`vec`], as upstream's `SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty length range");
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `vec(element, len)`: vectors whose length is uniform in the given
    /// range (`a..b`, `a..=b`, or an exact `usize`) and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.min..self.len.max_exclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    /// Per-test configuration (subset of upstream's fields).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Drives the cases of one property test.
    #[derive(Debug)]
    pub struct TestRunner {
        cases: u32,
        name_hash: u64,
        case: u64,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(config.cases);
            // FNV-1a over the test name: distinct tests get distinct
            // deterministic streams.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRunner {
                cases,
                name_hash: h,
                case: 0,
            }
        }

        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The deterministic generator for the next case.
        pub fn next_rng(&mut self) -> TestRng {
            let seed = self
                .name_hash
                .wrapping_add(self.case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            self.case += 1;
            TestRng::seed_from_u64(seed)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run each `fn name(arg in strategy, ...)` body against deterministic
/// random cases. Supports an optional leading
/// `#![proptest_config(expr)]` item.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            for _ in 0..runner.cases() {
                let mut __proptest_rng = runner.next_rng();
                $(
                    let $arg =
                        $crate::strategy::Strategy::sample(&$strat, &mut __proptest_rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

/// Panic-based stand-ins for upstream's early-return assertions.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to `continue`, so it is only valid directly inside a
/// [`proptest!`] body (which is where upstream allows it too).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

/// Weighted choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as f64, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in 0usize..3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]
        #[test]
        fn config_cases_is_respected(_x in 0u32..10) {
            // Runs without panicking; case count is exercised below.
        }
    }

    proptest! {
        #[test]
        fn tuples_maps_and_vecs_compose(
            v in crate::collection::vec((0u16..4, any::<bool>()), 0..50),
            z in (0u8..5).prop_map(|a| a as u32 + 1),
        ) {
            prop_assert!(v.len() < 50);
            prop_assert!(v.iter().all(|&(a, _)| a < 4));
            prop_assert!((1..=5).contains(&z));
        }
    }

    proptest! {
        #[test]
        fn oneof_and_just(
            x in prop_oneof![3 => (1u32..1_000).prop_map(|d| d as f64), 1 => Just(f64::INFINITY)],
        ) {
            prop_assert!(x.is_infinite() || (1.0..1_000.0).contains(&x));
        }
    }

    proptest! {
        #[test]
        fn assume_skips_cases(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let cfg = ProptestConfig::default();
        let mut a = crate::test_runner::TestRunner::new(cfg.clone(), "t");
        let mut b = crate::test_runner::TestRunner::new(cfg, "t");
        let s = 0u64..1_000_000;
        for _ in 0..16 {
            let x = s.sample(&mut a.next_rng());
            let y = s.sample(&mut b.next_rng());
            assert_eq!(x, y);
        }
    }

    #[test]
    fn flat_map_chains() {
        let strat = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u8..10, n..n + 1));
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::default(), "fm");
        for _ in 0..32 {
            let v = strat.sample(&mut runner.next_rng());
            assert!((1..5).contains(&v.len()));
        }
    }
}
