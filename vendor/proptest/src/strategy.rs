//! Value-generation strategies (no shrinking; see crate docs).

use std::rc::Rc;

/// The generator driving each test case.
pub type TestRng = rand::rngs::StdRng;

/// A recipe for producing random values of one type.
///
/// Object-safe: only [`Strategy::sample`] is required; the combinators
/// carry `where Self: Sized` so `dyn Strategy<Value = V>` works (that is
/// what [`BoxedStrategy`] stores).
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a follow-up strategy from each sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn Strategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.inner.sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(f64, BoxedStrategy<V>)>,
    total: f64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(f64, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum::<f64>();
        assert!(total > 0.0, "prop_oneof! weights must sum to > 0");
        Union { arms, total }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        use rand::Rng;
        let mut pick = rng.random_range(0.0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        // Float round-off can walk past the last boundary.
        self.arms[self.arms.len() - 1].1.sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
