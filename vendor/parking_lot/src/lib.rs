//! Offline stand-in for the `parking_lot` crate (API subset).
//!
//! The build environment has no crates.io access. The workspace only uses
//! `parking_lot::Mutex`, whose API differs from std's in not exposing
//! poisoning — this wrapper matches that by treating a poisoned std mutex
//! as still usable (the poison flag is discarded), which is exactly
//! parking_lot's semantics.

use std::sync::{Mutex as StdMutex, MutexGuard, TryLockError};

/// A mutex without lock poisoning, mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired. Never fails: a poisoned std
    /// mutex is recovered, matching parking_lot's poison-free contract.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire the lock only if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        *m.try_lock().unwrap() += 1;
        assert_eq!(m.into_inner(), 1);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        // parking_lot semantics: the value stays reachable.
        assert_eq!(*m.lock(), 7);
    }
}
