//! Offline stand-in for the `crossbeam` crate (API subset).
//!
//! The build environment has no crates.io access. The workspace only uses
//! `crossbeam::scope`, which std has provided natively since 1.63 as
//! `std::thread::scope` — so this vendored crate is a thin adapter
//! matching crossbeam's signature: the spawn closure receives the scope
//! (enabling nested spawns) and `scope` returns `Err` with the panic
//! payload if any unjoined child panicked.

use std::any::Any;

pub mod thread {
    use super::Any;

    /// Re-exported handle type; `join` behaves as in crossbeam.
    pub use std::thread::ScopedJoinHandle;

    /// A scope handle passed to spawned closures.
    ///
    /// `Copy` so closures can capture it by value and spawn further work.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a child thread; the closure receives this scope so it
        /// can spawn siblings, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Run `f` with a scope whose threads must finish before returning.
    ///
    /// Returns `Err(payload)` if a child thread panicked (crossbeam's
    /// contract); std's native scope re-raises instead, so the panic is
    /// caught here and converted.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_see_borrowed_state() {
        let count = AtomicUsize::new(0);
        let count = &count;
        let data = [1usize, 2, 3, 4];
        let total: usize = crate::scope(|scope| {
            let handles: Vec<_> = data
                .iter()
                .map(|&x| {
                    scope.spawn(move |_| {
                        count.fetch_add(1, Ordering::Relaxed);
                        x * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
        assert_eq!(count.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_via_scope_argument() {
        let n = crate::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21usize).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = crate::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
