//! Offline stand-in for the `criterion` benchmark harness (API subset).
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides just enough of criterion's surface for the workspace's
//! `harness = false` benches to compile and run: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a plain wall-clock mean over a fixed iteration count —
//! no warm-up tuning, outlier analysis, or HTML reports. Good enough to
//! spot order-of-magnitude regressions by eye; not a statistics engine.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark body repeatedly and reports the mean time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call to touch caches before measuring.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

fn run_one(id: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    println!("bench {id:<48} {:>12.0} ns/iter", per_iter);
}

impl Criterion {
    /// Configure how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), self.sample_size as u64, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Upstream finalizes reports here; nothing to do in the stub.
    pub fn final_summary(&mut self) {}
}

/// A named group; benchmark ids are printed as `group/id`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size as u64, &mut f);
        self
    }

    pub fn finish(self) {}
}

/// Bundle benchmark functions under one name, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("quick/add", |b| b.iter(|| black_box(1u64) + 2));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        g.bench_function(format!("{}-sum", 8), |b| b.iter(|| (0..8u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs_and_times() {
        benches();
    }
}
