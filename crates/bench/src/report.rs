//! Plain-text result tables: aligned for the terminal, CSV for downstream
//! plotting. No serialization crate needed — rows are strings.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One result table (a figure series or a paper table).
#[derive(Debug, Clone)]
pub struct Table {
    pub id: String,
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Start a table with an id (`fig11a`), a human title, and headers.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Append a free-text note rendered under the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor (row, column), for tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Column index by header name.
    pub fn column(&self, header: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == header)
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            let mut first = true;
            for (cell, w) in cells.iter().zip(widths) {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
                first = false;
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Render as CSV (headers first; quotes around cells with commas).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| -> String {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write `<dir>/<id>.txt` and `<dir>/<id>.csv`.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{}.txt", self.id)), self.render())?;
        fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())?;
        Ok(())
    }
}

/// Format seconds as fractional minutes (the paper's delay unit in the
/// deployment figures) with no trailing noise.
pub fn minutes(secs: f64) -> String {
    format!("{:.1}", secs / 60.0)
}

/// Format a probability/rate with three decimals.
pub fn rate(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t1", "demo", &["x", "value"]);
        t.row(vec!["1".into(), "0.5".into()]);
        t.row(vec!["10".into(), "0.75".into()]);
        t.note("a note");
        t
    }

    #[test]
    fn renders_aligned() {
        let r = sample().render();
        assert!(r.contains("## t1 — demo"));
        assert!(r.contains("note: a note"));
        let lines: Vec<&str> = r.lines().collect();
        // Header then separator then two rows then note.
        assert_eq!(lines.len(), 6);
        assert!(lines[3].trim_start().starts_with('1')); // first data row after title/header/separator
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new("t2", "csv", &["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.cell(1, 1), "0.75");
        assert_eq!(t.column("value"), Some(1));
        assert_eq!(t.column("nope"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t3", "bad", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn save_roundtrip() {
        let dir = std::env::temp_dir().join("dtnflow-report-test");
        sample().save(&dir).unwrap();
        let txt = std::fs::read_to_string(dir.join("t1.txt")).unwrap();
        assert!(txt.contains("demo"));
        let csv = std::fs::read_to_string(dir.join("t1.csv")).unwrap();
        assert!(csv.starts_with("x,value"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(minutes(90.0), "1.5");
        assert_eq!(rate(0.5), "0.500");
    }
}
