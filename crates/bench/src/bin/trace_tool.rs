//! Trace tooling for the DTN-FLOW workspace.
//!
//! ```text
//! trace-tool gen <campus|bus|deployment> [--seed N] [--out FILE]
//! trace-tool stats <FILE|campus|bus|deployment>
//! trace-tool validate <FILE>
//! trace-tool predict <FILE|campus|bus|deployment> [--max-k K]
//! ```
//!
//! `gen` writes a trace in the v1 text format; `stats` prints the Table-I
//! style summary plus the busiest landmarks and links; `validate` parses
//! a file and reports problems; `predict` evaluates the order-k and
//! back-off predictors on the trace (the Fig. 6 analysis for your data).

use dtnflow_core::time::DAY;
use dtnflow_mobility::synth::bus::{BusConfig, BusModel};
use dtnflow_mobility::synth::campus::{CampusConfig, CampusModel};
use dtnflow_mobility::synth::deployment::{DeploymentConfig, DeploymentModel};
use dtnflow_mobility::{io, stats, Trace};
use dtnflow_predictor::{accuracy_five_num, evaluate_fallback, evaluate_order_k};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  trace-tool gen <campus|bus|deployment> [--seed N] [--out FILE]\n  \
         trace-tool stats <FILE|campus|bus|deployment>\n  \
         trace-tool validate <FILE>\n  \
         trace-tool predict <FILE|campus|bus|deployment> [--max-k K]"
    );
    exit(2);
}

fn builtin(name: &str, seed: Option<u64>) -> Option<Trace> {
    match name {
        "campus" => Some(
            CampusModel::new(CampusConfig {
                seed: seed.unwrap_or(CampusConfig::default().seed),
                ..CampusConfig::default()
            })
            .generate(),
        ),
        "bus" => Some(
            BusModel::new(BusConfig {
                seed: seed.unwrap_or(BusConfig::default().seed),
                ..BusConfig::default()
            })
            .generate(),
        ),
        "deployment" => Some(
            DeploymentModel::new(DeploymentConfig {
                seed: seed.unwrap_or(DeploymentConfig::default().seed),
                ..DeploymentConfig::default()
            })
            .generate(),
        ),
        _ => None,
    }
}

fn load(source: &str, seed: Option<u64>) -> Trace {
    if let Some(t) = builtin(source, seed) {
        return t;
    }
    let text = std::fs::read_to_string(source).unwrap_or_else(|e| {
        eprintln!("cannot read {source}: {e}");
        exit(1);
    });
    io::from_text(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {source}: {e}");
        exit(1);
    })
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn cmd_gen(args: &[String]) {
    let Some(kind) = args.first() else { usage() };
    let seed = flag(args, "--seed").map(|s| s.parse().expect("--seed must be an integer"));
    let Some(trace) = builtin(kind, seed) else {
        eprintln!("unknown generator `{kind}` (campus|bus|deployment)");
        exit(2);
    };
    let text = io::to_text(&trace);
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, text).expect("write trace file");
            eprintln!(
                "wrote {path}: {} nodes, {} landmarks, {} visits",
                trace.num_nodes(),
                trace.num_landmarks(),
                trace.visits().len()
            );
        }
        None => print!("{text}"),
    }
}

fn cmd_stats(args: &[String]) {
    let Some(source) = args.first() else { usage() };
    let trace = load(source, None);
    let c = stats::characteristics(&trace);
    println!("trace     {}", c.name);
    println!("nodes     {}", c.nodes);
    println!("landmarks {}", c.landmarks);
    println!("duration  {:.1} days", c.duration_days);
    println!("visits    {}", c.visits);
    println!(
        "transits  {} ({:.2} per node per day)",
        c.transits, c.transit_rate
    );

    println!("\nmost visited landmarks:");
    for (lm, visits) in stats::landmark_popularity(&trace).into_iter().take(8) {
        let conc = stats::visit_concentration(&trace, lm, 0.2);
        println!(
            "  {lm}: {visits} visits ({:.0}% from the top-20% of nodes)",
            conc * 100.0
        );
    }

    let unit = DAY;
    let b = stats::link_bandwidths(&trace, unit);
    let links = b.ordered_links();
    println!("\nbusiest transit links (per day):");
    for (from, to, bw) in links.iter().take(8) {
        println!(
            "  {from} -> {to}: {bw:.2} (reverse {:.2})",
            b.get(*to, *from)
        );
    }
    if !links.is_empty() {
        println!(
            "\nmatching-link symmetry correlation: {:.3}",
            b.matching_link_symmetry()
        );
    }
}

fn cmd_validate(args: &[String]) {
    let Some(path) = args.first() else { usage() };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1);
    });
    match io::from_text(&text) {
        Ok(t) => println!(
            "OK: {} nodes, {} landmarks, {} visits, {:.1} days",
            t.num_nodes(),
            t.num_landmarks(),
            t.visits().len(),
            t.duration().as_days()
        ),
        Err(e) => {
            eprintln!("INVALID: {e}");
            exit(1);
        }
    }
}

fn cmd_predict(args: &[String]) {
    let Some(source) = args.first() else { usage() };
    let max_k: usize = flag(args, "--max-k")
        .map(|s| s.parse().expect("--max-k must be an integer"))
        .unwrap_or(3);
    let trace = load(source, None);
    println!("order-k Markov predictor accuracy on `{}`:", trace.name());
    for k in 1..=max_k {
        let r = evaluate_order_k(&trace, k);
        let mean = r.mean_node_accuracy().unwrap_or(0.0);
        println!("  k={k}: mean {mean:.3} ({} attempts)", r.attempts);
    }
    let fb = evaluate_fallback(&trace, max_k);
    println!(
        "  back-off (max k={max_k}): mean {:.3}",
        fb.mean_node_accuracy().unwrap_or(0.0)
    );
    if let Some(f) = accuracy_five_num(&evaluate_order_k(&trace, 1)) {
        println!(
            "  per-node (k=1): min {:.2} | q1 {:.2} | mean {:.2} | q3 {:.2} | max {:.2}",
            f.min, f.q1, f.mean, f.q3, f.max
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        _ => usage(),
    }
}
