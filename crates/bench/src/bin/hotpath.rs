//! Hot-path microbenchmarks pinning the dense-ID storage perf trajectory.
//!
//! ```text
//! hotpath [--quick] [--out FILE]
//! hotpath --check NEW --against BASELINE [--strict]
//!
//! --quick    fewer samples / smaller op batches (CI smoke mode)
//! --out      where to write BENCH_hotpath.json
//!            (default: results/BENCH_hotpath.json)
//! --check    compare a freshly generated BENCH_hotpath.json against a
//!            committed baseline: any bench slower by more than 2x is
//!            reported as a regression. Soft gate by default (exit 0);
//!            --strict exits 1 on regression.
//! ```
//!
//! Each bench isolates one inner loop that the fig11-class sweeps spend
//! their time in (§IV-C table maintenance, §IV-D carrier selection):
//!
//! * `carrier_selection` — best connected carrier toward a destination
//!   landmark, served from the incrementally maintained [`RankIndex`]
//!   the router now keeps (DESIGN.md §14). Before this index the same
//!   bench scanned every node's Markov transit probability per packet
//!   (~1.15 µs/op); the committed baseline pins the improvement.
//! * `rank_index_maintenance` — the price of keeping that index fresh:
//!   one depart + arrive cycle (remove + reinsert a node's score keys).
//! * `route_cache_lookup` — one next-hop decision through the real
//!   `FlowRouter` route cache, with a periodic epoch flush so the miss
//!   path (full `choose_next_in` recompute) stays in the measurement.
//! * `timing_wheel_cycle` — steady-state `TimingWheel` push + drain
//!   tick, the engine's packet-expiry schedule at TTL depth.
//! * `routing_table_recompute` — one `RoutingTable::recompute` pass over
//!   a fully-claimed distance-vector table.
//! * `ewma_fold` — a unit's worth of `BandwidthTable` arrival recording
//!   plus the end-of-unit EWMA fold across the landmark matrix.
//! * `markov_update` — order-1 `MarkovPredictor::observe` on a synthetic
//!   landmark walk.
//! * `dense_map_churn` — insert/lookup/iterate/remove cycle on the
//!   `DenseMap` that backs all of the above.
//! * `dispatch` — one in-unit window partition (`plan_window`,
//!   DESIGN.md §15) over a synthetic claim stream with recurring nodes,
//!   the per-window planning cost of parallel dispatch.
//!
//! Wall-clock readings come from the bench crate's quarantined
//! [`Stopwatch`]; results are medians over repeated samples so a single
//! scheduler hiccup cannot move the pinned numbers by much.

use dtnflow_bench::timing::Stopwatch;
use dtnflow_core::dense::DenseMap;
use dtnflow_core::ids::LandmarkId;
use dtnflow_core::{RankIndex, TimingWheel};
use dtnflow_obs::json::{parse, Value};
use dtnflow_predictor::MarkovPredictor;
use dtnflow_router::{BandwidthMatrix, FlowConfig, FlowRouter, RoutingTable};
use dtnflow_sim::{plan_window, Claim};
use std::hint::black_box;
use std::path::PathBuf;

/// JSON schema tag for `BENCH_hotpath.json`.
const SCHEMA: &str = "dtnflow-hotpath-bench-v1";
/// Landmark-set size for every synthetic workload (campus-scenario scale).
const NUM_LANDMARKS: usize = 40;
/// Node count for the carrier-selection scan.
const NUM_NODES: usize = 200;
/// A bench is a regression when it is more than this factor slower.
const REGRESSION_FACTOR: f64 = 2.0;

struct BenchResult {
    id: &'static str,
    ns_per_op: f64,
    ops_per_sec: f64,
    ops: u64,
    samples: usize,
}

/// Deterministic 64-bit LCG; the benches must not depend on ambient
/// randomness (detlint D-rules) and do not need statistical quality.
struct Lcg(u64);

impl Lcg {
    fn next_lm(&mut self, n: usize) -> LandmarkId {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        LandmarkId(((self.0 >> 33) % n as u64) as u16)
    }
}

/// Run `op` in `ops`-sized batches `samples` times; report the median.
fn run_bench(
    id: &'static str,
    samples: usize,
    ops: u64,
    mut op: impl FnMut(u64) -> u64,
) -> BenchResult {
    let mut per_op_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let sw = Stopwatch::start();
        let mut sink = 0u64;
        for i in 0..ops {
            sink = sink.wrapping_add(op(i));
        }
        black_box(sink);
        per_op_ns.push(sw.elapsed_secs() * 1e9 / ops as f64);
    }
    per_op_ns.sort_by(f64::total_cmp);
    let ns_per_op = per_op_ns[per_op_ns.len() / 2];
    BenchResult {
        id,
        ns_per_op,
        ops_per_sec: 1e9 / ns_per_op,
        ops,
        samples,
    }
}

/// Synthetic predictor population for the carrier-selection benches:
/// `NUM_NODES` order-1 Markov predictors trained on deterministic walks.
fn trained_predictors() -> Vec<MarkovPredictor> {
    let mut rng = Lcg(0x5EED_CA44);
    let mut nodes: Vec<MarkovPredictor> = (0..NUM_NODES)
        .map(|_| MarkovPredictor::with_landmarks(1, NUM_LANDMARKS))
        .collect();
    for p in nodes.iter_mut() {
        for _ in 0..64 {
            p.observe(rng.next_lm(NUM_LANDMARKS));
        }
    }
    nodes
}

/// File every node's positive-probability score keys into `rank`
/// (group 0), the way `FlowRouter::rank_update` does on arrival.
fn file_all(rank: &mut RankIndex, nodes: &[MarkovPredictor], dist: &mut Vec<(LandmarkId, f64)>) {
    for (n, pred) in nodes.iter().enumerate() {
        pred.distribution_into(dist);
        for &(target, p) in dist.iter() {
            if p > 0.0 {
                rank.insert(0, target.0, p, n as u32);
            }
        }
    }
}

/// §IV-D: pick the best connected carrier for a destination landmark.
/// Pre-index era this was an argmax scan over every node's predicted
/// transit probability (~1.15 µs/op at 200 nodes); now it is the head
/// of the maintained rank list — the committed baseline pins the gap.
fn bench_carrier_selection(samples: usize, ops: u64) -> BenchResult {
    let nodes = trained_predictors();
    let mut rank = RankIndex::new(1);
    let mut dist = Vec::new();
    file_all(&mut rank, &nodes, &mut dist);
    run_bench("carrier_selection", samples, ops, move |i| {
        let dst = LandmarkId((i % NUM_LANDMARKS as u64) as u16);
        rank.ranked(0, dst.0)
            .first()
            .map_or(0, |e| u64::from(e.member))
    })
}

/// The cost of keeping the rank index fresh: one depart + arrive cycle
/// (remove then reinsert a node's score keys), the router's incremental
/// maintenance work per contact event.
fn bench_rank_index_maintenance(samples: usize, ops: u64) -> BenchResult {
    let nodes = trained_predictors();
    let mut rank = RankIndex::new(1);
    let mut dist = Vec::new();
    file_all(&mut rank, &nodes, &mut dist);
    run_bench("rank_index_maintenance", samples, ops, move |i| {
        let n = (i % NUM_NODES as u64) as u32;
        nodes[n as usize].distribution_into(&mut dist);
        for &(target, p) in dist.iter() {
            if p > 0.0 {
                rank.remove(0, target.0, p, n);
            }
        }
        for &(target, p) in dist.iter() {
            if p > 0.0 {
                rank.insert(0, target.0, p, n);
            }
        }
        rank.len() as u64
    })
}

/// One next-hop decision through the real `FlowRouter` route cache over
/// a fully-claimed table. Every 256th op flushes the cache (a station
/// up/down epoch bump) so the measurement keeps the miss path — a full
/// `choose_next_in` recompute — in the mix.
fn bench_route_cache_lookup(samples: usize, ops: u64) -> BenchResult {
    let mut router = FlowRouter::new(FlowConfig::default(), NUM_NODES, NUM_LANDMARKS);
    let mut table = RoutingTable::new(LandmarkId(0), NUM_LANDMARKS);
    for from in 1..NUM_LANDMARKS as u16 {
        for dest in 1..NUM_LANDMARKS as u16 {
            if from != dest {
                let delay = f64::from(from) * 17.0 + f64::from(dest) * 3.0 + 60.0;
                table.set_claim(LandmarkId(from), LandmarkId(dest), delay, u64::from(from));
            }
        }
    }
    table.recompute(&|lm| 30.0 + f64::from(lm.0) * 5.0);
    router.bench_install_table(LandmarkId(0), table);
    run_bench("route_cache_lookup", samples, ops, move |i| {
        if i % 256 == 0 {
            router.bench_flush_route_cache();
        }
        let dst = LandmarkId((i % (NUM_LANDMARKS as u64 - 1) + 1) as u16);
        router
            .bench_route_lookup(LandmarkId(0), dst)
            .map_or(0, |l| u64::from(l.0))
    })
}

/// Steady-state timing-wheel tick: one push at TTL depth plus a drain
/// of everything due, the engine's per-unit packet-expiry schedule.
fn bench_timing_wheel_cycle(samples: usize, ops: u64) -> BenchResult {
    // Spans three wheel levels (256-slot levels), like multi-day TTLs
    // over 1 s units.
    const TTL: u64 = 4_096;
    let mut wheel = TimingWheel::new();
    for t in 0..TTL {
        wheel.push(t + TTL, t, t);
    }
    let mut fired = Vec::new();
    let mut tick = 0u64;
    run_bench("timing_wheel_cycle", samples, ops, move |_| {
        tick += 1;
        let now = TTL + tick;
        wheel.push(now + TTL, TTL + tick, tick);
        fired.clear();
        wheel.drain_up_to(now, &mut fired);
        fired.len() as u64
    })
}

/// §IV-C: one distance-vector relaxation pass over a table whose every
/// destination has a claim from every neighbor.
fn bench_routing_table_recompute(samples: usize, ops: u64) -> BenchResult {
    let mut table = RoutingTable::new(LandmarkId(0), NUM_LANDMARKS);
    for from in 1..NUM_LANDMARKS as u16 {
        for dest in 1..NUM_LANDMARKS as u16 {
            if from != dest {
                let delay = f64::from(from) * 17.0 + f64::from(dest) * 3.0 + 60.0;
                table.set_claim(LandmarkId(from), LandmarkId(dest), delay, u64::from(from));
            }
        }
    }
    let link_delay = |lm: LandmarkId| 30.0 + f64::from(lm.0) * 5.0;
    run_bench("routing_table_recompute", samples, ops, move |_| {
        table.recompute(&link_delay);
        table.revision()
    })
}

/// §IV-C bandwidth estimation: a unit's arrivals plus the end-of-unit
/// EWMA fold over the full landmark-pair matrix.
fn bench_ewma_fold(samples: usize, ops: u64) -> BenchResult {
    let mut table = BandwidthMatrix::new(NUM_LANDMARKS, 0.3);
    let mut rng = Lcg(0xE3A4_F01D);
    run_bench("ewma_fold", samples, ops, move |_| {
        for _ in 0..NUM_LANDMARKS {
            let me = rng.next_lm(NUM_LANDMARKS);
            let from = rng.next_lm(NUM_LANDMARKS);
            table.record_arrival_from(me, from);
        }
        table.end_of_unit_all();
        table.incoming(LandmarkId(0), LandmarkId(1)).to_bits()
    })
}

/// §IV-B: one order-1 Markov transition-table update per observed visit.
fn bench_markov_update(samples: usize, ops: u64) -> BenchResult {
    let mut pred = MarkovPredictor::with_landmarks(1, NUM_LANDMARKS);
    let mut rng = Lcg(0x0B5E_77ED);
    run_bench("markov_update", samples, ops, move |_| {
        pred.observe(rng.next_lm(NUM_LANDMARKS));
        pred.observations() as u64
    })
}

/// The storage primitive itself: insert, point-lookup, ordered iteration,
/// and removal on a `DenseMap` of landmark-id keys.
fn bench_dense_map_churn(samples: usize, ops: u64) -> BenchResult {
    let mut map: DenseMap<u16, u64> = DenseMap::new();
    let mut rng = Lcg(0xD15E_0001);
    run_bench("dense_map_churn", samples, ops, move |i| {
        let k = rng.next_lm(NUM_LANDMARKS).0;
        map.insert(k, i);
        let mut acc = map.get(k).copied().unwrap_or(0);
        if i % 8 == 0 {
            acc = acc.wrapping_add(map.iter().map(|(_, v)| *v).sum());
        }
        if i % 4 == 0 {
            map.remove(k);
        }
        acc
    })
}

/// The §15 window partition: classify a 256-claim stream (4 shards,
/// nodes recurring every 64 claims, ~1/32 claims node-less) into batches.
/// This is the planning overhead the engine pays once per dispatch
/// window before any staging work starts.
fn bench_dispatch(samples: usize, ops: u64) -> BenchResult {
    const WINDOW: usize = 256;
    let mut rng = Lcg(0xD15F_A7C4);
    let claims: Vec<Claim> = (0..WINDOW)
        .map(|_| {
            let lm = rng.next_lm(NUM_LANDMARKS);
            Claim {
                shard: lm.index() % 4,
                node: (!lm.0.is_multiple_of(32)).then_some(u64::from(lm.0) % 64),
            }
        })
        .collect();
    run_bench("dispatch", samples, ops, move |i| {
        let len = WINDOW - (i as usize % 7);
        let plan = plan_window(&claims[..len]);
        (plan.len + plan.batches.len()) as u64
    })
}

fn results_json(mode: &str, results: &[BenchResult]) -> String {
    Value::object([
        ("schema".to_owned(), Value::str(SCHEMA)),
        ("mode".to_owned(), Value::str(mode)),
        (
            "benches".to_owned(),
            Value::Array(
                results
                    .iter()
                    .map(|r| {
                        Value::object([
                            ("id".to_owned(), Value::str(r.id)),
                            ("ns_per_op".to_owned(), Value::Number(r.ns_per_op)),
                            ("ops_per_sec".to_owned(), Value::Number(r.ops_per_sec)),
                            ("ops".to_owned(), Value::int(r.ops)),
                            ("samples".to_owned(), Value::int(r.samples as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render_pretty()
}

/// Extract `(id, ns_per_op)` pairs from a `BENCH_hotpath.json` document.
fn load_benches(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let benches = doc
        .get("benches")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{path}: no `benches` array"))?;
    benches
        .iter()
        .map(|b| {
            let id = b
                .get("id")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{path}: bench without `id`"))?;
            let ns = b
                .get("ns_per_op")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("{path}: bench `{id}` without `ns_per_op`"))?;
            Ok((id.to_owned(), ns))
        })
        .collect()
}

/// Compare a fresh run against the committed baseline. Returns the number
/// of >2x regressions. A baseline bench that is *absent* from the
/// candidate is a hard error, not a pass: a renamed or dropped bench
/// would otherwise silently unpin its perf trajectory.
fn check(new_path: &str, base_path: &str) -> Result<usize, String> {
    if !std::path::Path::new(base_path).exists() {
        return Err(format!(
            "baseline `{base_path}` does not exist — the regression gate has \
             nothing to compare against. Commit one with \
             `cargo run --release -p dtnflow-bench --bin hotpath -- --out {base_path}`."
        ));
    }
    let new = load_benches(new_path)?;
    let base = load_benches(base_path)?;
    let missing: Vec<&str> = base
        .iter()
        .filter(|(bid, _)| !new.iter().any(|(id, _)| id == bid))
        .map(|(bid, _)| bid.as_str())
        .collect();
    if !missing.is_empty() {
        return Err(format!(
            "baseline bench(es) missing from candidate `{new_path}`: {} — a \
             renamed or dropped bench must re-pin the baseline `{base_path}`.",
            missing.join(", ")
        ));
    }
    let mut regressions = 0;
    for (id, ns) in &new {
        let Some((_, base_ns)) = base.iter().find(|(bid, _)| bid == id) else {
            println!("NEW        {id}: {ns:.1} ns/op (no baseline entry)");
            continue;
        };
        let ratio = ns / base_ns;
        if ratio > REGRESSION_FACTOR {
            regressions += 1;
            println!("REGRESSION {id}: {base_ns:.1} -> {ns:.1} ns/op ({ratio:.2}x slower)");
        } else {
            println!("OK         {id}: {base_ns:.1} -> {ns:.1} ns/op ({ratio:.2}x)");
        }
    }
    Ok(regressions)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut strict = false;
    let mut out = PathBuf::from("results/BENCH_hotpath.json");
    let mut check_new: Option<String> = None;
    let mut check_base: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--strict" => strict = true,
            "--out" => out = PathBuf::from(it.next().expect("--out requires a file argument")),
            "--check" => {
                check_new = Some(it.next().expect("--check requires a file argument").clone());
            }
            "--against" => {
                check_base = Some(
                    it.next()
                        .expect("--against requires a file argument")
                        .clone(),
                );
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: hotpath [--quick] [--out FILE]");
                eprintln!("       hotpath --check NEW --against BASELINE [--strict]");
                std::process::exit(2);
            }
        }
    }

    if let Some(new_path) = check_new {
        let base_path = check_base.unwrap_or_else(|| {
            eprintln!("--check requires --against BASELINE");
            std::process::exit(2);
        });
        match check(&new_path, &base_path) {
            Ok(0) => println!("hotpath check: no regressions > {REGRESSION_FACTOR}x"),
            Ok(n) => {
                println!("hotpath check: {n} regression(s) > {REGRESSION_FACTOR}x");
                if strict {
                    std::process::exit(1);
                }
                println!("(soft gate: not failing; pass --strict to enforce)");
            }
            Err(e) => {
                eprintln!("hotpath check: {e}");
                std::process::exit(2);
            }
        }
        return;
    }

    let (samples, ops) = if quick { (3, 2_000) } else { (7, 20_000) };
    let mode = if quick { "quick" } else { "full" };
    let results = [
        bench_carrier_selection(samples, ops),
        bench_rank_index_maintenance(samples, ops),
        bench_route_cache_lookup(samples, ops),
        bench_timing_wheel_cycle(samples, ops),
        bench_routing_table_recompute(samples, ops / 10),
        bench_ewma_fold(samples, ops / 10),
        bench_markov_update(samples, ops),
        bench_dense_map_churn(samples, ops),
        bench_dispatch(samples, ops / 10),
    ];
    for r in &results {
        println!(
            "{:<24} {:>12.1} ns/op {:>14.0} ops/s ({} ops x {} samples)",
            r.id, r.ns_per_op, r.ops_per_sec, r.ops, r.samples
        );
    }
    let json = results_json(mode, &results);
    if let Some(dir) = out.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
        }
    }
    match std::fs::write(&out, json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}
