//! Sharded-engine scaling benchmark: cores-vs-wall curve for the fig11
//! campus cell under the DESIGN.md §13 shard runtime.
//!
//! ```text
//! shard [--quick] [--dispatch M] [--out FILE] [--hist FILE]
//!
//! --quick     one memory point instead of three (CI smoke mode)
//! --dispatch  in-unit dispatch mode: `on` (default; shard-local batches,
//!             DESIGN.md §15) or `off` (unit-boundary parallelism only)
//! --out       where to write BENCH_shard.json
//!             (default: results/BENCH_shard.json)
//! --hist      where to write the batch-size histogram artifact
//!             (default: results/batch_histogram.json)
//! ```
//!
//! For each shard count in {1, 2, 4, 8} the bench runs the fig11 campus
//! memory cell(s) with DTN-FLOW (the only router whose unit-boundary
//! work fans out per landmark), records wall-clock time, and
//! byte-compares every output — the metrics CSV row and the canonical
//! observability snapshot JSON — against the sequential (shards = 1)
//! run. `identical` must be true for every row no matter the host; the
//! speedup column is only meaningful when `host_cores` exceeds the
//! shard count, and each curve entry records the host's core count and
//! its parallel region ("boundary" vs "boundary+dispatch") so a 1-core
//! CI runner's flat curve cannot be mistaken for a scaling regression.

use dtnflow_bench::runners::{run_method_observed_sharded_dispatch, Method};
use dtnflow_bench::scenarios::Scenario;
use dtnflow_bench::timing::Stopwatch;
use dtnflow_obs::json::Value;
use dtnflow_sim::{DispatchMode, DispatchStats, FaultPlan, ShardExec};
use std::path::PathBuf;

/// JSON schema tag for `BENCH_shard.json`.
const SCHEMA: &str = "dtnflow-shard-bench-v2";
/// JSON schema tag for the batch-size histogram artifact.
const HIST_SCHEMA: &str = "dtnflow-batch-histogram-v1";
/// The cores-vs-wall curve's x axis.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct ShardResult {
    shards: usize,
    wall_secs: f64,
    speedup_vs_1: f64,
    identical: bool,
    stats: DispatchStats,
}

/// Run every memory point at `shards` shards; returns total wall time,
/// the concatenated comparable artifacts (metrics row + snapshot JSON
/// per point), and the merged in-unit dispatch telemetry.
fn run_curve_point(
    scenario: &Scenario,
    memory_kbs: &[u64],
    shards: usize,
    mode: DispatchMode,
) -> (f64, String, DispatchStats) {
    let sw = Stopwatch::start();
    let mut artifacts = String::new();
    let mut stats = DispatchStats::default();
    for &kb in memory_kbs {
        let cfg = scenario
            .base_cfg
            .clone()
            .with_memory_kb(kb)
            .with_seed(0xF11);
        let wl = scenario.workload(&cfg);
        let (outcome, snapshot, run_stats) = run_method_observed_sharded_dispatch(
            &scenario.trace,
            &cfg,
            &wl,
            &FaultPlan::none(),
            Method::Flow,
            shards,
            mode,
        );
        stats.merge(&run_stats);
        let s = outcome.summary;
        artifacts.push_str(&format!(
            "{kb},{:.3},{:.0},{},{:.0}\n{}\n",
            s.success_rate,
            s.average_delay_secs / 60.0,
            s.forwarding_ops,
            s.total_cost,
            snapshot.to_json()
        ));
    }
    (sw.elapsed_secs(), artifacts, stats)
}

fn results_json(
    mode: &str,
    region: &str,
    host_cores: usize,
    memory_kbs: &[u64],
    results: &[ShardResult],
) -> String {
    Value::object([
        ("schema".to_owned(), Value::str(SCHEMA)),
        ("mode".to_owned(), Value::str(mode)),
        ("host_cores".to_owned(), Value::int(host_cores as u64)),
        ("parallel_region".to_owned(), Value::str(region)),
        ("scenario".to_owned(), Value::str("fig11-campus")),
        ("method".to_owned(), Value::str(Method::Flow.name())),
        (
            "memory_kbs".to_owned(),
            Value::Array(memory_kbs.iter().map(|&kb| Value::int(kb)).collect()),
        ),
        (
            "curve".to_owned(),
            Value::Array(
                results
                    .iter()
                    .map(|r| {
                        Value::object([
                            ("shards".to_owned(), Value::int(r.shards as u64)),
                            ("host_cores".to_owned(), Value::int(host_cores as u64)),
                            ("parallel_region".to_owned(), Value::str(region)),
                            ("wall_secs".to_owned(), Value::Number(r.wall_secs)),
                            ("speedup_vs_1".to_owned(), Value::Number(r.speedup_vs_1)),
                            ("identical".to_owned(), Value::Bool(r.identical)),
                            (
                                "staged_events".to_owned(),
                                Value::int(r.stats.staged_events),
                            ),
                            ("windows".to_owned(), Value::int(r.stats.windows)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render_pretty()
}

/// The per-shard-count batch-size histogram artifact uploaded by CI: how
/// many staged batches fell in each power-of-two size bucket, plus the
/// window/handoff counters that explain the shape.
fn histogram_json(region: &str, host_cores: usize, results: &[ShardResult]) -> String {
    Value::object([
        ("schema".to_owned(), Value::str(HIST_SCHEMA)),
        ("parallel_region".to_owned(), Value::str(region)),
        ("host_cores".to_owned(), Value::int(host_cores as u64)),
        (
            "buckets".to_owned(),
            Value::Array(
                (0..DispatchStats::default().batch_hist.len())
                    .map(|i| Value::String(DispatchStats::bucket_label(i)))
                    .collect(),
            ),
        ),
        (
            "curve".to_owned(),
            Value::Array(
                results
                    .iter()
                    .map(|r| {
                        Value::object([
                            ("shards".to_owned(), Value::int(r.shards as u64)),
                            ("windows".to_owned(), Value::int(r.stats.windows)),
                            ("batches".to_owned(), Value::int(r.stats.batches)),
                            (
                                "staged_events".to_owned(),
                                Value::int(r.stats.staged_events),
                            ),
                            (
                                "sequential_events".to_owned(),
                                Value::int(r.stats.sequential_events),
                            ),
                            ("handoff_cuts".to_owned(), Value::int(r.stats.handoff_cuts)),
                            (
                                "batch_hist".to_owned(),
                                Value::Array(
                                    r.stats.batch_hist.iter().map(|&n| Value::int(n)).collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render_pretty()
}

fn write_json(path: &PathBuf, json: String) {
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
        }
    }
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut dispatch = DispatchMode::default();
    let mut out = PathBuf::from("results/BENCH_shard.json");
    let mut hist_out = PathBuf::from("results/batch_histogram.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--dispatch" => {
                let word = it.next().expect("--dispatch requires a mode argument");
                dispatch = DispatchMode::parse(word)
                    .unwrap_or_else(|| panic!("unknown dispatch mode `{word}` (try on/off)"));
            }
            "--out" => out = PathBuf::from(it.next().expect("--out requires a file argument")),
            "--hist" => {
                hist_out = PathBuf::from(it.next().expect("--hist requires a file argument"));
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: shard [--quick] [--dispatch on|off] [--out FILE] [--hist FILE]");
                std::process::exit(2);
            }
        }
    }

    let memory_kbs: &[u64] = if quick {
        &[2_000]
    } else {
        &[1_200, 2_000, 3_000]
    };
    let mode = if quick { "quick" } else { "full" };
    let region = dispatch.region_label();
    let host_cores = ShardExec::host().threads();
    let scenario = Scenario::campus();
    println!("host cores: {host_cores}; scenario: fig11-campus ({mode}, region {region})");

    let mut results: Vec<ShardResult> = Vec::new();
    let mut baseline: Option<(f64, String)> = None;
    let mut all_identical = true;
    for shards in SHARD_COUNTS {
        let (wall_secs, artifacts, stats) =
            run_curve_point(&scenario, memory_kbs, shards, dispatch);
        let (base_wall, identical) = match &baseline {
            None => {
                baseline = Some((wall_secs, artifacts));
                (wall_secs, true)
            }
            Some((w, base_art)) => (*w, artifacts == *base_art),
        };
        all_identical &= identical;
        let speedup = base_wall / wall_secs.max(1e-9);
        println!(
            "shards={shards:<2} wall={wall_secs:>7.2}s speedup={speedup:>5.2}x identical={identical} windows={} staged={}",
            stats.windows, stats.staged_events
        );
        results.push(ShardResult {
            shards,
            wall_secs,
            speedup_vs_1: speedup,
            identical,
            stats,
        });
    }

    write_json(
        &out,
        results_json(mode, region, host_cores, memory_kbs, &results),
    );
    write_json(&hist_out, histogram_json(region, host_cores, &results));
    if !all_identical {
        eprintln!("FAIL: sharded outputs differ from the sequential run");
        std::process::exit(1);
    }
}
