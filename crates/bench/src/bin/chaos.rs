//! Chaos-recovery sweep: kill/restore the fig11 campus cell at seeded
//! unit boundaries and demand byte-identical outcomes (DESIGN.md §11).
//!
//! ```text
//! chaos [--quick] [--seed N] [--out FILE]
//!
//! --quick    one memory point instead of three (CI smoke mode)
//! --seed     kill-schedule seed (default 0xC4A05)
//! --out      where to write BENCH_chaos.json
//!            (default: results/BENCH_chaos.json)
//! ```
//!
//! Exit status 1 when any case diverges from the uninterrupted run or
//! breaks packet conservation; 2 on usage or I/O errors.

use dtnflow_bench::chaos::{results_json, sweep};
use dtnflow_bench::runners::Method;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed: u64 = 0xC4A05;
    let mut out = PathBuf::from("results/BENCH_chaos.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                let v = it.next().expect("--seed requires a number argument");
                seed = v.parse().expect("--seed requires a u64 argument");
            }
            "--out" => out = PathBuf::from(it.next().expect("--out requires a file argument")),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: chaos [--quick] [--seed N] [--out FILE]");
                std::process::exit(2);
            }
        }
    }

    let mode = if quick { "quick" } else { "full" };
    let results = match sweep(quick, seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos sweep failed: {e}");
            std::process::exit(2);
        }
    };
    let mut failures = 0usize;
    for r in &results {
        let verdict = if r.matched && r.conservation {
            "OK        "
        } else {
            failures += 1;
            "DIVERGED  "
        };
        println!(
            "{verdict} {:<28} kills {:?} snapshots {:?} B ({:.1}s)",
            r.id, r.kills, r.snapshot_bytes, r.wall_secs
        );
    }
    let json = results_json(mode, Method::Flow, &results);
    if let Some(dir) = out.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
        }
    }
    match std::fs::write(&out, json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            std::process::exit(2);
        }
    }
    if failures > 0 {
        println!("chaos: {failures} case(s) diverged");
        std::process::exit(1);
    }
    println!("chaos: all {} case(s) byte-identical", results.len());
}
