//! Regenerate the DTN-FLOW paper's tables and figures.
//!
//! ```text
//! experiments [IDS...] [--quick] [--obs] [--shards N] [--dispatch M]
//!             [--out DIR] [--list]
//!
//! IDS      experiment ids (table1 fig2 ... deploy ablation sched) or `all`
//! --quick  shrink parameter sweeps (smoke mode)
//! --obs    attach a flight recorder to the simulation-heavy sweeps and
//!          dump per-cell observability reports (<id>_obs.json/.csv) plus
//!          a BENCH_obs.json timing baseline
//! --shards run the comparison sweeps under an N-shard runtime
//!          (DESIGN.md §13); every output is byte-identical to N=1
//! --dispatch  in-unit dispatch mode: `on` (default; shard-local batches,
//!          DESIGN.md §15) or `off` (unit-boundary parallelism only).
//!          Outputs are byte-identical either way.
//! --out    output directory for .txt/.csv results (default: results)
//! --list   print the known ids and exit
//! ```

use dtnflow_bench::experiments::{
    run_experiment_sharded_dispatch, run_experiment_with_obs_sharded_dispatch, ObsCell, ALL_IDS,
};
use dtnflow_bench::timing::Stopwatch;
use dtnflow_obs::{bench_json, report_json, BenchEntry, Snapshot};
use dtnflow_sim::DispatchMode;
use std::path::{Path, PathBuf};

/// The per-landmark counter tables of every cell, concatenated as CSV.
fn obs_csv(cells: &[ObsCell]) -> String {
    cells
        .iter()
        .map(|c| format!("# {}\n{}", c.label, c.snapshot.to_csv()))
        .collect::<Vec<_>>()
        .join("\n")
}

fn write_obs_files(out_dir: &Path, id: &str, cells: &[ObsCell]) {
    let pairs: Vec<(String, Snapshot)> = cells
        .iter()
        .map(|c| (c.label.clone(), c.snapshot.clone()))
        .collect();
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("warning: could not create {}: {e}", out_dir.display());
        return;
    }
    let json_path = out_dir.join(format!("{id}_obs.json"));
    if let Err(e) = std::fs::write(&json_path, report_json(id, &pairs)) {
        eprintln!("warning: could not save {}: {e}", json_path.display());
    }
    let csv_path = out_dir.join(format!("{id}_obs.csv"));
    if let Err(e) = std::fs::write(&csv_path, obs_csv(cells)) {
        eprintln!("warning: could not save {}: {e}", csv_path.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut quick = false;
    let mut obs = false;
    let mut shards = 1usize;
    let mut mode = DispatchMode::default();
    let mut out_dir = PathBuf::from("results");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--obs" => obs = true,
            "--shards" => {
                shards = it
                    .next()
                    .expect("--shards requires a count argument")
                    .parse()
                    .expect("--shards requires a positive integer");
                assert!(shards >= 1, "--shards requires a positive integer");
            }
            "--dispatch" => {
                let word = it.next().expect("--dispatch requires a mode argument");
                mode = DispatchMode::parse(word)
                    .unwrap_or_else(|| panic!("unknown dispatch mode `{word}` (try on/off)"));
            }
            "--out" => {
                out_dir = PathBuf::from(it.next().expect("--out requires a directory argument"));
            }
            "--list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: experiments [IDS...|all] [--quick] [--obs] [--out DIR] [--list]");
        eprintln!("known ids: {}", ALL_IDS.join(" "));
        std::process::exit(2);
    }
    for id in &ids {
        if !ALL_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment id `{id}`; known: {}", ALL_IDS.join(" "));
            std::process::exit(2);
        }
    }

    let mut bench_entries: Vec<BenchEntry> = Vec::new();
    for id in &ids {
        let started = Stopwatch::start();
        println!("=== {id} ===");
        let (tables, cells) = if obs {
            run_experiment_with_obs_sharded_dispatch(id, quick, shards, mode)
        } else {
            (
                run_experiment_sharded_dispatch(id, quick, shards, mode),
                Vec::new(),
            )
        };
        for table in &tables {
            println!("{}", table.render());
            if let Err(e) = table.save(&out_dir) {
                eprintln!("warning: could not save {}: {e}", table.id);
            }
        }
        if !cells.is_empty() {
            write_obs_files(&out_dir, id, &cells);
        }
        if obs {
            bench_entries.push(BenchEntry {
                id: id.clone(),
                wall_secs: started.elapsed_secs(),
                events_recorded: cells.iter().map(|c| c.snapshot.events_recorded).sum(),
                events_dropped: cells.iter().map(|c| c.snapshot.events_dropped).sum(),
            });
        }
        println!(
            "({id} finished in {:.1}s; results under {})\n",
            started.elapsed_secs(),
            out_dir.display()
        );
    }
    if obs && !bench_entries.is_empty() {
        let path = out_dir.join("BENCH_obs.json");
        if let Err(e) = std::fs::write(&path, bench_json(&bench_entries)) {
            eprintln!("warning: could not save {}: {e}", path.display());
        }
    }
}
