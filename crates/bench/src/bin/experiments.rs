//! Regenerate the DTN-FLOW paper's tables and figures.
//!
//! ```text
//! experiments [IDS...] [--quick] [--out DIR] [--list]
//!
//! IDS     experiment ids (table1 fig2 ... deploy ablation sched) or `all`
//! --quick shrink parameter sweeps (smoke mode)
//! --out   output directory for .txt/.csv results (default: results)
//! --list  print the known ids and exit
//! ```

use dtnflow_bench::experiments::{run_experiment, ALL_IDS};
use dtnflow_bench::timing::Stopwatch;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut quick = false;
    let mut out_dir = PathBuf::from("results");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_dir = PathBuf::from(it.next().expect("--out requires a directory argument"));
            }
            "--list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            other if other.starts_with("--") => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        eprintln!("usage: experiments [IDS...|all] [--quick] [--out DIR] [--list]");
        eprintln!("known ids: {}", ALL_IDS.join(" "));
        std::process::exit(2);
    }
    for id in &ids {
        if !ALL_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment id `{id}`; known: {}", ALL_IDS.join(" "));
            std::process::exit(2);
        }
    }

    for id in &ids {
        let started = Stopwatch::start();
        println!("=== {id} ===");
        let tables = run_experiment(id, quick);
        for table in &tables {
            println!("{}", table.render());
            if let Err(e) = table.save(&out_dir) {
                eprintln!("warning: could not save {}: {e}", table.id);
            }
        }
        println!(
            "({id} finished in {:.1}s; results under {})\n",
            started.elapsed_secs(),
            out_dir.display()
        );
    }
}
