//! Method construction, single-run execution, and the parallel sweep
//! helper used by every experiment.

use dtnflow_baselines::{GeoComm, Per, Pgr, Prophet, SimBet, UtilityRouter};
use dtnflow_core::config::SimConfig;
use dtnflow_core::metrics::MetricsSummary;
use dtnflow_core::time::SimDuration;
use dtnflow_mobility::Trace;
use dtnflow_obs::{Recorder, Snapshot, DEFAULT_RING_CAPACITY};
use dtnflow_router::{FlowConfig, FlowRouter};
use dtnflow_sim::{
    run_traced_sharded_dispatch, run_with_faults_sharded_dispatch, run_with_workload, DispatchMode,
    FaultPlan, Router, Workload,
};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The six methods of the paper's comparison (§V-A.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Flow,
    SimBet,
    Prophet,
    Pgr,
    GeoComm,
    Per,
}

impl Method {
    /// All six, in the paper's figure-legend order.
    pub const ALL: [Method; 6] = [
        Method::Flow,
        Method::SimBet,
        Method::Prophet,
        Method::Pgr,
        Method::GeoComm,
        Method::Per,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Method::Flow => "DTN-FLOW",
            Method::SimBet => "SimBet",
            Method::Prophet => "PROPHET",
            Method::Pgr => "PGR",
            Method::GeoComm => "GeoComm",
            Method::Per => "PER",
        }
    }

    /// Build a fresh router instance for a network of the given size.
    pub fn build(self, num_nodes: usize, num_landmarks: usize) -> Box<dyn Router> {
        match self {
            Method::Flow => Box::new(FlowRouter::new(
                FlowConfig::default(),
                num_nodes,
                num_landmarks,
            )),
            Method::SimBet => Box::new(UtilityRouter::new(SimBet::new(num_nodes, num_landmarks))),
            Method::Prophet => Box::new(UtilityRouter::new(Prophet::new(num_nodes, num_landmarks))),
            Method::Pgr => Box::new(UtilityRouter::new(Pgr::new(num_nodes, num_landmarks))),
            Method::GeoComm => Box::new(UtilityRouter::new(GeoComm::new(num_nodes, num_landmarks))),
            Method::Per => Box::new(UtilityRouter::new(Per::new(num_nodes, num_landmarks))),
        }
    }
}

/// The outcome of one (method, config) run.
#[derive(Debug, Clone, Copy)]
pub struct MethodOutcome {
    pub method: Method,
    pub summary: MetricsSummary,
    /// Overall average delay counting undelivered packets at the
    /// experiment duration (the paper's "O. Delay", Table VII).
    pub overall_delay_secs: f64,
}

/// Run one method over a scenario trace + workload.
pub fn run_method(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    method: Method,
) -> MethodOutcome {
    let mut router = method.build(trace.num_nodes(), trace.num_landmarks());
    let out = run_with_workload(trace, cfg, workload, router.as_mut());
    MethodOutcome {
        method,
        summary: out.metrics.summary(),
        overall_delay_secs: out
            .metrics
            .overall_average_delay_secs(SimDuration::from_secs(trace.duration().secs())),
    }
}

/// Run one method over a scenario trace + workload under a fault plan.
/// With `FaultPlan::none()` this is byte-identical to [`run_method`].
pub fn run_method_with_faults(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    method: Method,
) -> MethodOutcome {
    run_method_with_faults_sharded(trace, cfg, workload, plan, method, 1)
}

/// [`run_method_with_faults`] under a shard runtime (DESIGN.md §13).
/// The outcome is byte-identical for every `shards` value; only
/// wall-clock time may differ.
pub fn run_method_with_faults_sharded(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    method: Method,
    shards: usize,
) -> MethodOutcome {
    run_method_with_faults_sharded_dispatch(
        trace,
        cfg,
        workload,
        plan,
        method,
        shards,
        DispatchMode::default(),
    )
}

/// [`run_method_with_faults_sharded`] with an explicit [`DispatchMode`]
/// (DESIGN.md §15). Outcome-neutral: the differential battery runs both
/// modes.
pub fn run_method_with_faults_sharded_dispatch(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    method: Method,
    shards: usize,
    mode: DispatchMode,
) -> MethodOutcome {
    let mut router = method.build(trace.num_nodes(), trace.num_landmarks());
    let out =
        run_with_faults_sharded_dispatch(trace, cfg, workload, plan, router.as_mut(), shards, mode);
    MethodOutcome {
        method,
        summary: out.metrics.summary(),
        overall_delay_secs: out
            .metrics
            .overall_average_delay_secs(SimDuration::from_secs(trace.duration().secs())),
    }
}

/// Run one method with a flight recorder attached and export its
/// observability snapshot. Tracing must never perturb the simulation:
/// the returned `MethodOutcome` is identical to what
/// [`run_method_with_faults`] produces for the same inputs (enforced by
/// the `csv_determinism` and `obs_props` suites).
pub fn run_method_observed(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    method: Method,
) -> (MethodOutcome, Snapshot) {
    run_method_observed_sharded(trace, cfg, workload, plan, method, 1)
}

/// [`run_method_observed`] under a shard runtime (DESIGN.md §13). Both
/// the outcome and the observability snapshot are byte-identical for
/// every `shards` value (enforced by the `shard_differential` suite).
pub fn run_method_observed_sharded(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    method: Method,
    shards: usize,
) -> (MethodOutcome, Snapshot) {
    let (outcome, snapshot, _) = run_method_observed_sharded_dispatch(
        trace,
        cfg,
        workload,
        plan,
        method,
        shards,
        DispatchMode::default(),
    );
    (outcome, snapshot)
}

/// [`run_method_observed_sharded`] with an explicit [`DispatchMode`],
/// also returning the run's in-unit dispatch telemetry (window/batch
/// counts and the batch-size histogram) for the shard bench artifact.
pub fn run_method_observed_sharded_dispatch(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    method: Method,
    shards: usize,
    mode: DispatchMode,
) -> (MethodOutcome, Snapshot, dtnflow_sim::DispatchStats) {
    let mut router = method.build(trace.num_nodes(), trace.num_landmarks());
    let out = run_traced_sharded_dispatch(
        trace,
        cfg,
        workload,
        plan,
        router.as_mut(),
        Box::new(Recorder::new(DEFAULT_RING_CAPACITY)),
        shards,
        mode,
    );
    let outcome = MethodOutcome {
        method,
        summary: out.metrics.summary(),
        overall_delay_secs: out
            .metrics
            .overall_average_delay_secs(SimDuration::from_secs(trace.duration().secs())),
    };
    let snapshot = out
        .trace
        .and_then(Recorder::downcast)
        .map(|r| r.snapshot())
        .unwrap_or_default();
    (outcome, snapshot, out.dispatch)
}

/// Map a function over items using all available cores (sweep points are
/// independent simulations). Result order matches input order, and the
/// whole computation is deterministic regardless of thread count.
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                results.lock().push((i, r));
            });
        }
    })
    .expect("sweep worker panicked");
    let mut collected = results.into_inner();
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::Scenario;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        // Empty input is fine.
        let empty: Vec<u64> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
    }

    #[test]
    fn methods_have_distinct_names() {
        let mut names: Vec<&str> = Method::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
    fn run_method_produces_consistent_outcome() {
        let s = Scenario::bus();
        let mut cfg = s.cfg(5);
        cfg.packets_per_landmark_per_day = 20.0;
        let wl = s.workload(&cfg);
        let a = run_method(&s.trace, &cfg, &wl, Method::Flow);
        let b = run_method(&s.trace, &cfg, &wl, Method::Flow);
        assert_eq!(a.summary.generated, b.summary.generated);
        assert_eq!(a.summary.delivered, b.summary.delivered);
        assert!(a.summary.success_rate > 0.0);
        assert!(a.overall_delay_secs >= a.summary.average_delay_secs);
    }
}
