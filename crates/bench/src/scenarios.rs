//! Canonical experiment scenarios: the two trace substitutes plus the
//! deployment, each with its paper-matched simulation settings and an
//! optional workload-destination exclusion list (the bus garage is not a
//! popular place and would never be selected as a landmark, §IV-A.1).

use dtnflow_core::config::SimConfig;
use dtnflow_core::ids::LandmarkId;
use dtnflow_mobility::synth::bus::{BusConfig, BusModel};
use dtnflow_mobility::synth::campus::{CampusConfig, CampusModel};
use dtnflow_mobility::synth::deployment::{DeploymentConfig, DeploymentModel, LIBRARY};
use dtnflow_mobility::Trace;
use dtnflow_sim::Workload;

/// A named, reproducible experiment scenario.
pub struct Scenario {
    pub name: &'static str,
    pub trace: Trace,
    pub base_cfg: SimConfig,
    /// Landmarks excluded from workload src/dst (infrastructure-only).
    pub excluded: Vec<LandmarkId>,
}

impl Scenario {
    /// The DART substitute: campus trace + DART settings.
    pub fn campus() -> Scenario {
        Scenario {
            name: "campus",
            trace: CampusModel::new(CampusConfig::default()).generate(),
            base_cfg: SimConfig::dart(),
            excluded: vec![],
        }
    }

    /// The DNET substitute: bus trace + DNET settings; the garage is
    /// excluded from the workload.
    pub fn bus() -> Scenario {
        let bc = BusConfig::default();
        let garage = bc.garage();
        Scenario {
            name: "bus",
            trace: BusModel::new(bc).generate(),
            base_cfg: SimConfig::dnet(),
            excluded: vec![garage],
        }
    }

    /// The §V-C deployment: nine phones, eight buildings, all packets to
    /// the library.
    pub fn deployment() -> Scenario {
        Scenario {
            name: "deployment",
            trace: DeploymentModel::new(DeploymentConfig::default()).generate(),
            base_cfg: SimConfig::deployment(),
            excluded: vec![],
        }
    }

    /// The deployment sink landmark.
    pub fn deployment_sink() -> LandmarkId {
        LIBRARY
    }

    /// A workload for this scenario under the given per-run config.
    pub fn workload(&self, cfg: &SimConfig) -> Workload {
        Workload::uniform_excluding(
            cfg,
            self.trace.num_landmarks(),
            self.trace.duration(),
            &self.excluded,
        )
    }

    /// The per-run config with a given seed.
    pub fn cfg(&self, seed: u64) -> SimConfig {
        self.base_cfg.clone().with_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_build_and_are_consistent() {
        let c = Scenario::campus();
        assert_eq!(c.trace.num_landmarks(), 40);
        assert!(c.excluded.is_empty());
        let b = Scenario::bus();
        assert_eq!(b.excluded.len(), 1);
        assert_eq!(b.excluded[0].index(), b.trace.num_landmarks() - 1);
        let d = Scenario::deployment();
        assert_eq!(d.trace.num_nodes(), 9);
    }

    #[test]
    fn workload_respects_exclusions() {
        let b = Scenario::bus();
        let mut cfg = b.cfg(1);
        cfg.packets_per_landmark_per_day = 5.0;
        let wl = b.workload(&cfg);
        let garage = b.excluded[0];
        assert!(wl
            .events()
            .iter()
            .all(|e| e.src != garage && e.dst != garage));
    }
}
