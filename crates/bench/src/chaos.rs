//! Crash-consistent checkpoint/restore harness and the chaos-recovery
//! sweep behind the `chaos` binary (DESIGN.md §11).
//!
//! A chaos case simulates a process being killed at seeded time-unit
//! boundaries: the run is driven to a boundary with
//! [`SimSession::run_to_unit`], a snapshot is taken with [`checkpoint`],
//! *everything* in-memory is dropped (the segment function returns), and
//! a fresh "process" resumes from the snapshot bytes alone via
//! [`run_segment`]. A run killed and restored any number of times must
//! produce byte-identical metrics, packets and experiment CSV cells to
//! one that never stopped, and — after stripping the checkpoint
//! bookkeeping events that only the restored lineage sees — a
//! byte-identical observability report too.
//!
//! Only the DTN-FLOW router is checkpointable (the baselines carry no
//! snapshot codec), so every chaos case runs [`FlowRouter`].

use crate::runners::Method;
use crate::scenarios::Scenario;
use crate::timing::Stopwatch;
use dtnflow_core::config::SimConfig;
use dtnflow_mobility::Trace;
use dtnflow_obs::json::Value;
use dtnflow_obs::{Recorder, SimEvent, Snapshot, DEFAULT_RING_CAPACITY};
use dtnflow_router::{FlowConfig, FlowRouter};
use dtnflow_sim::{
    DispatchMode, FaultConfig, FaultPlan, ShardExec, ShardPlan, SimOutcome, SimSession, Workload,
};
use dtnflow_snapshot::{
    validate_schema, Reader, SchemaSection, SnapshotBuilder, SnapshotError, SnapshotFile, Writer,
};

/// JSON schema tag for `BENCH_chaos.json`.
pub const SCHEMA: &str = "dtnflow-chaos-bench-v1";

/// The section layout of a chaos checkpoint container: run fingerprint,
/// engine cursor, world state, router state, flight recorder.
pub const SECTIONS: [SchemaSection; 5] = [
    SchemaSection {
        name: "meta",
        version: 1,
    },
    SchemaSection {
        name: "engine",
        version: 1,
    },
    SchemaSection {
        name: "world",
        version: 1,
    },
    SchemaSection {
        name: "router",
        version: 1,
    },
    SchemaSection {
        name: "obs",
        version: 1,
    },
];

/// Everything a chaos run needs; owning the inputs keeps segment
/// lifetimes trivial (each simulated process borrows them afresh).
pub struct ChaosInputs {
    pub trace: Trace,
    pub cfg: SimConfig,
    pub flow: FlowConfig,
    pub workload: Workload,
    pub plan: FaultPlan,
    /// Shard count for the DESIGN.md §13 runtime. Deliberately absent
    /// from the checkpoint meta fingerprint: snapshots are
    /// shard-count-agnostic, so a run checkpointed under one shard
    /// count restores under any other byte-identically (the
    /// `chaos_recovery` suite proves it).
    pub shards: usize,
    /// In-unit dispatch mode (DESIGN.md §15). Like `shards`, absent from
    /// the fingerprint: the engine cursor is batch-agnostic, so a run
    /// checkpointed under one mode restores under the other.
    pub dispatch: DispatchMode,
}

impl ChaosInputs {
    /// One fig11 campus cell (memory sweep, seed `0xF11`) under an
    /// optional fault plan.
    pub fn fig11_cell(memory_kb: u64, plan: FaultPlan) -> ChaosInputs {
        let s = Scenario::campus();
        let cfg = s
            .base_cfg
            .clone()
            .with_memory_kb(memory_kb)
            .with_seed(0xF11);
        let workload = s.workload(&cfg);
        ChaosInputs {
            trace: s.trace,
            cfg,
            flow: FlowConfig::default(),
            workload,
            plan,
            shards: 1,
            dispatch: DispatchMode::default(),
        }
    }

    /// The same inputs under an `n`-shard runtime.
    pub fn with_shards(self, n: usize) -> ChaosInputs {
        ChaosInputs { shards: n, ..self }
    }

    /// The same inputs under an explicit in-unit dispatch mode.
    pub fn with_dispatch(self, mode: DispatchMode) -> ChaosInputs {
        ChaosInputs {
            dispatch: mode,
            ..self
        }
    }

    /// Number of whole time units in the run (kill points live strictly
    /// inside `1..max_unit`).
    pub fn max_unit(&self) -> u64 {
        self.trace.duration().secs() / self.cfg.time_unit.secs().max(1)
    }

    /// A hand-built 4-node / 3-landmark cell that finishes in
    /// milliseconds even in debug builds, for tier-1 recovery tests.
    /// Nodes rotate through the landmarks on staggered daily schedules,
    /// so packets really transit between stations via carriers.
    pub fn tiny(seed: u64, plan: FaultPlan) -> ChaosInputs {
        use dtnflow_core::geometry::Point;
        use dtnflow_core::ids::{LandmarkId, NodeId};
        use dtnflow_core::time::{SimTime, DAY};
        use dtnflow_mobility::Visit;

        const DAYS: u64 = 20;
        let mut visits = Vec::new();
        for d in 0..DAYS {
            let base = d * 86_400;
            for n in 0..4u32 {
                let lm = LandmarkId(((d + n as u64) % 3) as u16);
                let start = base + 2_000 + n as u64 * 3_600;
                visits.push(Visit::new(
                    NodeId(n),
                    lm,
                    SimTime(start),
                    SimTime(start + 5_400),
                ));
            }
        }
        let trace = Trace::new(
            "chaos-tiny",
            4,
            3,
            vec![
                Point::new(0.0, 0.0),
                Point::new(1_000.0, 0.0),
                Point::new(0.0, 1_000.0),
            ],
            visits,
        )
        .expect("tiny trace is well-formed");
        let cfg = SimConfig {
            packets_per_landmark_per_day: 6.0,
            ttl: DAY.mul(3),
            time_unit: DAY,
            seed,
            ..SimConfig::default()
        };
        let workload = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        ChaosInputs {
            trace,
            cfg,
            flow: FlowConfig::default(),
            workload,
            plan,
            shards: 1,
            dispatch: DispatchMode::default(),
        }
    }
}

/// The comparable residue of one finished run. Two runs are
/// indistinguishable exactly when all three artifacts are byte-equal.
pub struct RunArtifacts {
    /// Canonical encoding of the outcome: `RunMetrics` plus every packet.
    pub state: Vec<u8>,
    /// The four fig11-format CSV cells (success, delay, fwd ops, total).
    pub csv_row: String,
    /// Canonicalized observability snapshot JSON (checkpoint bookkeeping
    /// events stripped; see [`canonicalize_obs`]).
    pub obs_json: String,
    pub generated: u64,
    pub delivered: u64,
    pub expired: u64,
    pub lost_outage: u64,
    pub lost_churn: u64,
    pub live: u64,
}

impl RunArtifacts {
    /// Packet conservation: every generated packet is delivered, expired,
    /// destroyed by a fault, or still live at the end — never lost track
    /// of by a kill/restore cycle.
    pub fn conservation_holds(&self) -> bool {
        self.generated
            == self.delivered + self.expired + self.lost_outage + self.lost_churn + self.live
    }

    /// All three comparable artifacts byte-equal.
    pub fn matches(&self, other: &RunArtifacts) -> bool {
        self.state == other.state
            && self.csv_row == other.csv_row
            && self.obs_json == other.obs_json
    }
}

/// Strip the `checkpoint_written` / `restored` bookkeeping events a
/// restored lineage records (and an uninterrupted one does not) so the
/// two lineages' reports can be compared byte-for-byte. The ring only
/// ever drops oldest events once full, so the dropped count is a pure
/// function of the adjusted recorded count.
pub fn canonicalize_obs(mut s: Snapshot) -> Snapshot {
    let mut stripped = 0u64;
    s.event_counts.retain(|(kind, count)| {
        if kind == "checkpoint_written" || kind == "restored" {
            stripped += *count;
            false
        } else {
            true
        }
    });
    s.events_recorded = s.events_recorded.saturating_sub(stripped);
    s.events_dropped = s.events_recorded.saturating_sub(s.ring_capacity);
    s
}

fn encode_meta(inp: &ChaosInputs, unit: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_usize(inp.trace.num_nodes());
    w.put_usize(inp.trace.num_landmarks());
    w.put_u64(inp.trace.duration().secs());
    w.put_u64(inp.cfg.seed);
    w.put_u64(inp.cfg.time_unit.secs());
    w.put_usize(inp.workload.len());
    w.put_usize(inp.plan.station_outages.len());
    w.put_usize(inp.plan.node_outages.len());
    w.put_usize(inp.plan.truncations.len());
    w.put_usize(inp.plan.lost_records.len());
    w.put_u64(unit);
    w.into_bytes()
}

/// Validate the snapshot fingerprint against the run inputs and return
/// the unit the checkpoint was taken at.
fn check_meta(r: &mut Reader<'_>, inp: &ChaosInputs) -> Result<u64, SnapshotError> {
    const CTX: &str = "chaos.meta";
    let fields: [(&str, u64); 10] = [
        ("num_nodes", inp.trace.num_nodes() as u64),
        ("num_landmarks", inp.trace.num_landmarks() as u64),
        ("duration_secs", inp.trace.duration().secs()),
        ("seed", inp.cfg.seed),
        ("time_unit_secs", inp.cfg.time_unit.secs()),
        ("workload_len", inp.workload.len() as u64),
        ("station_outages", inp.plan.station_outages.len() as u64),
        ("node_outages", inp.plan.node_outages.len() as u64),
        ("truncations", inp.plan.truncations.len() as u64),
        ("lost_records", inp.plan.lost_records.len() as u64),
    ];
    for (name, expected) in fields {
        let found = r.u64(CTX)?;
        if found != expected {
            return Err(SnapshotError::Mismatch {
                context: format!("chaos.meta.{name}: snapshot has {found}, run has {expected}"),
            });
        }
    }
    r.u64(CTX)
}

/// Snapshot a session paused at the boundary of `unit`. The
/// `CheckpointWritten` event (sized as the meta/engine/world/router
/// state payload) is emitted before the recorder itself is encoded, so
/// it lands inside the snapshot and the paused lineage's own sink
/// identically.
pub fn checkpoint(
    session: &mut SimSession<'_, FlowRouter>,
    inp: &ChaosInputs,
    unit: u64,
) -> Vec<u8> {
    let mut builder = SnapshotBuilder::new();
    builder.add_section("meta", 1, encode_meta(inp, unit));
    let mut w = Writer::new();
    session.encode_engine(&mut w);
    builder.add_section("engine", 1, w.into_bytes());
    let mut w = Writer::new();
    session.encode_world(&mut w);
    builder.add_section("world", 1, w.into_bytes());
    let mut w = Writer::new();
    session.router().save_state(&mut w);
    builder.add_section("router", 1, w.into_bytes());
    let state_bytes = builder.payload_len() as u64;
    session.emit(|at| SimEvent::CheckpointWritten {
        at,
        unit,
        bytes: state_bytes,
    });
    let mut w = Writer::new();
    if session.encode_recorder(&mut w) {
        builder.add_section("obs", 1, w.into_bytes());
    }
    builder.finish()
}

/// How one simulated process lifetime ended.
pub enum SegmentEnd {
    /// Killed at a unit boundary; these bytes are all that survives.
    Paused(Vec<u8>),
    /// Ran to completion.
    Finished(Box<RunArtifacts>),
}

/// One simulated process lifetime: start fresh (`snapshot: None`) or
/// restore from snapshot bytes, then run to the `kill_at` unit boundary
/// (checkpointing there) or to completion. Nothing but the returned
/// snapshot bytes outlives a kill.
pub fn run_segment(
    inp: &ChaosInputs,
    snapshot: Option<&[u8]>,
    kill_at: Option<u64>,
) -> Result<SegmentEnd, SnapshotError> {
    let (mut router, parsed) = match snapshot {
        None => (
            FlowRouter::new(
                inp.flow.clone(),
                inp.trace.num_nodes(),
                inp.trace.num_landmarks(),
            ),
            None,
        ),
        Some(bytes) => {
            let file = SnapshotFile::parse(bytes)?;
            validate_schema(&file, &SECTIONS)?;
            let mut mr = Reader::new(&file.section("meta")?.payload);
            let unit = check_meta(&mut mr, inp)?;
            mr.finish("meta")?;
            let mut rr = Reader::new(&file.section("router")?.payload);
            let router = FlowRouter::restore_state(
                &mut rr,
                inp.flow.clone(),
                inp.trace.num_nodes(),
                inp.trace.num_landmarks(),
            )?;
            rr.finish("router")?;
            (router, Some((file, unit)))
        }
    };
    let shard_plan = ShardPlan::contiguous(inp.trace.num_landmarks(), inp.shards);
    let exec = ShardExec::new(inp.shards);
    let mut session = match &parsed {
        None => SimSession::start_sharded(
            &inp.trace,
            &inp.cfg,
            &inp.workload,
            &inp.plan,
            &mut router,
            Some(Box::new(Recorder::new(DEFAULT_RING_CAPACITY))),
            shard_plan,
            exec,
        ),
        Some((file, _)) => {
            let mut or = Reader::new(&file.section("obs")?.payload);
            let rec = Recorder::decode(&mut or)?;
            or.finish("obs")?;
            let mut er = Reader::new(&file.section("engine")?.payload);
            let mut wr = Reader::new(&file.section("world")?.payload);
            let s = SimSession::resume_sharded(
                &inp.trace,
                &inp.cfg,
                &inp.workload,
                &inp.plan,
                &mut router,
                Some(Box::new(rec)),
                &mut er,
                &mut wr,
                shard_plan,
                exec,
            )?;
            er.finish("engine")?;
            wr.finish("world")?;
            s
        }
    };
    session.set_dispatch(inp.dispatch);
    if let Some((_, unit)) = parsed {
        let total = snapshot.map(|b| b.len() as u64).unwrap_or(0);
        session.emit(|at| SimEvent::Restored {
            at,
            unit,
            bytes: total,
        });
    }
    match kill_at {
        Some(unit) => {
            if session.run_to_unit(unit) {
                let bytes = checkpoint(&mut session, inp, unit);
                Ok(SegmentEnd::Paused(bytes))
            } else {
                Ok(SegmentEnd::Finished(Box::new(collect(session.finish()))))
            }
        }
        None => {
            session.run_to_end();
            Ok(SegmentEnd::Finished(Box::new(collect(session.finish()))))
        }
    }
}

/// Run straight through, never killed. The chaotic lineages are compared
/// against this.
pub fn run_straight(inp: &ChaosInputs) -> Result<RunArtifacts, SnapshotError> {
    match run_segment(inp, None, None)? {
        SegmentEnd::Finished(art) => Ok(*art),
        SegmentEnd::Paused(_) => Err(SnapshotError::Corrupt {
            context: "chaos: straight run paused",
        }),
    }
}

/// Kill the run at each unit in `kills` (ascending; repeats re-kill the
/// freshly restored process at the same boundary), restoring from the
/// snapshot alone each time, then run the survivor to completion.
/// Returns the final artifacts plus the size of every snapshot taken.
pub fn run_with_kills(
    inp: &ChaosInputs,
    kills: &[u64],
) -> Result<(RunArtifacts, Vec<u64>), SnapshotError> {
    let mut snap: Option<Vec<u8>> = None;
    let mut sizes = Vec::with_capacity(kills.len());
    for &unit in kills {
        match run_segment(inp, snap.as_deref(), Some(unit))? {
            SegmentEnd::Paused(bytes) => {
                sizes.push(bytes.len() as u64);
                snap = Some(bytes);
            }
            // The run ended before this kill point; the schedule is done.
            SegmentEnd::Finished(art) => return Ok((*art, sizes)),
        }
    }
    match run_segment(inp, snap.as_deref(), None)? {
        SegmentEnd::Finished(art) => Ok((*art, sizes)),
        SegmentEnd::Paused(_) => Err(SnapshotError::Corrupt {
            context: "chaos: final segment paused",
        }),
    }
}

fn collect(out: SimOutcome) -> RunArtifacts {
    let mut w = Writer::new();
    out.metrics.encode(&mut w);
    w.put_usize(out.packets.len());
    for p in &out.packets {
        p.encode(&mut w);
    }
    let summary = out.metrics.summary();
    let csv_row = format!(
        "{:.3},{:.0},{},{:.0}",
        summary.success_rate,
        summary.average_delay_secs / 60.0,
        summary.forwarding_ops,
        summary.total_cost
    );
    let obs_json = out
        .trace
        .and_then(Recorder::downcast)
        .map(|r| canonicalize_obs(r.snapshot()).to_json())
        .unwrap_or_default();
    let live = out.packets.iter().filter(|p| p.loc.is_live()).count() as u64;
    RunArtifacts {
        state: w.into_bytes(),
        csv_row,
        obs_json,
        generated: out.metrics.generated,
        delivered: out.metrics.delivered,
        expired: out.metrics.expired,
        lost_outage: out.metrics.lost_to_outage,
        lost_churn: out.metrics.lost_to_churn,
        live,
    }
}

/// Deterministic 64-bit LCG for drawing kill units; the sweep must not
/// depend on ambient randomness (detlint D-rules).
struct Lcg(u64);

impl Lcg {
    fn next_below(&mut self, n: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % n.max(1)
    }
}

/// A station-outage fault plan whose outages are long enough to span
/// time-unit boundaries, so a kill can land inside one.
pub fn outage_plan(inp_trace: &Trace, unit_secs: u64, seed: u64) -> FaultPlan {
    let cfg = FaultConfig {
        station_outage_duty: 0.25,
        // Two units per outage on average: boundaries fall inside them.
        mean_outage_secs: (2 * unit_secs) as f64,
        seed,
        ..FaultConfig::default()
    };
    FaultPlan::generate(&cfg, inp_trace)
}

/// The first unit boundary strictly inside a station outage (the
/// crash-during-outage case), if any outage spans one.
pub fn boundary_inside_outage(plan: &FaultPlan, unit_secs: u64, max_unit: u64) -> Option<u64> {
    for o in &plan.station_outages {
        let first = o.down.secs() / unit_secs + 1;
        for u in first..=(o.up.secs().saturating_sub(1) / unit_secs) {
            if u >= 1 && u < max_unit {
                return Some(u);
            }
        }
    }
    None
}

/// One chaos case's verdict, as written to `BENCH_chaos.json`.
pub struct CaseResult {
    pub id: String,
    pub kills: Vec<u64>,
    pub snapshot_bytes: Vec<u64>,
    pub matched: bool,
    pub conservation: bool,
    pub wall_secs: f64,
}

fn run_case(
    id: &str,
    inp: &ChaosInputs,
    straight: &RunArtifacts,
    kills: &[u64],
) -> Result<CaseResult, SnapshotError> {
    let sw = Stopwatch::start();
    let (chaotic, snapshot_bytes) = run_with_kills(inp, kills)?;
    Ok(CaseResult {
        id: id.to_owned(),
        kills: kills.to_vec(),
        snapshot_bytes,
        matched: chaotic.matches(straight),
        conservation: chaotic.conservation_holds() && straight.conservation_holds(),
        wall_secs: sw.elapsed_secs(),
    })
}

/// The chaos-recovery sweep: seeded kill schedules over a fig11 campus
/// cell, one fault-free and one with station outages (including a kill
/// inside an outage window). Every case demands byte-identical artifacts
/// and packet conservation.
pub fn sweep(quick: bool, seed: u64) -> Result<Vec<CaseResult>, SnapshotError> {
    let memory_kbs: &[u64] = if quick {
        &[2_000]
    } else {
        &[1_200, 2_000, 3_000]
    };
    let mut lcg = Lcg(seed ^ 0xC4A0_5EED);
    let mut results = Vec::new();

    for &kb in memory_kbs {
        let inp = ChaosInputs::fig11_cell(kb, FaultPlan::none());
        let m = inp.max_unit();
        let straight = run_straight(&inp)?;
        let jitter = |lcg: &mut Lcg| lcg.next_below(m / 8 + 1);
        let early = (m / 4 + jitter(&mut lcg)).clamp(1, m - 1);
        let late = (3 * m / 4 + jitter(&mut lcg)).clamp(1, m - 1);
        let mid = (m / 2 + jitter(&mut lcg)).clamp(1, m - 1);
        let schedules: [(&str, Vec<u64>); 3] = [
            ("early-kill", vec![early]),
            ("late-kill", vec![late]),
            // Re-kill the restored process at the same boundary, then
            // again later: checkpoints of checkpoints must compose.
            (
                "double-kill-chain",
                vec![early.min(mid), early.min(mid), mid.max(early)],
            ),
        ];
        for (name, kills) in schedules {
            results.push(run_case(
                &format!("{kb}kB/{name}"),
                &inp,
                &straight,
                &kills,
            )?);
        }
    }

    // Crash-during-outage: the kill lands at a boundary inside a station
    // outage (overlapping the PR 1 fault plans).
    let kb = memory_kbs[0];
    let base = ChaosInputs::fig11_cell(kb, FaultPlan::none());
    let unit_secs = base.cfg.time_unit.secs();
    let plan = outage_plan(&base.trace, unit_secs, seed);
    let inp = ChaosInputs { plan, ..base };
    let m = inp.max_unit();
    let kill = boundary_inside_outage(&inp.plan, unit_secs, m).ok_or(SnapshotError::Corrupt {
        context: "chaos: no unit boundary inside any station outage",
    })?;
    let straight = run_straight(&inp)?;
    results.push(run_case(
        &format!("{kb}kB/outage-overlap-kill"),
        &inp,
        &straight,
        &[kill],
    )?);

    Ok(results)
}

/// Render sweep results as the `BENCH_chaos.json` document.
pub fn results_json(mode: &str, method: Method, results: &[CaseResult]) -> String {
    Value::object([
        ("schema".to_owned(), Value::str(SCHEMA)),
        ("mode".to_owned(), Value::str(mode)),
        ("method".to_owned(), Value::str(method.name())),
        (
            "cases".to_owned(),
            Value::Array(
                results
                    .iter()
                    .map(|r| {
                        Value::object([
                            ("id".to_owned(), Value::str(&r.id)),
                            (
                                "kills".to_owned(),
                                Value::Array(r.kills.iter().map(|&u| Value::int(u)).collect()),
                            ),
                            (
                                "snapshot_bytes".to_owned(),
                                Value::Array(
                                    r.snapshot_bytes.iter().map(|&b| Value::int(b)).collect(),
                                ),
                            ),
                            ("matched".to_owned(), Value::Bool(r.matched)),
                            ("conservation".to_owned(), Value::Bool(r.conservation)),
                            ("wall_secs".to_owned(), Value::Number(r.wall_secs)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render_pretty()
}
