//! Experiment harness: regenerates every table and figure of the DTN-FLOW
//! paper's evaluation (§III-B and §V) from the synthetic trace substitutes.
//!
//! Each experiment lives in [`experiments`] and returns plain-text
//! [`report::Table`]s; the `experiments` binary dispatches on experiment
//! ids (`fig2`, `table6`, `all`, …) and writes results under `results/`.
//! See DESIGN.md §5 for the experiment ↔ paper artifact mapping and
//! EXPERIMENTS.md for measured-vs-paper comparisons.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod experiments;
pub mod report;
pub mod runners;
pub mod scenarios;
pub mod timing;

pub use report::Table;
pub use runners::{
    parallel_map, run_method, run_method_observed_sharded, run_method_with_faults_sharded, Method,
    MethodOutcome,
};
pub use scenarios::Scenario;
