//! The §IV-E extension experiments: Table VI (dead-end prevention),
//! Table VII (routing-loop detection and correction), and Tables VIII/IX
//! (load balancing).

use crate::report::Table;
use crate::runners::parallel_map;
use crate::scenarios::Scenario;
use dtnflow_core::config::SimConfig;
use dtnflow_core::ids::LandmarkId;
use dtnflow_core::time::SimDuration;
use dtnflow_mobility::stats;
use dtnflow_router::{DeadEndConfig, FlowConfig, FlowRouter, LoadBalanceConfig, LoopInjection};
use dtnflow_sim::run_with_workload;

struct FlowRun {
    success: f64,
    avg_delay_secs: f64,
    overall_delay_secs: f64,
    dead_ends: u64,
    loops_detected: u64,
    lb_reroutes: u64,
}

fn run_flow(s: &Scenario, cfg: &SimConfig, flow: FlowConfig) -> FlowRun {
    let wl = s.workload(cfg);
    let mut router = FlowRouter::new(flow, s.trace.num_nodes(), s.trace.num_landmarks());
    let out = run_with_workload(&s.trace, cfg, &wl, &mut router);
    FlowRun {
        success: out.metrics.success_rate(),
        avg_delay_secs: out.metrics.average_delay_secs(),
        overall_delay_secs: out
            .metrics
            .overall_average_delay_secs(SimDuration::from_secs(s.trace.duration().secs())),
        dead_ends: router.stats().dead_ends_detected,
        loops_detected: router.stats().loops_detected,
        lb_reroutes: router.stats().lb_reroutes,
    }
}

/// Table VI: dead-end prevention — hit rate and average delay for the
/// original algorithm (ORG) and γ ∈ {2, 3, 4, 5}.
pub fn table6(quick: bool) -> Vec<Table> {
    let gammas: Vec<f64> = if quick {
        vec![2.0, 4.0]
    } else {
        vec![2.0, 3.0, 4.0, 5.0]
    };
    let mut t = Table::new(
        "table6",
        "Dead-end prevention (Table VI)",
        &[
            "trace",
            "config",
            "success rate",
            "avg delay (min)",
            "dead ends detected",
        ],
    );
    for s in [Scenario::campus(), Scenario::bus()] {
        let cfg = s.cfg(0x7AB6);
        let mut variants: Vec<(String, FlowConfig)> =
            vec![("ORG".to_string(), FlowConfig::default())];
        for &g in &gammas {
            variants.push((
                format!("gamma={g}"),
                FlowConfig {
                    dead_end: Some(DeadEndConfig {
                        gamma: g,
                        min_stays: 10,
                    }),
                    ..FlowConfig::default()
                },
            ));
        }
        let runs = parallel_map(&variants, |(_, fc)| run_flow(&s, &cfg, fc.clone()));
        for ((label, _), r) in variants.iter().zip(&runs) {
            t.row(vec![
                s.name.to_string(),
                label.clone(),
                format!("{:.3}", r.success),
                format!("{:.0}", r.avg_delay_secs / 60.0),
                r.dead_ends.to_string(),
            ]);
        }
    }
    t.note("paper: prevention raises hit rate / lowers delay, best at gamma=2");
    vec![t]
}

/// Build `n` injected 2-member loops from the busiest landmarks toward
/// unpopular destinations, re-injected at several time units so the
/// corruption persists like the paper's "purposely created loops".
fn make_loops(s: &Scenario, n: usize) -> Vec<LoopInjection> {
    let pop = stats::landmark_popularity(&s.trace);
    let eligible: Vec<LandmarkId> = pop
        .iter()
        .map(|&(l, _)| l)
        .filter(|l| !s.excluded.contains(l))
        .collect();
    let total_units = s.trace.duration().secs() / s.base_cfg.time_unit.secs().max(1);
    let inject_units: Vec<u64> = [0.35, 0.55, 0.75]
        .iter()
        .map(|f| ((total_units as f64) * f) as u64)
        .collect();
    let mut out = Vec::new();
    for i in 0..n {
        let a = eligible[(2 * i) % eligible.len()];
        let b = eligible[(2 * i + 1) % eligible.len()];
        let dest = eligible[eligible.len() - 1 - (i % 3)];
        for &u in &inject_units {
            out.push(LoopInjection {
                at_unit: u,
                members: vec![a, b],
                dest,
            });
        }
    }
    out
}

/// Table VII: routing-loop detection and correction with 2 and 3 injected
/// loops, with (W) and without (ORG) the correction mechanism.
pub fn table7() -> Vec<Table> {
    let mut t = Table::new(
        "table7",
        "Routing loop detection and correction (Table VII)",
        &[
            "trace",
            "config",
            "success rate",
            "overall delay (min)",
            "loops detected",
        ],
    );
    for s in [Scenario::campus(), Scenario::bus()] {
        let cfg = s.cfg(0x7AB7);
        let mut variants: Vec<(String, FlowConfig)> =
            vec![("no loops".into(), FlowConfig::default())];
        for n in [2usize, 3] {
            let inject = make_loops(&s, n);
            variants.push((
                format!("ORG-{n}"),
                FlowConfig {
                    loop_correction: false,
                    inject_loops: inject.clone(),
                    ..FlowConfig::default()
                },
            ));
            variants.push((
                format!("W-{n}"),
                FlowConfig {
                    loop_correction: true,
                    inject_loops: inject,
                    ..FlowConfig::default()
                },
            ));
        }
        let runs = parallel_map(&variants, |(_, fc)| run_flow(&s, &cfg, fc.clone()));
        for ((label, _), r) in variants.iter().zip(&runs) {
            t.row(vec![
                s.name.to_string(),
                label.clone(),
                format!("{:.3}", r.success),
                format!("{:.0}", r.overall_delay_secs / 60.0),
                r.loops_detected.to_string(),
            ]);
        }
    }
    t.note("paper: W-x hit rates close to the no-loop case; ORG-x lower");
    vec![t]
}

/// Tables VIII and IX: load balancing at overload packet rates
/// (1100..=1500), with (W) and without (W/O) the backup-next-hop
/// mechanism — success rates and average delays.
pub fn table8(quick: bool) -> Vec<Table> {
    let rates: Vec<f64> = if quick {
        vec![1_100.0, 1_500.0]
    } else {
        vec![1_100.0, 1_200.0, 1_300.0, 1_400.0, 1_500.0]
    };
    let mut succ = Table::new(
        "table8-success",
        "Load balancing: success rate at overload rates (Table VIII)",
        &["trace", "rate", "W/O-Balance", "W-Balance", "reroutes"],
    );
    let mut delay = Table::new(
        "table8-delay",
        "Load balancing: average delay (min) at overload rates (Table IX)",
        &["trace", "rate", "W/O-Balance", "W-Balance"],
    );
    for s in [Scenario::campus(), Scenario::bus()] {
        let jobs: Vec<(f64, bool)> = rates
            .iter()
            .flat_map(|&r| [(r, false), (r, true)])
            .collect();
        let runs = parallel_map(&jobs, |&(r, balance)| {
            let cfg = s.cfg(0x7AB8).with_packet_rate(r);
            let flow = FlowConfig {
                load_balance: balance.then(LoadBalanceConfig::default),
                ..FlowConfig::default()
            };
            run_flow(&s, &cfg, flow)
        });
        for (i, &rate) in rates.iter().enumerate() {
            let wo = &runs[2 * i];
            let w = &runs[2 * i + 1];
            succ.row(vec![
                s.name.to_string(),
                format!("{rate:.0}"),
                format!("{:.3}", wo.success),
                format!("{:.3}", w.success),
                w.lb_reroutes.to_string(),
            ]);
            delay.row(vec![
                s.name.to_string(),
                format!("{rate:.0}"),
                format!("{:.0}", wo.avg_delay_secs / 60.0),
                format!("{:.0}", w.avg_delay_secs / 60.0),
            ]);
        }
    }
    succ.note("paper: balancing raises success under overload");
    delay.note("paper: balancing lowers delay under overload");
    vec![succ, delay]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_specs_are_wellformed() {
        let s = Scenario::bus();
        let loops = make_loops(&s, 3);
        // 3 loops x 3 injection units.
        assert_eq!(loops.len(), 9);
        for l in &loops {
            assert_eq!(l.members.len(), 2);
            assert_ne!(l.members[0], l.members[1]);
            assert!(!s.excluded.contains(&l.dest));
            assert!(!l.members.contains(&l.dest));
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
    fn table6_quick_runs_on_bus_shape() {
        // Only assert structure here (full numbers come from the binary);
        // use the quick variant to keep the test fast.
        let t = &table6(true)[0];
        // 2 traces x (ORG + 2 gammas).
        assert_eq!(t.len(), 6);
        assert_eq!(t.cell(0, 1), "ORG");
        // Detections occur once enabled.
        let dead_ends: u64 = t.cell(1, 4).parse().unwrap();
        assert!(dead_ends > 0);
    }
}
