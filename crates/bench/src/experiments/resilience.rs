//! Resilience under injected faults: sweep station-outage duty × node
//! churn and compare DTN-FLOW's graceful degradation (staleness decay,
//! down-landmark fallback, stranded-packet retries) against baseline
//! routers that ignore the fault hooks entirely.
//!
//! The interesting claim is the *shape* of the curve: DTN-FLOW depends on
//! landmark stations, so naive station loss could cliff its delivery rate
//! to zero; with degradation it should instead decay smoothly as outage
//! duty grows, while still surfacing what the faults cost it
//! (`lost: outage/churn`, retries, recovery time).

use crate::experiments::ObsCell;
use crate::report::Table;
use crate::runners::{parallel_map, run_method_observed, run_method_with_faults, Method};
use crate::scenarios::Scenario;
use dtnflow_core::config::SimConfig;
use dtnflow_core::metrics::MetricsSummary;
use dtnflow_obs::{Recorder, Snapshot, DEFAULT_RING_CAPACITY};
use dtnflow_router::{FlowConfig, FlowRouter};
use dtnflow_sim::{run_traced, run_with_faults, FaultConfig, FaultPlan, Workload};

/// DTN-FLOW plus two station-less baselines: the baselines carry packets
/// only on nodes, so station outages cost them nothing and they anchor
/// the "no cliff" comparison.
const METHODS: [Method; 3] = [Method::Flow, Method::Prophet, Method::SimBet];

const FAULT_SEED: u64 = 0xFA_17;

fn fault_cfg(duty: f64, churn_per_day: f64) -> FaultConfig {
    FaultConfig {
        station_outage_duty: duty,
        node_failures_per_day: churn_per_day,
        seed: FAULT_SEED,
        ..FaultConfig::default()
    }
}

/// Run one sweep point. DTN-FLOW runs with graceful degradation enabled
/// (the point of the experiment); the baselines inherit the no-op fault
/// hooks from the `Router` trait.
fn run_one(
    s: &Scenario,
    cfg: &SimConfig,
    wl: &Workload,
    plan: &FaultPlan,
    method: Method,
) -> MetricsSummary {
    match method {
        Method::Flow => {
            let mut router = FlowRouter::new(
                FlowConfig::with_degradation(),
                s.trace.num_nodes(),
                s.trace.num_landmarks(),
            );
            run_with_faults(&s.trace, cfg, wl, plan, &mut router)
                .metrics
                .summary()
        }
        m => run_method_with_faults(&s.trace, cfg, wl, plan, m).summary,
    }
}

/// [`run_one`] with a flight recorder attached; same summary, plus the
/// cell's observability snapshot.
fn run_one_observed(
    s: &Scenario,
    cfg: &SimConfig,
    wl: &Workload,
    plan: &FaultPlan,
    method: Method,
) -> (MetricsSummary, Snapshot) {
    match method {
        Method::Flow => {
            let mut router = FlowRouter::new(
                FlowConfig::with_degradation(),
                s.trace.num_nodes(),
                s.trace.num_landmarks(),
            );
            let out = run_traced(
                &s.trace,
                cfg,
                wl,
                plan,
                &mut router,
                Box::new(Recorder::new(DEFAULT_RING_CAPACITY)),
            );
            let snap = out
                .trace
                .and_then(Recorder::downcast)
                .map(|r| r.snapshot())
                .unwrap_or_default();
            (out.metrics.summary(), snap)
        }
        m => {
            let (o, snap) = run_method_observed(&s.trace, cfg, wl, plan, m);
            (o.summary, snap)
        }
    }
}

/// The resilience sweep: outage duty × churn rate × method, per trace.
/// With `obs` the sweep also exports one observability snapshot per cell;
/// the table itself must be byte-identical either way.
fn resilience_impl(quick: bool, obs: bool) -> (Vec<Table>, Vec<ObsCell>) {
    let duties: Vec<f64> = if quick {
        vec![0.0, 0.2]
    } else {
        vec![0.0, 0.1, 0.2, 0.3]
    };
    let churns: Vec<f64> = if quick { vec![0.0] } else { vec![0.0, 0.25] };
    let mut t = Table::new(
        "resilience",
        "Delivery under station outages and node churn",
        &[
            "trace",
            "outage duty",
            "churn/day",
            "method",
            "success rate",
            "lost: outage",
            "lost: churn",
            "retries",
            "avg recovery (min)",
        ],
    );
    let mut cells: Vec<ObsCell> = Vec::new();
    for s in [Scenario::bus(), Scenario::campus()] {
        let cfg = s.cfg(0x7E51);
        let wl = s.workload(&cfg);
        let jobs: Vec<(f64, f64, Method)> = duties
            .iter()
            .flat_map(|&d| {
                churns
                    .iter()
                    .flat_map(move |&c| METHODS.iter().map(move |&m| (d, c, m)))
            })
            .collect();
        let runs: Vec<(MetricsSummary, Option<Snapshot>)> =
            parallel_map(&jobs, |&(duty, churn, method)| {
                let plan = FaultPlan::generate(&fault_cfg(duty, churn), &s.trace);
                if obs {
                    let (summary, snap) = run_one_observed(&s, &cfg, &wl, &plan, method);
                    (summary, Some(snap))
                } else {
                    (run_one(&s, &cfg, &wl, &plan, method), None)
                }
            });
        for (&(duty, churn, method), (r, snap)) in jobs.iter().zip(&runs) {
            t.row(vec![
                s.name.to_string(),
                format!("{duty:.2}"),
                format!("{churn:.2}"),
                method.name().to_string(),
                format!("{:.3}", r.success_rate),
                r.lost_to_outage.to_string(),
                r.lost_to_churn.to_string(),
                r.retries.to_string(),
                format!("{:.0}", r.average_recovery_secs / 60.0),
            ]);
            if let Some(snap) = snap {
                cells.push(ObsCell {
                    label: format!("{}/duty{duty:.2}/churn{churn:.2}/{}", s.name, method.name()),
                    snapshot: snap.clone(),
                });
            }
        }
    }
    t.note("DTN-FLOW should degrade smoothly with outage duty, not cliff to zero");
    (vec![t], cells)
}

/// The resilience sweep (tables only).
pub fn resilience(quick: bool) -> Vec<Table> {
    resilience_impl(quick, false).0
}

/// The resilience sweep with per-cell observability snapshots.
pub fn resilience_obs(quick: bool) -> (Vec<Table>, Vec<ObsCell>) {
    resilience_impl(quick, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_cfgs_are_valid() {
        for duty in [0.0, 0.1, 0.2, 0.3] {
            for churn in [0.0, 0.25] {
                fault_cfg(duty, churn).validate().unwrap();
            }
        }
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
    fn quick_sweep_shows_graceful_degradation() {
        let t = &resilience(true)[0];
        // 2 traces x 2 duties x 1 churn x 3 methods.
        assert_eq!(t.len(), 12);
        // The acceptance check: at 20% outage duty DTN-FLOW still
        // delivers a sizeable share — no cliff to zero — and the fault
        // accounting actually fired.
        for trace_idx in 0..2usize {
            let base = trace_idx * 6;
            let healthy: f64 = t.cell(base, 4).parse().unwrap();
            let faulted: f64 = t.cell(base + 3, 4).parse().unwrap();
            assert!(healthy > 0.0, "fault-free run must deliver");
            assert!(
                faulted > 0.25 * healthy,
                "20% outage duty must not cliff delivery: {faulted} vs {healthy}"
            );
            let lost_outage: u64 = t.cell(base + 3, 5).parse().unwrap();
            assert!(lost_outage > 0, "outages must cost something");
        }
    }
}
