//! One module per paper artifact group. Every function returns plain
//! [`Table`]s so the binary can print and save them uniformly.

pub mod ablation;
pub mod comparison;
pub mod deployment;
pub mod division;
pub mod extensions;
pub mod prediction;
pub mod resilience;
pub mod routing;
pub mod scheduling;
pub mod trace_analysis;

use crate::report::Table;
use dtnflow_obs::Snapshot;
use dtnflow_sim::DispatchMode;

/// One experiment cell's observability export: the cell label (sweep
/// point × method) and its flight-recorder snapshot.
#[derive(Debug, Clone)]
pub struct ObsCell {
    pub label: String,
    pub snapshot: Snapshot,
}

/// All experiment ids, in paper order.
pub const ALL_IDS: &[&str] = &[
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "table6",
    "table7",
    "table8",
    "deploy",
    "ablation",
    "sched",
    "resilience",
];

/// Run one experiment by id. `quick` shrinks sweeps for smoke testing.
/// Panics on an unknown id (the binary validates beforehand).
pub fn run_experiment(id: &str, quick: bool) -> Vec<Table> {
    match id {
        "table1" => trace_analysis::table1(),
        "fig2" => trace_analysis::fig2(),
        "fig3" => trace_analysis::fig3(),
        "fig4" => trace_analysis::fig4(),
        "fig5" => division::fig5(),
        "fig6" => prediction::fig6(),
        "fig7" => routing::fig7(),
        "fig8" => routing::fig8(),
        "fig11" => comparison::memory_sweep_campus(quick),
        "fig12" => comparison::memory_sweep_bus(quick),
        "fig13" => comparison::rate_sweep_campus(quick),
        "fig14" => comparison::rate_sweep_bus(quick),
        "table6" => extensions::table6(quick),
        "table7" => extensions::table7(),
        "table8" => extensions::table8(quick),
        "deploy" => deployment::deploy(),
        "ablation" => ablation::ablation(quick),
        "sched" => scheduling::sched(quick),
        "resilience" => resilience::resilience(quick),
        other => panic!("unknown experiment id `{other}`; known: {ALL_IDS:?}"),
    }
}

/// Like [`run_experiment`], but the comparison sweeps run under a shard
/// runtime (DESIGN.md §13). Tables are byte-identical for every `shards`
/// value; experiments without per-landmark unit work ignore the setting.
pub fn run_experiment_sharded(id: &str, quick: bool, shards: usize) -> Vec<Table> {
    run_experiment_sharded_dispatch(id, quick, shards, DispatchMode::default())
}

/// [`run_experiment_sharded`] with an explicit in-unit [`DispatchMode`]
/// (DESIGN.md §15). Tables are byte-identical across modes; the
/// differential gate runs both.
pub fn run_experiment_sharded_dispatch(
    id: &str,
    quick: bool,
    shards: usize,
    mode: DispatchMode,
) -> Vec<Table> {
    match id {
        "fig11" => comparison::memory_sweep_campus_sharded_dispatch(quick, shards, mode),
        "fig12" => comparison::memory_sweep_bus_sharded_dispatch(quick, shards, mode),
        "fig13" => comparison::rate_sweep_campus_sharded_dispatch(quick, shards, mode),
        "fig14" => comparison::rate_sweep_bus_sharded_dispatch(quick, shards, mode),
        other => run_experiment(other, quick),
    }
}

/// Like [`run_experiment`], but the simulation-heavy sweeps also attach a
/// flight recorder per cell and return the observability snapshots.
/// Experiments without traced variants fall back to [`run_experiment`]
/// with no cells. Tables are byte-identical with tracing on and off.
pub fn run_experiment_with_obs(id: &str, quick: bool) -> (Vec<Table>, Vec<ObsCell>) {
    match id {
        "fig11" => comparison::memory_sweep_campus_obs(quick),
        "fig12" => comparison::memory_sweep_bus_obs(quick),
        "fig13" => comparison::rate_sweep_campus_obs(quick),
        "fig14" => comparison::rate_sweep_bus_obs(quick),
        "resilience" => resilience::resilience_obs(quick),
        other => (run_experiment(other, quick), Vec::new()),
    }
}

/// [`run_experiment_with_obs`] under a shard runtime. Tables *and*
/// snapshots are byte-identical for every `shards` value.
pub fn run_experiment_with_obs_sharded(
    id: &str,
    quick: bool,
    shards: usize,
) -> (Vec<Table>, Vec<ObsCell>) {
    run_experiment_with_obs_sharded_dispatch(id, quick, shards, DispatchMode::default())
}

/// [`run_experiment_with_obs_sharded`] with an explicit in-unit
/// [`DispatchMode`]. Tables *and* snapshots are byte-identical across
/// modes and shard counts.
pub fn run_experiment_with_obs_sharded_dispatch(
    id: &str,
    quick: bool,
    shards: usize,
    mode: DispatchMode,
) -> (Vec<Table>, Vec<ObsCell>) {
    match id {
        "fig11" => comparison::memory_sweep_campus_obs_sharded_dispatch(quick, shards, mode),
        "fig12" => comparison::memory_sweep_bus_obs_sharded_dispatch(quick, shards, mode),
        "fig13" => comparison::rate_sweep_campus_obs_sharded_dispatch(quick, shards, mode),
        "fig14" => comparison::rate_sweep_bus_obs_sharded_dispatch(quick, shards, mode),
        other => run_experiment_with_obs(other, quick),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let mut ids = ALL_IDS.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL_IDS.len());
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        run_experiment("fig99", true);
    }
}
