//! Fig. 5: the subarea division of the campus deployment, as an ASCII map
//! plus per-subarea area shares.

use crate::report::Table;
use crate::scenarios::Scenario;
use dtnflow_core::geometry::Rect;
use dtnflow_landmark::{SubareaDivision, SubareaGrid};

/// Fig. 5: Voronoi subarea division over the deployment landmarks.
pub fn fig5() -> Vec<Table> {
    let s = Scenario::deployment();
    let sites = s.trace.positions().to_vec();
    let area = Rect::bounding(&sites).expect("deployment has landmarks");
    // Pad the bounding box a little so every site is interior.
    let pad = 80.0;
    let area = Rect::new(
        dtnflow_core::geometry::Point::new(area.min.x - pad, area.min.y - pad),
        dtnflow_core::geometry::Point::new(area.max.x + pad, area.max.y + pad),
    );
    let grid = SubareaGrid::new(SubareaDivision::new(sites), area, 60, 24);

    let mut t = Table::new(
        "fig5",
        "Subarea division in the campus deployment (Fig. 5)",
        &["landmark", "role", "area share"],
    );
    let roles = [
        "library (sink)",
        "department A",
        "department B",
        "department C",
        "department D",
        "student center",
        "dining hall",
        "dining hall",
    ];
    for (i, share) in grid.area_shares().iter().enumerate() {
        t.row(vec![
            format!("l{i}"),
            roles[i].to_string(),
            format!("{share:.3}"),
        ]);
    }
    for line in grid.render_ascii().lines() {
        t.note(line.to_string());
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_covers_all_subareas() {
        let t = &fig5()[0];
        assert_eq!(t.len(), 8);
        let shares: f64 = (0..8).map(|r| t.cell(r, 2).parse::<f64>().unwrap()).sum();
        // Cells are rounded to three decimals, so allow rounding slack.
        assert!((shares - 1.0).abs() < 0.01);
    }
}
