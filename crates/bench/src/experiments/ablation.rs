//! Ablations of DTN-FLOW's design choices (beyond the paper's own
//! experiments): predictor order, link-delay model, accuracy-weighted
//! carrier ranking, and mis-transit tolerance.

use crate::report::Table;
use crate::runners::parallel_map;
use crate::scenarios::Scenario;
use dtnflow_router::config::AccuracyFactors;
use dtnflow_router::{FlowConfig, FlowRouter, HybridFlowRouter, LinkDelayModel};
use dtnflow_sim::{run_with_workload, Router};

/// Run DTN-FLOW variants on both traces.
pub fn ablation(quick: bool) -> Vec<Table> {
    let variants: Vec<(&str, FlowConfig)> = vec![
        ("default (k=1, interval, acc)", FlowConfig::default()),
        (
            "order k=2",
            FlowConfig {
                order_k: 2,
                ..FlowConfig::default()
            },
        ),
        (
            "throughput delay model",
            FlowConfig {
                delay_model: LinkDelayModel::Throughput,
                ..FlowConfig::default()
            },
        ),
        (
            "no accuracy weighting",
            FlowConfig {
                // Frozen at 1.0: carriers ranked by predicted probability
                // alone (ablates §IV-D.4).
                accuracy: AccuracyFactors {
                    init: 1.0,
                    up: 1.0,
                    down: 1.0,
                    floor: 1.0,
                },
                ..FlowConfig::default()
            },
        ),
        (
            "mis-transit tolerance 0.5",
            FlowConfig {
                mis_transit_tolerance: 0.5,
                ..FlowConfig::default()
            },
        ),
    ];

    let mut t = Table::new(
        "ablation",
        "DTN-FLOW design-choice ablations",
        &[
            "trace",
            "variant",
            "success rate",
            "avg delay (min)",
            "forwarding ops",
        ],
    );
    let scenarios = if quick {
        vec![Scenario::bus()]
    } else {
        vec![Scenario::campus(), Scenario::bus()]
    };
    for s in scenarios {
        let cfg = s.cfg(0xAB1A);
        let wl = s.workload(&cfg);
        let runs = parallel_map(&variants, |(_, fc)| {
            let mut router =
                FlowRouter::new(fc.clone(), s.trace.num_nodes(), s.trace.num_landmarks());
            run_with_workload(&s.trace, &cfg, &wl, &mut router).metrics
        });
        for ((label, _), m) in variants.iter().zip(&runs) {
            t.row(vec![
                s.name.to_string(),
                label.to_string(),
                format!("{:.3}", m.success_rate()),
                format!("{:.0}", m.average_delay_secs() / 60.0),
                m.forwarding_ops.to_string(),
            ]);
        }
        // The section-VI future-work extension: node-to-node handoffs.
        let mut hybrid = HybridFlowRouter::new(
            FlowConfig::default(),
            s.trace.num_nodes(),
            s.trace.num_landmarks(),
            0.25,
        );
        let m = run_with_workload(&s.trace, &cfg, &wl, &mut hybrid).metrics;
        let _ = hybrid.name();
        t.row(vec![
            s.name.to_string(),
            format!("hybrid n2n ({} handoffs)", hybrid.handoffs()),
            format!("{:.3}", m.success_rate()),
            format!("{:.0}", m.average_delay_secs() / 60.0),
            m.forwarding_ops.to_string(),
        ]);
    }
    t.note("interval vs throughput delay models rank paths identically; differences come from TTL-feasibility scaling");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
    fn ablation_runs_all_variants() {
        let t = &ablation(true)[0];
        assert_eq!(t.len(), 6);
        // Every variant still delivers a reasonable share on the bus trace.
        for r in 0..t.len() {
            let s: f64 = t.cell(r, 2).parse().unwrap();
            assert!(s > 0.3, "variant {} success {s}", t.cell(r, 1));
        }
    }
}
