//! The §IV-D.5 communication scheduler under radio contention: sweep the
//! per-landmark per-unit radio budget and watch throughput degrade
//! gracefully (prioritizing minimum-remaining-TTL packets).

use crate::report::Table;
use crate::runners::parallel_map;
use crate::scenarios::Scenario;
use dtnflow_router::{FlowConfig, FlowRouter};
use dtnflow_sim::run_with_workload;

/// Radio-budget sweep on the bus scenario.
pub fn sched(quick: bool) -> Vec<Table> {
    let budgets: Vec<Option<u64>> = if quick {
        vec![None, Some(2_000), Some(250)]
    } else {
        vec![
            None,
            Some(8_000),
            Some(4_000),
            Some(2_000),
            Some(1_000),
            Some(500),
            Some(250),
        ]
    };
    let s = Scenario::bus();
    let mut t = Table::new(
        "sched",
        "Radio-budget scheduling (section IV-D.5): throughput under contention",
        &[
            "radio budget (pkts/unit/landmark)",
            "success rate",
            "avg delay (min)",
            "forwarding ops",
        ],
    );
    let runs = parallel_map(&budgets, |&budget| {
        let mut cfg = s.cfg(0x5C8ED);
        cfg.radio_budget_per_unit = budget;
        let wl = s.workload(&cfg);
        let mut router = FlowRouter::new(
            FlowConfig::default(),
            s.trace.num_nodes(),
            s.trace.num_landmarks(),
        );
        run_with_workload(&s.trace, &cfg, &wl, &mut router).metrics
    });
    for (budget, m) in budgets.iter().zip(&runs) {
        t.row(vec![
            budget.map_or("unlimited".to_string(), |b| b.to_string()),
            format!("{:.3}", m.success_rate()),
            format!("{:.0}", m.average_delay_secs() / 60.0),
            m.forwarding_ops.to_string(),
        ]);
    }
    t.note("upload cap K=50 per contact applies whenever the radio is contended");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
    fn tighter_budgets_reduce_throughput() {
        let t = &sched(true)[0];
        assert_eq!(t.len(), 3);
        let unlimited: f64 = t.cell(0, 1).parse().unwrap();
        let tight: f64 = t.cell(2, 1).parse().unwrap();
        assert!(
            unlimited > tight,
            "unlimited {unlimited} must beat tight {tight}"
        );
        assert!(tight > 0.0, "the scheduler must still deliver something");
    }
}
