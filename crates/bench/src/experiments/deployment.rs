//! The §V-C real-deployment experiment: Fig. 16(a) success rate and delay
//! distribution, Fig. 16(b) transit-link bandwidths, and Table X routing
//! tables, on the nine-phone / eight-building campus scenario where every
//! packet targets the library.

use crate::report::Table;
use crate::scenarios::Scenario;
use dtnflow_core::ids::LandmarkId;
use dtnflow_core::metrics::FiveNum;
use dtnflow_router::{FlowConfig, FlowRouter};
use dtnflow_sim::{run_with_workload, Workload};

/// Run the deployment and emit Fig. 16(a), Fig. 16(b) and Table X.
pub fn deploy() -> Vec<Table> {
    let s = Scenario::deployment();
    let mut cfg = s.cfg(0xDE16);
    // Every deployment packet gets its full TTL window (the paper reports
    // the absolute success rate of the whole deployment).
    cfg.gen_tail_margin = cfg.ttl;
    let sink = Scenario::deployment_sink();
    let wl = Workload::sink(&cfg, s.trace.num_landmarks(), s.trace.duration(), sink);
    let mut router = FlowRouter::new(
        FlowConfig::default(),
        s.trace.num_nodes(),
        s.trace.num_landmarks(),
    );
    let out = run_with_workload(&s.trace, &cfg, &wl, &mut router);

    // Fig. 16(a): success rate + delay five-number summary (minutes).
    let mut a = Table::new(
        "fig16a",
        "Deployment: success rate and delay distribution (Fig. 16a)",
        &["metric", "value"],
    );
    a.row(vec![
        "success rate".into(),
        format!("{:.3}", out.metrics.success_rate()),
    ]);
    let delays_min: Vec<f64> = out
        .metrics
        .delays
        .iter()
        .map(|&d| d as f64 / 60.0)
        .collect();
    if let Some(f) = FiveNum::of(&delays_min) {
        for (name, v) in [
            ("delay min (min)", f.min),
            ("delay q1 (min)", f.q1),
            ("delay mean (min)", f.mean),
            ("delay q3 (min)", f.q3),
            ("delay max (min)", f.max),
        ] {
            a.row(vec![name.into(), format!("{v:.0}")]);
        }
    }
    a.row(vec![
        "transits used".into(),
        s.trace.transits().len().to_string(),
    ]);
    a.note("paper: >82% success, >75% of packets within 1400 min, mean ~1000 min");

    // Fig. 16(b): the measured transit-link bandwidths above the paper's
    // display threshold (0.14 transits/unit).
    let mut b = Table::new(
        "fig16b",
        "Deployment: bandwidths of major transit links (Fig. 16b)",
        &["link", "bandwidth (transits/unit)"],
    );
    let n = s.trace.num_landmarks();
    let mut links: Vec<(LandmarkId, LandmarkId, f64)> = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let (li, lj) = (LandmarkId::from(i), LandmarkId::from(j));
                let bw = router.bandwidth(li, lj);
                if bw >= 0.14 {
                    links.push((li, lj, bw));
                }
            }
        }
    }
    links.sort_by(|x, y| y.2.total_cmp(&x.2).then((x.0, x.1).cmp(&(y.0, y.1))));
    for (li, lj, bw) in &links {
        b.row(vec![format!("{li}->{lj}"), format!("{bw:.2}")]);
    }
    b.note("l0 = library, l1/l2 = major departments: their links dominate");

    // Table X: routing tables of three landmarks.
    let mut x = Table::new(
        "tableX",
        "Deployment: routing tables on three landmarks (Table X)",
        &["landmark", "destination", "next hop", "delay (min)"],
    );
    for lm in [LandmarkId(3), LandmarkId(5), LandmarkId(7)] {
        for (dest, next, delay) in router.routing_rows(lm) {
            x.row(vec![
                lm.to_string(),
                dest.to_string(),
                next.to_string(),
                format!("{:.0}", delay / 60.0),
            ]);
        }
    }
    x.note("paper: next hops follow the highest-bandwidth links of Fig. 16b");

    vec![a, b, x]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
    fn deployment_reproduces_paper_shape() {
        let tables = deploy();
        let a = &tables[0];
        let success: f64 = a.cell(0, 1).parse().unwrap();
        assert!(success > 0.7, "success {success}");
        // Fig. 16(b) shows at least a few major links, topped by
        // library/department links.
        let b = &tables[1];
        assert!(b.len() >= 4, "links {}", b.len());
        let hot = ["l0", "l1", "l2"];
        let top_link = b.cell(0, 0);
        assert!(
            hot.iter().filter(|h| top_link.contains(*h)).count() >= 2,
            "top link {top_link}"
        );
        // Table X: every listed landmark can reach the library.
        let x = &tables[2];
        for lm in ["l3", "l5", "l7"] {
            assert!(
                (0..x.len()).any(|r| x.cell(r, 0) == lm && x.cell(r, 1) == "l0"),
                "{lm} must have a route to the library"
            );
        }
    }
}
