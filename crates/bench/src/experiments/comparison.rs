//! The main comparison sweeps: Figs. 11/12 (performance vs node memory)
//! and Figs. 13/14 (performance vs packet generation rate), each producing
//! the paper's four panels — success rate, average delay, forwarding cost,
//! total cost — for all six methods.

use crate::experiments::ObsCell;
use crate::report::Table;
use crate::runners::{
    parallel_map, run_method_observed_sharded_dispatch, run_method_with_faults_sharded_dispatch,
    Method, MethodOutcome,
};
use crate::scenarios::Scenario;
use dtnflow_core::config::SimConfig;
use dtnflow_obs::Snapshot;
use dtnflow_sim::{DispatchMode, FaultPlan};

/// One sweep: x-axis points × all six methods → the four metric tables,
/// plus (when `obs`) one observability snapshot per (point, method) cell.
/// With `obs` off no sink is ever attached, so the tables are byte-for-
/// byte what the untraced sweep produces — and they must stay identical
/// with `obs` on (`csv_determinism` enforces this).
fn sweep(
    scenario: &Scenario,
    fig: &str,
    xlabel: &str,
    points: &[(String, SimConfig)],
    obs: bool,
    shards: usize,
    mode: DispatchMode,
) -> (Vec<Table>, Vec<ObsCell>) {
    // Flatten (point, method) into independent jobs.
    let jobs: Vec<(usize, Method)> = (0..points.len())
        .flat_map(|p| Method::ALL.iter().map(move |&m| (p, m)))
        .collect();
    let outcomes: Vec<(MethodOutcome, Option<Snapshot>)> = parallel_map(&jobs, |&(p, m)| {
        let cfg = &points[p].1;
        let wl = scenario.workload(cfg);
        if obs {
            let (o, snap, _stats) = run_method_observed_sharded_dispatch(
                &scenario.trace,
                cfg,
                &wl,
                &FaultPlan::none(),
                m,
                shards,
                mode,
            );
            (o, Some(snap))
        } else {
            (
                run_method_with_faults_sharded_dispatch(
                    &scenario.trace,
                    cfg,
                    &wl,
                    &FaultPlan::none(),
                    m,
                    shards,
                    mode,
                ),
                None,
            )
        }
    });

    let methods: Vec<&str> = Method::ALL.iter().map(|m| m.name()).collect();
    let headers: Vec<&str> = std::iter::once(xlabel)
        .chain(methods.iter().copied())
        .collect();
    let panels = [
        ("a", "success rate"),
        ("b", "average delay (minutes)"),
        ("c", "forwarding cost (ops)"),
        ("d", "total cost (ops)"),
    ];
    let mut tables: Vec<Table> = panels
        .iter()
        .map(|(sub, metric)| {
            Table::new(
                format!("{fig}{sub}"),
                format!("{metric} vs {xlabel} ({})", scenario.name),
                &headers,
            )
        })
        .collect();

    for (p, (label, _)) in points.iter().enumerate() {
        let row_of = |f: &dyn Fn(&MethodOutcome) -> String| -> Vec<String> {
            std::iter::once(label.clone())
                .chain(
                    Method::ALL
                        .iter()
                        .enumerate()
                        .map(|(mi, _)| f(&outcomes[p * Method::ALL.len() + mi].0)),
                )
                .collect()
        };
        tables[0].row(row_of(&|o| format!("{:.3}", o.summary.success_rate)));
        tables[1].row(row_of(&|o| {
            format!("{:.0}", o.summary.average_delay_secs / 60.0)
        }));
        tables[2].row(row_of(&|o| o.summary.forwarding_ops.to_string()));
        tables[3].row(row_of(&|o| format!("{:.0}", o.summary.total_cost)));
    }
    let cells: Vec<ObsCell> = jobs
        .iter()
        .zip(&outcomes)
        .filter_map(|(&(p, m), (_, snap))| {
            snap.as_ref().map(|s| ObsCell {
                label: format!("{}/{}", points[p].0, m.name()),
                snapshot: s.clone(),
            })
        })
        .collect();
    (tables, cells)
}

fn memory_points(base: &SimConfig, seed: u64, quick: bool) -> Vec<(String, SimConfig)> {
    let kbs: Vec<u64> = if quick {
        vec![1_200, 2_000, 3_000]
    } else {
        (0..10).map(|i| 1_200 + 200 * i).collect()
    };
    kbs.into_iter()
        .map(|kb| {
            (
                kb.to_string(),
                base.clone().with_memory_kb(kb).with_seed(seed),
            )
        })
        .collect()
}

fn rate_points(base: &SimConfig, seed: u64, quick: bool) -> Vec<(String, SimConfig)> {
    let rates: Vec<f64> = if quick {
        vec![100.0, 500.0, 1_000.0]
    } else {
        (1..=10).map(|i| 100.0 * i as f64).collect()
    };
    rates
        .into_iter()
        .map(|r| {
            (
                format!("{r:.0}"),
                base.clone().with_packet_rate(r).with_seed(seed),
            )
        })
        .collect()
}

fn memory_campus(
    quick: bool,
    obs: bool,
    shards: usize,
    mode: DispatchMode,
) -> (Vec<Table>, Vec<ObsCell>) {
    let s = Scenario::campus();
    let pts = memory_points(&s.base_cfg, 0xF11, quick);
    sweep(&s, "fig11", "memory (kB)", &pts, obs, shards, mode)
}

fn memory_bus(
    quick: bool,
    obs: bool,
    shards: usize,
    mode: DispatchMode,
) -> (Vec<Table>, Vec<ObsCell>) {
    let s = Scenario::bus();
    let pts = memory_points(&s.base_cfg, 0xF12, quick);
    sweep(&s, "fig12", "memory (kB)", &pts, obs, shards, mode)
}

fn rate_campus(
    quick: bool,
    obs: bool,
    shards: usize,
    mode: DispatchMode,
) -> (Vec<Table>, Vec<ObsCell>) {
    let s = Scenario::campus();
    let pts = rate_points(&s.base_cfg, 0xF13, quick);
    sweep(&s, "fig13", "packets/landmark/day", &pts, obs, shards, mode)
}

fn rate_bus(
    quick: bool,
    obs: bool,
    shards: usize,
    mode: DispatchMode,
) -> (Vec<Table>, Vec<ObsCell>) {
    let s = Scenario::bus();
    let pts = rate_points(&s.base_cfg, 0xF14, quick);
    sweep(&s, "fig14", "packets/landmark/day", &pts, obs, shards, mode)
}

/// Fig. 11: campus, memory 1200..=3000 kB, rate 500.
pub fn memory_sweep_campus(quick: bool) -> Vec<Table> {
    memory_campus(quick, false, 1, DispatchMode::default()).0
}

/// Fig. 11 under a shard runtime; byte-identical for every shard count.
pub fn memory_sweep_campus_sharded(quick: bool, shards: usize) -> Vec<Table> {
    memory_sweep_campus_sharded_dispatch(quick, shards, DispatchMode::default())
}

/// [`memory_sweep_campus_sharded`] with an explicit [`DispatchMode`];
/// byte-identical across modes (DESIGN.md §15).
pub fn memory_sweep_campus_sharded_dispatch(
    quick: bool,
    shards: usize,
    mode: DispatchMode,
) -> Vec<Table> {
    memory_campus(quick, false, shards, mode).0
}

/// Fig. 11 with per-cell observability snapshots.
pub fn memory_sweep_campus_obs(quick: bool) -> (Vec<Table>, Vec<ObsCell>) {
    memory_campus(quick, true, 1, DispatchMode::default())
}

/// Fig. 11 with snapshots, under a shard runtime. Tables and snapshots
/// are byte-identical for every shard count (`shard_differential` suite).
pub fn memory_sweep_campus_obs_sharded(quick: bool, shards: usize) -> (Vec<Table>, Vec<ObsCell>) {
    memory_sweep_campus_obs_sharded_dispatch(quick, shards, DispatchMode::default())
}

/// [`memory_sweep_campus_obs_sharded`] with an explicit [`DispatchMode`].
pub fn memory_sweep_campus_obs_sharded_dispatch(
    quick: bool,
    shards: usize,
    mode: DispatchMode,
) -> (Vec<Table>, Vec<ObsCell>) {
    memory_campus(quick, true, shards, mode)
}

/// Fig. 12: bus, memory 1200..=3000 kB, rate 500.
pub fn memory_sweep_bus(quick: bool) -> Vec<Table> {
    memory_bus(quick, false, 1, DispatchMode::default()).0
}

/// Fig. 12 under a shard runtime; byte-identical for every shard count.
pub fn memory_sweep_bus_sharded(quick: bool, shards: usize) -> Vec<Table> {
    memory_sweep_bus_sharded_dispatch(quick, shards, DispatchMode::default())
}

/// [`memory_sweep_bus_sharded`] with an explicit [`DispatchMode`].
pub fn memory_sweep_bus_sharded_dispatch(
    quick: bool,
    shards: usize,
    mode: DispatchMode,
) -> Vec<Table> {
    memory_bus(quick, false, shards, mode).0
}

/// Fig. 12 with per-cell observability snapshots.
pub fn memory_sweep_bus_obs(quick: bool) -> (Vec<Table>, Vec<ObsCell>) {
    memory_bus(quick, true, 1, DispatchMode::default())
}

/// Fig. 12 with snapshots, under a shard runtime.
pub fn memory_sweep_bus_obs_sharded(quick: bool, shards: usize) -> (Vec<Table>, Vec<ObsCell>) {
    memory_sweep_bus_obs_sharded_dispatch(quick, shards, DispatchMode::default())
}

/// [`memory_sweep_bus_obs_sharded`] with an explicit [`DispatchMode`].
pub fn memory_sweep_bus_obs_sharded_dispatch(
    quick: bool,
    shards: usize,
    mode: DispatchMode,
) -> (Vec<Table>, Vec<ObsCell>) {
    memory_bus(quick, true, shards, mode)
}

/// Fig. 13: campus, rate 100..=1000, memory 2000 kB.
pub fn rate_sweep_campus(quick: bool) -> Vec<Table> {
    rate_campus(quick, false, 1, DispatchMode::default()).0
}

/// Fig. 13 under a shard runtime; byte-identical for every shard count.
pub fn rate_sweep_campus_sharded(quick: bool, shards: usize) -> Vec<Table> {
    rate_sweep_campus_sharded_dispatch(quick, shards, DispatchMode::default())
}

/// [`rate_sweep_campus_sharded`] with an explicit [`DispatchMode`].
pub fn rate_sweep_campus_sharded_dispatch(
    quick: bool,
    shards: usize,
    mode: DispatchMode,
) -> Vec<Table> {
    rate_campus(quick, false, shards, mode).0
}

/// Fig. 13 with per-cell observability snapshots.
pub fn rate_sweep_campus_obs(quick: bool) -> (Vec<Table>, Vec<ObsCell>) {
    rate_campus(quick, true, 1, DispatchMode::default())
}

/// Fig. 13 with snapshots, under a shard runtime.
pub fn rate_sweep_campus_obs_sharded(quick: bool, shards: usize) -> (Vec<Table>, Vec<ObsCell>) {
    rate_sweep_campus_obs_sharded_dispatch(quick, shards, DispatchMode::default())
}

/// [`rate_sweep_campus_obs_sharded`] with an explicit [`DispatchMode`].
pub fn rate_sweep_campus_obs_sharded_dispatch(
    quick: bool,
    shards: usize,
    mode: DispatchMode,
) -> (Vec<Table>, Vec<ObsCell>) {
    rate_campus(quick, true, shards, mode)
}

/// Fig. 14: bus, rate 100..=1000, memory 2000 kB.
pub fn rate_sweep_bus(quick: bool) -> Vec<Table> {
    rate_bus(quick, false, 1, DispatchMode::default()).0
}

/// Fig. 14 under a shard runtime; byte-identical for every shard count.
pub fn rate_sweep_bus_sharded(quick: bool, shards: usize) -> Vec<Table> {
    rate_sweep_bus_sharded_dispatch(quick, shards, DispatchMode::default())
}

/// [`rate_sweep_bus_sharded`] with an explicit [`DispatchMode`].
pub fn rate_sweep_bus_sharded_dispatch(
    quick: bool,
    shards: usize,
    mode: DispatchMode,
) -> Vec<Table> {
    rate_bus(quick, false, shards, mode).0
}

/// Fig. 14 with per-cell observability snapshots.
pub fn rate_sweep_bus_obs(quick: bool) -> (Vec<Table>, Vec<ObsCell>) {
    rate_bus(quick, true, 1, DispatchMode::default())
}

/// Fig. 14 with snapshots, under a shard runtime.
pub fn rate_sweep_bus_obs_sharded(quick: bool, shards: usize) -> (Vec<Table>, Vec<ObsCell>) {
    rate_sweep_bus_obs_sharded_dispatch(quick, shards, DispatchMode::default())
}

/// [`rate_sweep_bus_obs_sharded`] with an explicit [`DispatchMode`].
pub fn rate_sweep_bus_obs_sharded_dispatch(
    quick: bool,
    shards: usize,
    mode: DispatchMode,
) -> (Vec<Table>, Vec<ObsCell>) {
    rate_bus(quick, true, shards, mode)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A light end-to-end run of the sweep machinery on the bus scenario
    /// (full fig12/fig14 runs are exercised by the experiments binary).
    #[test]
    #[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
    fn quick_bus_memory_sweep_has_paper_shape() {
        let tables = memory_sweep_bus(true);
        assert_eq!(tables.len(), 4);
        let succ = &tables[0];
        assert_eq!(succ.len(), 3);
        let flow_col = succ.column("DTN-FLOW").unwrap();
        for r in 0..succ.len() {
            let flow: f64 = succ.cell(r, flow_col).parse().unwrap();
            // DTN-FLOW delivers most packets at every memory point.
            assert!(flow > 0.5, "row {r}: flow {flow}");
            // And beats every baseline at the smallest memory.
            if r == 0 {
                for m in 2..=6 {
                    let other: f64 = succ.cell(r, m).parse().unwrap();
                    assert!(flow > other, "flow {flow} vs col {m} {other}");
                }
            }
        }
    }
}
