//! Trace analyses: Table I (characteristics), Fig. 2 (visiting
//! distribution, O1), Fig. 3 (transit-link bandwidth distribution, O2/O3),
//! Fig. 4 (bandwidth over time, O4).

use crate::report::Table;
use crate::scenarios::Scenario;
use dtnflow_mobility::stats;
use dtnflow_mobility::Trace;

fn both() -> Vec<Scenario> {
    vec![Scenario::campus(), Scenario::bus()]
}

/// Table I: key characteristics of the (synthetic) mobility traces.
pub fn table1() -> Vec<Table> {
    let mut t = Table::new(
        "table1",
        "Characteristics of mobility traces (Table I)",
        &[
            "trace",
            "nodes",
            "landmarks",
            "days",
            "visits",
            "transits",
            "transits/node/day",
        ],
    );
    for s in both()
        .iter()
        .chain(std::iter::once(&Scenario::deployment()))
    {
        let c = stats::characteristics(&s.trace);
        t.row(vec![
            c.name.clone(),
            c.nodes.to_string(),
            c.landmarks.to_string(),
            format!("{:.1}", c.duration_days),
            c.visits.to_string(),
            c.transits.to_string(),
            format!("{:.2}", c.transit_rate),
        ]);
    }
    t.note("synthetic substitutes; paper: DART 320/159/119d, DNET 34/18/26d");
    vec![t]
}

/// Fig. 2: per-node visit counts of the five most visited landmarks,
/// sorted descending — only a small portion of nodes visit each landmark
/// frequently (O1).
pub fn fig2() -> Vec<Table> {
    let mut out = Vec::new();
    for (sub, s) in [("a", Scenario::campus()), ("b", Scenario::bus())] {
        let mut t = Table::new(
            format!("fig2{sub}"),
            format!("Visiting distribution of top-5 landmarks ({})", s.name),
            &[
                "landmark",
                "visits",
                "top-20% nodes' share",
                "node visit counts (desc, first 12)",
            ],
        );
        let pop = stats::landmark_popularity(&s.trace);
        for &(lm, total) in pop.iter().take(5) {
            let dist = stats::visiting_distribution(&s.trace, lm);
            let conc = stats::visit_concentration(&s.trace, lm, 0.2);
            let head: Vec<String> = dist.iter().take(12).map(|c| c.to_string()).collect();
            t.row(vec![
                lm.to_string(),
                total.to_string(),
                format!("{conc:.2}"),
                head.join(" "),
            ]);
        }
        t.note("O1: a small portion of nodes contributes most visits");
        out.push(t);
    }
    out
}

/// Fig. 3: transit-link bandwidths in decreasing order, with matching-link
/// symmetry (O2: skewed; O3: symmetric).
pub fn fig3() -> Vec<Table> {
    let mut out = Vec::new();
    for (sub, s) in [("a", Scenario::campus()), ("b", Scenario::bus())] {
        let unit = s.base_cfg.time_unit;
        let b = stats::link_bandwidths(&s.trace, unit);
        let links = b.ordered_links();
        let mut t = Table::new(
            format!("fig3{sub}"),
            format!("Bandwidth distribution of transit links ({})", s.name),
            &[
                "rank",
                "link",
                "bandwidth (transits/unit)",
                "matching direction",
            ],
        );
        for (i, &(from, to, bw)) in links.iter().take(20).enumerate() {
            t.row(vec![
                (i + 1).to_string(),
                format!("{from}->{to}"),
                format!("{bw:.2}"),
                format!("{:.2}", b.get(to, from)),
            ]);
        }
        t.note(format!(
            "{} links with positive bandwidth; matching-link symmetry correlation {:.3} (O3)",
            links.len(),
            b.matching_link_symmetry()
        ));
        let median = links[links.len() / 2].2;
        t.note(format!(
            "top link / median link bandwidth = {:.1} (O2 skew)",
            links[0].2 / median.max(1e-9)
        ));
        out.push(t);
    }
    out
}

fn timeline_table(sub: &str, s: &Scenario, trace: &Trace) -> Table {
    let unit = s.base_cfg.time_unit;
    let tl = stats::bandwidth_timeline(trace, unit);
    let top = tl.top_links(3);
    let mut t = Table::new(
        format!("fig4{sub}"),
        format!("Per-unit transit counts of top-3 links ({})", s.name),
        &["unit", "link1", "link2", "link3"],
    );
    let series: Vec<Vec<u32>> = top.iter().map(|&(f, to, _)| tl.series(f, to)).collect();
    for u in 0..tl.num_units() {
        t.row(vec![
            u.to_string(),
            series.first().map(|s| s[u].to_string()).unwrap_or_default(),
            series.get(1).map(|s| s[u].to_string()).unwrap_or_default(),
            series.get(2).map(|s| s[u].to_string()).unwrap_or_default(),
        ]);
    }
    for (i, &(f, to, total)) in top.iter().enumerate() {
        t.note(format!(
            "link{} = {f}->{to} (total {total}, stability CV {:.2})",
            i + 1,
            tl.stability(f, to)
        ));
    }
    t
}

/// Fig. 4: per-time-unit bandwidth of the three highest-bandwidth links.
/// The campus series dips during the holiday ranges; the bus series does
/// not (O4).
pub fn fig4() -> Vec<Table> {
    let campus = Scenario::campus();
    let bus = Scenario::bus();
    let mut a = timeline_table("a", &campus, &campus.trace);
    a.note("holiday dips expected around units 7-8 and 14-15 (days 21-24, 42-45)");
    let b = timeline_table("b", &bus, &bus.trace);
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_covers_three_traces() {
        let t = &table1()[0];
        assert_eq!(t.len(), 3);
        assert_eq!(t.cell(0, 0), "campus");
        assert_eq!(t.cell(1, 0), "bus");
        assert_eq!(t.cell(2, 0), "deployment");
    }

    #[test]
    fn fig2_shows_concentration() {
        let tables = fig2();
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.len(), 5);
            // O1: the top-20% share is high for top campus landmarks.
            let share: f64 = t.cell(0, 2).parse().unwrap();
            assert!(share > 0.2, "share {share}");
        }
    }

    #[test]
    fn fig3_links_sorted_desc() {
        for t in fig3() {
            let col = t.column("bandwidth (transits/unit)").unwrap();
            let vals: Vec<f64> = (0..t.len())
                .map(|r| t.cell(r, col).parse().unwrap())
                .collect();
            assert!(vals.windows(2).all(|w| w[0] >= w[1]));
        }
    }

    #[test]
    fn fig4_has_units_for_both_traces() {
        let tables = fig4();
        assert_eq!(tables.len(), 2);
        assert!(tables[0].len() >= 14, "campus units {}", tables[0].len());
        assert!(tables[1].len() >= 35, "bus units {}", tables[1].len());
    }
}
