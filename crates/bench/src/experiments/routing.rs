//! Fig. 7 (the distance-vector update worked example / Table IV) and
//! Fig. 8 (routing-table coverage and stability over ten observation
//! points).

use crate::report::Table;
use crate::scenarios::Scenario;
use dtnflow_core::ids::LandmarkId;
use dtnflow_router::{FlowConfig, FlowRouter, RoutingTable, StoredVector};
use dtnflow_sim::run_with_workload;

fn vector(num: usize, pairs: &[(u16, f64)], seq: u64) -> StoredVector {
    let mut delays = vec![f64::INFINITY; num];
    for &(d, v) in pairs {
        delays[d as usize] = v;
    }
    StoredVector { seq, delays }
}

/// Fig. 7 / Table IV: the paper's literal routing-table update example.
/// Landmark l0 has neighbours l1 (link 8), l7 (link 6), l6 (link 7);
/// receiving l6's vector must produce the paper's final entries.
pub fn fig7() -> Vec<Table> {
    let num = 10;
    let mut rt = RoutingTable::new(LandmarkId(0), num);
    let link = |l: LandmarkId| -> f64 {
        match l.0 {
            1 => 8.0,
            7 => 6.0,
            6 => 7.0,
            _ => f64::INFINITY,
        }
    };
    rt.receive(LandmarkId(1), vector(num, &[(1, 0.0)], 1));
    rt.receive(
        LandmarkId(7),
        vector(num, &[(7, 0.0), (4, 14.0), (9, 28.0)], 1),
    );
    rt.recompute(&link);

    let mut before = Table::new(
        "fig7-before",
        "Routing table on l0 before l6's vector (Fig. 7 initial state)",
        &["destination", "next hop", "overall delay"],
    );
    for (dest, next, delay) in rt.rows() {
        before.row(vec![
            dest.to_string(),
            next.to_string(),
            format!("{delay:.0}"),
        ]);
    }

    rt.receive(
        LandmarkId(6),
        vector(num, &[(6, 0.0), (3, 10.0), (9, 30.0), (4, 11.0)], 1),
    );
    rt.recompute(&link);

    let mut after = Table::new(
        "fig7-after",
        "Routing table on l0 after l6's vector (Fig. 7 result)",
        &["destination", "next hop", "overall delay"],
    );
    for (dest, next, delay) in rt.rows() {
        after.row(vec![
            dest.to_string(),
            next.to_string(),
            format!("{delay:.0}"),
        ]);
    }
    after.note("paper's final entries: (1,1,8) (3,6,17) (4,6,18) (7,7,6) (9,7,34)");
    vec![before, after]
}

/// Fig. 8: average routing-table coverage and stability at ten evenly
/// spaced observation points, per trace.
pub fn fig8() -> Vec<Table> {
    let mut out = Vec::new();
    for s in [Scenario::campus(), Scenario::bus()] {
        let mut cfg = s.cfg(0xF168);
        cfg.observe_points = 10;
        // Routing-table dynamics do not depend on the packet workload;
        // keep it light so the experiment is fast.
        cfg.packets_per_landmark_per_day = 1.0;
        let wl = s.workload(&cfg);
        let mut router = FlowRouter::new(
            FlowConfig::default(),
            s.trace.num_nodes(),
            s.trace.num_landmarks(),
        );
        let _ = run_with_workload(&s.trace, &cfg, &wl, &mut router);
        let mut t = Table::new(
            format!("fig8-{}", s.name),
            format!("Routing table coverage and stability ({})", s.name),
            &["observation", "avg coverage", "avg stability"],
        );
        for row in router.observations() {
            t.row(vec![
                (row.index + 1).to_string(),
                format!("{:.3}", row.avg_coverage),
                format!("{:.3}", row.avg_stability),
            ]);
        }
        t.note("paper: coverage near 1 and stability near 1 after the first points");
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_matches_paper_entries() {
        let tables = fig7();
        let after = &tables[1];
        let find = |dest: &str| -> (String, String) {
            for r in 0..after.len() {
                if after.cell(r, 0) == dest {
                    return (after.cell(r, 1).to_string(), after.cell(r, 2).to_string());
                }
            }
            panic!("destination {dest} missing");
        };
        assert_eq!(find("l1"), ("l1".to_string(), "8".to_string()));
        assert_eq!(find("l3"), ("l6".to_string(), "17".to_string()));
        assert_eq!(find("l4"), ("l6".to_string(), "18".to_string()));
        assert_eq!(find("l7"), ("l7".to_string(), "6".to_string()));
        assert_eq!(find("l9"), ("l7".to_string(), "34".to_string()));
        // Before the update, l3 was unknown and l4 went via l7 at 20.
        let before = &tables[0];
        assert!(!(0..before.len()).any(|r| before.cell(r, 0) == "l3"));
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
    fn fig8_converges() {
        for t in fig8() {
            assert_eq!(t.len(), 10);
            let cov: f64 = t.cell(t.len() - 1, 1).parse().unwrap();
            let stab: f64 = t.cell(t.len() - 1, 2).parse().unwrap();
            assert!(cov > 0.8, "{}: coverage {cov}", t.id);
            // Our per-unit transit counts are smaller than the real
            // traces', so tables stay somewhat noisier than the paper's
            // near-1 stability.
            assert!(stab > 0.55, "{}: stability {stab}", t.id);
        }
    }
}
