//! Fig. 6: transit-prediction accuracy — the order-k comparison (a) and
//! the per-node five-number summary for the order-1 predictor (b).

use crate::report::Table;
use crate::scenarios::Scenario;
use dtnflow_predictor::{accuracy_five_num, best_k, evaluate_order_k};

/// Fig. 6(a): mean per-node accuracy of the order-k predictor, k = 1..3;
/// Fig. 6(b): min / q1 / mean / q3 / max of order-1 per-node accuracies.
pub fn fig6() -> Vec<Table> {
    let scenarios = [Scenario::campus(), Scenario::bus()];

    let mut a = Table::new(
        "fig6a",
        "Average accuracy of the order-k Markov predictor (Fig. 6a)",
        &["trace", "k=1", "k=2", "k=3", "best k"],
    );
    for s in &scenarios {
        let accs: Vec<f64> = (1..=3)
            .map(|k| {
                evaluate_order_k(&s.trace, k)
                    .mean_node_accuracy()
                    .unwrap_or(0.0)
            })
            .collect();
        a.row(vec![
            s.name.to_string(),
            format!("{:.3}", accs[0]),
            format!("{:.3}", accs[1]),
            format!("{:.3}", accs[2]),
            best_k(&s.trace, &[1, 2, 3]).to_string(),
        ]);
    }
    a.note("paper: k=1 best on both traces due to missing records (DART 0.77, DNET 0.66)");

    let mut b = Table::new(
        "fig6b",
        "Per-node accuracy of the order-1 predictor (Fig. 6b)",
        &["trace", "min", "q1", "mean", "q3", "max"],
    );
    for s in &scenarios {
        let eval = evaluate_order_k(&s.trace, 1);
        let f = accuracy_five_num(&eval).expect("nodes produced predictions");
        b.row(vec![
            s.name.to_string(),
            format!("{:.3}", f.min),
            format!("{:.3}", f.q1),
            format!("{:.3}", f.mean),
            format!("{:.3}", f.q3),
            format!("{:.3}", f.max),
        ]);
    }
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order1_is_best_on_both_traces() {
        let tables = fig6();
        let a = &tables[0];
        for row in 0..a.len() {
            assert_eq!(a.cell(row, 4), "1", "k=1 must win on {}", a.cell(row, 0));
            let k1: f64 = a.cell(row, 1).parse().unwrap();
            let k3: f64 = a.cell(row, 3).parse().unwrap();
            assert!(k1 > k3);
        }
        // Campus above bus, as in the paper.
        let campus_k1: f64 = a.cell(0, 1).parse().unwrap();
        let bus_k1: f64 = a.cell(1, 1).parse().unwrap();
        assert!(campus_k1 > bus_k1);
    }

    #[test]
    fn five_num_is_ordered() {
        let tables = fig6();
        let b = &tables[1];
        for row in 0..b.len() {
            let vals: Vec<f64> = (1..=5).map(|c| b.cell(row, c).parse().unwrap()).collect();
            assert!(vals[0] <= vals[1] && vals[1] <= vals[3] && vals[3] <= vals[4]);
        }
    }
}
