//! Wall-clock timing for bench progress reporting.
//!
//! This is the one place the bench harness is allowed to read the real
//! clock. Simulated outcomes must never depend on wall time — anything
//! outcome-affecting uses `SimTime` and seeded RNG streams — so the
//! ambient `Instant::now` read is quarantined here behind an explicitly
//! waived helper instead of being sprinkled through experiment code.

use std::time::Instant;

/// A started wall-clock stopwatch. Only for operator-facing progress
/// lines; never feed its readings back into a simulation.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch {
            // detlint: allow(D2, reason = "bench-only wall-clock for progress output; never reaches simulation state")
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone_nonnegative() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed_secs() >= 0.0);
    }
}
