//! Byte-equal CSV determinism: running the same experiment twice in one
//! process must produce identical bytes. This is the regression net for
//! the detlint D1 rule — `std::collections::HashMap` seeds its hasher
//! per *instance*, so any iteration order leaking into results shows up
//! as a diff between two in-process runs.

use dtnflow_bench::experiments::{run_experiment, run_experiment_with_obs};

/// All tables of one experiment, concatenated as CSV bytes.
fn csv_of(id: &str, quick: bool) -> String {
    run_experiment(id, quick)
        .iter()
        .map(|t| format!("# {}\n{}", t.id, t.to_csv()))
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_byte_equal(id: &str, quick: bool) {
    let first = csv_of(id, quick);
    let second = csv_of(id, quick);
    assert!(
        first == second,
        "experiment `{id}` is not run-to-run deterministic: CSV outputs differ"
    );
    assert!(!first.is_empty(), "experiment `{id}` produced no CSV");
}

/// Cheap analysis experiments: always run, even in debug builds.
#[test]
fn trace_analysis_and_routing_are_byte_deterministic() {
    assert_byte_equal("table1", true);
    assert_byte_equal("fig7", true);
}

/// The full fault-injection sweep (PR 1) through the same net.
#[test]
#[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
fn resilience_is_byte_deterministic() {
    assert_byte_equal("resilience", true);
}

/// Observability must not perturb results: the experiment tables with a
/// flight recorder attached are byte-identical to the plain run, and the
/// obs run actually records events.
fn assert_obs_transparent(id: &str) {
    let plain = csv_of(id, true);
    let (tables, cells) = run_experiment_with_obs(id, true);
    let observed = tables
        .iter()
        .map(|t| format!("# {}\n{}", t.id, t.to_csv()))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        plain == observed,
        "experiment `{id}`: tables differ with tracing on vs off"
    );
    assert!(!cells.is_empty(), "experiment `{id}` returned no obs cells");
    assert!(
        cells.iter().all(|c| c.snapshot.events_recorded > 0),
        "experiment `{id}`: a traced cell recorded no events"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
fn fig12_tables_identical_with_tracing_on() {
    assert_obs_transparent("fig12");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
fn resilience_tables_identical_with_tracing_on() {
    assert_obs_transparent("resilience");
}
