//! Byte-equal CSV determinism: running the same experiment twice in one
//! process must produce identical bytes. This is the regression net for
//! the detlint D1 rule — `std::collections::HashMap` seeds its hasher
//! per *instance*, so any iteration order leaking into results shows up
//! as a diff between two in-process runs.

use dtnflow_bench::experiments::run_experiment;

/// All tables of one experiment, concatenated as CSV bytes.
fn csv_of(id: &str, quick: bool) -> String {
    run_experiment(id, quick)
        .iter()
        .map(|t| format!("# {}\n{}", t.id, t.to_csv()))
        .collect::<Vec<_>>()
        .join("\n")
}

fn assert_byte_equal(id: &str, quick: bool) {
    let first = csv_of(id, quick);
    let second = csv_of(id, quick);
    assert!(
        first == second,
        "experiment `{id}` is not run-to-run deterministic: CSV outputs differ"
    );
    assert!(!first.is_empty(), "experiment `{id}` produced no CSV");
}

/// Cheap analysis experiments: always run, even in debug builds.
#[test]
fn trace_analysis_and_routing_are_byte_deterministic() {
    assert_byte_equal("table1", true);
    assert_byte_equal("fig7", true);
}

/// The full fault-injection sweep (PR 1) through the same net.
#[test]
#[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
fn resilience_is_byte_deterministic() {
    assert_byte_equal("resilience", true);
}
