//! The differential battery proving the sharded engine byte-equal to the
//! sequential one (DESIGN.md §13): same CSV cells, same canonical
//! metrics + packet encoding, same observability report, for every
//! shard count and partition shape — including adversarial ones — and
//! across checkpoint/restore cycles that change the shard count
//! mid-run.
//!
//! Debug builds exercise the tier-1 tiny cell; the release-gated tests
//! at the bottom pin the full fig11 quick sweep against the committed
//! sequential goldens at shards ∈ {1, 2, 4, 8}.
//!
//! Every battery runs under *both* in-unit dispatch modes (DESIGN.md
//! §15): unit-boundary parallelism only, and shard-local batch dispatch
//! between boundaries. The goldens never know which mode produced them.

use dtnflow_bench::chaos::{run_segment, run_straight, ChaosInputs, SegmentEnd};
use dtnflow_bench::experiments::{
    run_experiment_sharded_dispatch, run_experiment_with_obs_sharded_dispatch,
};
use dtnflow_obs::{Recorder, DEFAULT_RING_CAPACITY};
use dtnflow_router::FlowRouter;
use dtnflow_sim::{DispatchMode, FaultPlan, ShardExec, ShardPlan, SimSession};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const MODES: [DispatchMode; 2] = [DispatchMode::Boundary, DispatchMode::InUnit];

/// Run the tiny cell under an explicit shard plan (any shape, not just
/// the contiguous ones `ChaosInputs::shards` builds) and collect the
/// comparable artifacts: canonical outcome debug + snapshot JSON.
fn run_tiny_with_plan(inp: &ChaosInputs, plan: ShardPlan, exec: ShardExec) -> (String, String) {
    let mut router = FlowRouter::new(
        inp.flow.clone(),
        inp.trace.num_nodes(),
        inp.trace.num_landmarks(),
    );
    let mut session = SimSession::start_sharded(
        &inp.trace,
        &inp.cfg,
        &inp.workload,
        &inp.plan,
        &mut router,
        Some(Box::new(Recorder::new(DEFAULT_RING_CAPACITY))),
        plan,
        exec,
    );
    session.run_to_end();
    let out = session.finish();
    let state = format!("{:?}\n{:?}", out.metrics, out.packets);
    let obs = out
        .trace
        .and_then(Recorder::downcast)
        .map(|r| r.snapshot().to_json())
        .unwrap_or_default();
    (state, obs)
}

#[test]
fn tiny_cell_is_byte_identical_across_shard_counts() {
    let baseline = run_straight(
        &ChaosInputs::tiny(7, FaultPlan::none()).with_dispatch(DispatchMode::Boundary),
    )
    .expect("straight run");
    assert!(baseline.conservation_holds());
    for mode in MODES {
        for shards in SHARD_COUNTS {
            let inp = ChaosInputs::tiny(7, FaultPlan::none())
                .with_shards(shards)
                .with_dispatch(mode);
            let sharded = run_straight(&inp).expect("sharded run");
            assert!(
                sharded.matches(&baseline),
                "shards={shards} mode={mode:?} diverged:\n seq csv {}\n shard csv {}",
                baseline.csv_row,
                sharded.csv_row
            );
        }
    }
}

#[test]
fn tiny_cell_with_faults_is_byte_identical_across_shard_counts() {
    let base = ChaosInputs::tiny(13, FaultPlan::none());
    let plan = dtnflow_bench::chaos::outage_plan(&base.trace, base.cfg.time_unit.secs(), 13);
    assert!(!plan.station_outages.is_empty());
    let inp = ChaosInputs { plan, ..base }.with_dispatch(DispatchMode::Boundary);
    let baseline = run_straight(&inp).expect("straight run");
    for mode in MODES {
        for shards in [2, 8] {
            let sharded_inp = ChaosInputs::tiny(13, FaultPlan::none())
                .with_shards(shards)
                .with_dispatch(mode);
            let sharded_inp = ChaosInputs {
                plan: inp.plan.clone(),
                ..sharded_inp
            };
            let sharded = run_straight(&sharded_inp).expect("sharded run");
            assert!(
                sharded.matches(&baseline),
                "faulty run diverged at shards={shards} mode={mode:?}"
            );
        }
    }
}

/// Adversarial partition maps: everything piled on one shard of many,
/// a reversed striping, and more shards than landmarks. All must still
/// reproduce the sequential artifacts exactly.
#[test]
fn adversarial_partitions_are_byte_identical() {
    let inp = ChaosInputs::tiny(7, FaultPlan::none());
    let n = inp.trace.num_landmarks();
    let seq = run_tiny_with_plan(&inp, ShardPlan::single(n), ShardExec::sequential());
    let plans = [
        // All landmarks on the last shard of eight; seven shards idle.
        ShardPlan::from_assignment(vec![7; n], 8).expect("valid plan"),
        // Reverse striping: landmark i on shard (n - 1 - i) % 3.
        ShardPlan::from_assignment((0..n).map(|i| (n - 1 - i) % 3).collect(), 3)
            .expect("valid plan"),
        // Far more shards than landmarks.
        ShardPlan::contiguous(n, 16),
        ShardPlan::round_robin(n, 5),
    ];
    for plan in plans {
        let shards = plan.num_shards();
        let groups = format!("{:?}", plan.groups());
        let got = run_tiny_with_plan(&inp, plan, ShardExec::new(shards));
        assert_eq!(
            got, seq,
            "adversarial plan diverged (shards={shards}, groups={groups})"
        );
    }
}

/// Checkpoints are shard-count-agnostic: a run checkpointed under one
/// shard count restores under any other and still reproduces the
/// uninterrupted sequential run byte for byte.
#[test]
fn checkpoint_and_restore_across_shard_counts_is_byte_identical() {
    let baseline = run_straight(&ChaosInputs::tiny(7, FaultPlan::none())).expect("straight run");
    let m = ChaosInputs::tiny(7, FaultPlan::none()).max_unit();
    // The checkpoint is also dispatch-mode-agnostic: write under one
    // mode, restore under the other, in both directions.
    for (ckpt_shards, resume_shards, ckpt_mode, resume_mode) in [
        (1, 8, DispatchMode::InUnit, DispatchMode::InUnit),
        (8, 1, DispatchMode::InUnit, DispatchMode::Boundary),
        (2, 4, DispatchMode::Boundary, DispatchMode::InUnit),
        (4, 2, DispatchMode::Boundary, DispatchMode::Boundary),
    ] {
        let writer = ChaosInputs::tiny(7, FaultPlan::none())
            .with_shards(ckpt_shards)
            .with_dispatch(ckpt_mode);
        let bytes = match run_segment(&writer, None, Some(m / 2)).expect("segment runs") {
            SegmentEnd::Paused(b) => b,
            SegmentEnd::Finished(_) => panic!("tiny run ended before unit {}", m / 2),
        };
        let reader = ChaosInputs::tiny(7, FaultPlan::none())
            .with_shards(resume_shards)
            .with_dispatch(resume_mode);
        let art = match run_segment(&reader, Some(&bytes), None).expect("resume runs") {
            SegmentEnd::Finished(a) => a,
            SegmentEnd::Paused(_) => panic!("unkilled resume paused"),
        };
        assert!(art.conservation_holds());
        assert!(
            art.matches(&baseline),
            "checkpoint at shards={ckpt_shards}/{ckpt_mode:?}, restore at \
             shards={resume_shards}/{resume_mode:?} diverged"
        );
    }
}

// ---- release-gated full-scale differentials ---------------------------

const GOLDENS: [(&str, &str); 4] = [
    ("fig11a", include_str!("goldens/fig11a_quick.csv")),
    ("fig11b", include_str!("goldens/fig11b_quick.csv")),
    ("fig11c", include_str!("goldens/fig11c_quick.csv")),
    ("fig11d", include_str!("goldens/fig11d_quick.csv")),
];

/// The acceptance differential: the fig11 quick sweep at every shard
/// count, in both dispatch modes, reproduces the committed *sequential*
/// goldens byte for byte.
#[test]
#[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
fn fig11_quick_matches_sequential_goldens_at_every_shard_count() {
    for mode in MODES {
        for shards in SHARD_COUNTS {
            let tables = run_experiment_sharded_dispatch("fig11", true, shards, mode);
            for (id, want) in GOLDENS {
                let table = tables
                    .iter()
                    .find(|t| t.id == id)
                    .unwrap_or_else(|| panic!("fig11 produced no table `{id}`"));
                let got = table.to_csv();
                assert!(
                    got == want,
                    "table `{id}` at shards={shards} mode={mode:?} drifted from \
                     the sequential golden:\n--- golden\n{want}\n--- got\n{got}"
                );
            }
        }
    }
}

/// Observability must be equally shard-blind: per-cell snapshots of the
/// traced fig11 sweep are identical between shards=1 (boundary mode) and
/// shards=4 with in-unit dispatch on.
#[test]
#[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
fn fig11_quick_obs_snapshots_are_shard_blind() {
    let (seq_tables, seq_cells) =
        run_experiment_with_obs_sharded_dispatch("fig11", true, 1, DispatchMode::Boundary);
    let (shd_tables, shd_cells) =
        run_experiment_with_obs_sharded_dispatch("fig11", true, 4, DispatchMode::InUnit);
    for (a, b) in seq_tables.iter().zip(&shd_tables) {
        assert_eq!(a.to_csv(), b.to_csv(), "table {} diverged", a.id);
    }
    assert_eq!(seq_cells.len(), shd_cells.len());
    for (a, b) in seq_cells.iter().zip(&shd_cells) {
        assert_eq!(a.label, b.label);
        assert_eq!(
            a.snapshot.to_json(),
            b.snapshot.to_json(),
            "snapshot for cell {} diverged",
            a.label
        );
    }
}
