//! Schedule-fuzz properties for the shard runtime (DESIGN.md §13):
//! arbitrary worlds (seeds), fault plans, shard counts, partition maps
//! and kill schedules — the sharded engine must reproduce the
//! sequential artifacts byte for byte in every draw, including runs
//! whose shard count changes at every checkpoint/restore boundary.

use dtnflow_bench::chaos::{run_segment, run_straight, ChaosInputs, SegmentEnd};
use dtnflow_obs::{Recorder, DEFAULT_RING_CAPACITY};
use dtnflow_router::FlowRouter;
use dtnflow_sim::{FaultConfig, FaultPlan, ShardExec, ShardPlan, SimSession};
use proptest::prelude::*;

/// A seeded fault plan mixing outages and churn for the tiny trace.
fn fuzz_plan(trace: &dtnflow_mobility::Trace, outages: bool, churn: bool, seed: u64) -> FaultPlan {
    let cfg = FaultConfig {
        station_outage_duty: if outages { 0.2 } else { 0.0 },
        mean_outage_secs: 2.0 * 86_400.0,
        node_failures_per_day: if churn { 0.05 } else { 0.0 },
        seed,
        ..FaultConfig::default()
    };
    FaultPlan::generate(&cfg, trace)
}

fn tiny_with(seed: u64, outages: bool, churn: bool, fault_seed: u64) -> ChaosInputs {
    let base = ChaosInputs::tiny(seed, FaultPlan::none());
    let plan = fuzz_plan(&base.trace, outages, churn, fault_seed);
    ChaosInputs { plan, ..base }
}

/// Run under an explicit (possibly adversarial) shard plan and collect
/// the comparable artifacts.
fn artifacts_with_plan(inp: &ChaosInputs, plan: ShardPlan, exec: ShardExec) -> (String, String) {
    let mut router = FlowRouter::new(
        inp.flow.clone(),
        inp.trace.num_nodes(),
        inp.trace.num_landmarks(),
    );
    let mut session = SimSession::start_sharded(
        &inp.trace,
        &inp.cfg,
        &inp.workload,
        &inp.plan,
        &mut router,
        Some(Box::new(Recorder::new(DEFAULT_RING_CAPACITY))),
        plan,
        exec,
    );
    session.run_to_end();
    let out = session.finish();
    let state = format!("{:?}\n{:?}", out.metrics, out.packets);
    let obs = out
        .trace
        .and_then(Recorder::downcast)
        .map(|r| r.snapshot().to_json())
        .unwrap_or_default();
    (state, obs)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Any (world seed, fault mix, shard count) draw: the sharded run
    /// reproduces the sequential one byte for byte.
    #[test]
    fn any_world_and_shard_count_is_byte_identical(
        seed in 1u64..64,
        outages in any::<bool>(),
        churn in any::<bool>(),
        fault_seed in 1u64..64,
        shards in 2usize..9,
    ) {
        let seq = tiny_with(seed, outages, churn, fault_seed);
        let baseline = run_straight(&seq).expect("straight run");
        prop_assert!(baseline.conservation_holds());
        let sharded = run_straight(&seq.with_shards(shards)).expect("sharded run");
        prop_assert!(
            sharded.matches(&baseline),
            "seed={} outages={} churn={} shards={} diverged",
            seed, outages, churn, shards
        );
    }

    /// Any partition map — balanced, skewed, or degenerate — reproduces
    /// the sequential artifacts.
    #[test]
    fn any_partition_map_is_byte_identical(
        seed in 1u64..64,
        assignment in proptest::collection::vec(0usize..4, 3),
    ) {
        let inp = ChaosInputs::tiny(seed, FaultPlan::none());
        let n = inp.trace.num_landmarks();
        prop_assert_eq!(assignment.len(), n);
        let seq = artifacts_with_plan(&inp, ShardPlan::single(n), ShardExec::sequential());
        let plan = ShardPlan::from_assignment(assignment.clone(), 4).expect("valid plan");
        let got = artifacts_with_plan(&inp, plan, ShardExec::new(4));
        prop_assert_eq!(got, seq, "assignment {:?} diverged", assignment);
    }

    /// Kill schedules whose every segment runs under a different shard
    /// count: checkpoints are shard-agnostic, so the chain still
    /// reproduces the uninterrupted sequential run.
    #[test]
    fn shard_count_hopping_across_restores_is_byte_identical(
        seed in 1u64..64,
        mut kills in proptest::collection::vec(1u64..19, 1..4),
        shard_seq in proptest::collection::vec(1usize..9, 4),
    ) {
        kills.sort_unstable();
        let baseline =
            run_straight(&ChaosInputs::tiny(seed, FaultPlan::none())).expect("straight run");
        let mut snap: Option<Vec<u8>> = None;
        let mut finished = None;
        for (i, &unit) in kills.iter().enumerate() {
            let inp = ChaosInputs::tiny(seed, FaultPlan::none()).with_shards(shard_seq[i]);
            match run_segment(&inp, snap.as_deref(), Some(unit)).expect("segment") {
                SegmentEnd::Paused(bytes) => snap = Some(bytes),
                SegmentEnd::Finished(art) => { finished = Some(art); break; }
            }
        }
        let art = match finished {
            Some(a) => a,
            None => {
                let inp = ChaosInputs::tiny(seed, FaultPlan::none())
                    .with_shards(shard_seq[kills.len()]);
                match run_segment(&inp, snap.as_deref(), None).expect("final segment") {
                    SegmentEnd::Finished(a) => a,
                    SegmentEnd::Paused(_) => panic!("unkilled final segment paused"),
                }
            }
        };
        prop_assert!(art.conservation_holds());
        prop_assert!(
            art.matches(&baseline),
            "kills {:?} under shard counts {:?} diverged",
            kills, shard_seq
        );
    }
}
