//! Schedule-fuzz properties for the shard runtime (DESIGN.md §13):
//! arbitrary worlds (seeds), fault plans, shard counts, partition maps
//! and kill schedules — the sharded engine must reproduce the
//! sequential artifacts byte for byte in every draw, including runs
//! whose shard count changes at every checkpoint/restore boundary,
//! plus the in-unit dispatch properties (DESIGN.md §15): window-cap
//! cuts and mid-unit checkpoints must both be invisible in the output.

use dtnflow_bench::chaos::{run_segment, run_straight, ChaosInputs, SegmentEnd};
use dtnflow_obs::{Recorder, DEFAULT_RING_CAPACITY};
use dtnflow_router::FlowRouter;
use dtnflow_sim::{FaultConfig, FaultPlan, ShardExec, ShardPlan, SimSession};
use dtnflow_snapshot::{Reader, Writer};
use proptest::prelude::*;

/// A seeded fault plan mixing outages and churn for the tiny trace.
fn fuzz_plan(trace: &dtnflow_mobility::Trace, outages: bool, churn: bool, seed: u64) -> FaultPlan {
    let cfg = FaultConfig {
        station_outage_duty: if outages { 0.2 } else { 0.0 },
        mean_outage_secs: 2.0 * 86_400.0,
        node_failures_per_day: if churn { 0.05 } else { 0.0 },
        seed,
        ..FaultConfig::default()
    };
    FaultPlan::generate(&cfg, trace)
}

fn tiny_with(seed: u64, outages: bool, churn: bool, fault_seed: u64) -> ChaosInputs {
    let base = ChaosInputs::tiny(seed, FaultPlan::none());
    let plan = fuzz_plan(&base.trace, outages, churn, fault_seed);
    ChaosInputs { plan, ..base }
}

/// Run under an explicit (possibly adversarial) shard plan and collect
/// the comparable artifacts.
fn artifacts_with_plan(inp: &ChaosInputs, plan: ShardPlan, exec: ShardExec) -> (String, String) {
    let mut router = FlowRouter::new(
        inp.flow.clone(),
        inp.trace.num_nodes(),
        inp.trace.num_landmarks(),
    );
    let mut session = SimSession::start_sharded(
        &inp.trace,
        &inp.cfg,
        &inp.workload,
        &inp.plan,
        &mut router,
        Some(Box::new(Recorder::new(DEFAULT_RING_CAPACITY))),
        plan,
        exec,
    );
    session.run_to_end();
    let out = session.finish();
    let state = format!("{:?}\n{:?}", out.metrics, out.packets);
    let obs = out
        .trace
        .and_then(Recorder::downcast)
        .map(|r| r.snapshot().to_json())
        .unwrap_or_default();
    (state, obs)
}

/// Outcome state (metrics + packets, canonical debug) without any
/// observability sink attached — the unobserved comparable for the
/// mid-unit checkpoint property.
fn bare_state(session: SimSession<'_, FlowRouter>) -> String {
    let out = session.finish();
    format!("{:?}\n{:?}", out.metrics, out.packets)
}

fn start_bare<'a>(
    inp: &'a ChaosInputs,
    router: &'a mut FlowRouter,
    shards: usize,
) -> SimSession<'a, FlowRouter> {
    SimSession::start_sharded(
        &inp.trace,
        &inp.cfg,
        &inp.workload,
        &inp.plan,
        router,
        None,
        ShardPlan::contiguous(inp.trace.num_landmarks(), shards),
        ShardExec::new(shards),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Any (world seed, fault mix, shard count) draw: the sharded run
    /// reproduces the sequential one byte for byte.
    #[test]
    fn any_world_and_shard_count_is_byte_identical(
        seed in 1u64..64,
        outages in any::<bool>(),
        churn in any::<bool>(),
        fault_seed in 1u64..64,
        shards in 2usize..9,
    ) {
        let seq = tiny_with(seed, outages, churn, fault_seed);
        let baseline = run_straight(&seq).expect("straight run");
        prop_assert!(baseline.conservation_holds());
        let sharded = run_straight(&seq.with_shards(shards)).expect("sharded run");
        prop_assert!(
            sharded.matches(&baseline),
            "seed={} outages={} churn={} shards={} diverged",
            seed, outages, churn, shards
        );
    }

    /// Any partition map — balanced, skewed, or degenerate — reproduces
    /// the sequential artifacts.
    #[test]
    fn any_partition_map_is_byte_identical(
        seed in 1u64..64,
        assignment in proptest::collection::vec(0usize..4, 3),
    ) {
        let inp = ChaosInputs::tiny(seed, FaultPlan::none());
        let n = inp.trace.num_landmarks();
        prop_assert_eq!(assignment.len(), n);
        let seq = artifacts_with_plan(&inp, ShardPlan::single(n), ShardExec::sequential());
        let plan = ShardPlan::from_assignment(assignment.clone(), 4).expect("valid plan");
        let got = artifacts_with_plan(&inp, plan, ShardExec::new(4));
        prop_assert_eq!(got, seq, "assignment {:?} diverged", assignment);
    }

    /// Kill schedules whose every segment runs under a different shard
    /// count: checkpoints are shard-agnostic, so the chain still
    /// reproduces the uninterrupted sequential run.
    #[test]
    fn shard_count_hopping_across_restores_is_byte_identical(
        seed in 1u64..64,
        mut kills in proptest::collection::vec(1u64..19, 1..4),
        shard_seq in proptest::collection::vec(1usize..9, 4),
    ) {
        kills.sort_unstable();
        let baseline =
            run_straight(&ChaosInputs::tiny(seed, FaultPlan::none())).expect("straight run");
        let mut snap: Option<Vec<u8>> = None;
        let mut finished = None;
        for (i, &unit) in kills.iter().enumerate() {
            let inp = ChaosInputs::tiny(seed, FaultPlan::none()).with_shards(shard_seq[i]);
            match run_segment(&inp, snap.as_deref(), Some(unit)).expect("segment") {
                SegmentEnd::Paused(bytes) => snap = Some(bytes),
                SegmentEnd::Finished(art) => { finished = Some(art); break; }
            }
        }
        let art = match finished {
            Some(a) => a,
            None => {
                let inp = ChaosInputs::tiny(seed, FaultPlan::none())
                    .with_shards(shard_seq[kills.len()]);
                match run_segment(&inp, snap.as_deref(), None).expect("final segment") {
                    SegmentEnd::Finished(a) => a,
                    SegmentEnd::Paused(_) => panic!("unkilled final segment paused"),
                }
            }
        };
        prop_assert!(art.conservation_holds());
        prop_assert!(
            art.matches(&baseline),
            "kills {:?} under shard counts {:?} diverged",
            kills, shard_seq
        );
    }

    /// Batch-boundary property (DESIGN.md §15): any staged-window cap —
    /// down to one event per window — moves the window cuts around but
    /// is invisible in every output byte, under any fault mix.
    #[test]
    fn any_window_cap_is_byte_identical(
        seed in 1u64..64,
        outages in any::<bool>(),
        churn in any::<bool>(),
        fault_seed in 1u64..64,
        shards in 2usize..9,
        cap in 1usize..48,
    ) {
        let inp = tiny_with(seed, outages, churn, fault_seed);
        let baseline = run_straight(&inp).expect("straight run");
        let mut router = FlowRouter::new(
            inp.flow.clone(),
            inp.trace.num_nodes(),
            inp.trace.num_landmarks(),
        );
        let mut session = start_bare(&inp, &mut router, shards);
        session.set_dispatch_window(cap);
        session.run_to_end();
        let got = bare_state(session);
        // The observed baseline's state encoding is canonical bytes, not
        // the debug string; rebuild the sequential debug comparable.
        let mut seq_router = FlowRouter::new(
            inp.flow.clone(),
            inp.trace.num_nodes(),
            inp.trace.num_landmarks(),
        );
        let mut seq = start_bare(&inp, &mut seq_router, 1);
        seq.run_to_end();
        let want = bare_state(seq);
        prop_assert!(baseline.conservation_holds());
        prop_assert_eq!(
            got, want,
            "window cap {} at shards={} diverged (seed={} outages={} churn={})",
            cap, shards, seed, outages, churn
        );
    }

    /// Mid-unit checkpoint property (DESIGN.md §15): pause anywhere —
    /// after any event count, mid-window included — checkpoint, restore
    /// under a different shard count and window cap, and the finished
    /// run matches the straight one; the engine cursor itself
    /// round-trips byte-identically through the restore.
    #[test]
    fn mid_unit_checkpoint_restores_byte_identically(
        seed in 1u64..64,
        steps in 1usize..600,
        ckpt_shards in 1usize..9,
        resume_shards in 1usize..9,
        resume_cap in 1usize..32,
    ) {
        let inp = ChaosInputs::tiny(seed, FaultPlan::none());
        let mut straight_router = FlowRouter::new(
            inp.flow.clone(),
            inp.trace.num_nodes(),
            inp.trace.num_landmarks(),
        );
        let mut straight = start_bare(&inp, &mut straight_router, 1);
        straight.run_to_end();
        let want = bare_state(straight);

        let mut router = FlowRouter::new(
            inp.flow.clone(),
            inp.trace.num_nodes(),
            inp.trace.num_landmarks(),
        );
        let mut session = start_bare(&inp, &mut router, ckpt_shards);
        session.step_events(steps);
        let mut ew = Writer::new();
        session.encode_engine(&mut ew);
        let engine_bytes = ew.into_bytes();
        let mut ww = Writer::new();
        session.encode_world(&mut ww);
        let world_bytes = ww.into_bytes();
        let mut rw = Writer::new();
        session.router().save_state(&mut rw);
        let router_bytes = rw.into_bytes();
        drop(session);

        let mut rr = Reader::new(&router_bytes);
        let mut restored_router = FlowRouter::restore_state(
            &mut rr,
            inp.flow.clone(),
            inp.trace.num_nodes(),
            inp.trace.num_landmarks(),
        ).expect("router restores");
        rr.finish("router").expect("router bytes consumed");
        let mut er = Reader::new(&engine_bytes);
        let mut wr = Reader::new(&world_bytes);
        let mut resumed = SimSession::resume_sharded(
            &inp.trace,
            &inp.cfg,
            &inp.workload,
            &inp.plan,
            &mut restored_router,
            None,
            &mut er,
            &mut wr,
            ShardPlan::contiguous(inp.trace.num_landmarks(), resume_shards),
            ShardExec::new(resume_shards),
        ).expect("session resumes");
        er.finish("engine").expect("engine bytes consumed");
        wr.finish("world").expect("world bytes consumed");

        // The cursor is batch-agnostic: re-encoding the freshly resumed
        // engine reproduces the checkpointed bytes exactly.
        let mut ew2 = Writer::new();
        resumed.encode_engine(&mut ew2);
        prop_assert_eq!(
            ew2.into_bytes(), engine_bytes.clone(),
            "engine cursor did not round-trip (steps={}, {}->{} shards)",
            steps, ckpt_shards, resume_shards
        );

        resumed.set_dispatch_window(resume_cap);
        resumed.run_to_end();
        let got = bare_state(resumed);
        prop_assert_eq!(
            got, want,
            "mid-unit checkpoint after {} events ({} -> {} shards, cap {}) diverged",
            steps, ckpt_shards, resume_shards, resume_cap
        );
    }
}
