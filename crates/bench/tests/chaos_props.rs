//! Property tests for the checkpoint/restore layer: arbitrary kill
//! schedules never perturb outcomes, the container codec is
//! re-encode-stable, and no corruption pattern is silently accepted.

use dtnflow_bench::chaos::{run_segment, run_straight, run_with_kills, ChaosInputs, SegmentEnd};
use dtnflow_sim::FaultPlan;
use dtnflow_snapshot::{SnapshotBuilder, SnapshotFile};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The straight-through artifacts of the shared tiny cell, computed once
/// (every proptest case compares against the same reference).
fn straight_state() -> &'static Vec<u8> {
    static STATE: OnceLock<Vec<u8>> = OnceLock::new();
    STATE.get_or_init(|| {
        let inp = ChaosInputs::tiny(21, FaultPlan::none());
        run_straight(&inp).expect("straight run").state
    })
}

fn tiny_snapshot_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let inp = ChaosInputs::tiny(21, FaultPlan::none());
        match run_segment(&inp, None, Some(4)).expect("segment") {
            SegmentEnd::Paused(b) => b,
            SegmentEnd::Finished(_) => panic!("tiny run ended before unit 4"),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Any ascending kill schedule (repeats allowed — a re-kill of the
    /// freshly restored process) reproduces the uninterrupted run.
    #[test]
    fn any_kill_schedule_is_byte_identical(
        mut kills in proptest::collection::vec(1u64..19, 1..4),
    ) {
        kills.sort_unstable();
        let inp = ChaosInputs::tiny(21, FaultPlan::none());
        let (chaotic, _) = run_with_kills(&inp, &kills).expect("chaotic run");
        prop_assert!(chaotic.conservation_holds());
        prop_assert_eq!(&chaotic.state, straight_state(), "kills {:?}", kills);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Decode → re-encode of a real checkpoint container is byte-stable
    /// regardless of where we slice sections back together from.
    #[test]
    fn container_reencode_is_byte_stable(_x in 0u8..1) {
        let bytes = tiny_snapshot_bytes();
        let file = SnapshotFile::parse(bytes).expect("parses");
        let mut b = SnapshotBuilder::new();
        for s in &file.sections {
            b.add_section(&s.name, s.version, s.payload.clone());
        }
        prop_assert_eq!(&b.finish(), bytes);
    }

    /// Single-byte corruption anywhere in the container is always
    /// detected (section or whole-file checksum), never accepted and
    /// never a panic.
    #[test]
    fn single_byte_corruption_is_always_detected(
        raw in any::<u64>(),
        mask in 1u8..255,
    ) {
        let bytes = tiny_snapshot_bytes();
        let i = (raw % bytes.len() as u64) as usize;
        let mut bad = bytes.clone();
        bad[i] ^= mask;
        let inp = ChaosInputs::tiny(21, FaultPlan::none());
        prop_assert!(
            run_segment(&inp, Some(&bad), None).is_err(),
            "flip {mask:#x} at byte {i} was accepted"
        );
    }

    /// Every strict prefix of a container is rejected.
    #[test]
    fn truncation_is_always_detected(raw in any::<u64>()) {
        let bytes = tiny_snapshot_bytes();
        let cut = (raw % bytes.len() as u64) as usize;
        let inp = ChaosInputs::tiny(21, FaultPlan::none());
        prop_assert!(run_segment(&inp, Some(&bytes[..cut]), None).is_err());
    }
}
