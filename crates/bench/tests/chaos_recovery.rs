//! Crash-consistency acceptance tests (DESIGN.md §11): a run killed at
//! seeded unit boundaries and restored from its snapshot alone must be
//! byte-indistinguishable — metrics, packets, experiment CSV cells, and
//! (after stripping checkpoint bookkeeping events) observability
//! reports — from a run that never stopped. Corrupted, truncated or
//! mismatched snapshots must be rejected with typed errors, never
//! panics.

use dtnflow_bench::chaos::{
    boundary_inside_outage, checkpoint, outage_plan, run_segment, run_straight, run_with_kills,
    ChaosInputs, SegmentEnd, SECTIONS,
};
use dtnflow_obs::{Recorder, DEFAULT_RING_CAPACITY};
use dtnflow_router::FlowRouter;
use dtnflow_sim::{FaultPlan, SimSession};
use dtnflow_snapshot::{validate, SnapshotError, SnapshotFile};

/// Take one checkpoint of the tiny cell at `unit`, for corruption tests.
fn tiny_snapshot(unit: u64) -> Vec<u8> {
    let inp = ChaosInputs::tiny(7, FaultPlan::none());
    match run_segment(&inp, None, Some(unit)).expect("segment runs") {
        SegmentEnd::Paused(bytes) => bytes,
        SegmentEnd::Finished(_) => panic!("tiny run ended before unit {unit}"),
    }
}

#[test]
fn tiny_resume_is_byte_identical_at_three_crash_points() {
    let inp = ChaosInputs::tiny(7, FaultPlan::none());
    let m = inp.max_unit();
    assert!(m >= 8, "tiny cell too short: {m} units");
    let straight = run_straight(&inp).expect("straight run");
    assert!(straight.conservation_holds());
    for kills in [vec![2], vec![m / 2], vec![m - 2]] {
        let (chaotic, sizes) = run_with_kills(&inp, &kills).expect("chaotic run");
        assert_eq!(sizes.len(), kills.len());
        assert!(chaotic.conservation_holds());
        assert!(
            chaotic.matches(&straight),
            "kill at {kills:?} diverged:\n straight csv {}\n chaotic  csv {}",
            straight.csv_row,
            chaotic.csv_row
        );
    }
}

#[test]
fn tiny_double_kill_chain_is_byte_identical() {
    let inp = ChaosInputs::tiny(11, FaultPlan::none());
    let m = inp.max_unit();
    let straight = run_straight(&inp).expect("straight run");
    // Kill, restore, re-kill at the same boundary, then again later:
    // checkpoints taken from restored processes must compose.
    let kills = [3, 3, m / 2, m - 3];
    let (chaotic, sizes) = run_with_kills(&inp, &kills).expect("chaotic run");
    assert_eq!(sizes.len(), kills.len());
    assert!(chaotic.matches(&straight), "double-kill chain diverged");
}

#[test]
fn tiny_kill_inside_station_outage_is_byte_identical() {
    let base = ChaosInputs::tiny(13, FaultPlan::none());
    let unit_secs = base.cfg.time_unit.secs();
    let plan = outage_plan(&base.trace, unit_secs, 13);
    assert!(!plan.station_outages.is_empty());
    let inp = ChaosInputs { plan, ..base };
    let kill = boundary_inside_outage(&inp.plan, unit_secs, inp.max_unit())
        .expect("an outage spans a unit boundary");
    let straight = run_straight(&inp).expect("straight run");
    let (chaotic, _) = run_with_kills(&inp, &[kill]).expect("chaotic run");
    assert!(chaotic.conservation_holds());
    assert!(
        chaotic.matches(&straight),
        "kill at unit {kill} inside an outage diverged"
    );
}

#[test]
fn snapshot_validates_and_lists_all_sections() {
    let bytes = tiny_snapshot(3);
    let info = validate(&bytes).expect("snapshot validates");
    let file = SnapshotFile::parse(&bytes).expect("snapshot parses");
    for s in &SECTIONS {
        assert!(file.section(s.name).is_ok(), "missing section {}", s.name);
    }
    assert!(info.to_json().contains("\"router\""));
}

#[test]
fn truncated_snapshots_are_rejected_not_panicked() {
    let bytes = tiny_snapshot(3);
    let inp = ChaosInputs::tiny(7, FaultPlan::none());
    // Every strict prefix must fail cleanly (checksum or EOF).
    for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
        let err = run_segment(&inp, Some(&bytes[..cut]), None);
        assert!(err.is_err(), "prefix of {cut} bytes was accepted");
    }
}

#[test]
fn corrupted_snapshots_are_rejected_by_checksums() {
    let bytes = tiny_snapshot(3);
    let inp = ChaosInputs::tiny(7, FaultPlan::none());
    // Flip one byte at a spread of offsets: the whole-file checksum (or
    // an earlier structural check) must catch every one of them.
    for i in (0..bytes.len()).step_by(bytes.len() / 23 + 1) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        let err = run_segment(&inp, Some(&bad), None);
        assert!(err.is_err(), "flip at byte {i} was accepted");
    }
}

#[test]
fn snapshot_for_different_run_inputs_is_rejected_as_mismatch() {
    let bytes = tiny_snapshot(3);
    // Same shape, different simulation seed: fingerprint must refuse it.
    let other = ChaosInputs::tiny(8, FaultPlan::none());
    match run_segment(&other, Some(&bytes), None) {
        Err(SnapshotError::Mismatch { context }) => {
            assert!(context.contains("seed"), "unexpected context: {context}")
        }
        Err(e) => panic!("expected fingerprint Mismatch, got {e:?}"),
        Ok(_) => panic!("foreign snapshot was accepted"),
    }

    // Same seed, different fault plan: also refused.
    let base = ChaosInputs::tiny(7, FaultPlan::none());
    let plan = outage_plan(&base.trace, base.cfg.time_unit.secs(), 13);
    let faulty = ChaosInputs { plan, ..base };
    assert!(matches!(
        run_segment(&faulty, Some(&bytes), None),
        Err(SnapshotError::Mismatch { .. })
    ));
}

#[test]
fn resumed_lineage_emits_restored_event() {
    let inp = ChaosInputs::tiny(7, FaultPlan::none());
    let bytes = tiny_snapshot(3);
    match run_segment(&inp, Some(&bytes), None).expect("resume") {
        SegmentEnd::Finished(art) => {
            assert!(
                art.conservation_holds(),
                "resumed lineage lost track of packets"
            );
            // The canonicalized report strips the bookkeeping events, so
            // equality with the straight run still holds elsewhere; here
            // just confirm the resume itself completed.
            assert!(!art.obs_json.is_empty());
        }
        SegmentEnd::Paused(_) => panic!("unkilled resume paused"),
    }
}

#[test]
fn checkpoint_written_event_lands_inside_the_snapshot_recorder() {
    let inp = ChaosInputs::tiny(7, FaultPlan::none());
    let mut router = FlowRouter::new(
        inp.flow.clone(),
        inp.trace.num_nodes(),
        inp.trace.num_landmarks(),
    );
    let mut session = SimSession::start(
        &inp.trace,
        &inp.cfg,
        &inp.workload,
        &inp.plan,
        &mut router,
        Some(Box::new(Recorder::new(DEFAULT_RING_CAPACITY))),
    );
    assert!(session.run_to_unit(3));
    let bytes = checkpoint(&mut session, &inp, 3);
    let file = SnapshotFile::parse(&bytes).expect("parses");
    let obs = file.section("obs").expect("obs section");
    let mut r = dtnflow_snapshot::Reader::new(&obs.payload);
    let rec = Recorder::decode(&mut r).expect("recorder decodes");
    let snap = rec.snapshot();
    let count = snap
        .event_counts
        .iter()
        .find(|(k, _)| k == "checkpoint_written")
        .map(|(_, c)| *c)
        .unwrap_or(0);
    assert_eq!(count, 1, "CheckpointWritten missing from snapshot recorder");
}

/// The full-scale acceptance run: the fig11 campus cell (the tier-1
/// golden experiment) killed and restored at three crash points plus a
/// double-kill chain, byte-identical to the uninterrupted run.
#[test]
#[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
fn fig11_cell_resume_is_byte_identical() {
    let inp = ChaosInputs::fig11_cell(2_000, FaultPlan::none());
    let m = inp.max_unit();
    let straight = run_straight(&inp).expect("straight run");
    assert!(straight.conservation_holds());
    for kills in [
        vec![m / 4],
        vec![m / 2],
        vec![m - 2],
        vec![m / 4, m / 4, m / 2],
    ] {
        let (chaotic, _) = run_with_kills(&inp, &kills).expect("chaotic run");
        assert!(chaotic.conservation_holds());
        assert!(chaotic.matches(&straight), "fig11 kill {kills:?} diverged");
    }
}
