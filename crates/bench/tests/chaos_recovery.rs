//! Crash-consistency acceptance tests (DESIGN.md §11): a run killed at
//! seeded unit boundaries and restored from its snapshot alone must be
//! byte-indistinguishable — metrics, packets, experiment CSV cells, and
//! (after stripping checkpoint bookkeeping events) observability
//! reports — from a run that never stopped. Corrupted, truncated or
//! mismatched snapshots must be rejected with typed errors, never
//! panics.

use dtnflow_bench::chaos::{
    boundary_inside_outage, checkpoint, outage_plan, run_segment, run_straight, run_with_kills,
    ChaosInputs, SegmentEnd, SECTIONS,
};
use dtnflow_obs::{Recorder, SimEvent, DEFAULT_RING_CAPACITY};
use dtnflow_router::{DegradationConfig, FlowConfig, FlowRouter};
use dtnflow_sim::{FaultPlan, SimSession};
use dtnflow_snapshot::{validate, Reader, SnapshotError, SnapshotFile};

/// Take one checkpoint of the tiny cell at `unit`, for corruption tests.
fn tiny_snapshot(unit: u64) -> Vec<u8> {
    let inp = ChaosInputs::tiny(7, FaultPlan::none());
    match run_segment(&inp, None, Some(unit)).expect("segment runs") {
        SegmentEnd::Paused(bytes) => bytes,
        SegmentEnd::Finished(_) => panic!("tiny run ended before unit {unit}"),
    }
}

#[test]
fn tiny_resume_is_byte_identical_at_three_crash_points() {
    let inp = ChaosInputs::tiny(7, FaultPlan::none());
    let m = inp.max_unit();
    assert!(m >= 8, "tiny cell too short: {m} units");
    let straight = run_straight(&inp).expect("straight run");
    assert!(straight.conservation_holds());
    for kills in [vec![2], vec![m / 2], vec![m - 2]] {
        let (chaotic, sizes) = run_with_kills(&inp, &kills).expect("chaotic run");
        assert_eq!(sizes.len(), kills.len());
        assert!(chaotic.conservation_holds());
        assert!(
            chaotic.matches(&straight),
            "kill at {kills:?} diverged:\n straight csv {}\n chaotic  csv {}",
            straight.csv_row,
            chaotic.csv_row
        );
    }
}

#[test]
fn tiny_double_kill_chain_is_byte_identical() {
    let inp = ChaosInputs::tiny(11, FaultPlan::none());
    let m = inp.max_unit();
    let straight = run_straight(&inp).expect("straight run");
    // Kill, restore, re-kill at the same boundary, then again later:
    // checkpoints taken from restored processes must compose.
    let kills = [3, 3, m / 2, m - 3];
    let (chaotic, sizes) = run_with_kills(&inp, &kills).expect("chaotic run");
    assert_eq!(sizes.len(), kills.len());
    assert!(chaotic.matches(&straight), "double-kill chain diverged");
}

#[test]
fn tiny_kill_inside_station_outage_is_byte_identical() {
    let base = ChaosInputs::tiny(13, FaultPlan::none());
    let unit_secs = base.cfg.time_unit.secs();
    let plan = outage_plan(&base.trace, unit_secs, 13);
    assert!(!plan.station_outages.is_empty());
    let inp = ChaosInputs { plan, ..base };
    let kill = boundary_inside_outage(&inp.plan, unit_secs, inp.max_unit())
        .expect("an outage spans a unit boundary");
    let straight = run_straight(&inp).expect("straight run");
    let (chaotic, _) = run_with_kills(&inp, &[kill]).expect("chaotic run");
    assert!(chaotic.conservation_holds());
    assert!(
        chaotic.matches(&straight),
        "kill at unit {kill} inside an outage diverged"
    );
}

#[test]
fn snapshot_validates_and_lists_all_sections() {
    let bytes = tiny_snapshot(3);
    let info = validate(&bytes).expect("snapshot validates");
    let file = SnapshotFile::parse(&bytes).expect("snapshot parses");
    for s in &SECTIONS {
        assert!(file.section(s.name).is_ok(), "missing section {}", s.name);
    }
    assert!(info.to_json().contains("\"router\""));
}

#[test]
fn truncated_snapshots_are_rejected_not_panicked() {
    let bytes = tiny_snapshot(3);
    let inp = ChaosInputs::tiny(7, FaultPlan::none());
    // Every strict prefix must fail cleanly (checksum or EOF).
    for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
        let err = run_segment(&inp, Some(&bytes[..cut]), None);
        assert!(err.is_err(), "prefix of {cut} bytes was accepted");
    }
}

#[test]
fn corrupted_snapshots_are_rejected_by_checksums() {
    let bytes = tiny_snapshot(3);
    let inp = ChaosInputs::tiny(7, FaultPlan::none());
    // Flip one byte at a spread of offsets: the whole-file checksum (or
    // an earlier structural check) must catch every one of them.
    for i in (0..bytes.len()).step_by(bytes.len() / 23 + 1) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x40;
        let err = run_segment(&inp, Some(&bad), None);
        assert!(err.is_err(), "flip at byte {i} was accepted");
    }
}

#[test]
fn snapshot_for_different_run_inputs_is_rejected_as_mismatch() {
    let bytes = tiny_snapshot(3);
    // Same shape, different simulation seed: fingerprint must refuse it.
    let other = ChaosInputs::tiny(8, FaultPlan::none());
    match run_segment(&other, Some(&bytes), None) {
        Err(SnapshotError::Mismatch { context }) => {
            assert!(context.contains("seed"), "unexpected context: {context}")
        }
        Err(e) => panic!("expected fingerprint Mismatch, got {e:?}"),
        Ok(_) => panic!("foreign snapshot was accepted"),
    }

    // Same seed, different fault plan: also refused.
    let base = ChaosInputs::tiny(7, FaultPlan::none());
    let plan = outage_plan(&base.trace, base.cfg.time_unit.secs(), 13);
    let faulty = ChaosInputs { plan, ..base };
    assert!(matches!(
        run_segment(&faulty, Some(&bytes), None),
        Err(SnapshotError::Mismatch { .. })
    ));
}

#[test]
fn resumed_lineage_emits_restored_event() {
    let inp = ChaosInputs::tiny(7, FaultPlan::none());
    let bytes = tiny_snapshot(3);
    match run_segment(&inp, Some(&bytes), None).expect("resume") {
        SegmentEnd::Finished(art) => {
            assert!(
                art.conservation_holds(),
                "resumed lineage lost track of packets"
            );
            // The canonicalized report strips the bookkeeping events, so
            // equality with the straight run still holds elsewhere; here
            // just confirm the resume itself completed.
            assert!(!art.obs_json.is_empty());
        }
        SegmentEnd::Paused(_) => panic!("unkilled resume paused"),
    }
}

#[test]
fn checkpoint_written_event_lands_inside_the_snapshot_recorder() {
    let inp = ChaosInputs::tiny(7, FaultPlan::none());
    let mut router = FlowRouter::new(
        inp.flow.clone(),
        inp.trace.num_nodes(),
        inp.trace.num_landmarks(),
    );
    let mut session = SimSession::start(
        &inp.trace,
        &inp.cfg,
        &inp.workload,
        &inp.plan,
        &mut router,
        Some(Box::new(Recorder::new(DEFAULT_RING_CAPACITY))),
    );
    assert!(session.run_to_unit(3));
    let bytes = checkpoint(&mut session, &inp, 3);
    let file = SnapshotFile::parse(&bytes).expect("parses");
    let obs = file.section("obs").expect("obs section");
    let mut r = dtnflow_snapshot::Reader::new(&obs.payload);
    let rec = Recorder::decode(&mut r).expect("recorder decodes");
    let snap = rec.snapshot();
    let count = snap
        .event_counts
        .iter()
        .find(|(k, _)| k == "checkpoint_written")
        .map(|(_, c)| *c)
        .unwrap_or(0);
    assert_eq!(count, 1, "CheckpointWritten missing from snapshot recorder");
}

// ---- wheel-backed stranded-packet retries (DESIGN.md §15) -------------

/// The tiny outage cell with graceful degradation on and a configurable
/// recovery→retry delay, so stranded-packet retries ride the engine
/// timing wheel instead of firing inline at the recovery instant.
fn tiny_retry_inputs(seed: u64, retry_delay_secs: u64) -> ChaosInputs {
    let base = ChaosInputs::tiny(seed, FaultPlan::none());
    let plan = outage_plan(&base.trace, base.cfg.time_unit.secs(), seed);
    assert!(!plan.station_outages.is_empty());
    let flow = FlowConfig {
        degradation: Some(DegradationConfig {
            retry_delay_secs,
            ..DegradationConfig::default()
        }),
        ..FlowConfig::default()
    };
    ChaosInputs { plan, flow, ..base }
}

/// The retry-timer token tag (`dtnflow_router`'s bit-63 namespace); the
/// test asserts a pending wheel entry carries it across a checkpoint.
const RETRY_TOKEN_TAG: u64 = 1 << 63;

/// A delayed retry is an ordinary pending timer: a checkpoint taken at a
/// boundary between a station's recovery and its retry firing contains
/// the tagged wheel entry, and the restored run is byte-identical to the
/// uninterrupted one — under the old inline scan the retry state would
/// have been lost with the process.
#[test]
fn delayed_retry_timer_survives_checkpoint_restore() {
    // 1.5 time units: every recovery has a unit boundary before its
    // retry fires (boundary gap ≤ 1 unit < delay).
    let unit = ChaosInputs::tiny(13, FaultPlan::none())
        .cfg
        .time_unit
        .secs();
    let inp = tiny_retry_inputs(13, unit + unit / 2);
    let m = inp.max_unit();
    let kill = inp
        .plan
        .station_outages
        .iter()
        .map(|o| o.up.secs() / unit + 1)
        .find(|&u| u >= 1 && u < m)
        .expect("an outage recovery is followed by a unit boundary");
    let straight = run_straight(&inp).expect("straight run");
    assert!(straight.conservation_holds());

    let bytes = match run_segment(&inp, None, Some(kill)).expect("segment runs") {
        SegmentEnd::Paused(b) => b,
        SegmentEnd::Finished(_) => panic!("run ended before unit {kill}"),
    };
    // The snapshot's engine section holds the tagged retry timer.
    let file = SnapshotFile::parse(&bytes).expect("snapshot parses");
    let engine = file.section("engine").expect("engine section");
    let mut r = Reader::new(&engine.payload);
    let _dispatched = r.usize("engine").expect("cursor");
    let _timer_seq = r.u64("engine").expect("timer_seq");
    let pending = r.usize("engine").expect("pending count");
    let mut tagged = 0;
    for _ in 0..pending {
        let _at = r.u64("engine").expect("at");
        let payload = r.u64("engine").expect("payload");
        let _seq = r.u64("engine").expect("seq");
        if payload & RETRY_TOKEN_TAG != 0 {
            tagged += 1;
        }
    }
    assert!(
        tagged > 0,
        "no tagged retry timer pending at unit {kill} (of {pending} timers)"
    );

    let art = match run_segment(&inp, Some(&bytes), None).expect("resume runs") {
        SegmentEnd::Finished(a) => a,
        SegmentEnd::Paused(_) => panic!("unkilled resume paused"),
    };
    assert!(art.conservation_holds());
    assert!(
        art.matches(&straight),
        "restore across a pending retry timer diverged"
    );
}

/// Golden pin of the retry firing order: at each recovery the stranded
/// packets re-queue in ascending packet id — exactly the station-store
/// scan order the old inline implementation used — and with the default
/// zero delay the whole faulted run stays byte-identical to itself
/// across kill/restore cycles.
#[test]
fn wheel_retries_fire_in_station_scan_order() {
    let inp = tiny_retry_inputs(13, 0);
    let mut router = FlowRouter::new(
        inp.flow.clone(),
        inp.trace.num_nodes(),
        inp.trace.num_landmarks(),
    );
    let mut session = SimSession::start(
        &inp.trace,
        &inp.cfg,
        &inp.workload,
        &inp.plan,
        &mut router,
        Some(Box::new(Recorder::new(1 << 16))),
    );
    session.run_to_end();
    let out = session.finish();
    let rec = out
        .trace
        .and_then(Recorder::downcast)
        .expect("recorder attached");
    assert_eq!(rec.dropped(), 0, "ring too small to pin the retry order");
    // Group consecutive RetryQueued events by (instant, landmark): one
    // group per recovery sweep.
    let mut groups: Vec<(u64, u16, Vec<u32>)> = Vec::new();
    for ev in rec.events() {
        if let SimEvent::RetryQueued { at, lm, pkt } = ev {
            match groups.last_mut() {
                Some((t, l, pkts)) if *t == at.secs() && *l == lm.0 => pkts.push(pkt.0),
                _ => groups.push((at.secs(), lm.0, vec![pkt.0])),
            }
        }
    }
    assert!(
        !groups.is_empty(),
        "fault plan produced no stranded-packet retries"
    );
    for (t, lm, pkts) in &groups {
        assert!(
            pkts.windows(2).all(|w| w[0] < w[1]),
            "retries at t={t} lm={lm} out of scan order: {pkts:?}"
        );
    }
}
#[test]
#[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
fn fig11_cell_resume_is_byte_identical() {
    let inp = ChaosInputs::fig11_cell(2_000, FaultPlan::none());
    let m = inp.max_unit();
    let straight = run_straight(&inp).expect("straight run");
    assert!(straight.conservation_holds());
    for kills in [
        vec![m / 4],
        vec![m / 2],
        vec![m - 2],
        vec![m / 4, m / 4, m / 2],
    ] {
        let (chaotic, _) = run_with_kills(&inp, &kills).expect("chaotic run");
        assert!(chaotic.conservation_holds());
        assert!(chaotic.matches(&straight), "fig11 kill {kills:?} diverged");
    }
}
