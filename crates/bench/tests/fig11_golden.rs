//! Byte-equal pin of the quick fig11 sweep against committed goldens.
//!
//! The dense-ID storage refactor (`DenseMap`/`DenseSet`/`LinkMatrix`
//! replacing the ordered-tree hot-path containers) is only legal because
//! it is observationally invisible: ascending-id iteration reproduces the
//! `BTreeMap` orders bit for bit. These goldens were captured from the
//! tree-backed implementation immediately before the swap; any future
//! storage change that moves a float accumulation or reorders a
//! tie-break shows up here as a byte diff, not a silent drift.
//!
//! Regenerate (only when an *intentional* semantic change lands) with:
//! `cargo run --release --bin experiments -- fig11 --quick --out /tmp/g`
//! and copy `/tmp/g/fig11{a,b,c,d}.csv` over `tests/goldens/`.

use dtnflow_bench::experiments::run_experiment;

const GOLDENS: [(&str, &str); 4] = [
    ("fig11a", include_str!("goldens/fig11a_quick.csv")),
    ("fig11b", include_str!("goldens/fig11b_quick.csv")),
    ("fig11c", include_str!("goldens/fig11c_quick.csv")),
    ("fig11d", include_str!("goldens/fig11d_quick.csv")),
];

#[test]
#[cfg_attr(debug_assertions, ignore = "full simulation; run with --release")]
fn fig11_quick_matches_pretree_goldens_byte_for_byte() {
    let tables = run_experiment("fig11", true);
    for (id, want) in GOLDENS {
        let table = tables
            .iter()
            .find(|t| t.id == id)
            .unwrap_or_else(|| panic!("fig11 produced no table `{id}`"));
        let got = table.to_csv();
        assert!(
            got == want,
            "table `{id}` drifted from the pre-refactor golden:\n--- golden\n{want}\n--- got\n{got}"
        );
    }
}
