//! Criterion micro-benchmarks for the distance-vector routing table:
//! vector receive + recompute at reduced (40) and paper (159) scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtnflow_core::ids::LandmarkId;
use dtnflow_router::{RoutingTable, StoredVector};

fn filled_table(num: usize) -> RoutingTable {
    let mut rt = RoutingTable::new(LandmarkId(0), num);
    for n in 1..num {
        let delays: Vec<f64> = (0..num)
            .map(|d| {
                if d == n {
                    0.0
                } else {
                    ((d * 7 + n * 13) % 97) as f64 + 1.0
                }
            })
            .collect();
        rt.receive(LandmarkId::from(n), StoredVector { seq: 1, delays });
    }
    rt
}

fn link(l: LandmarkId) -> f64 {
    if l.0 % 3 == 1 {
        (l.0 % 11) as f64 + 1.0
    } else {
        f64::INFINITY
    }
}

fn bench_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_table/recompute");
    for num in [40usize, 159] {
        let mut rt = filled_table(num);
        group.bench_function(format!("{num}-landmarks"), |b| {
            b.iter(|| {
                rt.recompute(&link);
                black_box(rt.coverage())
            });
        });
    }
    group.finish();
}

fn bench_receive(c: &mut Criterion) {
    let num = 159;
    c.bench_function("routing_table/receive-159", |b| {
        let mut rt = filled_table(num);
        let mut seq = 2u64;
        b.iter(|| {
            let delays: Vec<f64> = (0..num).map(|d| (d % 13) as f64).collect();
            let accepted = rt.receive(LandmarkId(5), StoredVector { seq, delays });
            seq += 1;
            black_box(accepted)
        });
    });
}

fn bench_snapshot(c: &mut Criterion) {
    let mut rt = filled_table(159);
    rt.recompute(&link);
    c.bench_function("routing_table/snapshot-159", |b| {
        b.iter(|| black_box(&rt).snapshot())
    });
}

criterion_group!(benches, bench_recompute, bench_receive, bench_snapshot);
criterion_main!(benches);
