//! Criterion smoke benchmarks over the experiment harness itself: one
//! cheap experiment per paper-artifact family, so `cargo bench` exercises
//! every reproduction path end-to-end.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtnflow_bench::experiments::run_experiment;

fn bench_analysis_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    for id in ["table1", "fig6", "fig7"] {
        group.bench_function(id, |b| {
            b.iter(|| black_box(run_experiment(id, true).len()));
        });
    }
    group.finish();
}

fn bench_deploy_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("deploy", |b| {
        b.iter(|| black_box(run_experiment("deploy", true).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_analysis_experiments, bench_deploy_experiment);
criterion_main!(benches);
