//! Criterion benchmarks for whole simulation runs at test scale: the
//! engine + DTN-FLOW and the engine + a baseline, on the tiny synthetic
//! traces.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtnflow_baselines::{Prophet, UtilityRouter};
use dtnflow_core::config::SimConfig;
use dtnflow_mobility::synth::bus::{BusConfig, BusModel};
use dtnflow_mobility::synth::campus::{CampusConfig, CampusModel};
use dtnflow_router::{FlowConfig, FlowRouter};
use dtnflow_sim::run;

fn bench_flow_runs(c: &mut Criterion) {
    let campus = CampusModel::new(CampusConfig::tiny()).generate();
    let cfg = SimConfig {
        packets_per_landmark_per_day: 50.0,
        ..SimConfig::dart()
    };
    c.bench_function("simulator/flow-tiny-campus", |b| {
        b.iter(|| {
            let mut r = FlowRouter::new(
                FlowConfig::default(),
                campus.num_nodes(),
                campus.num_landmarks(),
            );
            black_box(run(&campus, &cfg, &mut r).metrics.delivered)
        });
    });
}

fn bench_baseline_runs(c: &mut Criterion) {
    let campus = CampusModel::new(CampusConfig::tiny()).generate();
    let cfg = SimConfig {
        packets_per_landmark_per_day: 50.0,
        ..SimConfig::dart()
    };
    c.bench_function("simulator/prophet-tiny-campus", |b| {
        b.iter(|| {
            let mut r =
                UtilityRouter::new(Prophet::new(campus.num_nodes(), campus.num_landmarks()));
            black_box(run(&campus, &cfg, &mut r).metrics.delivered)
        });
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("simulator/gen-tiny-campus-trace", |b| {
        b.iter(|| {
            black_box(
                CampusModel::new(CampusConfig::tiny())
                    .generate()
                    .visits()
                    .len(),
            )
        });
    });
    c.bench_function("simulator/gen-tiny-bus-trace", |b| {
        b.iter(|| black_box(BusModel::new(BusConfig::tiny()).generate().visits().len()));
    });
}

criterion_group!(
    benches,
    bench_flow_runs,
    bench_baseline_runs,
    bench_trace_generation
);
criterion_main!(benches);
