//! Criterion micro-benchmarks for the order-k Markov predictor: online
//! observation, prediction, and whole-trace evaluation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dtnflow_core::ids::LandmarkId;
use dtnflow_mobility::synth::campus::{CampusConfig, CampusModel};
use dtnflow_predictor::{evaluate_order_k, MarkovPredictor};

fn bench_observe(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor/observe");
    for k in [1usize, 2, 3] {
        group.bench_function(format!("order-{k}"), |b| {
            let seq: Vec<LandmarkId> = (0..1_000u16).map(|i| LandmarkId(i % 37)).collect();
            b.iter(|| {
                let mut p = MarkovPredictor::new(k);
                for &lm in &seq {
                    p.observe(black_box(lm));
                }
                p.observations()
            });
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let mut p = MarkovPredictor::new(1);
    for i in 0..10_000u32 {
        p.observe(LandmarkId((i % 41 * 7 % 41) as u16));
    }
    c.bench_function("predictor/predict", |b| b.iter(|| black_box(&p).predict()));
    c.bench_function("predictor/distribution", |b| {
        b.iter(|| black_box(&p).distribution())
    });
}

fn bench_trace_eval(c: &mut Criterion) {
    let trace = CampusModel::new(CampusConfig::tiny()).generate();
    c.bench_function("predictor/evaluate-tiny-campus", |b| {
        b.iter(|| evaluate_order_k(black_box(&trace), 1))
    });
}

criterion_group!(benches, bench_observe, bench_predict, bench_trace_eval);
criterion_main!(benches);
