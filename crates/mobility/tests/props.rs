//! Property tests for trace construction, preprocessing and statistics.

use dtnflow_core::geometry::Point;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::time::{SimDuration, SimTime};
use dtnflow_mobility::prep::{compact_node_ids, preprocess, PrepConfig};
use dtnflow_mobility::{io, stats, Trace, Visit};
use proptest::prelude::*;

/// Raw, possibly messy visit lists (per-node non-overlap enforced by
/// construction so Trace::new accepts them).
fn arb_visits() -> impl Strategy<Value = (usize, usize, Vec<Visit>)> {
    (
        2usize..5,
        2usize..6,
        proptest::collection::vec((0u64..3_000, 1u64..2_000, 0usize..64), 0..60),
    )
        .prop_map(|(nodes, landmarks, raw)| {
            let mut visits = Vec::new();
            let mut clocks = vec![0u64; nodes];
            for (i, &(gap, dur, pick)) in raw.iter().enumerate() {
                let n = i % nodes;
                let lm = pick % landmarks;
                let start = clocks[n] + gap;
                let end = start + dur;
                clocks[n] = end;
                visits.push(Visit::new(
                    NodeId::from(n),
                    LandmarkId::from(lm),
                    SimTime(start),
                    SimTime(end),
                ));
            }
            (nodes, landmarks, visits)
        })
}

fn positions(n: usize) -> Vec<Point> {
    (0..n).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect()
}

proptest! {
    #[test]
    fn trace_construction_sorts_and_preserves((nodes, landmarks, visits) in arb_visits()) {
        let t = Trace::new("prop", nodes, landmarks, positions(landmarks), visits.clone())
            .expect("constructed visits are valid");
        prop_assert_eq!(t.visits().len(), visits.len());
        prop_assert!(t.visits().windows(2).all(|w| w[0].start <= w[1].start));
        // Per-node iteration covers exactly that node's visits, in order.
        let mut total = 0;
        for n in 0..nodes {
            let nv: Vec<_> = t.node_visits(NodeId::from(n)).collect();
            total += nv.len();
            prop_assert!(nv.windows(2).all(|w| w[0].end <= w[1].start));
        }
        prop_assert_eq!(total, visits.len());
    }

    #[test]
    fn transits_match_deduped_sequences((nodes, landmarks, visits) in arb_visits()) {
        let t = Trace::new("prop", nodes, landmarks, positions(landmarks), visits).unwrap();
        for n in 0..nodes {
            let node = NodeId::from(n);
            let seq = t.node_landmark_seq(node);
            let expected = seq.windows(2).filter(|w| w[0] != w[1]).count();
            prop_assert_eq!(t.node_transits(node).len(), expected);
        }
        // Global transit list is the concatenation, re-sorted.
        let total: usize = (0..nodes).map(|n| t.node_transits(NodeId::from(n)).len()).sum();
        prop_assert_eq!(t.transits().len(), total);
    }

    #[test]
    fn text_roundtrip_is_identity((nodes, landmarks, visits) in arb_visits()) {
        let t = Trace::new("prop trace", nodes, landmarks, positions(landmarks), visits).unwrap();
        let back = io::from_text(&io::to_text(&t)).expect("roundtrip");
        prop_assert_eq!(back.visits(), t.visits());
        prop_assert_eq!(back.num_nodes(), t.num_nodes());
        prop_assert_eq!(back.num_landmarks(), t.num_landmarks());
    }

    #[test]
    fn preprocess_never_increases_visits(
        (_nodes, landmarks, visits) in arb_visits(),
        merge_gap in 0u64..1_000,
        min_visit in 0u64..2_000,
    ) {
        let cfg = PrepConfig {
            merge_gap: SimDuration(merge_gap),
            min_visit: SimDuration(min_visit),
            min_records: 0,
        };
        let before = visits.len();
        let r = preprocess(visits, &cfg);
        prop_assert!(r.visits.len() <= before);
        prop_assert_eq!(r.merged + r.dropped_short + r.visits.len(), before);
        // Survivors respect the minimum duration and landmark bounds.
        for v in &r.visits {
            prop_assert!(v.duration() >= cfg.min_visit);
            prop_assert!(v.landmark.index() < landmarks);
        }
    }

    #[test]
    fn compaction_is_dense_and_order_preserving((_n, landmarks, visits) in arb_visits()) {
        let (rewritten, mapping) = compact_node_ids(&visits);
        prop_assert_eq!(rewritten.len(), visits.len());
        // Dense ids 0..mapping.len(), and the mapping is strictly sorted.
        prop_assert!(mapping.windows(2).all(|w| w[0] < w[1]));
        for (orig, new) in visits.iter().zip(&rewritten) {
            prop_assert_eq!(mapping[new.node.index()], orig.node);
            prop_assert_eq!(new.landmark, orig.landmark);
            prop_assert!(new.landmark.index() < landmarks);
        }
    }

    #[test]
    fn bandwidth_matrix_totals_match_transits(
        (nodes, landmarks, visits) in arb_visits(),
        unit in 100u64..5_000,
    ) {
        let t = Trace::new("prop", nodes, landmarks, positions(landmarks), visits).unwrap();
        let b = stats::link_bandwidths(&t, SimDuration(unit));
        let units = (t.duration().secs() as f64 / unit as f64).max(1.0);
        let total_bw: f64 = (0..landmarks)
            .flat_map(|i| (0..landmarks).map(move |j| (i, j)))
            .map(|(i, j)| b.get(LandmarkId::from(i), LandmarkId::from(j)))
            .sum();
        let expected = t.transits().len() as f64 / units;
        prop_assert!((total_bw - expected).abs() < 1e-6);
    }

    #[test]
    fn timeline_sums_match_transits(
        (nodes, landmarks, visits) in arb_visits(),
        unit in 100u64..5_000,
    ) {
        let t = Trace::new("prop", nodes, landmarks, positions(landmarks), visits).unwrap();
        let tl = stats::bandwidth_timeline(&t, SimDuration(unit));
        let mut total = 0u64;
        for i in 0..landmarks {
            for j in 0..landmarks {
                total += tl
                    .series(LandmarkId::from(i), LandmarkId::from(j))
                    .iter()
                    .map(|&c| c as u64)
                    .sum::<u64>();
            }
        }
        prop_assert_eq!(total as usize, t.transits().len());
    }

    #[test]
    fn prefix_is_a_valid_subtrace((nodes, landmarks, visits) in arb_visits(), frac in 0.1f64..1.0) {
        let t = Trace::new("prop", nodes, landmarks, positions(landmarks), visits).unwrap();
        let until = SimTime((t.duration().secs() as f64 * frac) as u64);
        let p = t.prefix(until);
        prop_assert!(p.visits().len() <= t.visits().len());
        for v in p.visits() {
            prop_assert!(v.end <= until);
            prop_assert!(v.start < until);
        }
    }
}
