//! Trace analyses backing the paper's observations O1–O4 and the artifacts
//! Table I, Fig. 2 (visiting distribution), Fig. 3 (transit-link bandwidth
//! distribution), and Fig. 4 (bandwidth over time).

use crate::trace::Trace;
use dtnflow_core::ids::LandmarkId;
use dtnflow_core::time::SimDuration;

/// Key characteristics of a trace (the rows of Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCharacteristics {
    pub name: String,
    pub nodes: usize,
    pub landmarks: usize,
    pub duration_days: f64,
    pub visits: usize,
    pub transits: usize,
    /// Average transits per node per day.
    pub transit_rate: f64,
}

/// Compute the Table I row for a trace.
pub fn characteristics(trace: &Trace) -> TraceCharacteristics {
    let transits = trace.transits().len();
    let days = trace.duration().as_days();
    TraceCharacteristics {
        name: trace.name().to_string(),
        nodes: trace.num_nodes(),
        landmarks: trace.num_landmarks(),
        duration_days: days,
        visits: trace.visits().len(),
        transits,
        transit_rate: if days > 0.0 {
            transits as f64 / trace.num_nodes() as f64 / days
        } else {
            0.0
        },
    }
}

/// Per-landmark, per-node visit counts: `counts[landmark][node]`.
pub fn visit_counts(trace: &Trace) -> Vec<Vec<u32>> {
    let mut counts = vec![vec![0u32; trace.num_nodes()]; trace.num_landmarks()];
    for v in trace.visits() {
        counts[v.landmark.index()][v.node.index()] += 1;
    }
    counts
}

/// Landmarks ordered by total visits, most popular first.
pub fn landmark_popularity(trace: &Trace) -> Vec<(LandmarkId, u64)> {
    let counts = visit_counts(trace);
    let mut pop: Vec<(LandmarkId, u64)> = counts
        .iter()
        .enumerate()
        .map(|(l, per_node)| {
            (
                LandmarkId::from(l),
                per_node.iter().map(|&c| c as u64).sum(),
            )
        })
        .collect();
    pop.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pop
}

/// Fig. 2: for one landmark, the per-node visit counts sorted descending.
/// O1 states that only a small portion of nodes visit it frequently.
pub fn visiting_distribution(trace: &Trace, lm: LandmarkId) -> Vec<u32> {
    let mut per_node = visit_counts(trace)[lm.index()].clone();
    per_node.sort_unstable_by(|a, b| b.cmp(a));
    per_node
}

/// The fraction of a landmark's visits contributed by its most frequent
/// `top_frac` of nodes — a scalar form of O1 (close to 1.0 = highly skewed).
pub fn visit_concentration(trace: &Trace, lm: LandmarkId, top_frac: f64) -> f64 {
    assert!((0.0..=1.0).contains(&top_frac));
    let dist = visiting_distribution(trace, lm);
    let total: u64 = dist.iter().map(|&c| c as u64).sum();
    if total == 0 {
        return 0.0;
    }
    let k = ((dist.len() as f64 * top_frac).ceil() as usize).max(1);
    let top: u64 = dist.iter().take(k).map(|&c| c as u64).sum();
    top as f64 / total as f64
}

/// Average transit-link bandwidths: `b(i→j)` = transits from `i` to `j`
/// per time unit, the paper's Eq.-free definition in §III-A.1.
#[derive(Debug, Clone)]
pub struct BandwidthMatrix {
    n: usize,
    b: Vec<f64>,
}

impl BandwidthMatrix {
    /// Bandwidth of the directed link `from → to` (transits per unit).
    #[inline]
    pub fn get(&self, from: LandmarkId, to: LandmarkId) -> f64 {
        self.b[from.index() * self.n + to.index()]
    }

    /// Number of landmarks.
    pub fn num_landmarks(&self) -> usize {
        self.n
    }

    /// All links with positive bandwidth, descending (Fig. 3's x-axis).
    pub fn ordered_links(&self) -> Vec<(LandmarkId, LandmarkId, f64)> {
        let mut links: Vec<(LandmarkId, LandmarkId, f64)> = Vec::new();
        for i in 0..self.n {
            for j in 0..self.n {
                let v = self.b[i * self.n + j];
                if v > 0.0 {
                    links.push((LandmarkId::from(i), LandmarkId::from(j), v));
                }
            }
        }
        links.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        links
    }

    /// Pearson correlation between `b(i→j)` and `b(j→i)` over unordered
    /// pairs where either direction is positive. O3 predicts a value near 1.
    pub fn matching_link_symmetry(&self) -> f64 {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let a = self.b[i * self.n + j];
                let b = self.b[j * self.n + i];
                if a > 0.0 || b > 0.0 {
                    xs.push(a);
                    ys.push(b);
                }
            }
        }
        pearson(&xs, &ys)
    }
}

/// Pearson correlation coefficient; 0.0 for degenerate inputs.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for k in 0..n {
        let dx = xs[k] - mx;
        let dy = ys[k] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Average link bandwidths over the whole trace, in transits per `unit`.
pub fn link_bandwidths(trace: &Trace, unit: SimDuration) -> BandwidthMatrix {
    assert!(unit.secs() > 0, "time unit must be positive");
    let n = trace.num_landmarks();
    let mut counts = vec![0u64; n * n];
    for t in trace.transits() {
        counts[t.from.index() * n + t.to.index()] += 1;
    }
    let units = (trace.duration().secs() as f64 / unit.secs() as f64).max(1.0);
    BandwidthMatrix {
        n,
        b: counts.iter().map(|&c| c as f64 / units).collect(),
    }
}

/// Fig. 4: per-time-unit transit counts for every link.
#[derive(Debug, Clone)]
pub struct BandwidthTimeline {
    n: usize,
    units: usize,
    /// `counts[unit][from * n + to]`
    counts: Vec<Vec<u32>>,
}

impl BandwidthTimeline {
    /// Number of time units covered.
    pub fn num_units(&self) -> usize {
        self.units
    }

    /// The per-unit series for one link.
    pub fn series(&self, from: LandmarkId, to: LandmarkId) -> Vec<u32> {
        self.counts
            .iter()
            .map(|u| u[from.index() * self.n + to.index()])
            .collect()
    }

    /// The `k` links with the highest total transits (Fig. 4 shows 3).
    pub fn top_links(&self, k: usize) -> Vec<(LandmarkId, LandmarkId, u64)> {
        let mut totals = vec![0u64; self.n * self.n];
        for u in &self.counts {
            for (i, &c) in u.iter().enumerate() {
                totals[i] += c as u64;
            }
        }
        let mut links: Vec<(LandmarkId, LandmarkId, u64)> = totals
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t > 0)
            .map(|(i, &t)| {
                (
                    LandmarkId::from(i / self.n),
                    LandmarkId::from(i % self.n),
                    t,
                )
            })
            .collect();
        links.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        links.truncate(k);
        links
    }

    /// Coefficient of variation (std-dev / mean) of one link's series —
    /// small values support O4 (a unit's measurement reflects the average).
    pub fn stability(&self, from: LandmarkId, to: LandmarkId) -> f64 {
        let s = self.series(from, to);
        let n = s.len();
        if n < 2 {
            return 0.0;
        }
        let mean = s.iter().map(|&c| c as f64).sum::<f64>() / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = s
            .iter()
            .map(|&c| (c as f64 - mean) * (c as f64 - mean))
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }
}

/// Count transits per link per time unit (a transit is attributed to the
/// unit of its arrival instant, the moment the receiving landmark measures
/// it, §IV-C.1).
pub fn bandwidth_timeline(trace: &Trace, unit: SimDuration) -> BandwidthTimeline {
    assert!(unit.secs() > 0, "time unit must be positive");
    let n = trace.num_landmarks();
    let units = (trace.duration().secs()).div_ceil(unit.secs()).max(1) as usize;
    let mut counts = vec![vec![0u32; n * n]; units];
    for t in trace.transits() {
        let u = (t.arrive.unit_index(unit) as usize).min(units - 1);
        counts[u][t.from.index() * n + t.to.index()] += 1;
    }
    BandwidthTimeline { n, units, counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Visit;
    use dtnflow_core::geometry::Point;
    use dtnflow_core::ids::NodeId;
    use dtnflow_core::time::SimTime;

    fn v(n: u32, l: u16, s: u64, e: u64) -> Visit {
        Visit::new(NodeId(n), LandmarkId(l), SimTime(s), SimTime(e))
    }

    fn trace() -> Trace {
        // Node 0: l0 -> l1 -> l0 ; node 1: l0 -> l1. Duration 1000 s.
        Trace::new(
            "test",
            2,
            2,
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
            vec![
                v(0, 0, 0, 100),
                v(0, 1, 200, 300),
                v(0, 0, 400, 500),
                v(1, 0, 0, 100),
                v(1, 1, 900, 1_000),
            ],
        )
        .unwrap()
    }

    #[test]
    fn characteristics_row() {
        let c = characteristics(&trace());
        assert_eq!(c.nodes, 2);
        assert_eq!(c.landmarks, 2);
        assert_eq!(c.visits, 5);
        // node 0: l0->l1->l0 (2 transits); node 1: l0->l1 (1 transit).
        assert_eq!(c.transits, 3);
        assert!(c.duration_days > 0.0);
    }

    #[test]
    fn visit_counts_and_popularity() {
        let t = trace();
        let counts = visit_counts(&t);
        assert_eq!(counts[0][0], 2);
        assert_eq!(counts[1][1], 1);
        let pop = landmark_popularity(&t);
        assert_eq!(pop[0].0, LandmarkId(0));
        assert_eq!(pop[0].1, 3);
    }

    #[test]
    fn visiting_distribution_sorted_desc() {
        let d = visiting_distribution(&trace(), LandmarkId(0));
        assert_eq!(d, vec![2, 1]);
    }

    #[test]
    fn concentration_of_skewed_landmark() {
        let t = trace();
        // Top half of nodes (1 of 2) contribute 2/3 of l0's visits.
        let c = visit_concentration(&t, LandmarkId(0), 0.5);
        assert!((c - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_matrix_counts_per_unit() {
        let t = trace();
        let unit = SimDuration::from_secs(500); // 2 units over 1000 s
        let b = link_bandwidths(&t, unit);
        // l0->l1 has 2 transits over 2 units = 1.0 per unit.
        assert!((b.get(LandmarkId(0), LandmarkId(1)) - 1.0).abs() < 1e-12);
        assert!((b.get(LandmarkId(1), LandmarkId(0)) - 0.5).abs() < 1e-12);
        let links = b.ordered_links();
        assert_eq!(links[0].2, 1.0);
        assert_eq!(links.len(), 2);
    }

    #[test]
    fn timeline_attributes_transits_to_arrival_unit() {
        let t = trace();
        let unit = SimDuration::from_secs(500);
        let tl = bandwidth_timeline(&t, unit);
        assert_eq!(tl.num_units(), 2);
        // node0 arrives at l1 at t=200 (unit 0); node1 at t=900 (unit 1).
        assert_eq!(tl.series(LandmarkId(0), LandmarkId(1)), vec![1, 1]);
        assert_eq!(tl.series(LandmarkId(1), LandmarkId(0)), vec![1, 0]);
        let top = tl.top_links(1);
        assert_eq!(top[0].0, LandmarkId(0));
        assert_eq!(top[0].2, 2);
    }

    #[test]
    fn stability_of_constant_series_is_zero() {
        let t = trace();
        let tl = bandwidth_timeline(&t, SimDuration::from_secs(500));
        assert_eq!(tl.stability(LandmarkId(0), LandmarkId(1)), 0.0);
        assert!(tl.stability(LandmarkId(1), LandmarkId(0)) > 0.0);
    }

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn symmetry_correlation_for_symmetric_matrix() {
        // Perfectly symmetric transits with cross-pair variance
        // (pair l0-l1 carries twice the traffic of pair l1-l2).
        let t = Trace::new(
            "sym",
            3,
            3,
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
            ],
            vec![
                v(0, 0, 0, 10),
                v(0, 1, 20, 30),
                v(0, 0, 40, 50),
                v(1, 1, 0, 10),
                v(1, 2, 20, 30),
                v(1, 1, 40, 50),
                v(2, 0, 0, 10),
                v(2, 1, 20, 30),
                v(2, 0, 40, 50),
            ],
        )
        .unwrap();
        let b = link_bandwidths(&t, SimDuration::from_secs(50));
        assert!(b.matching_link_symmetry() > 0.99);
    }
}
