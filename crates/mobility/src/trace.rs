//! Visit records and validated traces.

use dtnflow_core::geometry::Point;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::time::{SimDuration, SimTime};
use std::fmt;

/// One association interval: `node` was connected to the station of
/// `landmark` from `start` (inclusive) to `end` (exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Visit {
    pub node: NodeId,
    pub landmark: LandmarkId,
    pub start: SimTime,
    pub end: SimTime,
}

impl Visit {
    /// Construct a visit; panics if `end <= start` (zero-length visits are
    /// rejected at trace construction instead, with a proper error).
    pub fn new(node: NodeId, landmark: LandmarkId, start: SimTime, end: SimTime) -> Self {
        Visit {
            node,
            landmark,
            start,
            end,
        }
    }

    /// Length of the stay.
    #[inline]
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// A node moving from one landmark to a *different* landmark: the atom of
/// DTN-FLOW's forwarding capacity (§III-A.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transit {
    pub node: NodeId,
    pub from: LandmarkId,
    pub to: LandmarkId,
    /// When the node disconnected from `from`.
    pub depart: SimTime,
    /// When the node connected to `to`.
    pub arrive: SimTime,
}

/// Why a trace failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// `end <= start` on some visit.
    EmptyVisit { index: usize },
    /// A node id out of `0..num_nodes`.
    NodeOutOfRange { index: usize },
    /// A landmark id out of `0..num_landmarks`.
    LandmarkOutOfRange { index: usize },
    /// Two visits of the same node overlap in time.
    OverlappingVisits { node: NodeId },
    /// Number of positions differs from number of landmarks.
    PositionCountMismatch { positions: usize, landmarks: usize },
    /// The trace has no landmarks or no nodes.
    Degenerate,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::EmptyVisit { index } => write!(f, "visit {index} has end <= start"),
            TraceError::NodeOutOfRange { index } => {
                write!(f, "visit {index} references an out-of-range node")
            }
            TraceError::LandmarkOutOfRange { index } => {
                write!(f, "visit {index} references an out-of-range landmark")
            }
            TraceError::OverlappingVisits { node } => {
                write!(f, "visits of node {node} overlap in time")
            }
            TraceError::PositionCountMismatch {
                positions,
                landmarks,
            } => write!(
                f,
                "{positions} landmark positions given for {landmarks} landmarks"
            ),
            TraceError::Degenerate => write!(f, "trace needs at least one node and landmark"),
        }
    }
}

impl std::error::Error for TraceError {}

/// A validated mobility trace: visits sorted by start time, indexed per
/// node, with landmark positions for the geometry-aware components.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    name: String,
    num_nodes: usize,
    num_landmarks: usize,
    positions: Vec<Point>,
    visits: Vec<Visit>,
    /// Per node: indices into `visits`, ascending by start.
    per_node: Vec<Vec<u32>>,
    duration: SimDuration,
}

impl Trace {
    /// Build and validate a trace. Visits are sorted internally; they may
    /// be given in any order. The trace duration is the latest visit end.
    pub fn new(
        name: impl Into<String>,
        num_nodes: usize,
        num_landmarks: usize,
        positions: Vec<Point>,
        mut visits: Vec<Visit>,
    ) -> Result<Self, TraceError> {
        if num_nodes == 0 || num_landmarks == 0 {
            return Err(TraceError::Degenerate);
        }
        if positions.len() != num_landmarks {
            return Err(TraceError::PositionCountMismatch {
                positions: positions.len(),
                landmarks: num_landmarks,
            });
        }
        visits.sort_by_key(|v| (v.start, v.node, v.end));
        for (i, v) in visits.iter().enumerate() {
            if v.end <= v.start {
                return Err(TraceError::EmptyVisit { index: i });
            }
            if v.node.index() >= num_nodes {
                return Err(TraceError::NodeOutOfRange { index: i });
            }
            if v.landmark.index() >= num_landmarks {
                return Err(TraceError::LandmarkOutOfRange { index: i });
            }
        }
        let mut per_node: Vec<Vec<u32>> = vec![Vec::new(); num_nodes];
        for (i, v) in visits.iter().enumerate() {
            per_node[v.node.index()].push(i as u32);
        }
        for (n, idxs) in per_node.iter().enumerate() {
            for w in idxs.windows(2) {
                let a = &visits[w[0] as usize];
                let b = &visits[w[1] as usize];
                if b.start < a.end {
                    return Err(TraceError::OverlappingVisits {
                        node: NodeId::from(n),
                    });
                }
            }
        }
        let duration = visits
            .iter()
            .map(|v| v.end)
            .max()
            .unwrap_or(SimTime::ZERO)
            .since(SimTime::ZERO);
        Ok(Trace {
            name: name.into(),
            num_nodes,
            num_landmarks,
            positions,
            visits,
            per_node,
            duration,
        })
    }

    /// Human-readable trace name ("campus", "bus", …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of mobile nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of landmarks.
    pub fn num_landmarks(&self) -> usize {
        self.num_landmarks
    }

    /// Landmark positions (meters), indexed by landmark.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// All visits, ascending by start time.
    pub fn visits(&self) -> &[Visit] {
        &self.visits
    }

    /// Trace length: the latest visit end.
    pub fn duration(&self) -> SimDuration {
        self.duration
    }

    /// The visits of one node, ascending by start time.
    pub fn node_visits(&self, node: NodeId) -> impl Iterator<Item = &Visit> + '_ {
        self.per_node[node.index()]
            .iter()
            .map(move |&i| &self.visits[i as usize])
    }

    /// The landmark sequence of one node (its visit history, Table II).
    pub fn node_landmark_seq(&self, node: NodeId) -> Vec<LandmarkId> {
        self.node_visits(node).map(|v| v.landmark).collect()
    }

    /// All transits of one node: consecutive visits to *different*
    /// landmarks (the paper merges consecutive same-landmark records
    /// during preprocessing, so repeats are skipped here as well).
    pub fn node_transits(&self, node: NodeId) -> Vec<Transit> {
        let idxs = &self.per_node[node.index()];
        let mut out = Vec::new();
        for w in idxs.windows(2) {
            let a = &self.visits[w[0] as usize];
            let b = &self.visits[w[1] as usize];
            if a.landmark != b.landmark {
                out.push(Transit {
                    node,
                    from: a.landmark,
                    to: b.landmark,
                    depart: a.end,
                    arrive: b.start,
                });
            }
        }
        out
    }

    /// Every transit in the trace, ascending by arrival time.
    pub fn transits(&self) -> Vec<Transit> {
        let mut all: Vec<Transit> = (0..self.num_nodes)
            .flat_map(|n| self.node_transits(NodeId::from(n)))
            .collect();
        all.sort_by_key(|t| (t.arrive, t.node, t.depart));
        all
    }

    /// Restrict the trace to `[0, until)`, truncating visits that straddle
    /// the boundary. Used to build warm-up prefixes.
    pub fn prefix(&self, until: SimTime) -> Trace {
        let visits = self
            .visits
            .iter()
            .filter(|v| v.start < until)
            .map(|v| Visit {
                end: v.end.min(until),
                ..*v
            })
            .filter(|v| v.end > v.start)
            .collect();
        Trace::new(
            self.name.clone(),
            self.num_nodes,
            self.num_landmarks,
            self.positions.clone(),
            visits,
        )
        .expect("prefix of a valid trace is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(i: u16) -> LandmarkId {
        LandmarkId(i)
    }

    fn v(n: u32, l: u16, s: u64, e: u64) -> Visit {
        Visit::new(NodeId(n), lm(l), SimTime(s), SimTime(e))
    }

    fn positions(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect()
    }

    #[test]
    fn builds_and_sorts() {
        let t = Trace::new(
            "t",
            2,
            3,
            positions(3),
            vec![v(0, 1, 50, 60), v(0, 0, 0, 10), v(1, 2, 5, 9)],
        )
        .unwrap();
        assert_eq!(t.visits()[0].start, SimTime(0));
        assert_eq!(t.duration(), SimDuration(60));
        assert_eq!(t.node_landmark_seq(NodeId(0)), vec![lm(0), lm(1)]);
    }

    #[test]
    fn rejects_invalid() {
        assert_eq!(
            Trace::new("t", 1, 1, positions(1), vec![v(0, 0, 10, 10)]),
            Err(TraceError::EmptyVisit { index: 0 })
        );
        assert_eq!(
            Trace::new("t", 1, 1, positions(1), vec![v(1, 0, 0, 5)]),
            Err(TraceError::NodeOutOfRange { index: 0 })
        );
        assert_eq!(
            Trace::new("t", 1, 1, positions(1), vec![v(0, 2, 0, 5)]),
            Err(TraceError::LandmarkOutOfRange { index: 0 })
        );
        assert_eq!(
            Trace::new(
                "t",
                1,
                2,
                positions(2),
                vec![v(0, 0, 0, 10), v(0, 1, 5, 15)]
            ),
            Err(TraceError::OverlappingVisits { node: NodeId(0) })
        );
        assert_eq!(
            Trace::new("t", 0, 1, positions(1), vec![]),
            Err(TraceError::Degenerate)
        );
        assert_eq!(
            Trace::new("t", 1, 2, positions(1), vec![]),
            Err(TraceError::PositionCountMismatch {
                positions: 1,
                landmarks: 2
            })
        );
    }

    #[test]
    fn transits_skip_same_landmark_repeats() {
        let t = Trace::new(
            "t",
            1,
            3,
            positions(3),
            vec![v(0, 0, 0, 10), v(0, 0, 20, 30), v(0, 2, 40, 50)],
        )
        .unwrap();
        let ts = t.node_transits(NodeId(0));
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].from, lm(0));
        assert_eq!(ts[0].to, lm(2));
        assert_eq!(ts[0].depart, SimTime(30));
        assert_eq!(ts[0].arrive, SimTime(40));
    }

    #[test]
    fn global_transits_sorted_by_arrival() {
        let t = Trace::new(
            "t",
            2,
            2,
            positions(2),
            vec![
                v(0, 0, 0, 10),
                v(0, 1, 90, 100),
                v(1, 1, 0, 10),
                v(1, 0, 40, 50),
            ],
        )
        .unwrap();
        let all = t.transits();
        assert_eq!(all.len(), 2);
        assert!(all[0].arrive <= all[1].arrive);
        assert_eq!(all[0].node, NodeId(1));
    }

    #[test]
    fn prefix_truncates() {
        let t = Trace::new(
            "t",
            1,
            2,
            positions(2),
            vec![v(0, 0, 0, 10), v(0, 1, 20, 40)],
        )
        .unwrap();
        let p = t.prefix(SimTime(30));
        assert_eq!(p.visits().len(), 2);
        assert_eq!(p.visits()[1].end, SimTime(30));
        assert_eq!(p.duration(), SimDuration(30));
        let q = t.prefix(SimTime(15));
        assert_eq!(q.visits().len(), 1);
    }
}
