//! Plain-text trace serialization.
//!
//! Lets externally collected traces (DART/DNET-style association logs) be
//! loaded into the simulator, and synthetic traces be saved for inspection.
//!
//! Format (line-oriented, `#` comments allowed):
//!
//! ```text
//! dtn-trace v1
//! name campus
//! nodes 320
//! landmarks 159
//! pos 0 12.5 340.0
//! ...one pos line per landmark...
//! v 17 4 1000 1600      # node landmark start end  (seconds)
//! ```

use crate::trace::{Trace, Visit};
use dtnflow_core::geometry::Point;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::time::SimTime;
use std::fmt::Write as _;

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Missing or wrong magic line.
    BadHeader,
    /// A malformed line, with its 1-based number and a description.
    BadLine { line: usize, what: String },
    /// The parsed records failed trace validation.
    Invalid(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing `dtn-trace v1` header"),
            ParseError::BadLine { line, what } => write!(f, "line {line}: {what}"),
            ParseError::Invalid(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a trace to the v1 text format.
pub fn to_text(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("dtn-trace v1\n");
    let _ = writeln!(out, "name {}", trace.name());
    let _ = writeln!(out, "nodes {}", trace.num_nodes());
    let _ = writeln!(out, "landmarks {}", trace.num_landmarks());
    for (i, p) in trace.positions().iter().enumerate() {
        let _ = writeln!(out, "pos {i} {} {}", p.x, p.y);
    }
    for v in trace.visits() {
        let _ = writeln!(
            out,
            "v {} {} {} {}",
            v.node.index(),
            v.landmark.index(),
            v.start.secs(),
            v.end.secs()
        );
    }
    out
}

/// Parse the v1 text format back into a validated [`Trace`].
pub fn from_text(text: &str) -> Result<Trace, ParseError> {
    let mut lines = text.lines().enumerate();
    let header = lines
        .next()
        .map(|(_, l)| l.trim())
        .ok_or(ParseError::BadHeader)?;
    if header != "dtn-trace v1" {
        return Err(ParseError::BadHeader);
    }

    let mut name = String::from("unnamed");
    let mut nodes = 0usize;
    let mut landmarks = 0usize;
    let mut positions: Vec<(usize, Point)> = Vec::new();
    let mut visits: Vec<Visit> = Vec::new();

    let bad = |line: usize, what: &str| ParseError::BadLine {
        line: line + 1,
        what: what.to_string(),
    };

    for (ln, raw) in lines {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        // A trimmed non-empty line always yields a first token, but this
        // parser handles foreign input — surface a typed error instead of
        // relying on that invariant with a panic.
        let Some(tag) = it.next() else {
            return Err(bad(ln, "line has no tag token"));
        };
        match tag {
            "name" => {
                name = it.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(bad(ln, "name requires a value"));
                }
            }
            "nodes" => {
                nodes = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(ln, "nodes requires a count"))?;
            }
            "landmarks" => {
                landmarks = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(ln, "landmarks requires a count"))?;
            }
            "pos" => {
                let i: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(ln, "pos requires an index"))?;
                let x: f64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(ln, "pos requires x"))?;
                let y: f64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad(ln, "pos requires y"))?;
                positions.push((i, Point::new(x, y)));
            }
            "v" => {
                let mut next_u64 = || -> Option<u64> { it.next().and_then(|s| s.parse().ok()) };
                let (n, l, s, e) = (next_u64(), next_u64(), next_u64(), next_u64());
                match (n, l, s, e) {
                    (Some(n), Some(l), Some(s), Some(e)) => visits.push(Visit::new(
                        NodeId::from(n as usize),
                        LandmarkId::from(l as usize),
                        SimTime(s),
                        SimTime(e),
                    )),
                    _ => return Err(bad(ln, "v requires: node landmark start end")),
                }
            }
            other => return Err(bad(ln, &format!("unknown tag `{other}`"))),
        }
    }

    positions.sort_by_key(|&(i, _)| i);
    let expect: Vec<usize> = (0..landmarks).collect();
    let got: Vec<usize> = positions.iter().map(|&(i, _)| i).collect();
    if got != expect {
        return Err(ParseError::Invalid(format!(
            "positions must cover 0..{landmarks} exactly once"
        )));
    }
    let pos: Vec<Point> = positions.into_iter().map(|(_, p)| p).collect();

    Trace::new(name, nodes, landmarks, pos, visits).map_err(|e| ParseError::Invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(
            "sample trace",
            2,
            2,
            vec![Point::new(0.0, 0.0), Point::new(10.0, 20.0)],
            vec![
                Visit::new(NodeId(0), LandmarkId(0), SimTime(0), SimTime(100)),
                Visit::new(NodeId(1), LandmarkId(1), SimTime(50), SimTime(150)),
                Visit::new(NodeId(0), LandmarkId(1), SimTime(200), SimTime(300)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let text = to_text(&t);
        let back = from_text(&text).unwrap();
        assert_eq!(back.name(), t.name());
        assert_eq!(back.num_nodes(), t.num_nodes());
        assert_eq!(back.num_landmarks(), t.num_landmarks());
        assert_eq!(back.positions(), t.positions());
        assert_eq!(back.visits(), t.visits());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "dtn-trace v1\n# header comment\nname x\n\nnodes 1\nlandmarks 1\npos 0 0 0\nv 0 0 0 10 # trailing comment\n";
        let t = from_text(text).unwrap();
        assert_eq!(t.visits().len(), 1);
        assert_eq!(t.name(), "x");
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(from_text("nope\n"), Err(ParseError::BadHeader));
        assert_eq!(from_text(""), Err(ParseError::BadHeader));
    }

    #[test]
    fn rejects_malformed_lines() {
        let text = "dtn-trace v1\nv 0 0 0\n";
        match from_text(text) {
            Err(ParseError::BadLine { line: 2, .. }) => {}
            other => panic!("expected BadLine, got {other:?}"),
        }
        let text = "dtn-trace v1\nfrobnicate 1\n";
        assert!(matches!(from_text(text), Err(ParseError::BadLine { .. })));
    }

    #[test]
    fn rejects_missing_positions() {
        let text = "dtn-trace v1\nname x\nnodes 1\nlandmarks 2\npos 0 0 0\nv 0 0 0 10\n";
        assert!(matches!(from_text(text), Err(ParseError::Invalid(_))));
    }

    #[test]
    fn rejects_invalid_visits() {
        // end <= start fails trace validation.
        let text = "dtn-trace v1\nname x\nnodes 1\nlandmarks 1\npos 0 0 0\nv 0 0 10 10\n";
        assert!(matches!(from_text(text), Err(ParseError::Invalid(_))));
    }
}
