//! Mobility traces for the DTN-FLOW reproduction.
//!
//! A *trace* is the ground truth every router consumes: a list of
//! [`Visit`]s — intervals during which a mobile node was associated with a
//! landmark — exactly the information the paper extracts from the DART and
//! DNET datasets (§III-B.1).
//!
//! The crate provides:
//!
//! * [`Visit`]/[`Trace`] — validated, indexed visit records with transit
//!   extraction;
//! * [`prep`] — the paper's preprocessing pipeline (merge neighbouring
//!   records, drop short connections, drop sparse nodes);
//! * [`stats`] — the trace analyses behind observations O1–O4 and
//!   Figs. 2–4 / Table I;
//! * [`synth`] — seeded synthetic generators substituting for the DART
//!   campus trace, the DNET bus trace and the §V-C campus deployment;
//! * [`io`] — a plain-text trace format with parser, so externally
//!   collected traces can be loaded.

#![forbid(unsafe_code)]

pub mod io;
pub mod prep;
pub mod stats;
pub mod synth;
pub mod trace;

pub use trace::{Trace, TraceError, Transit, Visit};
