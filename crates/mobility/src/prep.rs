//! The paper's trace preprocessing pipeline (§III-B.1).
//!
//! Raw association logs are noisy: a device flaps between records at the
//! same place, very short connections are spurious, and barely-logged nodes
//! carry no usable pattern. The paper therefore (1) merges neighbouring
//! records referring to the same node and landmark, (2) removes short
//! connections (< 200 s for DART), and (3) removes nodes with few records
//! (< 500 for DART). This module reproduces that pipeline on raw
//! [`Visit`] lists.

use crate::trace::Visit;
use dtnflow_core::ids::NodeId;
use dtnflow_core::time::SimDuration;

/// Configuration of the preprocessing pipeline.
#[derive(Debug, Clone)]
pub struct PrepConfig {
    /// Merge two same-node same-landmark records separated by at most this
    /// gap. The paper merges "neighboring records"; we use 5 minutes.
    pub merge_gap: SimDuration,
    /// Drop visits shorter than this (DART: 200 s).
    pub min_visit: SimDuration,
    /// Drop nodes with fewer remaining records than this (DART: 500;
    /// set 0 to keep everyone).
    pub min_records: usize,
}

impl Default for PrepConfig {
    fn default() -> Self {
        PrepConfig {
            merge_gap: SimDuration::from_secs(300),
            min_visit: SimDuration::from_secs(200),
            min_records: 0,
        }
    }
}

/// Outcome of preprocessing: cleaned visits plus what was removed.
#[derive(Debug, Clone)]
pub struct PrepReport {
    pub visits: Vec<Visit>,
    pub merged: usize,
    pub dropped_short: usize,
    pub dropped_nodes: usize,
}

/// Run the full pipeline: merge, drop short, drop sparse nodes.
/// Node ids are preserved (not re-densified); callers that need dense ids
/// can use [`compact_node_ids`].
pub fn preprocess(mut visits: Vec<Visit>, cfg: &PrepConfig) -> PrepReport {
    visits.sort_by_key(|v| (v.node, v.start, v.end));

    // 1. Merge neighbouring same-node same-landmark records.
    let mut merged_visits: Vec<Visit> = Vec::with_capacity(visits.len());
    let mut merged = 0usize;
    for v in visits {
        match merged_visits.last_mut() {
            Some(last)
                if last.node == v.node
                    && last.landmark == v.landmark
                    && v.start.since(last.end) <= cfg.merge_gap =>
            {
                last.end = last.end.max(v.end);
                merged += 1;
            }
            _ => merged_visits.push(v),
        }
    }

    // 2. Drop short connections.
    let before = merged_visits.len();
    merged_visits.retain(|v| v.duration() >= cfg.min_visit);
    let dropped_short = before - merged_visits.len();

    // 3. Drop nodes with few records.
    let mut dropped_nodes = 0usize;
    if cfg.min_records > 0 {
        let max_node = merged_visits
            .iter()
            .map(|v| v.node.index())
            .max()
            .unwrap_or(0);
        let mut counts = vec![0usize; max_node + 1];
        for v in &merged_visits {
            counts[v.node.index()] += 1;
        }
        dropped_nodes = counts
            .iter()
            .filter(|&&c| c > 0 && c < cfg.min_records)
            .count();
        merged_visits.retain(|v| counts[v.node.index()] >= cfg.min_records);
    }

    PrepReport {
        visits: merged_visits,
        merged,
        dropped_short,
        dropped_nodes,
    }
}

/// Re-densify node ids after preprocessing removed some nodes: returns the
/// rewritten visits plus the mapping `new index -> old NodeId`.
pub fn compact_node_ids(visits: &[Visit]) -> (Vec<Visit>, Vec<NodeId>) {
    let mut seen: Vec<NodeId> = visits.iter().map(|v| v.node).collect();
    seen.sort();
    seen.dedup();
    let rewritten = visits
        .iter()
        .map(|v| Visit {
            node: NodeId::from(
                seen.binary_search(&v.node)
                    .expect("node present in mapping"),
            ),
            ..*v
        })
        .collect();
    (rewritten, seen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::ids::LandmarkId;
    use dtnflow_core::time::SimTime;

    fn v(n: u32, l: u16, s: u64, e: u64) -> Visit {
        Visit::new(NodeId(n), LandmarkId(l), SimTime(s), SimTime(e))
    }

    #[test]
    fn merges_neighbouring_same_landmark_records() {
        let cfg = PrepConfig {
            merge_gap: SimDuration::from_secs(100),
            min_visit: SimDuration::ZERO,
            min_records: 0,
        };
        let r = preprocess(
            vec![v(0, 1, 0, 500), v(0, 1, 550, 900), v(0, 2, 1_000, 1_300)],
            &cfg,
        );
        assert_eq!(r.merged, 1);
        assert_eq!(r.visits.len(), 2);
        assert_eq!(r.visits[0].end, SimTime(900));
    }

    #[test]
    fn does_not_merge_across_gap_or_landmark() {
        let cfg = PrepConfig {
            merge_gap: SimDuration::from_secs(10),
            min_visit: SimDuration::ZERO,
            min_records: 0,
        };
        let r = preprocess(vec![v(0, 1, 0, 100), v(0, 1, 200, 300)], &cfg);
        assert_eq!(r.merged, 0);
        assert_eq!(r.visits.len(), 2);
        let r2 = preprocess(vec![v(0, 1, 0, 100), v(0, 2, 105, 300)], &cfg);
        assert_eq!(r2.merged, 0);
    }

    #[test]
    fn drops_short_connections() {
        let cfg = PrepConfig {
            merge_gap: SimDuration::ZERO,
            min_visit: SimDuration::from_secs(200),
            min_records: 0,
        };
        let r = preprocess(vec![v(0, 1, 0, 100), v(0, 2, 200, 500)], &cfg);
        assert_eq!(r.dropped_short, 1);
        assert_eq!(r.visits.len(), 1);
        assert_eq!(r.visits[0].landmark, LandmarkId(2));
    }

    #[test]
    fn drops_sparse_nodes() {
        let cfg = PrepConfig {
            merge_gap: SimDuration::ZERO,
            min_visit: SimDuration::ZERO,
            min_records: 2,
        };
        let r = preprocess(
            vec![v(0, 1, 0, 100), v(0, 2, 200, 300), v(1, 1, 0, 100)],
            &cfg,
        );
        assert_eq!(r.dropped_nodes, 1);
        assert!(r.visits.iter().all(|x| x.node == NodeId(0)));
    }

    #[test]
    fn compaction_renumbers_densely() {
        let visits = vec![v(5, 0, 0, 10), v(9, 0, 0, 10), v(5, 1, 20, 30)];
        let (rw, map) = compact_node_ids(&visits);
        assert_eq!(map, vec![NodeId(5), NodeId(9)]);
        assert_eq!(rw[0].node, NodeId(0));
        assert_eq!(rw[1].node, NodeId(1));
        assert_eq!(rw[2].node, NodeId(0));
    }

    #[test]
    fn merge_interacts_with_short_drop() {
        // Two sub-threshold fragments merge into one visit that survives.
        let cfg = PrepConfig {
            merge_gap: SimDuration::from_secs(50),
            min_visit: SimDuration::from_secs(200),
            min_records: 0,
        };
        let r = preprocess(vec![v(0, 1, 0, 150), v(0, 1, 160, 310)], &cfg);
        assert_eq!(r.merged, 1);
        assert_eq!(r.dropped_short, 0);
        assert_eq!(r.visits.len(), 1);
    }
}
