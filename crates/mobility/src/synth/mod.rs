//! Seeded synthetic trace generators.
//!
//! The paper evaluates on two proprietary datasets (the Dartmouth campus
//! WLAN trace and the UMass DieselNet AP trace) plus a small physical
//! deployment. None are available here, so each is substituted by a
//! generator reproducing the *properties the algorithms depend on* —
//! skewed landmark popularity (O1), heavy-tailed and symmetric transit-link
//! bandwidths (O2/O3), per-unit bandwidth stability with calendar effects
//! (O4), and imperfect predictability caused by missing records (Fig. 6).
//! See DESIGN.md §2 for the substitution rationale.
//!
//! * [`campus::CampusModel`] — DART-like student mobility;
//! * [`bus::BusModel`] — DNET-like bus mobility;
//! * [`deployment::DeploymentModel`] — the §V-C nine-phone deployment.

pub mod bus;
pub mod campus;
pub mod deployment;

use dtnflow_core::geometry::{Point, Rect};
use rand::Rng;

pub use bus::{BusConfig, BusModel};
pub use campus::{CampusConfig, CampusModel};
pub use deployment::{DeploymentConfig, DeploymentModel};

/// Place `n` landmark sites uniformly in `area` with pairwise separation of
/// at least `min_sep` meters (best effort: after many rejections the
/// constraint is relaxed geometrically so placement always terminates).
pub fn place_landmarks(rng: &mut impl Rng, n: usize, area: Rect, min_sep: f64) -> Vec<Point> {
    assert!(min_sep >= 0.0);
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    let mut sep = min_sep;
    let mut failures = 0usize;
    while pts.len() < n {
        let p = Point::new(
            area.min.x + rng.random::<f64>() * area.width(),
            area.min.y + rng.random::<f64>() * area.height(),
        );
        if pts.iter().all(|q| q.distance(p) >= sep) {
            pts.push(p);
            failures = 0;
        } else {
            failures += 1;
            if failures > 200 {
                // The area is too crowded for this separation: relax.
                sep *= 0.8;
                failures = 0;
            }
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::rngutil::rng_for;

    #[test]
    fn placement_respects_separation_when_feasible() {
        let mut rng = rng_for(1, "placement");
        let area = Rect::from_size(1_000.0, 1_000.0);
        let pts = place_landmarks(&mut rng, 10, area, 100.0);
        assert_eq!(pts.len(), 10);
        for i in 0..pts.len() {
            assert!(area.contains(pts[i]));
            for j in (i + 1)..pts.len() {
                assert!(pts[i].distance(pts[j]) >= 100.0 * 0.8 - 1e-9);
            }
        }
    }

    #[test]
    fn placement_terminates_when_overconstrained() {
        let mut rng = rng_for(2, "placement2");
        let area = Rect::from_size(100.0, 100.0);
        // 50 points with 100 m separation cannot fit; relaxation kicks in.
        let pts = place_landmarks(&mut rng, 50, area, 100.0);
        assert_eq!(pts.len(), 50);
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let area = Rect::from_size(500.0, 500.0);
        let a = place_landmarks(&mut rng_for(3, "p"), 5, area, 10.0);
        let b = place_landmarks(&mut rng_for(3, "p"), 5, area, 10.0);
        assert_eq!(a, b);
    }
}
