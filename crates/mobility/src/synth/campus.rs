//! DART-like campus mobility: the substitute for the Dartmouth WLAN trace.
//!
//! Students belong to departments (the social structure the paper assumes,
//! §III-A.1). Each node's day is a semi-Markov walk over landmark classes —
//! own department building, library, dining halls, own dorm, misc buildings
//! — with log-normal stay times, overnight dorm stays, reduced weekend
//! activity, and near-zero movement during holiday ranges (reproducing the
//! Thanksgiving/Christmas dips of Fig. 4a). A record-loss process drops a
//! fraction of visits, reproducing the incomplete logs that make order-1
//! the best Markov order on the real traces (§IV-B.3).

use crate::prep::{preprocess, PrepConfig};
use crate::trace::{Trace, Visit};
use dtnflow_core::geometry::Rect;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::rngutil::{log_normal, rng_for, weighted_choice, zipf_weights};
use dtnflow_core::time::{SimDuration, SimTime, DAY, HOUR, MINUTE};
use rand::rngs::StdRng;
use rand::Rng;

use super::place_landmarks;

/// Landmark roles on the synthetic campus, in index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampusRole {
    Library,
    Department(usize),
    Dorm(usize),
    Dining(usize),
    Misc(usize),
}

/// Configuration of the campus generator.
#[derive(Debug, Clone)]
pub struct CampusConfig {
    pub nodes: usize,
    pub landmarks: usize,
    pub departments: usize,
    pub dorms: usize,
    pub dining: usize,
    pub days: u32,
    /// Side of the square campus area, meters.
    pub area_side: f64,
    /// Probability that a visit goes unlogged (device off): drives
    /// predictor imperfection.
    pub record_loss: f64,
    /// Day-index ranges `[start, end)` with suppressed movement (holidays).
    pub holidays: Vec<(u32, u32)>,
    /// Relative number of weekend outings vs. a weekday (0..1).
    pub weekend_activity: f64,
    /// Probability that an outing follows the node's fixed daily routine
    /// rather than an impulsive weighted choice. High adherence is what
    /// makes real students' movement Markov-predictable (§IV-B.3).
    pub routine_adherence: f64,
    pub seed: u64,
}

impl Default for CampusConfig {
    /// Reduced-scale default used by the experiment sweeps: 50 nodes,
    /// 40 landmarks, 48 days (16 three-day time units). Holidays at days
    /// 21–24 and 42–45, mimicking the two dips of Fig. 4(a). Contact
    /// sparsity (outings and record loss) is tuned so that, like in the
    /// paper's experiments, node memory is the binding resource at the
    /// default 2000 kB.
    fn default() -> Self {
        CampusConfig {
            nodes: 50,
            landmarks: 40,
            departments: 8,
            dorms: 10,
            dining: 3,
            days: 48,
            area_side: 2_000.0,
            record_loss: 0.22,
            holidays: vec![(21, 25), (42, 46)],
            weekend_activity: 0.35,
            routine_adherence: 0.92,
            seed: 0xCA_4705,
        }
    }
}

impl CampusConfig {
    /// Paper-scale parameters (DART: 320 nodes, 159 landmarks, ~119 days).
    /// Slow; the sweeps use [`CampusConfig::default`].
    pub fn paper_scale() -> Self {
        CampusConfig {
            nodes: 320,
            landmarks: 159,
            departments: 16,
            dorms: 30,
            dining: 5,
            days: 119,
            ..CampusConfig::default()
        }
    }

    /// Tiny configuration for unit tests and Criterion benches.
    pub fn tiny() -> Self {
        CampusConfig {
            nodes: 20,
            landmarks: 10,
            departments: 3,
            dorms: 3,
            dining: 1,
            days: 12,
            holidays: vec![],
            ..CampusConfig::default()
        }
    }

    fn validate(&self) {
        assert!(self.nodes > 0 && self.landmarks > 0 && self.days > 0);
        assert!(
            1 + self.departments + self.dorms + self.dining <= self.landmarks,
            "landmarks must cover library + departments + dorms + dining"
        );
        assert!((0.0..1.0).contains(&self.record_loss));
        assert!((0.0..=1.0).contains(&self.weekend_activity));
        assert!((0.0..=1.0).contains(&self.routine_adherence));
    }

    /// The role of each landmark index under this configuration.
    pub fn role(&self, lm: LandmarkId) -> CampusRole {
        let i = lm.index();
        if i == 0 {
            CampusRole::Library
        } else if i < 1 + self.departments {
            CampusRole::Department(i - 1)
        } else if i < 1 + self.departments + self.dorms {
            CampusRole::Dorm(i - 1 - self.departments)
        } else if i < 1 + self.departments + self.dorms + self.dining {
            CampusRole::Dining(i - 1 - self.departments - self.dorms)
        } else {
            CampusRole::Misc(i - 1 - self.departments - self.dorms - self.dining)
        }
    }

    fn is_holiday(&self, day: u32) -> bool {
        self.holidays.iter().any(|&(s, e)| day >= s && day < e)
    }
}

/// The generator. Create with a config, call [`CampusModel::generate`].
#[derive(Debug, Clone)]
pub struct CampusModel {
    cfg: CampusConfig,
}

/// Per-node persona: who the student is and where they tend to go.
struct Persona {
    dorm_lm: usize,
    /// Stationary preference weights over all landmarks (current landmark
    /// is zeroed before sampling so every move is a real transit).
    weights: Vec<f64>,
    /// The fixed daily itinerary the student usually follows.
    routine: Vec<usize>,
    /// Mean number of outings on a weekday.
    outings: f64,
}

impl CampusModel {
    pub fn new(cfg: CampusConfig) -> Self {
        cfg.validate();
        CampusModel { cfg }
    }

    /// Generate the full trace (already preprocessed like the paper's
    /// pipeline: merged records, short visits dropped).
    pub fn generate(&self) -> Trace {
        let cfg = &self.cfg;
        let mut layout_rng = rng_for(cfg.seed, "campus-layout");
        let area = Rect::from_size(cfg.area_side, cfg.area_side);
        let positions = place_landmarks(&mut layout_rng, cfg.landmarks, area, 80.0);

        let mut visits: Vec<Visit> = Vec::new();
        for n in 0..cfg.nodes {
            let mut rng = rng_for(cfg.seed, &format!("campus-node-{n}"));
            let persona = self.persona(n, &mut rng);
            self.node_visits(&persona, &mut rng, &mut visits, NodeId::from(n));
        }

        let prep = preprocess(visits, &PrepConfig::default());
        Trace::new("campus", cfg.nodes, cfg.landmarks, positions, prep.visits)
            .expect("generated campus trace is valid")
    }

    fn persona(&self, n: usize, rng: &mut StdRng) -> Persona {
        let cfg = &self.cfg;
        let department = n % cfg.departments;
        let dorm = rng.random_range(0..cfg.dorms);
        let department_lm = 1 + department;
        let dorm_lm = 1 + cfg.departments + dorm;

        let mut weights = vec![0.0f64; cfg.landmarks];
        weights[0] = 1.8 + rng.random::<f64>(); // library
        weights[department_lm] = 3.5 + rng.random::<f64>() * 1.5;
        weights[dorm_lm] = 1.0;
        let dining_base = 1 + cfg.departments + cfg.dorms;
        // Each student favours one dining hall.
        let favourite = rng.random_range(0..cfg.dining);
        for d in 0..cfg.dining {
            weights[dining_base + d] = if d == favourite { 1.2 } else { 0.2 };
        }
        // Misc buildings: node-specific Zipf over a shuffled order so
        // different students frequent different misc places.
        let misc_base = dining_base + cfg.dining;
        let misc_n = cfg.landmarks - misc_base;
        if misc_n > 0 {
            let zipf = zipf_weights(misc_n, 1.2);
            let offset = rng.random_range(0..misc_n);
            for (k, w) in zipf.iter().enumerate() {
                weights[misc_base + (k + offset) % misc_n] = w * 0.9;
            }
        }
        // The fixed weekday itinerary: department first, then a personal
        // sequence sampled once from the preference weights (no immediate
        // repeats). Day after day the student mostly replays this route,
        // which is what gives real traces their Markov predictability.
        let mut routine = vec![department_lm];
        let mut current = department_lm;
        for _ in 0..6 {
            let mut w = weights.clone();
            w[current] = 0.0;
            let next = weighted_choice(rng, &w);
            routine.push(next);
            current = next;
        }
        Persona {
            dorm_lm,
            weights,
            routine,
            outings: 2.0 + rng.random::<f64>() * 2.5,
        }
    }

    /// A stay-time sample appropriate for the landmark's role.
    fn stay(&self, lm: usize, rng: &mut StdRng) -> SimDuration {
        let (median_min, sigma) = match self.cfg.role(LandmarkId::from(lm)) {
            CampusRole::Library => (100.0, 0.6),
            CampusRole::Department(_) => (90.0, 0.6),
            CampusRole::Dorm(_) => (120.0, 0.7),
            CampusRole::Dining(_) => (40.0, 0.4),
            CampusRole::Misc(_) => (50.0, 0.6),
        };
        let mins = log_normal(rng, median_min, sigma).clamp(5.0, 600.0);
        MINUTE.mul_f64(mins)
    }

    fn travel(&self, rng: &mut StdRng) -> SimDuration {
        // Walking across campus: 5–25 minutes.
        MINUTE.mul_f64(5.0 + rng.random::<f64>() * 20.0)
    }

    fn node_visits(&self, persona: &Persona, rng: &mut StdRng, out: &mut Vec<Visit>, node: NodeId) {
        let cfg = &self.cfg;
        let mut log = |lm: usize, start: SimTime, end: SimTime, rng: &mut StdRng| {
            if end > start && rng.random::<f64>() >= cfg.record_loss {
                out.push(Visit::new(node, LandmarkId::from(lm), start, end));
            }
        };

        for day in 0..cfg.days {
            let day_start = SimTime(day as u64 * DAY.secs());
            let weekday = day % 7 < 5;
            let holiday = cfg.is_holiday(day);

            // Overnight dorm stay from the previous evening to wake-up.
            let wake = day_start + HOUR.mul_f64(7.0 + rng.random::<f64>() * 2.0);

            let outings = if holiday {
                if rng.random::<f64>() < 0.85 {
                    0.0
                } else {
                    1.0
                }
            } else if weekday {
                persona.outings
            } else {
                persona.outings * cfg.weekend_activity
            };
            let count =
                outings.floor() as usize + usize::from(rng.random::<f64>() < outings.fract());

            let mut t = wake;
            let mut current = persona.dorm_lm;
            let day_end = day_start + HOUR.mul_f64(21.0 + rng.random::<f64>() * 2.0);
            // Morning dorm presence until first outing.
            log(current, day_start, t, rng);

            for k in 0..count {
                if t >= day_end {
                    break;
                }
                // Mostly follow the fixed routine; occasionally improvise.
                let next = if weekday && rng.random::<f64>() < cfg.routine_adherence {
                    let r = persona.routine[k % persona.routine.len()];
                    if r == current {
                        persona.routine[(k + 1) % persona.routine.len()]
                    } else {
                        r
                    }
                } else {
                    let mut w = persona.weights.clone();
                    w[current] = 0.0;
                    weighted_choice(rng, &w)
                };
                if next == current {
                    continue;
                }
                t += self.travel(rng);
                let stay = self.stay(next, rng);
                let end = (t + stay).min(day_end);
                log(next, t, end, rng);
                t = end;
                current = next;
            }

            // Evening: return to the dorm until midnight (the next day's
            // overnight segment continues from day_start).
            if current != persona.dorm_lm {
                t += self.travel(rng);
            }
            let midnight = day_start + DAY;
            log(persona.dorm_lm, t.max(day_end), midnight, rng);
        }
    }
}

/// Convenience: generate the default reduced-scale campus trace.
pub fn default_campus_trace(seed: u64) -> Trace {
    CampusModel::new(CampusConfig {
        seed,
        ..CampusConfig::default()
    })
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    fn small_trace() -> Trace {
        CampusModel::new(CampusConfig::tiny()).generate()
    }

    #[test]
    fn generates_a_valid_nonempty_trace() {
        let t = small_trace();
        assert_eq!(t.num_nodes(), 20);
        assert_eq!(t.num_landmarks(), 10);
        assert!(t.visits().len() > 200, "visits: {}", t.visits().len());
        assert!(t.duration().as_days() <= 12.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CampusModel::new(CampusConfig::tiny()).generate();
        let b = CampusModel::new(CampusConfig::tiny()).generate();
        assert_eq!(a.visits(), b.visits());
        let mut cfg = CampusConfig::tiny();
        cfg.seed ^= 1;
        let c = CampusModel::new(cfg).generate();
        assert_ne!(a.visits(), c.visits());
    }

    #[test]
    fn popularity_is_skewed() {
        let t = default_campus_trace(31);
        let pop = stats::landmark_popularity(&t);
        // The most popular landmark sees clearly more visits than the
        // median one.
        let top = pop[0].1 as f64;
        let median = pop[pop.len() / 2].1 as f64;
        assert!(top > 1.5 * median.max(1.0), "top {top} median {median}");
    }

    #[test]
    fn department_visits_concentrate_on_few_nodes_o1() {
        // O1: for each subarea only a small portion of nodes visit it
        // frequently. A department building is mainly visited by its own
        // students (1/8 of the population), so the top 20% of nodes
        // contribute the bulk of its visits.
        let t = default_campus_trace(11);
        let dept = LandmarkId(1);
        let conc = stats::visit_concentration(&t, dept, 0.2);
        assert!(conc > 0.6, "concentration {conc}");
    }

    #[test]
    fn matching_links_roughly_symmetric_o3() {
        let t = default_campus_trace(7);
        let b = stats::link_bandwidths(&t, DAY.mul(3));
        let sym = b.matching_link_symmetry();
        assert!(sym > 0.6, "symmetry correlation {sym}");
    }

    #[test]
    fn holidays_suppress_transits_o4() {
        let cfg = CampusConfig {
            days: 28,
            holidays: vec![(14, 18)],
            nodes: 40,
            ..CampusConfig::default()
        };
        let t = CampusModel::new(cfg).generate();
        let tl = stats::bandwidth_timeline(&t, DAY);
        let transits_day = |d: usize| -> u64 {
            let mut total = 0u64;
            for i in 0..t.num_landmarks() {
                for j in 0..t.num_landmarks() {
                    total += tl.series(LandmarkId::from(i), LandmarkId::from(j))[d] as u64;
                }
            }
            total
        };
        let normal: u64 = (7..14).map(transits_day).sum();
        let holiday: u64 = (14..18).map(transits_day).sum();
        // Per-day holiday activity is far below per-day normal activity.
        assert!(
            (holiday as f64 / 4.0) < 0.35 * (normal as f64 / 7.0),
            "holiday {holiday} normal {normal}"
        );
    }

    #[test]
    fn roles_partition_landmarks() {
        let cfg = CampusConfig::default();
        let mut lib = 0;
        let mut dep = 0;
        let mut dorm = 0;
        let mut dining = 0;
        let mut misc = 0;
        for l in 0..cfg.landmarks {
            match cfg.role(LandmarkId::from(l)) {
                CampusRole::Library => lib += 1,
                CampusRole::Department(_) => dep += 1,
                CampusRole::Dorm(_) => dorm += 1,
                CampusRole::Dining(_) => dining += 1,
                CampusRole::Misc(_) => misc += 1,
            }
        }
        assert_eq!(lib, 1);
        assert_eq!(dep, cfg.departments);
        assert_eq!(dorm, cfg.dorms);
        assert_eq!(dining, cfg.dining);
        assert_eq!(
            misc,
            cfg.landmarks - 1 - cfg.departments - cfg.dorms - cfg.dining
        );
    }

    #[test]
    #[should_panic(expected = "landmarks must cover")]
    fn rejects_too_few_landmarks() {
        CampusModel::new(CampusConfig {
            landmarks: 5,
            departments: 8,
            ..CampusConfig::default()
        });
    }
}
