//! DNET-like bus mobility: the substitute for the UMass DieselNet AP trace.
//!
//! Buses cycle fixed routes through stop landmarks all day, every day
//! (DNET excluded weekends and holidays, so there is no calendar
//! modulation and bandwidths are *more* stable than campus — Fig. 4b).
//! Two effects from the real trace are modelled explicitly:
//!
//! * **AP ambiguity** — in DNET a bus "may associate with one of several
//!   neighbouring APs after each transit", which is why bus prediction
//!   accuracy is *below* campus accuracy despite repetitive motion
//!   (§IV-B.3). With probability `ambiguity` a stop is logged as its
//!   spatially nearest other stop.
//! * **Garage trips** — a bus occasionally retires to a garage/parking lot
//!   for maintenance (§IV-E.1's dead-end example). The garage is the last
//!   landmark index.

use crate::prep::{preprocess, PrepConfig};
use crate::trace::{Trace, Visit};
use dtnflow_core::geometry::Point;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::rngutil::{log_normal, rng_for};
use dtnflow_core::time::{SimDuration, SimTime, DAY, HOUR};
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration of the bus generator.
#[derive(Debug, Clone)]
pub struct BusConfig {
    pub buses: usize,
    /// Number of service stops; the garage adds one more landmark.
    pub stops: usize,
    pub routes: usize,
    pub days: u32,
    /// Median dwell at a stop, seconds.
    pub dwell_median_s: f64,
    /// Median drive between consecutive stops, seconds.
    pub hop_median_s: f64,
    /// Mean number of route loops a bus drives per day. DNET buses were
    /// only intermittently near open APs, so the *logged* service is
    /// sparse; low values reproduce the day-scale delivery latencies of
    /// the paper's DNET experiments.
    pub loops_per_day: f64,
    /// Probability a stop is logged as its nearest neighbouring stop.
    pub ambiguity: f64,
    /// Probability a stop visit goes unlogged entirely. DNET's APs were
    /// third-party roadside APs that "may not appear constantly in the
    /// trace, leading to missing records" (§IV-B.3) — this is what makes
    /// order-1 the best Markov order despite ping-pong routes.
    pub record_loss: f64,
    /// Per-day probability a bus retires early to the garage.
    pub garage_prob: f64,
    /// Per-day probability a bus breaks down mid-route and stalls at a
    /// regular stop for several hours — the §IV-E.1 "dead end on its
    /// regular route", rescuable because other buses pass the stop.
    pub breakdown_prob: f64,
    /// Per-day probability a bus is pulled into day-long depot maintenance
    /// at the downtown hub — a long, rescuable dead end (other buses keep
    /// passing the hub).
    pub depot_prob: f64,
    pub seed: u64,
}

impl Default for BusConfig {
    /// Reduced-scale default: 20 buses, 12 stops + garage, 20 days
    /// (40 half-day time units, matching the paper's DNET unit count).
    fn default() -> Self {
        BusConfig {
            buses: 12,
            stops: 13,
            routes: 4,
            days: 20,
            dwell_median_s: 900.0,
            hop_median_s: 1_800.0,
            loops_per_day: 2.0,
            ambiguity: 0.12,
            record_loss: 0.35,
            garage_prob: 0.04,
            breakdown_prob: 0.05,
            depot_prob: 0.05,
            seed: 0xB0_5EED,
        }
    }
}

impl BusConfig {
    /// Paper-scale parameters (DNET: 34 buses, 18 landmarks, 26 days).
    pub fn paper_scale() -> Self {
        BusConfig {
            buses: 34,
            stops: 17,
            routes: 8,
            days: 26,
            ..BusConfig::default()
        }
    }

    /// Tiny configuration for unit tests and Criterion benches.
    pub fn tiny() -> Self {
        BusConfig {
            buses: 6,
            stops: 6,
            routes: 3,
            days: 6,
            ..BusConfig::default()
        }
    }

    /// Total landmarks: stops plus the garage.
    pub fn landmarks(&self) -> usize {
        self.stops + 1
    }

    /// The garage landmark.
    pub fn garage(&self) -> LandmarkId {
        LandmarkId::from(self.stops)
    }

    fn validate(&self) {
        assert!(self.buses > 0 && self.routes > 0 && self.days > 0);
        assert!(self.stops >= 3, "need at least 3 stops to form routes");
        assert!((0.0..1.0).contains(&self.ambiguity));
        assert!(self.loops_per_day > 0.0);
        assert!((0.0..1.0).contains(&self.record_loss));
        assert!((0.0..1.0).contains(&self.garage_prob));
        assert!((0.0..1.0).contains(&self.breakdown_prob));
        assert!((0.0..1.0).contains(&self.depot_prob));
        assert!(self.dwell_median_s > 0.0 && self.hop_median_s > 0.0);
    }
}

/// The generator. Create with a config, call [`BusModel::generate`].
#[derive(Debug, Clone)]
pub struct BusModel {
    cfg: BusConfig,
}

impl BusModel {
    pub fn new(cfg: BusConfig) -> Self {
        cfg.validate();
        BusModel { cfg }
    }

    /// Stop positions: a ring around the downtown hub (stop 0 at the
    /// center), garage on the outskirts.
    fn positions(&self) -> Vec<Point> {
        let n = self.cfg.stops;
        let mut pts = Vec::with_capacity(n + 1);
        pts.push(Point::new(0.0, 0.0)); // hub downtown
        for i in 1..n {
            let angle = std::f64::consts::TAU * (i as f64 / (n - 1) as f64);
            let radius = 1_200.0 + 400.0 * ((i % 3) as f64);
            pts.push(Point::new(radius * angle.cos(), radius * angle.sin()));
        }
        pts.push(Point::new(2_800.0, 2_800.0)); // garage
        pts
    }

    /// Route `r`: a directed loop from the hub through a *disjoint* arc of
    /// outer stops (hub → s1 → … → sk → hub → …), traversed clockwise or
    /// counter-clockwise depending on `direction`. Routes only meet at the
    /// downtown hub — the inter-village topology of the paper's
    /// motivation — so traffic between different routes *must* be relayed
    /// there. Bidirectional service by paired vehicles makes matching
    /// transit links symmetric in bandwidth (O3), and the hub links
    /// carry every route's traffic while outer links carry one route's
    /// (O2 skew). Each individual bus stays order-1 predictable.
    fn route(&self, r: usize, direction: bool) -> Vec<usize> {
        let outer = self.cfg.stops - 1; // stops 1..stops
        let routes = self.cfg.routes;
        // Split the outer stops into contiguous, non-overlapping arcs.
        let start = r * outer / routes;
        let end = (r + 1) * outer / routes;
        let mut stops = vec![0usize];
        for k in start..end {
            stops.push(1 + k);
        }
        if direction {
            stops[1..].reverse();
        }
        stops
    }

    /// The spatially nearest other stop — the "neighbouring AP" a visit may
    /// be mis-logged as.
    fn nearest_other(&self, positions: &[Point], s: usize) -> usize {
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for (i, p) in positions.iter().enumerate().take(self.cfg.stops) {
            if i != s {
                let d = p.distance(positions[s]);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
        }
        best
    }

    /// Generate the full trace.
    pub fn generate(&self) -> Trace {
        let cfg = &self.cfg;
        let positions = self.positions();
        let mut visits: Vec<Visit> = Vec::new();

        for b in 0..cfg.buses {
            let mut rng = rng_for(cfg.seed, &format!("bus-{b}"));
            let route = self.route(b % cfg.routes, (b % cfg.routes + b / cfg.routes) % 2 == 1);
            self.bus_visits(b, &route, &positions, &mut rng, &mut visits);
        }

        let prep = preprocess(
            visits,
            &PrepConfig {
                min_visit: SimDuration::from_secs(60),
                ..PrepConfig::default()
            },
        );
        Trace::new("bus", cfg.buses, cfg.landmarks(), positions, prep.visits)
            .expect("generated bus trace is valid")
    }

    fn bus_visits(
        &self,
        b: usize,
        route: &[usize],
        positions: &[Point],
        rng: &mut StdRng,
        out: &mut Vec<Visit>,
    ) {
        let cfg = &self.cfg;
        let node = NodeId::from(b);
        let mut day = 0u32;
        while day < cfg.days {
            let day_start = SimTime(day as u64 * DAY.secs());
            if rng.random::<f64>() < cfg.depot_prob {
                // Depot maintenance at the hub: stalled a day in plain
                // sight of all passing buses.
                let into = day_start + HOUR.mul_f64(8.0 + rng.random::<f64>() * 4.0);
                let out_at = into + HOUR.mul_f64(18.0 + rng.random::<f64>() * 12.0);
                out.push(Visit::new(node, LandmarkId::from(0usize), into, out_at));
                day += 2;
                continue;
            }
            let garage_today = rng.random::<f64>() < cfg.garage_prob;
            if garage_today {
                // Maintenance: parked at the garage into the next morning —
                // the §IV-E.1 dead end. The bus also misses the next
                // service day's start.
                let into = day_start + HOUR.mul_f64(9.0 + rng.random::<f64>() * 3.0);
                let back = day_start + DAY + HOUR.mul_f64(5.0);
                out.push(Visit::new(node, cfg.garage(), into, back));
                day += 2;
                continue;
            }

            // Sparse service: a few route loops at staggered times, parked
            // (invisible to the network) in between. Loop counts follow a
            // deterministic timetable accumulator (buses run schedules,
            // not coin flips), which keeps per-unit bandwidths stable (O4).
            let loops = (((day as f64 + 1.0) * cfg.loops_per_day).floor()
                - (day as f64 * cfg.loops_per_day).floor()) as u32;
            let service_start = day_start + HOUR.mul_f64(6.0 + rng.random::<f64>());
            let service_end = day_start + HOUR.mul_f64(21.0 + rng.random::<f64>());
            let breakdown_today = rng.random::<f64>() < cfg.breakdown_prob;
            let mut t = service_start;
            for _ in 0..loops {
                // Idle gap before this loop starts.
                t += HOUR.mul_f64(rng.random::<f64>() * 3.0);
                for &stop in route {
                    if t >= service_end {
                        break;
                    }
                    let dwell =
                        SimDuration::from_secs(log_normal(rng, cfg.dwell_median_s, 0.4) as u64);
                    // AP ambiguity: sometimes the visit is logged at the
                    // nearest neighbouring stop; sometimes not at all.
                    let logged = if rng.random::<f64>() < cfg.ambiguity {
                        self.nearest_other(positions, stop)
                    } else {
                        stop
                    };
                    let mut end = t + dwell;
                    // A breakdown stalls the bus here for hours, visible
                    // to the station the whole time.
                    if breakdown_today && rng.random::<f64>() < 0.25 {
                        end += HOUR.mul_f64(4.0 + rng.random::<f64>() * 6.0);
                        out.push(Visit::new(node, LandmarkId::from(stop), t, end));
                    } else if rng.random::<f64>() >= cfg.record_loss {
                        out.push(Visit::new(node, LandmarkId::from(logged), t, end));
                    }
                    let hop = SimDuration::from_secs(log_normal(rng, cfg.hop_median_s, 0.3) as u64);
                    t = end + hop;
                }
            }
            day += 1;
        }
    }
}

/// Convenience: generate the default reduced-scale bus trace.
pub fn default_bus_trace(seed: u64) -> Trace {
    BusModel::new(BusConfig {
        seed,
        ..BusConfig::default()
    })
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn generates_valid_trace() {
        let t = BusModel::new(BusConfig::tiny()).generate();
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.num_landmarks(), 7);
        assert!(t.visits().len() > 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = BusModel::new(BusConfig::tiny()).generate();
        let b = BusModel::new(BusConfig::tiny()).generate();
        assert_eq!(a.visits(), b.visits());
    }

    #[test]
    fn routes_share_the_hub() {
        let m = BusModel::new(BusConfig::default());
        for r in 0..m.cfg.routes {
            assert_eq!(m.route(r, false)[0], 0, "route {r} must start at the hub");
            assert_eq!(m.route(r, true)[0], 0, "reverse route {r} too");
            // The two directions visit the same stops.
            let mut fwd = m.route(r, false);
            let mut rev = m.route(r, true);
            fwd.sort_unstable();
            rev.sort_unstable();
            assert_eq!(fwd, rev);
        }
    }

    #[test]
    fn link_bandwidths_are_skewed_o2() {
        let t = default_bus_trace(3);
        let b = stats::link_bandwidths(&t, SimDuration::from_days(0.5));
        let links = b.ordered_links();
        // O2: a small portion of links carries most traffic — the top link
        // has several times the median link's bandwidth.
        let median = links[links.len() / 2].2;
        assert!(
            links[0].2 >= 3.0 * median,
            "top {} median {median}",
            links[0].2
        );
    }

    #[test]
    fn matching_links_symmetric_o3() {
        // Out-and-back service means b(i->j) tracks b(j->i).
        let t = default_bus_trace(10);
        let b = stats::link_bandwidths(&t, SimDuration::from_days(0.5));
        let sym = b.matching_link_symmetry();
        // AP ambiguity and odd per-route bus counts add noise, so the
        // correlation is high but not perfect.
        assert!(sym > 0.6, "symmetry correlation {sym}");
    }

    #[test]
    fn bus_bandwidths_lack_calendar_dips_o4() {
        // Fig. 4 contrast: the campus trace has deep holiday dips in
        // per-unit transit counts, while the bus trace (no weekends or
        // holidays) stays near its average throughout.
        let bus = default_bus_trace(5);
        let tl = stats::bandwidth_timeline(&bus, DAY);
        let units = tl.num_units();
        let mut day_totals = vec![0u64; units];
        for i in 0..bus.num_landmarks() {
            for j in 0..bus.num_landmarks() {
                let series = tl.series(LandmarkId::from(i), LandmarkId::from(j));
                for (d, c) in series.iter().enumerate() {
                    day_totals[d] += *c as u64;
                }
            }
        }
        // Ignore the possibly short first/last day.
        let interior = &day_totals[1..units - 1];
        let mean = interior.iter().sum::<u64>() as f64 / interior.len() as f64;
        let min = *interior.iter().min().unwrap() as f64;
        assert!(mean > 0.0);
        assert!(
            min > 0.35 * mean,
            "no service blackout expected: min {min} mean {mean}"
        );
    }

    #[test]
    fn garage_trips_occur() {
        let cfg = BusConfig {
            garage_prob: 0.5,
            ..BusConfig::tiny()
        };
        let garage = cfg.garage();
        let t = BusModel::new(cfg).generate();
        let garage_visits = t.visits().iter().filter(|v| v.landmark == garage).count();
        assert!(garage_visits > 0, "expected garage visits");
        // Garage stays are long (overnight).
        let max_stay = t
            .visits()
            .iter()
            .filter(|v| v.landmark == garage)
            .map(|v| v.duration().secs())
            .max()
            .unwrap();
        assert!(max_stay > 8 * 3_600);
    }

    #[test]
    fn no_garage_without_probability() {
        let cfg = BusConfig {
            garage_prob: 0.0,
            ..BusConfig::tiny()
        };
        let garage = cfg.garage();
        let t = BusModel::new(cfg).generate();
        assert!(t.visits().iter().all(|v| v.landmark != garage));
    }
}
