//! The §V-C campus deployment: nine students carrying phones across eight
//! buildings for a week and a half.
//!
//! Landmark layout mirrors Fig. 15: `l0` is the library (the paper's
//! \"l1\", the data-collection sink), `l1..=l4` are department buildings,
//! and `l5..=l7` are the student center and dining halls. Most
//! participating students are from the departments in `l1` and `l2`, and
//! they \"usually study in the library and go to classes in both department
//! buildings\" — which is what makes the library↔department links the
//! highest-bandwidth ones in Fig. 16(b).

use crate::prep::{preprocess, PrepConfig};
use crate::trace::{Trace, Visit};
use dtnflow_core::geometry::Point;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::rngutil::{log_normal, rng_for, weighted_choice};
use dtnflow_core::time::{SimDuration, SimTime, DAY, HOUR, MINUTE};
use rand::Rng;

/// Number of mobile nodes in the deployment.
pub const DEPLOY_NODES: usize = 9;
/// Number of landmarks in the deployment.
pub const DEPLOY_LANDMARKS: usize = 8;
/// The library: destination of every deployment packet.
pub const LIBRARY: LandmarkId = LandmarkId(0);

/// Configuration of the deployment generator.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    pub days: u32,
    pub seed: u64,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            days: 12,
            seed: 0xDE_9107,
        }
    }
}

/// The generator. Create with a config, call [`DeploymentModel::generate`].
#[derive(Debug, Clone)]
pub struct DeploymentModel {
    cfg: DeploymentConfig,
}

impl DeploymentModel {
    pub fn new(cfg: DeploymentConfig) -> Self {
        assert!(cfg.days > 0);
        DeploymentModel { cfg }
    }

    /// Building positions roughly matching the Fig. 15 sketch (meters).
    fn positions() -> Vec<Point> {
        vec![
            Point::new(500.0, 500.0), // l0 library (central)
            Point::new(250.0, 650.0), // l1 department A
            Point::new(700.0, 680.0), // l2 department B
            Point::new(150.0, 300.0), // l3 department C
            Point::new(850.0, 320.0), // l4 department D
            Point::new(480.0, 150.0), // l5 student center
            Point::new(300.0, 450.0), // l6 dining hall
            Point::new(680.0, 460.0), // l7 dining hall
        ]
    }

    /// Department of each student: five from department A, two from B,
    /// one each from C and D ("nine students from four departments",
    /// "most students ... are from departments located in l4 and l5" of
    /// the paper's labelling, i.e. our l1/l2).
    fn department(node: usize) -> usize {
        match node {
            0..=4 => 1,
            5 | 6 => 2,
            7 => 3,
            _ => 4,
        }
    }

    /// Generate the deployment trace.
    pub fn generate(&self) -> Trace {
        let cfg = &self.cfg;
        let mut visits: Vec<Visit> = Vec::new();

        for n in 0..DEPLOY_NODES {
            let mut rng = rng_for(cfg.seed, &format!("deploy-node-{n}"));
            let dept = Self::department(n);
            let node = NodeId::from(n);

            // Preference weights: own department and library dominate;
            // students from A and B also attend classes in each other's
            // building.
            let mut weights = vec![0.0f64; DEPLOY_LANDMARKS];
            weights[LIBRARY.index()] = 3.0;
            weights[dept] = 3.5;
            if dept == 1 {
                weights[2] = 1.5;
            }
            if dept == 2 {
                weights[1] = 1.5;
            }
            weights[5] = 0.7;
            weights[6] = 0.5;
            weights[7] = 0.5;

            for day in 0..cfg.days {
                let day_start = SimTime(day as u64 * DAY.secs());
                let weekday = day % 7 < 5;
                let mut t = day_start + HOUR.mul_f64(8.0 + rng.random::<f64>() * 1.5);
                let day_end = day_start + HOUR.mul_f64(18.0 + rng.random::<f64>() * 3.0);
                let outings = if weekday { 7 } else { 3 };
                let mut current = usize::MAX;
                for _ in 0..outings {
                    if t >= day_end {
                        break;
                    }
                    let mut w = weights.clone();
                    if current != usize::MAX {
                        w[current] = 0.0;
                    }
                    let next = weighted_choice(&mut rng, &w);
                    t += MINUTE.mul_f64(5.0 + rng.random::<f64>() * 10.0);
                    let stay = MINUTE.mul_f64(log_normal(&mut rng, 70.0, 0.5).clamp(10.0, 300.0));
                    let end = (t + stay).min(day_end);
                    if end > t {
                        visits.push(Visit::new(node, LandmarkId::from(next), t, end));
                    }
                    t = end;
                    current = next;
                }
            }
        }

        let prep = preprocess(
            visits,
            &PrepConfig {
                min_visit: SimDuration::from_secs(200),
                ..PrepConfig::default()
            },
        );
        Trace::new(
            "deployment",
            DEPLOY_NODES,
            DEPLOY_LANDMARKS,
            Self::positions(),
            prep.visits,
        )
        .expect("generated deployment trace is valid")
    }
}

/// Convenience: generate the default deployment trace.
pub fn default_deployment_trace(seed: u64) -> Trace {
    DeploymentModel::new(DeploymentConfig {
        seed,
        ..DeploymentConfig::default()
    })
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn shape_matches_the_paper() {
        let t = default_deployment_trace(1);
        assert_eq!(t.num_nodes(), DEPLOY_NODES);
        assert_eq!(t.num_landmarks(), DEPLOY_LANDMARKS);
        assert!(t.transits().len() > 100, "transits {}", t.transits().len());
    }

    #[test]
    fn library_department_links_dominate() {
        let t = default_deployment_trace(2);
        let b = stats::link_bandwidths(&t, SimDuration::from_hours(12.0));
        let links = b.ordered_links();
        // The busiest link touches the library or a major department
        // (l1/l2), matching Fig. 16(b).
        let hot = [LandmarkId(0), LandmarkId(1), LandmarkId(2)];
        let (f, to, _) = links[0];
        assert!(
            hot.contains(&f) && hot.contains(&to),
            "busiest link {f}->{to} should join library/major departments"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = default_deployment_trace(9);
        let b = default_deployment_trace(9);
        assert_eq!(a.visits(), b.visits());
    }
}
