//! Node transit prediction (paper §IV-B).
//!
//! DTN-FLOW forwards a packet to the node most likely to *transit* to the
//! packet's next-hop landmark. That likelihood comes from an order-k
//! Markov predictor over each node's landmark visiting history (Eq. 1–3),
//! combined at forwarding time with a per-landmark prediction-accuracy
//! estimate (§IV-D.4).
//!
//! * [`history::VisitHistory`] — the per-node landmark visiting history
//!   table (Table II) with stay-time statistics for dead-end detection;
//! * [`markov::MarkovPredictor`] — the order-k Markov predictor;
//! * [`accuracy::AccuracyTracker`] — multiplicative accuracy estimates;
//! * [`eval`] — offline evaluation on traces (Fig. 6, k-selection);
//! * [`fallback::FallbackPredictor`] — a back-off variant that answers
//!   from the highest order whose context has been seen.

#![forbid(unsafe_code)]

pub mod accuracy;
pub mod eval;
pub mod fallback;
pub mod history;
pub mod markov;

pub use accuracy::AccuracyTracker;
pub use eval::{accuracy_five_num, best_k, evaluate_order_k, EvalResult};
pub use fallback::{evaluate_fallback, FallbackPredictor};
pub use history::VisitHistory;
pub use markov::MarkovPredictor;
