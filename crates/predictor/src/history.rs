//! The per-node landmark visiting history table (paper Table II), with the
//! stay-time statistics needed by dead-end detection (§IV-E.1).

use dtnflow_core::ids::LandmarkId;
use dtnflow_core::time::{SimDuration, SimTime};
use dtnflow_snapshot::{Reader, SnapshotError, Writer};

/// One row of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryEntry {
    pub landmark: LandmarkId,
    pub start: SimTime,
    pub end: SimTime,
}

/// A node's landmark visiting history with per-landmark stay statistics.
#[derive(Debug, Clone, Default)]
pub struct VisitHistory {
    entries: Vec<HistoryEntry>,
    /// Per landmark: (total stay seconds, completed stays).
    stay_sums: Vec<(u64, u32)>,
}

impl VisitHistory {
    /// Create an empty history for a network of `num_landmarks` landmarks.
    pub fn new(num_landmarks: usize) -> Self {
        VisitHistory {
            entries: Vec::new(),
            stay_sums: vec![(0, 0); num_landmarks],
        }
    }

    /// Record a completed stay. Stays must be appended in time order.
    pub fn record(&mut self, landmark: LandmarkId, start: SimTime, end: SimTime) {
        assert!(end > start, "stay must have positive duration");
        if let Some(last) = self.entries.last() {
            assert!(start >= last.end, "stays must be appended in time order");
        }
        self.entries.push(HistoryEntry {
            landmark,
            start,
            end,
        });
        let (sum, n) = &mut self.stay_sums[landmark.index()];
        *sum += end.since(start).secs();
        *n += 1;
    }

    /// All rows, oldest first.
    pub fn entries(&self) -> &[HistoryEntry] {
        &self.entries
    }

    /// Total completed stays recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no stay has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The landmark sequence (for feeding a Markov predictor).
    pub fn landmark_seq(&self) -> impl Iterator<Item = LandmarkId> + '_ {
        self.entries.iter().map(|e| e.landmark)
    }

    /// Average stay time at one landmark, if ever visited.
    pub fn avg_stay_at(&self, landmark: LandmarkId) -> Option<SimDuration> {
        let (sum, n) = self.stay_sums[landmark.index()];
        (n > 0).then(|| SimDuration::from_secs(sum / n as u64))
    }

    /// Average stay time across all landmarks, if any stay recorded.
    pub fn avg_stay_overall(&self) -> Option<SimDuration> {
        let (sum, n) = self
            .stay_sums
            .iter()
            .fold((0u64, 0u64), |(s, c), &(sum, n)| (s + sum, c + n as u64));
        (n > 0).then(|| SimDuration::from_secs(sum / n))
    }

    /// Number of completed stays at one landmark.
    pub fn visits_at(&self, landmark: LandmarkId) -> u32 {
        self.stay_sums[landmark.index()].1
    }

    /// The `top` most frequently visited landmarks, descending by visit
    /// count (used by the §IV-E.4 routing-to-mobile-nodes extension).
    pub fn frequent_landmarks(&self, top: usize) -> Vec<LandmarkId> {
        let mut out = Vec::new();
        self.frequent_landmarks_into(top, &mut out);
        out
    }

    /// [`VisitHistory::frequent_landmarks`] into a caller-owned buffer
    /// (cleared first), allocation-free: `top` is tiny (the §IV-E.4
    /// registration count, 2 by default), so a selection scan per rank
    /// beats building and sorting a count vector. Ties rank the lower
    /// landmark id first, as the sorted form did.
    pub fn frequent_landmarks_into(&self, top: usize, out: &mut Vec<LandmarkId>) {
        out.clear();
        for _ in 0..top {
            let mut best: Option<(u32, usize)> = None;
            for (l, &(_, n)) in self.stay_sums.iter().enumerate() {
                if n == 0 || out.iter().any(|&picked| picked.index() == l) {
                    continue;
                }
                // Ascending scan: a strict `>` keeps the lowest id on ties.
                if best.is_none_or(|(bn, _)| n > bn) {
                    best = Some((n, l));
                }
            }
            match best {
                Some((_, l)) => out.push(LandmarkId::from(l)),
                None => break,
            }
        }
    }

    /// Checkpoint encoding (DESIGN.md §11): rows then stay sums, both
    /// serialized verbatim (the rows are *not* replayed through
    /// [`VisitHistory::record`] on decode, so its ordering asserts never
    /// fire on a valid snapshot).
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u16(e.landmark.0);
            w.put_u64(e.start.secs());
            w.put_u64(e.end.secs());
        }
        w.put_usize(self.stay_sums.len());
        for &(sum, n) in &self.stay_sums {
            w.put_u64(sum);
            w.put_u32(n);
        }
    }

    /// Inverse of [`VisitHistory::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<VisitHistory, SnapshotError> {
        const CTX: &str = "VisitHistory";
        let n = r.seq_len("VisitHistory.entries")?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(HistoryEntry {
                landmark: LandmarkId(r.u16(CTX)?),
                start: SimTime(r.u64(CTX)?),
                end: SimTime(r.u64(CTX)?),
            });
        }
        let m = r.seq_len("VisitHistory.stay_sums")?;
        let mut stay_sums = Vec::with_capacity(m);
        for _ in 0..m {
            stay_sums.push((r.u64(CTX)?, r.u32(CTX)?));
        }
        for e in &entries {
            if e.landmark.index() >= stay_sums.len() {
                return Err(SnapshotError::Corrupt { context: CTX });
            }
        }
        Ok(VisitHistory { entries, stay_sums })
    }

    /// Dead-end test (§IV-E.1): has a stay of `elapsed` at `landmark`
    /// exceeded `gamma` times the node's average — either its overall
    /// average stay (regular-route dead end) or its average at this
    /// landmark (abrupt dead end)? Only fires once at least `min_stays`
    /// stays are recorded, to limit false positives.
    pub fn is_dead_end(
        &self,
        landmark: LandmarkId,
        elapsed: SimDuration,
        gamma: f64,
        min_stays: usize,
    ) -> bool {
        assert!(gamma >= 1.0, "gamma must be at least 1");
        if self.len() < min_stays {
            return false;
        }
        let overall = self.avg_stay_overall();
        let here = self.avg_stay_at(landmark);
        let exceeded = |avg: Option<SimDuration>| {
            avg.is_some_and(|a| a.secs() > 0 && elapsed.secs() as f64 > gamma * a.secs() as f64)
        };
        exceeded(overall) || exceeded(here)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(i: u16) -> LandmarkId {
        LandmarkId(i)
    }

    fn t(s: u64) -> SimTime {
        SimTime(s)
    }

    #[test]
    fn records_and_averages() {
        let mut h = VisitHistory::new(3);
        h.record(lm(0), t(0), t(100));
        h.record(lm(1), t(200), t(500));
        h.record(lm(0), t(600), t(900));
        assert_eq!(h.len(), 3);
        assert_eq!(h.avg_stay_at(lm(0)), Some(SimDuration(200)));
        assert_eq!(h.avg_stay_at(lm(1)), Some(SimDuration(300)));
        assert_eq!(h.avg_stay_at(lm(2)), None);
        assert_eq!(h.avg_stay_overall(), Some(SimDuration(233)));
        assert_eq!(h.visits_at(lm(0)), 2);
    }

    #[test]
    fn landmark_seq_in_order() {
        let mut h = VisitHistory::new(2);
        h.record(lm(1), t(0), t(10));
        h.record(lm(0), t(20), t(30));
        let seq: Vec<_> = h.landmark_seq().collect();
        assert_eq!(seq, vec![lm(1), lm(0)]);
    }

    #[test]
    fn frequent_landmarks_rank_by_count() {
        let mut h = VisitHistory::new(4);
        for i in 0..3 {
            h.record(lm(2), t(i * 100), t(i * 100 + 10));
        }
        h.record(lm(0), t(1_000), t(1_010));
        h.record(lm(0), t(2_000), t(2_010));
        h.record(lm(3), t(3_000), t(3_010));
        assert_eq!(h.frequent_landmarks(2), vec![lm(2), lm(0)]);
        assert_eq!(h.frequent_landmarks(10), vec![lm(2), lm(0), lm(3)]);
    }

    #[test]
    fn dead_end_requires_history() {
        let mut h = VisitHistory::new(2);
        h.record(lm(0), t(0), t(100));
        // Not enough stays recorded yet.
        assert!(!h.is_dead_end(lm(0), SimDuration(10_000), 2.0, 5));
        for i in 1..6 {
            h.record(lm(0), t(i * 1_000), t(i * 1_000 + 100));
        }
        // Average stay is 100 s; 300 s exceeds gamma=2 times that.
        assert!(h.is_dead_end(lm(0), SimDuration(300), 2.0, 5));
        assert!(!h.is_dead_end(lm(0), SimDuration(150), 2.0, 5));
    }

    #[test]
    fn dead_end_abrupt_at_unusual_landmark() {
        let mut h = VisitHistory::new(3);
        // Five short stays at l0, one long historical stay at l2.
        for i in 0..5 {
            h.record(lm(0), t(i * 1_000), t(i * 1_000 + 100));
        }
        h.record(lm(2), t(10_000), t(20_000));
        // At l1 (never visited): only the overall average applies.
        // Overall avg = (500 + 10_000) / 6 = 1750.
        assert!(h.is_dead_end(lm(1), SimDuration(4_000), 2.0, 5));
        assert!(!h.is_dead_end(lm(1), SimDuration(3_000), 2.0, 5));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn rejects_out_of_order_stays() {
        let mut h = VisitHistory::new(1);
        h.record(lm(0), t(100), t(200));
        h.record(lm(0), t(50), t(90));
    }
}
