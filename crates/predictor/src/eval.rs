//! Offline predictor evaluation on traces (paper §IV-B.2/3, Fig. 6).
//!
//! Replays each node's landmark sequence through an online order-k
//! predictor: at every step where the node has a complete k-context, the
//! predictor guesses the next landmark *before* observing it. A step whose
//! context was never seen (a "missed k-hop pattern") counts as a failed
//! prediction — this is exactly the effect that makes large k perform
//! worse on traces with missing records.

use crate::markov::MarkovPredictor;
use dtnflow_core::ids::NodeId;
use dtnflow_core::metrics::FiveNum;
use dtnflow_mobility::Trace;

/// Per-node evaluation outcome.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Predictor order evaluated.
    pub k: usize,
    /// Per node: `Some(correct / attempts)`, or `None` when the node never
    /// had a complete context (too few visits).
    pub per_node: Vec<Option<f64>>,
    /// Total prediction attempts across nodes.
    pub attempts: u64,
    /// Total correct predictions across nodes.
    pub correct: u64,
}

impl EvalResult {
    /// Mean of per-node accuracy rates (the paper's "average accuracy rate
    /// of all nodes"). `None` when no node produced predictions.
    pub fn mean_node_accuracy(&self) -> Option<f64> {
        let vals: Vec<f64> = self.per_node.iter().flatten().copied().collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Pooled accuracy: total correct over total attempts.
    pub fn pooled_accuracy(&self) -> Option<f64> {
        (self.attempts > 0).then(|| self.correct as f64 / self.attempts as f64)
    }
}

/// Evaluate an order-k predictor on every node of a trace.
pub fn evaluate_order_k(trace: &Trace, k: usize) -> EvalResult {
    let mut per_node = Vec::with_capacity(trace.num_nodes());
    let mut attempts_total = 0u64;
    let mut correct_total = 0u64;

    for n in 0..trace.num_nodes() {
        let mut predictor = MarkovPredictor::new(k);
        let mut attempts = 0u64;
        let mut correct = 0u64;
        let mut seq = trace
            .node_landmark_seq(NodeId::from(n))
            .into_iter()
            .peekable();
        // Collapse consecutive duplicates the same way the predictor does.
        let mut deduped = Vec::new();
        while let Some(lm) = seq.next() {
            if deduped.last() != Some(&lm) {
                deduped.push(lm);
            }
            let _ = seq.peek();
        }
        for lm in deduped {
            if predictor.context().is_some() {
                attempts += 1;
                if predictor.predict().map(|(p, _)| p) == Some(lm) {
                    correct += 1;
                }
            }
            predictor.observe(lm);
        }
        attempts_total += attempts;
        correct_total += correct;
        per_node.push((attempts > 0).then(|| correct as f64 / attempts as f64));
    }

    EvalResult {
        k,
        per_node,
        attempts: attempts_total,
        correct: correct_total,
    }
}

/// The five-number summary of per-node accuracies (Fig. 6b).
pub fn accuracy_five_num(result: &EvalResult) -> Option<FiveNum> {
    let vals: Vec<f64> = result.per_node.iter().flatten().copied().collect();
    FiveNum::of(&vals)
}

/// The §IV-B.2 k-selection procedure: evaluate each candidate order on the
/// collected history and keep the most accurate (ties to the smaller k,
/// which is cheaper). Panics on an empty candidate list.
pub fn best_k(trace: &Trace, candidates: &[usize]) -> usize {
    assert!(!candidates.is_empty(), "need at least one candidate order");
    let mut best = candidates[0];
    let mut best_acc = f64::NEG_INFINITY;
    for &k in candidates {
        let acc = evaluate_order_k(trace, k)
            .mean_node_accuracy()
            .unwrap_or(0.0);
        if acc > best_acc + 1e-12 {
            best_acc = acc;
            best = k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::geometry::Point;
    use dtnflow_core::ids::LandmarkId;
    use dtnflow_core::time::SimTime;
    use dtnflow_mobility::synth::campus::default_campus_trace;
    use dtnflow_mobility::Visit;

    /// A perfectly periodic node: order-1 prediction should converge to
    /// 100% after the first cycle.
    fn periodic_trace(cycles: usize) -> Trace {
        let mut visits = Vec::new();
        let pattern = [0u16, 1, 2];
        let mut t = 0u64;
        for _ in 0..cycles {
            for &l in &pattern {
                visits.push(Visit::new(
                    NodeId(0),
                    LandmarkId(l),
                    SimTime(t),
                    SimTime(t + 100),
                ));
                t += 200;
            }
        }
        let positions = (0..3).map(|i| Point::new(i as f64, 0.0)).collect();
        Trace::new("periodic", 1, 3, positions, visits).unwrap()
    }

    #[test]
    fn periodic_node_is_highly_predictable() {
        let t = periodic_trace(10);
        let r = evaluate_order_k(&t, 1);
        let acc = r.per_node[0].unwrap();
        // 29 attempts; only the first traversal of the 3-landmark cycle
        // (3 unseen contexts) fails: 26/29 correct.
        assert!((acc - 26.0 / 29.0).abs() < 1e-9, "accuracy {acc}");
        assert_eq!(r.attempts, 29);
        assert_eq!(r.correct, 26);
    }

    #[test]
    fn too_short_history_gives_none() {
        let positions = vec![Point::new(0.0, 0.0)];
        let visits = vec![Visit::new(
            NodeId(0),
            LandmarkId(0),
            SimTime(0),
            SimTime(10),
        )];
        let t = Trace::new("short", 1, 1, positions, visits).unwrap();
        let r = evaluate_order_k(&t, 2);
        assert_eq!(r.per_node[0], None);
        assert!(r.mean_node_accuracy().is_none());
        assert!(r.pooled_accuracy().is_none());
    }

    #[test]
    fn order1_beats_order3_on_lossy_campus_trace() {
        // The paper's Fig. 6(a) finding: with missing records, k=1 wins.
        let t = default_campus_trace(21);
        let a1 = evaluate_order_k(&t, 1).mean_node_accuracy().unwrap();
        let a3 = evaluate_order_k(&t, 3).mean_node_accuracy().unwrap();
        assert!(a1 > a3, "k=1 acc {a1} should beat k=3 acc {a3}");
        assert_eq!(best_k(&t, &[1, 2, 3]), 1);
    }

    #[test]
    fn campus_accuracy_in_plausible_band() {
        // DART's order-1 average accuracy is ~0.77; ours should land in a
        // broadly comparable band (0.4..0.95) rather than at either
        // degenerate extreme.
        let t = default_campus_trace(22);
        let acc = evaluate_order_k(&t, 1).mean_node_accuracy().unwrap();
        assert!((0.4..0.95).contains(&acc), "accuracy {acc}");
    }

    #[test]
    fn five_num_is_ordered() {
        let t = default_campus_trace(23);
        let f = accuracy_five_num(&evaluate_order_k(&t, 1)).unwrap();
        assert!(f.min <= f.q1 && f.q1 <= f.q3 && f.q3 <= f.max);
        assert!(f.min >= 0.0 && f.max <= 1.0);
    }

    #[test]
    fn best_k_ties_break_small() {
        // On a deterministic cycle every k achieves ~the same accuracy
        // asymptotically; small differences exist, but best_k must return
        // a candidate from the list.
        let t = periodic_trace(20);
        let k = best_k(&t, &[1, 2]);
        assert!(k == 1 || k == 2);
    }
}
