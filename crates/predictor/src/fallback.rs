//! A back-off variant of the order-k predictor.
//!
//! §IV-B.2 explains why large k fails on real traces: missing records
//! make long contexts rare, so a high-order predictor often has *no*
//! statistics for the current context. The classic remedy (from n-gram
//! language modelling) is back-off: keep predictors of every order
//! `1..=k` and answer from the highest order whose context has been seen.
//! This preserves order-k's precision on strong patterns without paying
//! its coverage penalty — the ablation bench quantifies the effect.

use crate::markov::{MarkovPredictor, MAX_ORDER};
use dtnflow_core::ids::LandmarkId;

/// An order-k Markov predictor that backs off to lower orders when the
/// high-order context is unseen.
#[derive(Debug, Clone)]
pub struct FallbackPredictor {
    /// Index i holds the order-(i+1) predictor.
    levels: Vec<MarkovPredictor>,
}

impl FallbackPredictor {
    /// Create a back-off predictor with maximum order `k`.
    pub fn new(k: usize) -> Self {
        assert!(
            (1..=MAX_ORDER).contains(&k),
            "order must be 1..={MAX_ORDER}"
        );
        FallbackPredictor {
            levels: (1..=k).map(MarkovPredictor::new).collect(),
        }
    }

    /// The maximum order.
    pub fn max_order(&self) -> usize {
        self.levels.len()
    }

    /// Feed the next visited landmark into every level.
    pub fn observe(&mut self, lm: LandmarkId) {
        for p in &mut self.levels {
            p.observe(lm);
        }
    }

    /// Number of (deduplicated) observations.
    pub fn observations(&self) -> usize {
        self.levels[0].observations()
    }

    /// The landmark the node is currently at.
    pub fn current(&self) -> Option<LandmarkId> {
        self.levels[0].current()
    }

    /// Predict from the highest order whose context is known; returns the
    /// prediction together with the order that produced it.
    pub fn predict_with_order(&self) -> Option<(LandmarkId, f64, usize)> {
        for p in self.levels.iter().rev() {
            if let Some((lm, prob)) = p.predict() {
                return Some((lm, prob, p.order()));
            }
        }
        None
    }

    /// The most likely next landmark with its probability.
    pub fn predict(&self) -> Option<(LandmarkId, f64)> {
        self.predict_with_order().map(|(lm, p, _)| (lm, p))
    }

    /// Probability of the next transit going to `next`, from the highest
    /// order with a known context.
    pub fn probability(&self, next: LandmarkId) -> f64 {
        for p in self.levels.iter().rev() {
            if p.predict().is_some() {
                return p.probability(next);
            }
        }
        0.0
    }

    /// The successor distribution from the highest informative order.
    pub fn distribution(&self) -> Vec<(LandmarkId, f64)> {
        for p in self.levels.iter().rev() {
            let d = p.distribution();
            if !d.is_empty() {
                return d;
            }
        }
        Vec::new()
    }
}

/// Offline evaluation of the back-off predictor on a trace (the analogue
/// of [`crate::eval::evaluate_order_k`]).
pub fn evaluate_fallback(trace: &dtnflow_mobility::Trace, k: usize) -> crate::eval::EvalResult {
    use dtnflow_core::ids::NodeId;
    let mut per_node = Vec::with_capacity(trace.num_nodes());
    let mut attempts_total = 0u64;
    let mut correct_total = 0u64;
    for n in 0..trace.num_nodes() {
        let mut p = FallbackPredictor::new(k);
        let mut attempts = 0u64;
        let mut correct = 0u64;
        let mut last = None;
        for lm in trace.node_landmark_seq(NodeId::from(n)) {
            if last == Some(lm) {
                continue;
            }
            last = Some(lm);
            if p.observations() >= 1 {
                attempts += 1;
                if p.predict().map(|(l, _)| l) == Some(lm) {
                    correct += 1;
                }
            }
            p.observe(lm);
        }
        attempts_total += attempts;
        correct_total += correct;
        per_node.push((attempts > 0).then(|| correct as f64 / attempts as f64));
    }
    crate::eval::EvalResult {
        k,
        per_node,
        attempts: attempts_total,
        correct: correct_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(i: u16) -> LandmarkId {
        LandmarkId(i)
    }

    fn feed(p: &mut FallbackPredictor, seq: &[u16]) {
        for &s in seq {
            p.observe(lm(s));
        }
    }

    #[test]
    fn uses_high_order_when_context_known() {
        let mut p = FallbackPredictor::new(2);
        // After (1,2) -> 3; after (4,2) -> 5 — order-1 cannot separate.
        feed(&mut p, &[1, 2, 3, 4, 2, 5, 1, 2, 3, 4, 2]);
        let (next, prob, order) = p.predict_with_order().unwrap();
        assert_eq!(order, 2);
        assert_eq!(next, lm(5));
        assert!((prob - 1.0).abs() < 1e-12);
    }

    #[test]
    fn backs_off_to_order_one_on_unseen_context() {
        let mut p = FallbackPredictor::new(3);
        feed(&mut p, &[1, 2, 1, 2, 1, 2, 7]);
        // Context (2,7)/(1,2,7) never seen, but order-1 knows nothing
        // about 7 either; context (7) unseen => no prediction at all.
        assert!(p.predict().is_none());
        // Back at 1, high orders know (2,1)->2; so does order 1.
        p.observe(lm(1));
        let (next, _, order) = p.predict_with_order().unwrap();
        assert_eq!(next, lm(2));
        assert!(order >= 1);
    }

    #[test]
    fn order_one_equivalence_when_k_is_one() {
        let mut a = FallbackPredictor::new(1);
        let mut b = MarkovPredictor::new(1);
        let seq = [3u16, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        for &s in &seq {
            a.observe(lm(s));
            b.observe(lm(s));
        }
        assert_eq!(a.predict(), b.predict());
        for l in 0..10u16 {
            assert_eq!(a.probability(lm(l)), b.probability(lm(l)));
        }
    }

    #[test]
    fn fallback_never_below_best_single_order_on_campus() {
        use dtnflow_mobility::synth::campus::default_campus_trace;
        let t = default_campus_trace(33);
        let k1 = crate::eval::evaluate_order_k(&t, 1)
            .mean_node_accuracy()
            .unwrap();
        let k2 = crate::eval::evaluate_order_k(&t, 2)
            .mean_node_accuracy()
            .unwrap();
        let fb = evaluate_fallback(&t, 2).mean_node_accuracy().unwrap();
        // Back-off should roughly dominate the weaker of the two orders
        // and be competitive with the better one.
        assert!(fb >= k2 - 0.02, "fallback {fb} vs k2 {k2}");
        assert!(fb >= k1 - 0.05, "fallback {fb} vs k1 {k1}");
    }

    #[test]
    fn distribution_comes_from_informative_level() {
        let mut p = FallbackPredictor::new(2);
        feed(&mut p, &[1, 2, 3, 1, 2]);
        let d = p.distribution();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, lm(3));
    }

    #[test]
    #[should_panic(expected = "order must be")]
    fn rejects_zero_order() {
        FallbackPredictor::new(0);
    }
}
