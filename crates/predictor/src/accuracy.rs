//! Per-landmark prediction-accuracy tracking (paper §IV-D.4).
//!
//! The carrier chosen for a packet is the node with the highest *overall*
//! transit probability `p_t = p_a · p_pred`, where `p_a` estimates how
//! often this node's predictions at the current landmark come true. `p_a`
//! starts at a medium value (0.5) and is scaled multiplicatively up on a
//! correct prediction and down on an incorrect one.

use dtnflow_core::ids::LandmarkId;
use dtnflow_snapshot::{Reader, SnapshotError, Writer};

/// Multiplicative per-landmark prediction-accuracy estimates for one node.
#[derive(Debug, Clone)]
pub struct AccuracyTracker {
    acc: Vec<f64>,
    up: f64,
    down: f64,
    floor: f64,
}

impl AccuracyTracker {
    /// Paper-suggested defaults: start 0.5, ×1.1 on success, ×0.8 on
    /// failure, floored at 0.05 so a node can always recover.
    pub fn new(num_landmarks: usize) -> Self {
        Self::with_factors(num_landmarks, 0.5, 1.1, 0.8, 0.05)
    }

    /// Fully parameterized constructor.
    pub fn with_factors(num_landmarks: usize, init: f64, up: f64, down: f64, floor: f64) -> Self {
        assert!((0.0..=1.0).contains(&init), "init must be a probability");
        assert!(up >= 1.0, "up factor must be >= 1");
        assert!((0.0..=1.0).contains(&down), "down factor must be <= 1");
        assert!((0.0..=1.0).contains(&floor) && floor <= init);
        AccuracyTracker {
            acc: vec![init; num_landmarks],
            up,
            down,
            floor,
        }
    }

    /// Current accuracy estimate at a landmark, in `[floor, 1]`.
    #[inline]
    pub fn get(&self, lm: LandmarkId) -> f64 {
        self.acc[lm.index()]
    }

    /// Record the outcome of a prediction made at `lm`.
    pub fn record(&mut self, lm: LandmarkId, correct: bool) {
        let a = &mut self.acc[lm.index()];
        if correct {
            *a = (*a * self.up).min(1.0);
        } else {
            *a = (*a * self.down).max(self.floor);
        }
    }

    /// Checkpoint encoding (DESIGN.md §11): estimates and factors as raw
    /// f64 bits. Decode constructs the struct directly rather than going
    /// through [`AccuracyTracker::with_factors`], so mid-run states (where
    /// an estimate may sit above `init`) restore without tripping the
    /// constructor's parameter asserts.
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.acc.len());
        for &a in &self.acc {
            w.put_f64(a);
        }
        w.put_f64(self.up);
        w.put_f64(self.down);
        w.put_f64(self.floor);
    }

    /// Inverse of [`AccuracyTracker::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<AccuracyTracker, SnapshotError> {
        const CTX: &str = "AccuracyTracker";
        let n = r.seq_len("AccuracyTracker.acc")?;
        let mut acc = Vec::with_capacity(n);
        for _ in 0..n {
            acc.push(r.f64(CTX)?);
        }
        let up = r.f64(CTX)?;
        let down = r.f64(CTX)?;
        let floor = r.f64(CTX)?;
        Ok(AccuracyTracker {
            acc,
            up,
            down,
            floor,
        })
    }

    /// The overall transit probability `p_a(lm) * p_pred` used for carrier
    /// ranking.
    #[inline]
    pub fn overall(&self, lm: LandmarkId, predicted_prob: f64) -> f64 {
        self.get(lm) * predicted_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(i: u16) -> LandmarkId {
        LandmarkId(i)
    }

    #[test]
    fn starts_at_init_and_moves_multiplicatively() {
        let mut t = AccuracyTracker::new(2);
        assert_eq!(t.get(lm(0)), 0.5);
        t.record(lm(0), true);
        assert!((t.get(lm(0)) - 0.55).abs() < 1e-12);
        t.record(lm(0), false);
        assert!((t.get(lm(0)) - 0.44).abs() < 1e-12);
        // The other landmark is untouched.
        assert_eq!(t.get(lm(1)), 0.5);
    }

    #[test]
    fn caps_at_one_and_floors() {
        let mut t = AccuracyTracker::new(1);
        for _ in 0..100 {
            t.record(lm(0), true);
        }
        assert_eq!(t.get(lm(0)), 1.0);
        for _ in 0..100 {
            t.record(lm(0), false);
        }
        assert!((t.get(lm(0)) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn overall_combines_accuracy_and_prediction() {
        let mut t = AccuracyTracker::new(1);
        t.record(lm(0), true); // 0.55
        let o = t.overall(lm(0), 0.8);
        assert!((o - 0.44).abs() < 1e-12);
    }

    #[test]
    fn stable_nodes_outrank_erratic_ones() {
        // Two nodes with the same predicted probability: the one whose
        // predictions keep coming true wins the carrier ranking.
        let mut stable = AccuracyTracker::new(1);
        let mut erratic = AccuracyTracker::new(1);
        for i in 0..10 {
            stable.record(lm(0), true);
            erratic.record(lm(0), i % 2 == 0);
        }
        assert!(stable.overall(lm(0), 0.6) > erratic.overall(lm(0), 0.6));
    }

    #[test]
    #[should_panic(expected = "up factor")]
    fn rejects_bad_factors() {
        AccuracyTracker::with_factors(1, 0.5, 0.9, 0.8, 0.1);
    }
}
