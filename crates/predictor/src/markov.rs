//! The order-k Markov transit predictor (paper Eq. 1–3).
//!
//! A node's transit history is a landmark sequence `L = l(1) l(2) … l(n)`
//! (consecutive duplicates collapsed — a repeat is a continued stay, not a
//! transit). The order-k predictor estimates
//!
//! ```text
//! P(next = c | history) = N(s ⊕ c) / N(s)          (Eq. 1–3)
//! ```
//!
//! where `s` is the most recent k-landmark context, `N(x)` counts
//! occurrences of the subsequence `x` in the history, and `⊕` is
//! concatenation. The prediction is the `c` maximizing this probability.

use dtnflow_core::ids::LandmarkId;
use dtnflow_snapshot::{Reader, SnapshotError, Writer};
use std::collections::BTreeMap;

/// Maximum supported order: contexts are packed into a `u64` key with 16
/// bits per landmark.
pub const MAX_ORDER: usize = 4;

/// Per-context statistics: total occurrences and per-successor counts.
#[derive(Debug, Clone, Default)]
struct CtxStats {
    total: u32,
    next: BTreeMap<u16, u32>,
}

/// Flat `n×n` transition counts for the order-1 fast path: row = context
/// landmark, column = successor, both addressed by id. Grows on demand
/// when a larger landmark id is observed.
#[derive(Debug, Clone, Default)]
struct FlatCounts {
    n: usize,
    /// Transition counts, cell `ctx * n + next`.
    counts: Vec<u32>,
    /// Row sums (`N(s)` of Eq. 2), one per context landmark.
    totals: Vec<u32>,
}

impl FlatCounts {
    fn with_landmarks(n: usize) -> Self {
        FlatCounts {
            n,
            counts: vec![0; n * n],
            totals: vec![0; n],
        }
    }

    fn grow(&mut self, n: usize) {
        if n <= self.n {
            return;
        }
        let mut counts = vec![0u32; n * n];
        for ctx in 0..self.n {
            let (old, new) = (ctx * self.n, ctx * n);
            counts[new..new + self.n].copy_from_slice(&self.counts[old..old + self.n]);
        }
        self.counts = counts;
        self.totals.resize(n, 0);
        self.n = n;
    }

    fn bump(&mut self, ctx: LandmarkId, next: LandmarkId) {
        let need = ctx.index().max(next.index()) + 1;
        if need > self.n {
            self.grow(need);
        }
        self.totals[ctx.index()] += 1;
        self.counts[ctx.index() * self.n + next.index()] += 1;
    }

    fn total(&self, ctx: LandmarkId) -> u32 {
        if ctx.index() >= self.n {
            return 0;
        }
        self.totals[ctx.index()]
    }

    fn count(&self, ctx: LandmarkId, next: LandmarkId) -> u32 {
        if ctx.index() >= self.n || next.index() >= self.n {
            return 0;
        }
        self.counts[ctx.index() * self.n + next.index()]
    }

    /// The successor-count row for `ctx`, empty when unseen.
    fn row(&self, ctx: LandmarkId) -> &[u32] {
        if ctx.index() >= self.n {
            return &[];
        }
        &self.counts[ctx.index() * self.n..(ctx.index() + 1) * self.n]
    }
}

/// Context-count storage: a flat count matrix when `k == 1` (by far the
/// hottest configuration — `probability` sits inside the router's carrier
/// selection loop), the packed-context tree for higher orders.
#[derive(Debug, Clone)]
enum Counts {
    Flat(FlatCounts),
    Map(BTreeMap<u64, CtxStats>),
}

/// An online order-k Markov predictor over landmark visits.
#[derive(Debug, Clone)]
pub struct MarkovPredictor {
    k: usize,
    /// The last up-to-k observed landmarks, oldest first.
    recent: Vec<LandmarkId>,
    counts: Counts,
    observations: usize,
}

/// Pack a context of up to [`MAX_ORDER`] landmarks into a map key.
/// Landmark ids are offset by one so an empty slot (0) is distinguishable.
fn pack(ctx: &[LandmarkId]) -> u64 {
    debug_assert!(ctx.len() <= MAX_ORDER);
    let mut key = 0u64;
    for lm in ctx {
        key = (key << 16) | (lm.0 as u64 + 1);
    }
    key
}

impl MarkovPredictor {
    /// Create an order-k predictor. `k` must be in `1..=MAX_ORDER`.
    pub fn new(k: usize) -> Self {
        Self::with_landmarks(k, 0)
    }

    /// Create an order-k predictor in a network of `num_landmarks`
    /// landmarks. For `k == 1` this pre-sizes the flat count matrix so
    /// no grow/re-layout ever happens during a run; ids at or beyond
    /// `num_landmarks` still work (the matrix grows on demand).
    pub fn with_landmarks(k: usize, num_landmarks: usize) -> Self {
        assert!(
            (1..=MAX_ORDER).contains(&k),
            "order must be in 1..={MAX_ORDER}"
        );
        let counts = if k == 1 {
            Counts::Flat(FlatCounts::with_landmarks(num_landmarks))
        } else {
            Counts::Map(BTreeMap::new())
        };
        MarkovPredictor {
            k,
            recent: Vec::with_capacity(k),
            counts,
            observations: 0,
        }
    }

    /// The predictor's order.
    pub fn order(&self) -> usize {
        self.k
    }

    /// Number of landmark observations fed so far (after dedup).
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Feed the next visited landmark. A repeat of the current landmark is
    /// ignored (it is a continued stay, not a transit).
    pub fn observe(&mut self, lm: LandmarkId) {
        if self.recent.last() == Some(&lm) {
            return;
        }
        if self.recent.len() == self.k {
            match &mut self.counts {
                Counts::Flat(flat) => flat.bump(self.recent[0], lm),
                Counts::Map(map) => {
                    let stats = map.entry(pack(&self.recent)).or_default();
                    stats.total += 1;
                    *stats.next.entry(lm.0).or_insert(0) += 1;
                }
            }
        }
        self.recent.push(lm);
        if self.recent.len() > self.k {
            self.recent.remove(0);
        }
        self.observations += 1;
    }

    /// The current context (last k landmarks, oldest first), if complete.
    pub fn context(&self) -> Option<&[LandmarkId]> {
        (self.recent.len() == self.k).then_some(self.recent.as_slice())
    }

    /// The landmark the node is currently at (the most recent observation).
    pub fn current(&self) -> Option<LandmarkId> {
        self.recent.last().copied()
    }

    /// Probability that the next transit goes to `next`, given the current
    /// context (Eq. 1). Zero when the context is incomplete or unseen.
    pub fn probability(&self, next: LandmarkId) -> f64 {
        let Some(ctx) = self.context() else {
            return 0.0;
        };
        self.probability_from(ctx, next)
    }

    /// `P(next | ctx)` for an explicit context.
    pub fn probability_from(&self, ctx: &[LandmarkId], next: LandmarkId) -> f64 {
        assert_eq!(ctx.len(), self.k, "context must have length k");
        match &self.counts {
            Counts::Flat(flat) => {
                let total = flat.total(ctx[0]);
                if total == 0 {
                    return 0.0;
                }
                flat.count(ctx[0], next) as f64 / total as f64
            }
            Counts::Map(map) => match map.get(&pack(ctx)) {
                Some(stats) if stats.total > 0 => {
                    *stats.next.get(&next.0).unwrap_or(&0) as f64 / stats.total as f64
                }
                _ => 0.0,
            },
        }
    }

    /// The most likely next landmark with its probability, from the
    /// current context. `None` if the context is incomplete or was never
    /// seen before (the "missed k-hop pattern" case of §IV-B.2).
    pub fn predict(&self) -> Option<(LandmarkId, f64)> {
        self.context().and_then(|ctx| self.predict_from(ctx))
    }

    /// The most likely successor of an explicit context. Ties break toward
    /// the lowest landmark id for determinism.
    pub fn predict_from(&self, ctx: &[LandmarkId]) -> Option<(LandmarkId, f64)> {
        assert_eq!(ctx.len(), self.k, "context must have length k");
        match &self.counts {
            Counts::Flat(flat) => {
                let total = flat.total(ctx[0]);
                if total == 0 {
                    return None;
                }
                // Ascending-id scan with a strict `>` keeps the first
                // (lowest-id) maximum: the same tie-break the ordered-map
                // `max_by` implemented.
                let mut best = (0usize, 0u32);
                for (j, &c) in flat.row(ctx[0]).iter().enumerate() {
                    if c > best.1 {
                        best = (j, c);
                    }
                }
                (best.1 > 0).then(|| (LandmarkId::from(best.0), best.1 as f64 / total as f64))
            }
            Counts::Map(map) => {
                let stats = map.get(&pack(ctx))?;
                if stats.total == 0 {
                    return None;
                }
                let (&lm, &cnt) = stats
                    .next
                    .iter()
                    .max_by(|(la, ca), (lb, cb)| ca.cmp(cb).then(lb.cmp(la)))?;
                Some((LandmarkId(lm), cnt as f64 / stats.total as f64))
            }
        }
    }

    /// The full successor distribution of the current context, descending
    /// by probability. Empty when nothing is known.
    pub fn distribution(&self) -> Vec<(LandmarkId, f64)> {
        let mut out = Vec::new();
        self.distribution_into(&mut out);
        out
    }

    /// Checkpoint encoding (DESIGN.md §11): order, recent context, the
    /// count store (tagged flat/map) and the observation counter.
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.k);
        w.put_usize(self.recent.len());
        for lm in &self.recent {
            w.put_u16(lm.0);
        }
        match &self.counts {
            Counts::Flat(flat) => {
                w.put_u8(0);
                w.put_usize(flat.n);
                for &c in &flat.counts {
                    w.put_u32(c);
                }
                for &t in &flat.totals {
                    w.put_u32(t);
                }
            }
            Counts::Map(map) => {
                w.put_u8(1);
                w.put_usize(map.len());
                for (&key, stats) in map {
                    w.put_u64(key);
                    w.put_u32(stats.total);
                    w.put_usize(stats.next.len());
                    for (&lm, &c) in &stats.next {
                        w.put_u16(lm);
                        w.put_u32(c);
                    }
                }
            }
        }
        w.put_usize(self.observations);
    }

    /// Inverse of [`MarkovPredictor::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<MarkovPredictor, SnapshotError> {
        const CTX: &str = "MarkovPredictor";
        let k = r.usize(CTX)?;
        if !(1..=MAX_ORDER).contains(&k) {
            return Err(SnapshotError::Corrupt { context: CTX });
        }
        let n = r.seq_len("MarkovPredictor.recent")?;
        if n > k {
            return Err(SnapshotError::Corrupt { context: CTX });
        }
        let mut recent = Vec::with_capacity(k);
        for _ in 0..n {
            recent.push(LandmarkId(r.u16(CTX)?));
        }
        let counts = match r.u8(CTX)? {
            0 => {
                let fn_ = r.usize("FlatCounts.n")?;
                let cells = fn_
                    .checked_mul(fn_)
                    .ok_or(SnapshotError::Corrupt { context: CTX })?;
                if cells > r.remaining() / 4 {
                    return Err(SnapshotError::Corrupt { context: CTX });
                }
                let mut counts = Vec::with_capacity(cells);
                for _ in 0..cells {
                    counts.push(r.u32(CTX)?);
                }
                let mut totals = Vec::with_capacity(fn_);
                for _ in 0..fn_ {
                    totals.push(r.u32(CTX)?);
                }
                Counts::Flat(FlatCounts {
                    n: fn_,
                    counts,
                    totals,
                })
            }
            1 => {
                let m = r.seq_len("MarkovPredictor.map")?;
                let mut map = BTreeMap::new();
                let mut prev: Option<u64> = None;
                for _ in 0..m {
                    let key = r.u64(CTX)?;
                    if prev.is_some_and(|p| p >= key) {
                        return Err(SnapshotError::Corrupt { context: CTX });
                    }
                    prev = Some(key);
                    let total = r.u32(CTX)?;
                    let nn = r.seq_len("CtxStats.next")?;
                    let mut next = BTreeMap::new();
                    let mut prev_lm: Option<u16> = None;
                    for _ in 0..nn {
                        let lm = r.u16(CTX)?;
                        if prev_lm.is_some_and(|p| p >= lm) {
                            return Err(SnapshotError::Corrupt { context: CTX });
                        }
                        prev_lm = Some(lm);
                        next.insert(lm, r.u32(CTX)?);
                    }
                    map.insert(key, CtxStats { total, next });
                }
                Counts::Map(map)
            }
            t => {
                return Err(SnapshotError::InvalidTag {
                    context: "MarkovPredictor.counts",
                    tag: t as u64,
                })
            }
        };
        let observations = r.usize(CTX)?;
        Ok(MarkovPredictor {
            k,
            recent,
            counts,
            observations,
        })
    }

    /// [`MarkovPredictor::distribution`] into a caller-owned buffer, so
    /// per-contact callers (the router's packet assignment) can reuse one
    /// allocation. The buffer is cleared first.
    pub fn distribution_into(&self, out: &mut Vec<(LandmarkId, f64)>) {
        out.clear();
        let Some(ctx) = self.context() else {
            return;
        };
        match &self.counts {
            Counts::Flat(flat) => {
                let total = flat.total(ctx[0]);
                if total == 0 {
                    return;
                }
                for (j, &c) in flat.row(ctx[0]).iter().enumerate() {
                    if c > 0 {
                        out.push((LandmarkId::from(j), c as f64 / total as f64));
                    }
                }
            }
            Counts::Map(map) => {
                let Some(stats) = map.get(&pack(ctx)) else {
                    return;
                };
                out.extend(
                    stats
                        .next
                        .iter()
                        .map(|(&lm, &c)| (LandmarkId(lm), c as f64 / stats.total as f64)),
                );
            }
        }
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(i: u16) -> LandmarkId {
        LandmarkId(i)
    }

    fn feed(p: &mut MarkovPredictor, seq: &[u16]) {
        for &s in seq {
            p.observe(lm(s));
        }
    }

    /// The paper's worked example (§IV-B.1): history
    /// l1 l2 l3 l2 l1 l2 with an order-1 predictor, currently at l2:
    /// P(l1)=2/5? The paper computes over 5 two-landmark windows:
    /// l1l2, l2l3, l3l2, l2l1, l1l2 -> from l2: l3 once, l1 once of 2.
    #[test]
    fn order1_matches_paper_example_structure() {
        let mut p = MarkovPredictor::new(1);
        feed(&mut p, &[1, 2, 3, 2, 1, 2]);
        // Contexts seen from l2: successors l3 (once) and l1 (once).
        assert!((p.probability_from(&[lm(2)], lm(3)) - 0.5).abs() < 1e-12);
        assert!((p.probability_from(&[lm(2)], lm(1)) - 0.5).abs() < 1e-12);
        assert_eq!(p.probability_from(&[lm(2)], lm(4)), 0.0);
        // From l1 the only successor ever seen is l2.
        assert!((p.probability_from(&[lm(1)], lm(2)) - 1.0).abs() < 1e-12);
        // Tie at l2 breaks to the lowest id.
        assert_eq!(p.predict().unwrap().0, lm(1));
    }

    #[test]
    fn duplicates_are_collapsed() {
        let mut p = MarkovPredictor::new(1);
        feed(&mut p, &[1, 1, 2, 2, 2, 3]);
        assert_eq!(p.observations(), 3);
        assert!((p.probability_from(&[lm(1)], lm(2)) - 1.0).abs() < 1e-12);
        assert!((p.probability_from(&[lm(2)], lm(3)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn order2_uses_two_landmark_context() {
        let mut p = MarkovPredictor::new(2);
        // After (1,2) the node goes to 3; after (4,2) it goes to 5.
        feed(&mut p, &[1, 2, 3, 4, 2, 5, 1, 2, 3, 4, 2, 5, 1, 2]);
        assert_eq!(p.predict_from(&[lm(1), lm(2)]).unwrap().0, lm(3));
        assert_eq!(p.predict_from(&[lm(4), lm(2)]).unwrap().0, lm(5));
        // An order-1 predictor cannot separate the two contexts.
        let mut q = MarkovPredictor::new(1);
        feed(&mut q, &[1, 2, 3, 4, 2, 5, 1, 2, 3, 4, 2, 5, 1, 2]);
        let (_, prob) = q.predict_from(&[lm(2)]).unwrap();
        assert!(prob < 0.6);
    }

    #[test]
    fn unseen_context_yields_none() {
        let mut p = MarkovPredictor::new(1);
        feed(&mut p, &[1, 2]);
        assert!(p.predict_from(&[lm(9)]).is_none());
        // Current context is l2, which has no successor yet.
        assert!(p.predict().is_none());
    }

    #[test]
    fn incomplete_context_yields_none() {
        let p = MarkovPredictor::new(2);
        assert!(p.predict().is_none());
        assert_eq!(p.probability(lm(1)), 0.0);
        let mut p = MarkovPredictor::new(2);
        p.observe(lm(1));
        assert!(p.context().is_none());
        assert_eq!(p.current(), Some(lm(1)));
    }

    #[test]
    fn distribution_sums_to_one_and_sorts() {
        let mut p = MarkovPredictor::new(1);
        feed(&mut p, &[2, 1, 2, 1, 2, 3, 2, 1, 2]);
        // From l2: successors 1 (x3), 3 (x1).
        let d = p.distribution();
        assert_eq!(d[0].0, lm(1));
        let total: f64 = d.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((d[0].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn distribution_breaks_ties_by_landmark_id() {
        // Equal-probability successors order by id: the sort is total
        // (f64::total_cmp) and deterministic, never panicking on edge
        // float values the way `partial_cmp(..).unwrap()` would on NaN.
        let mut p = MarkovPredictor::new(1);
        feed(&mut p, &[1, 7, 1, 3, 1, 5, 1]);
        let d = p.distribution();
        assert_eq!(
            d.iter().map(|&(lm, _)| lm.0).collect::<Vec<_>>(),
            vec![3, 5, 7]
        );
        assert!(d.iter().all(|&(_, pr)| (pr - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn probabilities_update_online() {
        let mut p = MarkovPredictor::new(1);
        feed(&mut p, &[1, 2, 1, 2]);
        assert!((p.probability_from(&[lm(1)], lm(2)) - 1.0).abs() < 1e-12);
        feed(&mut p, &[3]); // now 2 -> 3 observed once
        assert!((p.probability_from(&[lm(2)], lm(1)) - 0.5).abs() < 1e-12);
        assert!((p.probability_from(&[lm(2)], lm(3)) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "order must be")]
    fn rejects_order_zero() {
        MarkovPredictor::new(0);
    }

    #[test]
    #[should_panic(expected = "order must be")]
    fn rejects_order_beyond_max() {
        MarkovPredictor::new(MAX_ORDER + 1);
    }

    #[test]
    fn pack_distinguishes_contexts() {
        assert_ne!(pack(&[lm(0)]), pack(&[lm(1)]));
        assert_ne!(pack(&[lm(0), lm(1)]), pack(&[lm(1), lm(0)]));
        assert_ne!(pack(&[lm(0)]), pack(&[lm(0), lm(0)]));
    }
}
