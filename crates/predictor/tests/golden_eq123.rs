//! Golden tests for the paper's prediction equations (Eq. 1–3, §IV-B,
//! §IV-D.4): hand-computed probabilities on small worked landmark
//! sequences, pinned so any refactor of the Markov counting or the
//! accuracy weighting shows up as an exact-value diff.

use dtnflow_core::ids::LandmarkId;
use dtnflow_predictor::{AccuracyTracker, MarkovPredictor};

fn lm(i: u16) -> LandmarkId {
    LandmarkId(i)
}

fn feed(p: &mut MarkovPredictor, seq: &[u16]) {
    for &s in seq {
        p.observe(lm(s));
    }
}

/// Order-1 (Eq. 1): `P(c | l) = N(l ⊕ c) / N(l)` over the §IV-B-style
/// worked sequence l1 l2 l3 l2 l1 l2. Counted contexts (the landmark a
/// transit left from): N(1)=2 {2:2}, N(2)=2 {3:1, 1:1}, N(3)=1 {2:1}.
#[test]
fn order1_probabilities_match_hand_counts() {
    let mut p = MarkovPredictor::new(1);
    feed(&mut p, &[1, 2, 3, 2, 1, 2]);

    assert!((p.probability_from(&[lm(2)], lm(3)) - 0.5).abs() < 1e-12);
    assert!((p.probability_from(&[lm(2)], lm(1)) - 0.5).abs() < 1e-12);
    assert!((p.probability_from(&[lm(1)], lm(2)) - 1.0).abs() < 1e-12);
    assert!((p.probability_from(&[lm(3)], lm(2)) - 1.0).abs() < 1e-12);
    // Never-seen successor.
    assert_eq!(p.probability_from(&[lm(1)], lm(3)), 0.0);

    // Current context is [2]; the 50/50 tie breaks to the lowest id.
    assert_eq!(p.current(), Some(lm(2)));
    let (next, prob) = p.predict().expect("context is complete");
    assert_eq!(next, lm(1));
    assert!((prob - 0.5).abs() < 1e-12);
}

/// Order-2 (Eq. 2): contexts are landmark pairs. In
/// 1 2 3 1 2 4 1 2 3 the pair (1,2) occurs 3 times, followed twice by 3
/// and once by 4.
#[test]
fn order2_probabilities_match_hand_counts() {
    let mut p = MarkovPredictor::new(2);
    feed(&mut p, &[1, 2, 3, 1, 2, 4, 1, 2, 3]);

    let ctx = [lm(1), lm(2)];
    assert!((p.probability_from(&ctx, lm(3)) - 2.0 / 3.0).abs() < 1e-12);
    assert!((p.probability_from(&ctx, lm(4)) - 1.0 / 3.0).abs() < 1e-12);
    let (next, prob) = p.predict_from(&ctx).expect("pair was seen");
    assert_eq!(next, lm(3));
    assert!((prob - 2.0 / 3.0).abs() < 1e-12);

    // (2,3) → 1 every time it had a successor.
    assert!((p.probability_from(&[lm(2), lm(3)], lm(1)) - 1.0).abs() < 1e-12);
    // A pair never seen as a context predicts nothing (§IV-B.2's missed
    // k-hop pattern).
    assert!(p.predict_from(&[lm(4), lm(2)]).is_none());
}

/// Order-3 (Eq. 3 generalization): in 1 2 3 4 1 2 3 5 1 2 3 4 the triple
/// (1,2,3) is followed by 4, 5, 4.
#[test]
fn order3_probabilities_match_hand_counts() {
    let mut p = MarkovPredictor::new(3);
    feed(&mut p, &[1, 2, 3, 4, 1, 2, 3, 5, 1, 2, 3, 4]);

    let ctx = [lm(1), lm(2), lm(3)];
    assert!((p.probability_from(&ctx, lm(4)) - 2.0 / 3.0).abs() < 1e-12);
    assert!((p.probability_from(&ctx, lm(5)) - 1.0 / 3.0).abs() < 1e-12);
    let (next, prob) = p.predict_from(&ctx).expect("triple was seen");
    assert_eq!(next, lm(4));
    assert!((prob - 2.0 / 3.0).abs() < 1e-12);
}

/// Consecutive repeats are continued stays, not transits: they must not
/// change any count.
#[test]
fn repeated_visits_do_not_create_transits() {
    let mut a = MarkovPredictor::new(1);
    feed(&mut a, &[1, 2, 3, 2, 1, 2]);
    let mut b = MarkovPredictor::new(1);
    feed(&mut b, &[1, 1, 2, 2, 2, 3, 3, 2, 1, 1, 2]);
    assert_eq!(a.observations(), b.observations());
    for (ctx, next) in [(1u16, 2u16), (2, 1), (2, 3), (3, 2)] {
        assert_eq!(
            a.probability_from(&[lm(ctx)], lm(next)),
            b.probability_from(&[lm(ctx)], lm(next)),
            "ctx {ctx} → {next}"
        );
    }
}

/// §IV-D.4 accuracy weighting: `p_t = p_a · p_pred` with the paper's
/// multiplicative update (init 0.5, ×1.1 up capped at 1, ×0.8 down
/// floored at 0.05), hand-computed over a short outcome sequence.
#[test]
fn overall_transit_probability_weights_prediction_by_accuracy() {
    let mut acc = AccuracyTracker::new(3);
    assert_eq!(acc.get(lm(0)), 0.5);

    // correct, correct, wrong at l0: 0.5·1.1·1.1·0.8 = 0.484.
    acc.record(lm(0), true);
    acc.record(lm(0), true);
    acc.record(lm(0), false);
    assert!((acc.get(lm(0)) - 0.484).abs() < 1e-12);
    // Other landmarks untouched.
    assert_eq!(acc.get(lm(1)), 0.5);

    // Combine with an Eq. 1 prediction: the l2-after-l2 probability from
    // the order-1 worked sequence is 0.5, so p_t = 0.484 · 0.5 = 0.242.
    let mut p = MarkovPredictor::new(1);
    feed(&mut p, &[1, 2, 3, 2, 1, 2]);
    let p_pred = p.probability_from(&[lm(2)], lm(3));
    assert!((acc.overall(lm(0), p_pred) - 0.242).abs() < 1e-12);

    // Cap and floor are golden too.
    for _ in 0..20 {
        acc.record(lm(1), true);
    }
    assert_eq!(acc.get(lm(1)), 1.0);
    for _ in 0..40 {
        acc.record(lm(1), false);
    }
    assert!((acc.get(lm(1)) - 0.05).abs() < 1e-12);
}
