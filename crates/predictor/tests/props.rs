//! Property tests for the Markov predictor, accuracy tracking and the
//! visit history.

use dtnflow_core::ids::LandmarkId;
use dtnflow_core::time::SimTime;
use dtnflow_predictor::{AccuracyTracker, MarkovPredictor, VisitHistory};
use proptest::prelude::*;

proptest! {
    #[test]
    fn observation_count_equals_deduped_length(
        seq in proptest::collection::vec(0u16..8, 0..300),
        k in 1usize..4,
    ) {
        let mut p = MarkovPredictor::new(k);
        for &s in &seq {
            p.observe(LandmarkId(s));
        }
        let mut dedup = 0usize;
        let mut last = None;
        for &s in &seq {
            if last != Some(s) {
                dedup += 1;
                last = Some(s);
            }
        }
        prop_assert_eq!(p.observations(), dedup);
        // Current landmark is the last deduped element.
        prop_assert_eq!(p.current().map(|l| l.0), last);
    }

    #[test]
    fn probability_is_empirical_frequency(
        seq in proptest::collection::vec(0u16..4, 4..300),
    ) {
        let mut p = MarkovPredictor::new(1);
        let mut dedup: Vec<u16> = Vec::new();
        for &s in &seq {
            if dedup.last() != Some(&s) {
                dedup.push(s);
            }
            p.observe(LandmarkId(s));
        }
        // Pick the most common context and check frequencies by hand.
        for ctx in 0u16..4 {
            let total = dedup.windows(2).filter(|w| w[0] == ctx).count();
            for next in 0u16..4 {
                let cnt = dedup.windows(2).filter(|w| w[0] == ctx && w[1] == next).count();
                let expect = if total == 0 { 0.0 } else { cnt as f64 / total as f64 };
                let got = p.probability_from(&[LandmarkId(ctx)], LandmarkId(next));
                prop_assert!((got - expect).abs() < 1e-12, "ctx {ctx} next {next}: {got} vs {expect}");
            }
        }
    }

    #[test]
    fn higher_order_contexts_nest(
        seq in proptest::collection::vec(0u16..5, 10..200),
    ) {
        // The order-2 predictor's total mass out of any context equals 1
        // wherever it predicts at all, same as order-1.
        for k in 1usize..=3 {
            let mut p = MarkovPredictor::new(k);
            for &s in &seq {
                p.observe(LandmarkId(s));
            }
            let dist = p.distribution();
            let total: f64 = dist.iter().map(|&(_, q)| q).sum();
            prop_assert!(total == 0.0 || (total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn accuracy_tracker_stays_in_bounds(
        outcomes in proptest::collection::vec((0u16..4, any::<bool>()), 0..200),
    ) {
        let mut t = AccuracyTracker::new(4);
        for &(lm, ok) in &outcomes {
            t.record(LandmarkId(lm), ok);
            let a = t.get(LandmarkId(lm));
            prop_assert!((0.05..=1.0).contains(&a), "accuracy {a}");
        }
        // Overall is the product and therefore also bounded.
        for lm in 0u16..4 {
            prop_assert!(t.overall(LandmarkId(lm), 0.7) <= 0.7 + 1e-12);
            prop_assert!(t.overall(LandmarkId(lm), 0.0) == 0.0);
        }
    }

    #[test]
    fn accuracy_more_successes_never_lower(
        lm in 0u16..3,
        base in proptest::collection::vec(any::<bool>(), 0..50),
    ) {
        // Appending one success never lowers the estimate; one failure
        // never raises it.
        let run = |extra: Option<bool>| {
            let mut t = AccuracyTracker::new(3);
            for &b in &base {
                t.record(LandmarkId(lm), b);
            }
            if let Some(b) = extra {
                t.record(LandmarkId(lm), b);
            }
            t.get(LandmarkId(lm))
        };
        let baseline = run(None);
        prop_assert!(run(Some(true)) >= baseline - 1e-12);
        prop_assert!(run(Some(false)) <= baseline + 1e-12);
    }

    #[test]
    fn history_frequent_landmarks_sorted_by_count(
        stays in proptest::collection::vec((0u16..5, 10u64..500), 1..60),
    ) {
        let mut h = VisitHistory::new(5);
        let mut t = 0u64;
        let mut counts = [0u32; 5];
        for &(lm, d) in &stays {
            h.record(LandmarkId(lm), SimTime(t), SimTime(t + d));
            counts[lm as usize] += 1;
            t += d + 1;
        }
        let freq = h.frequent_landmarks(5);
        // Counts along the returned order are non-increasing.
        let cs: Vec<u32> = freq.iter().map(|l| counts[l.index()]).collect();
        prop_assert!(cs.windows(2).all(|w| w[0] >= w[1]));
        // And every landmark with a visit appears.
        let visited = counts.iter().filter(|&&c| c > 0).count();
        prop_assert_eq!(freq.len(), visited);
        prop_assert_eq!(h.len(), stays.len());
    }

    #[test]
    fn dead_end_threshold_scales_with_gamma(
        stays in proptest::collection::vec((0u16..3, 100u64..1_000), 12..40),
        elapsed in 1u64..1_000_000,
    ) {
        let mut h = VisitHistory::new(3);
        let mut t = 0u64;
        for &(lm, d) in &stays {
            h.record(LandmarkId(lm), SimTime(t), SimTime(t + d));
            t += d + 1;
        }
        let e = dtnflow_core::time::SimDuration(elapsed);
        // If it is a dead end at gamma 5, it must also be at gamma 2.
        if h.is_dead_end(LandmarkId(0), e, 5.0, 10) {
            prop_assert!(h.is_dead_end(LandmarkId(0), e, 2.0, 10));
        }
        // Below min_stays nothing ever triggers.
        prop_assert!(!h.is_dead_end(LandmarkId(0), e, 2.0, stays.len() + 1));
    }
}
