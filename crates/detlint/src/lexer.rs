//! A comment/string-aware token scanner for Rust sources.
//!
//! This is deliberately *not* a full Rust lexer: the rules only need
//! identifiers and punctuation with line numbers, with the guarantee
//! that nothing inside comments, string/char literals, or raw strings
//! is ever mistaken for code (that is what makes grep insufficient).
//! Line comments are additionally parsed for `detlint:` waivers.

use std::collections::BTreeMap;

/// One token the rule engine sees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// A single punctuation character (`{`, `}`, `.`, `!`, `:`, …).
    Punct(char),
    /// Numeric literal, raw source text preserved (so rules can tell a
    /// float accumulator init from an integer one).
    Num(String),
    /// String literal (plain, raw, byte, or C), with the content between
    /// the quotes preserved (escape sequences kept verbatim). The schema
    /// rules read tag tables and CSV headers out of these.
    Str(String),
    /// A char or byte-char literal (content is never needed by rules).
    Char,
    /// A lifetime (`'a`) — distinct from a char literal.
    Lifetime,
}

impl Tok {
    /// Whether a [`Tok::Num`] spells a floating-point literal.
    pub fn is_float(&self) -> bool {
        let Tok::Num(text) = self else { return false };
        let t = text.replace('_', "");
        if t.starts_with("0x") || t.starts_with("0X") || t.starts_with("0b") || t.starts_with("0o")
        {
            return false;
        }
        t.contains('.') || t.ends_with("f32") || t.ends_with("f64") || t.contains(['e', 'E'])
    }
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    pub line: u32,
    pub tok: Tok,
}

/// A parsed `// detlint: allow(RULE, reason = "...")` waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub rule: String,
    pub reason: String,
}

/// Lexer output: the token stream, valid waivers per line, and malformed
/// waiver comments (line, what is wrong).
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<SpannedTok>,
    pub waivers: BTreeMap<u32, Vec<Waiver>>,
    pub waiver_errors: Vec<(u32, String)>,
}

/// Lex a whole source file.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, tok: Tok) {
        self.out.tokens.push(SpannedTok {
            line: self.line,
            tok,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_literal(),
                c => {
                    self.bump();
                    self.push(Tok::Punct(c));
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // A waiver must *start* the comment (after `//`, `///`, or `//!`);
        // prose that merely mentions `detlint:` mid-sentence is not one.
        let body = text.trim_start_matches(['/', '!']).trim_start();
        if let Some(tail) = body.strip_prefix("detlint:") {
            // A trailing waiver covers its own line; a waiver standing on
            // a line of its own covers the line below it.
            let own_line = self.out.tokens.last().is_none_or(|t| t.line != line);
            let target = if own_line { line + 1 } else { line };
            match parse_waiver(tail) {
                Ok(w) => self.out.waivers.entry(target).or_default().push(w),
                Err(e) => self.out.waiver_errors.push((line, e)),
            }
        }
    }

    fn block_comment(&mut self) {
        // Consume `/*`, then run to the matching `*/` with nesting.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// An ordinary `"..."` string (escapes honoured, may span lines).
    fn string(&mut self) {
        let line = self.line;
        let mut content = String::new();
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                Some('\\') => {
                    content.extend(self.bump());
                    content.extend(self.bump());
                }
                Some('"') => {
                    self.bump();
                    break;
                }
                Some(c) => {
                    content.push(c);
                    self.bump();
                }
                None => break,
            }
        }
        self.out.tokens.push(SpannedTok {
            line,
            tok: Tok::Str(content),
        });
    }

    /// A raw string `r"..."` / `r#"..."#` (any number of `#`s), already
    /// positioned past the prefix identifier, at `#` or `"`.
    fn raw_string(&mut self) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut content = String::new();
        'outer: loop {
            match self.bump() {
                Some('"') => {
                    // A quote closes only when followed by `hashes` #s.
                    for k in 0..hashes {
                        if self.peek(k) != Some('#') {
                            content.push('"');
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
                Some(c) => content.push(c),
                None => break,
            }
        }
        self.out.tokens.push(SpannedTok {
            line,
            tok: Tok::Str(content),
        });
    }

    /// `'a'` / `'\n'` char literal vs `'a` lifetime.
    fn char_or_lifetime(&mut self) {
        // A char literal is `'` + (escape | single char) + `'`. Anything
        // else starting with `'` is a lifetime (or a loop label).
        let is_char = matches!(
            (self.peek(1), self.peek(2)),
            (Some('\\'), _) | (Some(_), Some('\''))
        );
        self.bump(); // the quote
        if is_char {
            loop {
                match self.peek(0) {
                    Some('\\') => {
                        self.bump();
                        self.bump();
                    }
                    Some('\'') => {
                        self.bump();
                        break;
                    }
                    Some(_) => {
                        self.bump();
                    }
                    None => break,
                }
            }
            self.push(Tok::Char);
        } else {
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(Tok::Lifetime);
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        // Integer part (decimal, hex, octal, binary) with `_` separators.
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_ascii_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        // Fraction only when `.` is followed by a digit (so `0..n` stays
        // two range dots).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_ascii_alphanumeric() {
                    self.bump();
                } else if (c == '+' || c == '-')
                    && self
                        .chars
                        .get(self.pos.wrapping_sub(1))
                        .is_some_and(|p| *p == 'e' || *p == 'E')
                {
                    self.bump(); // exponent sign, as in `1.5e-3`
                } else {
                    break;
                }
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.push(Tok::Num(text));
    }

    fn ident_or_prefixed_literal(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
            } else {
                break;
            }
        }
        let ident: String = self.chars[start..self.pos].iter().collect();
        // String/char prefixes: r"", r#"", b"", br#"", c"", cr#"", b''.
        match (ident.as_str(), self.peek(0)) {
            ("r" | "br" | "b" | "c" | "cr", Some('"')) => self.raw_or_plain_string(&ident),
            ("r" | "br" | "cr", Some('#')) if self.raw_hashes_then_quote() => {
                self.raw_string();
            }
            ("b", Some('\'')) => self.char_or_lifetime(),
            _ => self.push(Tok::Ident(ident)),
        }
    }

    /// After `r`/`br`/`cr`, check the `#…#"` shape without consuming.
    fn raw_hashes_then_quote(&self) -> bool {
        let mut k = 0;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        k > 0 && self.peek(k) == Some('"')
    }

    fn raw_or_plain_string(&mut self, prefix: &str) {
        if prefix.contains('r') {
            self.raw_string();
        } else {
            self.string();
        }
    }
}

/// Parse the tail of a waiver comment: `allow(RULE, reason = "...")`.
fn parse_waiver(tail: &str) -> Result<Waiver, String> {
    let tail = tail.trim_start();
    let Some(rest) = tail.strip_prefix("allow(") else {
        return Err("expected `allow(RULE, reason = \"...\")` after `detlint:`".into());
    };
    let Some(close) = rest.rfind(')') else {
        return Err("unclosed `allow(`".into());
    };
    let inner = &rest[..close];
    let Some((rule, reason_part)) = inner.split_once(',') else {
        return Err("missing `, reason = \"...\"` (waivers must say why)".into());
    };
    let rule = rule.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
        return Err(format!("bad rule id `{rule}`"));
    }
    let reason_part = reason_part.trim();
    let Some(q) = reason_part
        .strip_prefix("reason")
        .map(|r| r.trim_start())
        .and_then(|r| r.strip_prefix('='))
        .map(|r| r.trim_start())
    else {
        return Err("missing `reason = \"...\"`".into());
    };
    let reason = q.trim_matches('"').trim();
    if reason.is_empty() {
        return Err("empty waiver reason".into());
    }
    Ok(Waiver {
        rule: rule.to_string(),
        reason: reason.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let a = "HashMap::new() Instant::now()"; // HashMap in comment
            /* thread_rng() and panic! live here, nested /* unwrap() */ too */
            let b = r#"SystemTime::now() "quoted" "#;
            let c = 'x';
            let d: &'static str = "s";
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"));
        assert!(!ids.iter().any(|i| i == "Instant"));
        assert!(!ids.iter().any(|i| i == "thread_rng"));
        assert!(!ids.iter().any(|i| i == "unwrap"));
        assert!(!ids.iter().any(|i| i == "SystemTime"));
        assert!(
            ids.iter().any(|i| i == "str"),
            "code after a lifetime lexes on"
        );
    }

    #[test]
    fn lines_are_tracked() {
        let src = "let a = 1;\nlet unwrap = 2;\n";
        let lexed = lex(src);
        let unwrap_tok = lexed
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("unwrap".into()))
            .unwrap();
        assert_eq!(unwrap_tok.line, 2);
    }

    #[test]
    fn range_dots_survive_numbers() {
        let toks = lex("0..n 1.5e-3 0x_ff");
        let puncts: Vec<char> = toks
            .tokens
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!['.', '.'], "the range dots, nothing else");
    }

    #[test]
    fn waivers_parse_and_misparse() {
        let lexed = lex(concat!(
            "a(); // detlint: allow(D2, reason = \"bench wall-clock\")\n",
            "b(); // detlint: allow(P1)\n",
            "//! Prose mentioning `detlint:` waivers is not itself a waiver.\n",
            "// detlint: allow(D1, reason = \"own-line waiver covers the next line\")\n",
            "c();\n",
        ));
        // The own-line waiver on line 4 registers against line 5.
        assert_eq!(lexed.waivers[&5][0].rule, "D1");
        assert!(!lexed.waivers.contains_key(&4));
        let w = &lexed.waivers[&1][0];
        assert_eq!(w.rule, "D2");
        assert_eq!(w.reason, "bench wall-clock");
        assert_eq!(lexed.waiver_errors.len(), 1);
        assert_eq!(lexed.waiver_errors[0].0, 2);
    }

    #[test]
    fn char_vs_lifetime() {
        let lexed = lex("'a' 'b fn<'c>");
        let kinds: Vec<&Tok> = lexed.tokens.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[0], Tok::Char));
        assert!(matches!(kinds[1], Tok::Lifetime));
    }

    #[test]
    fn string_content_and_float_shapes_are_preserved() {
        let lexed = lex(r###"const T: &str = "a,b_c"; let r = r#"x "y" z"#; 1.5 2 0x10 3f64"###);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec!["a,b_c", r#"x "y" z"#]);
        let floats: Vec<bool> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(_) => Some(t.tok.is_float()),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec![true, false, false, true]);
    }
}
