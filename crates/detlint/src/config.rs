//! Which rules apply where: rule→crate scoping, path exclusions, and
//! the cross-file schema bindings the `X1` pack checks.

use std::path::Path;

/// An enum ↔ tag-table ↔ exhaustive-match binding for `X1`: the enum's
/// variants, the string entries of `tags_const`, and the match arms of
/// each listed fn must stay bijective.
#[derive(Debug, Clone)]
pub struct EnumTagBinding {
    pub enum_name: String,
    /// Const holding one snake_case tag string per variant, sorted.
    pub tags_const: String,
    /// Fns that must mention every variant: `"Owner::name"` for methods
    /// (impl self-type qualified), bare `"name"` for free fns.
    pub fns: Vec<String>,
}

/// A struct ↔ string-schema binding for `X1`: every field of
/// `struct_name` must appear as a word inside the string literals of
/// `fn_name`'s body (CSV headers, JSON key tables).
#[derive(Debug, Clone)]
pub struct FieldLiteralBinding {
    pub struct_name: String,
    /// `"Owner::name"` or bare free-fn name, as for [`EnumTagBinding`].
    pub fn_name: String,
}

/// Linter configuration. The defaults encode this repository's policy;
/// tests construct custom configs to point at fixture trees.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crate directory names (under `crates/`) whose iteration order can
    /// escape into experiment outcomes: `D1` (no `HashMap`/`HashSet`)
    /// applies to these.
    pub d1_crates: Vec<String>,
    /// Crates whose non-test code must not panic: `P1` scope.
    pub p1_crates: Vec<String>,
    /// Crates that must stay shard-safe ahead of the parallel engine:
    /// `C1` (no shared mutable statics, no ad-hoc threading, no
    /// unordered float reduction) applies to their non-test code.
    pub c1_crates: Vec<String>,
    /// Workspace-relative paths sanctioned to use thread primitives:
    /// the deterministic shard fan-out itself has to spawn/join
    /// somewhere. Only the ad-hoc-threading `C1` arms (`thread::*` and
    /// the channel/pool crates) are exempted there — shared mutable
    /// statics and unordered float reductions still fire even in a
    /// sanctioned file.
    pub c1_thread_allow: Vec<String>,
    /// Enum ↔ tag-table bindings checked by `X1`.
    pub enum_bindings: Vec<EnumTagBinding>,
    /// Struct ↔ string-schema bindings checked by `X1`.
    pub field_bindings: Vec<FieldLiteralBinding>,
    /// Directory names skipped entirely while walking.
    pub skip_dirs: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        let s = |xs: &[&str]| xs.iter().map(|x| x.to_string()).collect();
        Config {
            d1_crates: s(&[
                "dtnflow",
                "dtnflow-core",
                "baselines",
                "sim",
                "predictor",
                "landmark",
                "obs",
                "snapshot",
            ]),
            p1_crates: s(&["sim", "dtnflow", "dtnflow-core", "obs", "snapshot", "shard"]),
            // Everything that can touch an experiment outcome, plus the
            // root package: the sharded engine (ROADMAP item 1) will
            // fan these crates out across threads, so they must not
            // accumulate shared-state or order-sensitive float habits.
            c1_crates: s(&[
                "dtnflow",
                "dtnflow-core",
                "baselines",
                "sim",
                "predictor",
                "landmark",
                "mobility",
                "obs",
                "snapshot",
                "shard",
                ".",
            ]),
            // The one sanctioned spawn/join site (DESIGN.md §13); the
            // `c1allow` fixtures and the mutation suite prove an ad-hoc
            // `thread::spawn` anywhere else still fires.
            c1_thread_allow: s(&["crates/shard/src/exec.rs"]),
            enum_bindings: vec![EnumTagBinding {
                enum_name: "SimEvent".into(),
                tags_const: "KIND_TAGS".into(),
                fns: s(&[
                    "SimEvent::kind_index",
                    "SimEvent::at",
                    "SimEvent::encode",
                    "SimEvent::decode",
                    "SimEvent::fmt",
                ]),
            }],
            field_bindings: vec![
                FieldLiteralBinding {
                    struct_name: "LandmarkCounters".into(),
                    fn_name: "Snapshot::to_csv".into(),
                },
                FieldLiteralBinding {
                    struct_name: "LandmarkCounters".into(),
                    fn_name: "landmark_row_json".into(),
                },
                FieldLiteralBinding {
                    struct_name: "Totals".into(),
                    fn_name: "Snapshot::to_json_value".into(),
                },
                FieldLiteralBinding {
                    struct_name: "BenchEntry".into(),
                    fn_name: "bench_json".into(),
                },
            ],
            // `fixtures` holds deliberate violations for detlint's own
            // tests; `vendor` is third-party API stubs; `results` is
            // experiment output.
            skip_dirs: s(&["target", "vendor", ".git", "fixtures", "results"]),
        }
    }
}

/// Per-file facts the rule engine needs: which crate the file belongs to
/// and whether the whole file is test/bench code.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate directory name (`crates/<name>/...`), or `"."` for the root
    /// package (`src/`, `tests/`, `examples/` at the workspace root).
    pub crate_name: String,
    /// Whole file is test or bench code (`tests/`, `benches/` dirs).
    pub is_test_file: bool,
    pub d1_applies: bool,
    pub p1_applies: bool,
    pub c1_applies: bool,
    /// File is on the `c1_thread_allow` list: the ad-hoc-threading `C1`
    /// arms are exempt here (the rest of the pack still applies).
    pub c1_thread_sanctioned: bool,
}

impl FileContext {
    /// Classify a workspace-relative path.
    pub fn classify(rel: &Path, cfg: &Config) -> FileContext {
        let comps: Vec<&str> = rel
            .components()
            .filter_map(|c| c.as_os_str().to_str())
            .collect();
        let crate_name = match comps.as_slice() {
            ["crates", name, ..] => (*name).to_string(),
            _ => ".".to_string(),
        };
        let is_test_file = comps
            .iter()
            .any(|c| *c == "tests" || *c == "benches" || *c == "examples");
        let d1_applies = cfg.d1_crates.contains(&crate_name);
        let p1_applies = cfg.p1_crates.contains(&crate_name);
        let c1_applies = cfg.c1_crates.contains(&crate_name);
        let joined = comps.join("/");
        let c1_thread_sanctioned = cfg.c1_thread_allow.iter().any(|p| p == &joined);
        FileContext {
            crate_name,
            is_test_file,
            d1_applies,
            p1_applies,
            c1_applies,
            c1_thread_sanctioned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn classifies_crate_and_test_paths() {
        let cfg = Config::default();
        let c = FileContext::classify(&PathBuf::from("crates/sim/src/engine.rs"), &cfg);
        assert_eq!(c.crate_name, "sim");
        assert!(!c.is_test_file);
        assert!(c.d1_applies && c.p1_applies);

        let t = FileContext::classify(&PathBuf::from("crates/sim/tests/props.rs"), &cfg);
        assert!(t.is_test_file);

        let b = FileContext::classify(&PathBuf::from("crates/bench/src/report.rs"), &cfg);
        assert_eq!(b.crate_name, "bench");
        assert!(!b.d1_applies && !b.p1_applies && !b.c1_applies);

        let r = FileContext::classify(&PathBuf::from("tests/determinism.rs"), &cfg);
        assert_eq!(r.crate_name, ".");
        assert!(r.is_test_file);
        assert!(r.c1_applies, "root package is in C1 scope");

        let x = FileContext::classify(&PathBuf::from("crates/shard/src/exec.rs"), &cfg);
        assert!(x.c1_applies, "shard crate is in C1 scope");
        assert!(x.p1_applies, "shard crate is in P1 scope");
        assert!(x.c1_thread_sanctioned, "exec.rs is the sanctioned site");
        let y = FileContext::classify(&PathBuf::from("crates/shard/src/plan.rs"), &cfg);
        assert!(
            !y.c1_thread_sanctioned,
            "the allowlist is per-file, not per-crate"
        );

        let e = FileContext::classify(&PathBuf::from("examples/quickstart.rs"), &cfg);
        assert!(e.is_test_file, "examples are demo code, not hot paths");
    }
}
