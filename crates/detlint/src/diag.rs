//! Machine-readable diagnostics: `file:line:rule` text and JSON.

use std::fmt;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id: `D1`, `D2`, `P1`, `P2`, `S1`, `X0`, `X1`, `C1`, `W0`
    /// (malformed waiver), or `W1` (stale waiver).
    pub rule: String,
    pub message: String,
}

/// Version of the `--json` report shape. Bump on any structural change
/// (CI archives these reports; downstream tooling pins the version).
/// v1 was the bare diagnostics array; v2 wrapped it in an envelope.
pub const JSON_SCHEMA_VERSION: u64 = 2;

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Render diagnostics as a versioned JSON envelope (hand-rolled: the
/// environment is offline, so no serde):
/// `{"schema_version":2,"diagnostics":[…]}`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = format!("{{\"schema_version\":{JSON_SCHEMA_VERSION},\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
            json_str(&d.file),
            d.line,
            json_str(&d.rule),
            json_str(&d.message)
        ));
    }
    out.push_str("]}");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_rule() {
        let d = Diagnostic {
            file: "crates/sim/src/engine.rs".into(),
            line: 95,
            rule: "D1".into(),
            message: "HashMap".into(),
        };
        assert_eq!(d.to_string(), "crates/sim/src/engine.rs:95:D1: HashMap");
    }

    #[test]
    fn json_escapes() {
        let d = Diagnostic {
            file: "a.rs".into(),
            line: 1,
            rule: "W0".into(),
            message: "say \"why\"\n".into(),
        };
        assert_eq!(
            to_json(&[d]),
            "{\"schema_version\":2,\"diagnostics\":[{\"file\":\"a.rs\",\"line\":1,\
             \"rule\":\"W0\",\"message\":\"say \\\"why\\\"\\n\"}]}"
        );
        assert_eq!(to_json(&[]), "{\"schema_version\":2,\"diagnostics\":[]}");
    }
}
