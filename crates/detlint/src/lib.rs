//! `detlint`: workspace-local determinism & panic-safety static analysis.
//!
//! The DTN-FLOW reproduction's scientific output — the delivery-rate and
//! delay curves of Figs. 8–13 — must be bit-reproducible from a seed.
//! PR 1 fixed a cross-process nondeterminism bug by hand (`std`
//! `HashMap` iteration order leaking a per-process hasher seed into
//! experiment CSVs); this crate turns that review lesson into mechanical
//! enforcement, the way production network daemons gate merges on lints
//! rather than reviewer vigilance.
//!
//! Since PR 6 the linter is *item-aware*: a hand-rolled parser
//! (`items.rs`, no `syn`) lifts structs/enums/impls/fns with their
//! fields, variants and body spans out of the token stream, and three
//! rule packs check invariants a flat token scan cannot see.
//!
//! ## Rules
//!
//! | Rule | What it forbids | Where |
//! |------|-----------------|-------|
//! | `D1` | `std::collections::{HashMap,HashSet}` (randomized iteration order) | outcome-affecting crates: `dtnflow`, `baselines`, `sim`, `predictor`, `landmark` |
//! | `D2` | ambient nondeterminism: `Instant::now`, `SystemTime::now`, `thread_rng`, `rand::random`/`rand::rng`, `RandomState`, `DefaultHasher` | everywhere |
//! | `P1` | `unwrap()` / `expect()` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` | non-test simulator & router code (`sim`, `dtnflow`) |
//! | `P2` | NaN-unsafe `partial_cmp(..).unwrap()` / `.expect(..)` (use `total_cmp`) | everywhere, tests included |
//! | `S1` | a struct field missing from its snapshot codec (`encode`/`decode`, `save_state`/`restore_state`, `encode_*`/`decode_*` — `*_with` closure codecs exempt): silent restore divergence | non-test code, everywhere |
//! | `X1` | schema drift: `SimEvent` variants ↔ `KIND_TAGS` ↔ `kind_index`/codec/`Display` no longer bijective, or a CSV/JSON writer missing a bound struct's field | config-driven bindings, cross-file |
//! | `X0` | a half-resolved `X1` binding (type or fn renamed without updating detlint's `Config`): the rule must fail loud, not rot away | wherever a binding partially matches |
//! | `C1` | parallel-unreadiness ahead of the sharded engine: `static mut` / interior-mutable statics / `thread_local!`, ad-hoc `thread::spawn`/`rayon`/`mpsc`, float `sum`/`product`/`fold` over non-index-ordered iterators | non-test code in outcome-affecting crates + the root package |
//! | `W1` | a stale waiver: its rule no longer fires on its line | everywhere (unwaivable, like `W0`) |
//!
//! `assert!`-family macros are deliberately *not* covered by `P1`: they
//! state invariants, and removing them would hide bugs instead of
//! surfacing them.
//!
//! ## Waivers
//!
//! A violation is silenced by a line comment on the same line:
//!
//! ```text
//! let t = Instant::now(); // detlint: allow(D2, reason = "wall-clock bench reporting only")
//! ```
//!
//! The `reason` is mandatory; a waiver without one does not suppress
//! anything and is itself reported (`W0`), so waivers stay auditable.
//!
//! ## Running
//!
//! ```text
//! cargo run -p detlint -- check [--root DIR] [--json]
//! ```
//!
//! Diagnostics are `file:line:rule: message`, one per line (or a
//! versioned JSON envelope with `--json`, see
//! [`diag::JSON_SCHEMA_VERSION`]); the exit code is non-zero when
//! anything fires. The in-tree self-check test runs the same scan over
//! the live workspace, so `cargo test -q` fails on any new violation.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use config::Config;
pub use diag::Diagnostic;
pub use items::FileAnalysis;

/// Scan a workspace root with the default [`Config`] and return all
/// diagnostics, sorted by `(file, line, rule, message)`.
pub fn check_root(root: &Path) -> Result<Vec<Diagnostic>, std::io::Error> {
    check_root_with(root, &Config::default())
}

/// Lex and item-parse every Rust source under `root`. The analyses
/// feed the rule passes; tests also use them directly (e.g. to assert
/// the `X1` bindings still resolve against the live tree).
pub fn analyze_root(root: &Path, cfg: &Config) -> Result<Vec<FileAnalysis>, std::io::Error> {
    let files = walk::rust_sources(root, cfg)?;
    let mut analyses = Vec::with_capacity(files.len());
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let ctx = config::FileContext::classify(&rel, cfg);
        analyses.push(FileAnalysis::new(&rel, ctx, &src));
    }
    Ok(analyses)
}

/// Scan a workspace root with an explicit configuration: per-file
/// rules, cross-file schema rules, then waiver application and the
/// deterministic sort.
pub fn check_root_with(root: &Path, cfg: &Config) -> Result<Vec<Diagnostic>, std::io::Error> {
    let analyses = analyze_root(root, cfg)?;
    let mut raw = Vec::new();
    for fa in &analyses {
        raw.extend(rules::file_rules(fa));
    }
    raw.extend(rules::cross_file_rules(&analyses, cfg));
    Ok(rules::finalize(&analyses, raw))
}
