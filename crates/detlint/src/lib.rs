//! `detlint`: workspace-local determinism & panic-safety static analysis.
//!
//! The DTN-FLOW reproduction's scientific output — the delivery-rate and
//! delay curves of Figs. 8–13 — must be bit-reproducible from a seed.
//! PR 1 fixed a cross-process nondeterminism bug by hand (`std`
//! `HashMap` iteration order leaking a per-process hasher seed into
//! experiment CSVs); this crate turns that review lesson into mechanical
//! enforcement, the way production network daemons gate merges on lints
//! rather than reviewer vigilance.
//!
//! ## Rules
//!
//! | Rule | What it forbids | Where |
//! |------|-----------------|-------|
//! | `D1` | `std::collections::{HashMap,HashSet}` (randomized iteration order) | outcome-affecting crates: `dtnflow`, `baselines`, `sim`, `predictor`, `landmark` |
//! | `D2` | ambient nondeterminism: `Instant::now`, `SystemTime::now`, `thread_rng`, `rand::random`/`rand::rng`, `RandomState`, `DefaultHasher` | everywhere |
//! | `P1` | `unwrap()` / `expect()` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` | non-test simulator & router code (`sim`, `dtnflow`) |
//! | `P2` | NaN-unsafe `partial_cmp(..).unwrap()` / `.expect(..)` (use `total_cmp`) | everywhere, tests included |
//!
//! `assert!`-family macros are deliberately *not* covered by `P1`: they
//! state invariants, and removing them would hide bugs instead of
//! surfacing them.
//!
//! ## Waivers
//!
//! A violation is silenced by a line comment on the same line:
//!
//! ```text
//! let t = Instant::now(); // detlint: allow(D2, reason = "wall-clock bench reporting only")
//! ```
//!
//! The `reason` is mandatory; a waiver without one does not suppress
//! anything and is itself reported (`W0`), so waivers stay auditable.
//!
//! ## Running
//!
//! ```text
//! cargo run -p detlint -- check [--root DIR] [--json]
//! ```
//!
//! Diagnostics are `file:line:rule: message`, one per line (or a JSON
//! array with `--json`); the exit code is non-zero when anything fires.
//! The in-tree self-check test runs the same scan over the live
//! workspace, so `cargo test -q` fails on any new violation.

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use config::Config;
pub use diag::Diagnostic;

/// Scan a workspace root with the default [`Config`] and return all
/// diagnostics, sorted by `(file, line, rule)`.
pub fn check_root(root: &Path) -> Result<Vec<Diagnostic>, std::io::Error> {
    check_root_with(root, &Config::default())
}

/// Scan a workspace root with an explicit configuration.
pub fn check_root_with(root: &Path, cfg: &Config) -> Result<Vec<Diagnostic>, std::io::Error> {
    let files = walk::rust_sources(root, cfg)?;
    let mut out = Vec::new();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let ctx = config::FileContext::classify(&rel, cfg);
        out.extend(rules::scan_file(&rel, &ctx, &src));
    }
    out.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(out)
}
