//! A lightweight item model parsed from the token stream: structs with
//! their named fields, enums with their variants, consts with their
//! string literals, and fns with their body token spans.
//!
//! This is deliberately *not* a Rust parser (no `syn`, no proc-macro
//! machinery — the environment is offline and the linter must stay a
//! leaf dependency). It recognises exactly the item shapes the S1/X1
//! rule packs need and skips everything else as balanced token groups.
//! Items nested inside fn bodies are intentionally invisible: the rules
//! reason about module-level types and their codecs.

use crate::config::FileContext;
use crate::lexer::{lex, Lexed, SpannedTok, Tok};
use std::ops::Range;
use std::path::Path;

/// A named struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldItem {
    pub name: String,
    pub line: u32,
}

/// A `struct` item. Tuple and unit structs are recorded with no fields
/// (S1 has nothing to check on positional fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructItem {
    pub name: String,
    pub line: u32,
    pub fields: Vec<FieldItem>,
}

/// An enum variant (payload shape is irrelevant to the rules).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VariantItem {
    pub name: String,
    pub line: u32,
}

/// An `enum` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumItem {
    pub name: String,
    pub line: u32,
    pub variants: Vec<VariantItem>,
}

/// A `const` or `static` item, with the string literals of its
/// initializer in source order (X1 reads tag tables out of these).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstItem {
    pub name: String,
    pub line: u32,
    pub strs: Vec<String>,
}

/// A `fn` item: its name, the `impl`/`trait` type it belongs to (if
/// any), and the token-index span of its body in the file's stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    pub name: String,
    pub line: u32,
    /// Self type of the enclosing `impl` (or enclosing trait name).
    pub owner: Option<String>,
    /// Body tokens as a range into `Lexed::tokens` (empty for bodyless
    /// trait-method declarations).
    pub body: Range<usize>,
}

/// Everything the item parser found in one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub structs: Vec<StructItem>,
    pub enums: Vec<EnumItem>,
    pub consts: Vec<ConstItem>,
    pub fns: Vec<FnItem>,
}

/// One file, fully analysed: tokens, waivers, and the item model. The
/// rule packs consume this instead of re-lexing.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    pub ctx: FileContext,
    pub lexed: Lexed,
    pub items: FileItems,
}

impl FileAnalysis {
    pub fn new(rel: &Path, ctx: FileContext, src: &str) -> FileAnalysis {
        let file = rel
            .components()
            .filter_map(|c| c.as_os_str().to_str())
            .collect::<Vec<_>>()
            .join("/");
        let lexed = lex(src);
        let items = parse_items(&lexed.tokens);
        FileAnalysis {
            file,
            ctx,
            lexed,
            items,
        }
    }
}

/// Parse the item model out of a token stream. Items under a
/// `#[cfg(test)]` / `#[test]` attribute (including whole test modules)
/// are parsed for block balance but not recorded: the rules reason
/// about live code only.
pub fn parse_items(toks: &[SpannedTok]) -> FileItems {
    let mut items = FileItems::default();
    let mut p = Parser { toks, i: 0 };
    p.block(None, &mut items, false);
    items
}

/// Whether an attribute token slice marks test code: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, …))]` — but not `#[cfg(not(test))]`.
pub fn attr_marks_test(attr: &[SpannedTok]) -> bool {
    let mut has_test = false;
    let mut has_not = false;
    for t in attr {
        if let Tok::Ident(id) = &t.tok {
            match id.as_str() {
                "test" => has_test = true,
                "not" => has_not = true,
                _ => {}
            }
        }
    }
    has_test && !has_not
}

struct Parser<'a> {
    toks: &'a [SpannedTok],
    i: usize,
}

impl<'a> Parser<'a> {
    fn ident(&self, at: usize) -> Option<&'a str> {
        match self.toks.get(at)?.tok {
            Tok::Ident(ref s) => Some(s),
            _ => None,
        }
    }

    fn punct(&self, at: usize) -> Option<char> {
        match self.toks.get(at)?.tok {
            Tok::Punct(c) => Some(c),
            _ => None,
        }
    }

    fn line(&self, at: usize) -> u32 {
        self.toks.get(at).map_or(0, |t| t.line)
    }

    /// Skip one attribute if positioned at its `#`; returns `None` when
    /// this `#` is not an attribute, else whether it marks test code.
    fn skip_attribute(&mut self) -> Option<bool> {
        if self.punct(self.i) != Some('#') {
            return None;
        }
        let start = self.i;
        let mut j = self.i + 1;
        if self.punct(j) == Some('!') {
            j += 1;
        }
        if self.punct(j) != Some('[') {
            return None;
        }
        let mut depth = 0i32;
        while j < self.toks.len() {
            match self.punct(j) {
                Some('[') => depth += 1,
                Some(']') => {
                    depth -= 1;
                    if depth == 0 {
                        self.i = j + 1;
                        return Some(attr_marks_test(&self.toks[start..self.i]));
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.i = self.toks.len();
        Some(false)
    }

    /// Skip a balanced `{ … }` group starting at the current `{`;
    /// returns the token-index range of its interior.
    fn skip_braced(&mut self) -> Range<usize> {
        debug_assert_eq!(self.punct(self.i), Some('{'));
        let start = self.i + 1;
        let mut depth = 0i32;
        while self.i < self.toks.len() {
            match self.punct(self.i) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        let end = self.i;
                        self.i += 1;
                        return start..end;
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
        start..self.toks.len()
    }

    /// Parse items until the end of the stream (`closes == false`) or
    /// the `}` closing the current block (`closes == true`).
    fn block(&mut self, owner: Option<&str>, items: &mut FileItems, closes: bool) {
        // Items under a test-marking attribute are parsed into this
        // discard pile so block balance is kept but nothing is recorded.
        let mut scratch = FileItems::default();
        let mut pending_test = false;
        while self.i < self.toks.len() {
            if let Some(marks_test) = self.skip_attribute() {
                pending_test |= marks_test;
                continue;
            }
            let sink: &mut FileItems = if pending_test { &mut scratch } else { items };
            match &self.toks[self.i].tok {
                Tok::Punct('}') if closes => {
                    self.i += 1;
                    return;
                }
                Tok::Punct('{') => {
                    // Not one of ours (use tree, macro body, extern
                    // block): skip it whole so its `}` cannot be
                    // mistaken for our block close.
                    self.skip_braced();
                    pending_test = false;
                }
                Tok::Ident(kw) => {
                    match kw.as_str() {
                        "struct" => self.parse_struct(sink),
                        "enum" => self.parse_enum(sink),
                        "impl" => self.parse_impl(sink),
                        "trait" => self.parse_trait(sink),
                        "fn" => self.parse_fn(owner, sink),
                        "const" | "static" if self.ident(self.i + 1) != Some("fn") => {
                            self.parse_const(sink)
                        }
                        "mod" => self.parse_mod(owner, sink),
                        _ => {
                            self.i += 1;
                            continue; // qualifier (`pub`, `unsafe`, …): keep pending_test
                        }
                    }
                    pending_test = false;
                }
                _ => self.i += 1, // `pub(crate)` puncts etc.: keep pending_test
            }
        }
    }

    /// Advance past generics/where-clause tokens until a depth-0 `{`,
    /// `;`, or `(` (whichever the caller cares about); `<`/`>` are
    /// balanced with a `->` guard so fn-pointer types don't desync.
    fn skip_to_body(&mut self, stops: &[char]) -> Option<char> {
        let mut angle = 0i32;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while self.i < self.toks.len() {
            if let Some(c) = self.punct(self.i) {
                let arrow = c == '>' && self.punct(self.i.wrapping_sub(1)) == Some('-');
                match c {
                    '<' => angle += 1,
                    '>' if !arrow && angle > 0 => angle -= 1,
                    '(' => paren += 1,
                    ')' => paren -= 1,
                    '[' => bracket += 1,
                    ']' => bracket -= 1,
                    _ => {}
                }
                if angle == 0 && paren == 0 && bracket == 0 && stops.contains(&c) {
                    return Some(c);
                }
                // `(` as a stop is matched above before the depth bump;
                // recompute so tuple-struct parens are found at depth 0.
                if c == '(' && paren == 1 && angle == 0 && bracket == 0 && stops.contains(&'(') {
                    return Some('(');
                }
            }
            self.i += 1;
        }
        None
    }

    fn parse_struct(&mut self, items: &mut FileItems) {
        self.i += 1; // `struct`
        let Some(name) = self.ident(self.i) else {
            return;
        };
        let name = name.to_string();
        let line = self.line(self.i);
        self.i += 1;
        let mut fields = Vec::new();
        match self.skip_to_body(&['{', ';', '(']) {
            Some('{') => {
                let body = self.skip_braced();
                fields = self.fields_in(body);
            }
            Some('(') => {
                // Tuple struct: skip `(...)` then the trailing `;`.
                let mut depth = 0i32;
                while self.i < self.toks.len() {
                    match self.punct(self.i) {
                        Some('(') => depth += 1,
                        Some(')') => {
                            depth -= 1;
                            if depth == 0 {
                                self.i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    self.i += 1;
                }
            }
            Some(';') | None => {
                self.i += 1;
            }
            Some(_) => unreachable!(),
        }
        items.structs.push(StructItem { name, line, fields });
    }

    /// Extract named fields from a struct-body token range: an ident at
    /// group-depth 0 directly followed by a single `:`; then skip to the
    /// next depth-0 `,` so nothing inside the field's type can match.
    fn fields_in(&self, body: Range<usize>) -> Vec<FieldItem> {
        let mut fields = Vec::new();
        let mut j = body.start;
        let mut angle = 0i32;
        let mut group = 0i32; // (), [], {}
        let mut expecting = true; // at start or just past a depth-0 `,`
        while j < body.end {
            match &self.toks[j].tok {
                Tok::Punct(c) => {
                    let arrow = *c == '>' && j > 0 && self.punct(j - 1) == Some('-');
                    match c {
                        '<' => angle += 1,
                        '>' if !arrow && angle > 0 => angle -= 1,
                        '(' | '[' | '{' => group += 1,
                        ')' | ']' | '}' => group -= 1,
                        ',' if angle == 0 && group == 0 => expecting = true,
                        '#' => { /* field attribute; its [..] bumps group */ }
                        _ => {}
                    }
                }
                // `pub`/`pub(crate)` prefixes roll past; the field name
                // is the ident immediately followed by `:` but not `::`.
                Tok::Ident(id)
                    if expecting
                        && angle == 0
                        && group == 0
                        && self.punct(j + 1) == Some(':')
                        && self.punct(j + 2) != Some(':') =>
                {
                    fields.push(FieldItem {
                        name: id.clone(),
                        line: self.toks[j].line,
                    });
                    expecting = false;
                }
                _ => {}
            }
            j += 1;
        }
        fields
    }

    fn parse_enum(&mut self, items: &mut FileItems) {
        self.i += 1; // `enum`
        let Some(name) = self.ident(self.i) else {
            return;
        };
        let name = name.to_string();
        let line = self.line(self.i);
        self.i += 1;
        let mut variants = Vec::new();
        if self.skip_to_body(&['{', ';']) == Some('{') {
            let body = self.skip_braced();
            let mut j = body.start;
            let mut group = 0i32;
            let mut angle = 0i32;
            let mut expecting = true;
            while j < body.end {
                match &self.toks[j].tok {
                    Tok::Punct(c) => {
                        let arrow = *c == '>' && j > 0 && self.punct(j - 1) == Some('-');
                        match c {
                            '<' => angle += 1,
                            '>' if !arrow && angle > 0 => angle -= 1,
                            '(' | '[' | '{' => group += 1,
                            ')' | ']' | '}' => group -= 1,
                            ',' if angle == 0 && group == 0 => expecting = true,
                            _ => {}
                        }
                    }
                    Tok::Ident(id) if expecting && angle == 0 && group == 0 => {
                        variants.push(VariantItem {
                            name: id.clone(),
                            line: self.toks[j].line,
                        });
                        expecting = false;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        items.enums.push(EnumItem {
            name,
            line,
            variants,
        });
    }

    fn parse_impl(&mut self, items: &mut FileItems) {
        self.i += 1; // `impl`
                     // `impl<…>` generics come before the type.
        if self.punct(self.i) == Some('<') {
            let mut angle = 0i32;
            while self.i < self.toks.len() {
                match self.punct(self.i) {
                    Some('<') => angle += 1,
                    Some('>') if self.punct(self.i.wrapping_sub(1)) != Some('-') => {
                        angle -= 1;
                        if angle == 0 {
                            self.i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                self.i += 1;
            }
        }
        // Collect the header up to the body `{`; the self type is the
        // path after a depth-0 `for` (trait impl) or the whole header.
        let header_start = self.i;
        let stop = self.skip_to_body(&['{', ';']);
        let header = &self.toks[header_start..self.i];
        let mut after_for = 0usize;
        let mut angle = 0i32;
        for (k, t) in header.iter().enumerate() {
            match &t.tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') if angle > 0 => angle -= 1,
                // First depth-0 `for` only: later ones are HRTB
                // (`where F: for<'a> Fn(…)`), not the trait/type split.
                Tok::Ident(id) if id == "for" && angle == 0 && after_for == 0 => {
                    after_for = k + 1;
                }
                _ => {}
            }
        }
        // Self-type name: last ident of the path before its generic
        // arguments (`mobility::Grid<W>` → `Grid`).
        let mut name = None;
        for t in &header[after_for..] {
            match &t.tok {
                Tok::Ident(id) if id == "where" => break,
                Tok::Ident(id) if id != "dyn" && id != "mut" => name = Some(id.clone()),
                Tok::Punct('<') | Tok::Punct('{') => break,
                _ => {}
            }
        }
        if stop == Some('{') {
            let body = self.skip_braced();
            let mut inner = Parser {
                toks: &self.toks[..body.end],
                i: body.start,
            };
            inner.block(name.as_deref(), items, false);
        }
    }

    fn parse_trait(&mut self, items: &mut FileItems) {
        self.i += 1; // `trait`
        let name = self.ident(self.i).map(str::to_string);
        if name.is_some() {
            self.i += 1;
        }
        if self.skip_to_body(&['{', ';']) == Some('{') {
            let body = self.skip_braced();
            let mut inner = Parser {
                toks: &self.toks[..body.end],
                i: body.start,
            };
            inner.block(name.as_deref(), items, false);
        } else {
            self.i += 1;
        }
    }

    fn parse_fn(&mut self, owner: Option<&str>, items: &mut FileItems) {
        self.i += 1; // `fn`
        let Some(name) = self.ident(self.i) else {
            return;
        };
        let name = name.to_string();
        let line = self.line(self.i);
        self.i += 1;
        let body = match self.skip_to_body(&['{', ';']) {
            Some('{') => self.skip_braced(),
            _ => {
                self.i += 1;
                0..0
            }
        };
        items.fns.push(FnItem {
            name,
            line,
            owner: owner.map(str::to_string),
            body,
        });
    }

    fn parse_const(&mut self, items: &mut FileItems) {
        self.i += 1; // `const` / `static`
        if self.ident(self.i) == Some("mut") {
            self.i += 1;
        }
        let Some(name) = self.ident(self.i) else {
            return;
        };
        let name = name.to_string();
        let line = self.line(self.i);
        self.i += 1;
        // Skip the type to the depth-0 `=` (or `;` for extern statics).
        let mut strs = Vec::new();
        if self.skip_to_body(&['=', ';']) == Some('=') {
            // Collect string literals in the initializer up to `;`.
            let mut group = 0i32;
            while self.i < self.toks.len() {
                match &self.toks[self.i].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => group += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => group -= 1,
                    Tok::Punct(';') if group == 0 => break,
                    Tok::Str(s) => strs.push(s.clone()),
                    _ => {}
                }
                self.i += 1;
            }
        }
        items.consts.push(ConstItem { name, line, strs });
    }

    fn parse_mod(&mut self, owner: Option<&str>, items: &mut FileItems) {
        self.i += 1; // `mod`
        if self.ident(self.i).is_some() {
            self.i += 1;
        }
        match self.punct(self.i) {
            Some('{') => {
                let body = self.skip_braced();
                let mut inner = Parser {
                    toks: &self.toks[..body.end],
                    i: body.start,
                };
                inner.block(owner, items, false);
            }
            _ => self.i += 1, // `mod foo;`
        }
    }
}

/// `CamelCase` → `snake_case` (how `KIND_TAGS` entries are derived from
/// `SimEvent` variant names).
pub fn snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileItems {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn struct_fields_with_types_generics_and_attrs() {
        let src = r#"
            #[derive(Debug)]
            pub struct Packet {
                pub id: u64,
                #[allow(dead_code)]
                visited: BTreeMap<String, Vec<u32>>,
                pub(crate) cb: Box<dyn Fn(u32) -> u32>,
                arr: [u8; 4],
            }
            struct Unit;
            struct Tuple(u32, f64);
        "#;
        let items = parse(src);
        assert_eq!(items.structs.len(), 3);
        let p = &items.structs[0];
        assert_eq!(p.name, "Packet");
        let names: Vec<&str> = p.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["id", "visited", "cb", "arr"]);
        assert!(items.structs[1].fields.is_empty());
        assert!(items.structs[2].fields.is_empty());
    }

    #[test]
    fn enum_variants_with_payloads() {
        let src = r#"
            pub enum SimEvent {
                ContactOpen { at: u64, node: u32 },
                UnitBoundary { at: u64 },
                Lost(u32),
                Plain,
            }
        "#;
        let items = parse(src);
        let e = &items.enums[0];
        assert_eq!(e.name, "SimEvent");
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["ContactOpen", "UnitBoundary", "Lost", "Plain"]);
    }

    #[test]
    fn fns_record_owner_and_body_span() {
        let src = r#"
            fn free() { helper(); }
            impl Packet {
                pub fn encode(&self, w: &mut Writer) { w.put(self.id); }
            }
            impl fmt::Display for Packet {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, "p") }
            }
            trait Codec {
                fn decl(&self);
                fn with_default(&self) { self.decl(); }
            }
        "#;
        let items = parse(src);
        let by_name = |n: &str| items.fns.iter().find(|f| f.name == n).unwrap();
        assert_eq!(by_name("free").owner, None);
        assert_eq!(by_name("encode").owner.as_deref(), Some("Packet"));
        assert_eq!(by_name("fmt").owner.as_deref(), Some("Packet"));
        assert_eq!(by_name("decl").owner.as_deref(), Some("Codec"));
        assert!(by_name("decl").body.is_empty());
        assert!(!by_name("with_default").body.is_empty());
        assert!(!by_name("encode").body.is_empty());
    }

    #[test]
    fn consts_capture_string_literals_in_order() {
        let src = r#"
            pub const KIND_TAGS: [&str; 3] = ["alpha", "beta", "gamma"];
            const N: usize = KIND_TAGS.len();
            static HEADER: &str = "a,b,c\n";
        "#;
        let items = parse(src);
        assert_eq!(items.consts[0].name, "KIND_TAGS");
        assert_eq!(items.consts[0].strs, vec!["alpha", "beta", "gamma"]);
        assert!(items.consts[1].strs.is_empty());
        assert_eq!(items.consts[2].strs, vec!["a,b,c\\n"]);
    }

    #[test]
    fn items_inside_fn_bodies_are_invisible() {
        let src = r#"
            fn outer() {
                struct Local { x: u32 }
                let s = Local { x: 1 };
            }
            mod inner {
                pub struct Visible { pub y: u32 }
            }
        "#;
        let items = parse(src);
        let names: Vec<&str> = items.structs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["Visible"],
            "fn-local items skipped, mods recursed"
        );
    }

    #[test]
    fn use_trees_and_macros_do_not_desync_blocks() {
        let src = r#"
            use std::collections::{BTreeMap, BTreeSet};
            macro_rules! gen { () => { struct NotReal { q: u8 } }; }
            pub struct Real { pub f: u32 }
        "#;
        let items = parse(src);
        let names: Vec<&str> = items.structs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["Real"]);
    }

    #[test]
    fn cfg_test_items_are_not_recorded() {
        let src = r#"
            pub struct Live { pub a: u32 }
            #[cfg(test)]
            mod tests {
                struct TestOnly { b: u32 }
                fn encode_test_only(t: &TestOnly) {}
            }
            #[test]
            fn a_test() { body(); }
            #[cfg(not(test))]
            fn live_fn() {}
        "#;
        let items = parse(src);
        let structs: Vec<&str> = items.structs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(structs, vec!["Live"]);
        let fns: Vec<&str> = items.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fns, vec!["live_fn"], "cfg(not(test)) is live code");
    }

    #[test]
    fn snake_case_conversion() {
        assert_eq!(snake("ContactOpen"), "contact_open");
        assert_eq!(snake("MisTransit"), "mis_transit");
        assert_eq!(snake("UnitBoundary"), "unit_boundary");
        assert_eq!(snake("Restored"), "restored");
    }
}
