//! The rule engine.
//!
//! Three passes over [`FileAnalysis`] data:
//!
//! 1. [`file_rules`] — per-file token rules (`D1`, `D2`, `P1`, `P2`,
//!    `W0`, `C1`) and the item-aware codec-completeness pack (`S1`).
//! 2. [`cross_file_rules`] — workspace-wide schema-exhaustiveness
//!    (`X1`, with `X0` for half-resolved bindings).
//! 3. [`finalize`] — stale-waiver detection (`W1`), waiver application,
//!    and the deterministic `(file, line, rule, message)` sort.

use crate::config::{Config, FileContext};
use crate::diag::Diagnostic;
use crate::items::{attr_marks_test, snake, FileAnalysis, FnItem, StructItem};
use crate::lexer::{SpannedTok, Tok};
use std::collections::BTreeSet;
use std::path::Path;

/// Idents that, called as macros (`ident!`), violate `P1`.
const P1_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Idents that, called as methods (`.ident(`), violate `P1`.
const P1_METHODS: &[&str] = &["unwrap", "expect"];

/// Bare idents that violate `D2` wherever they appear in code.
const D2_IDENTS: &[&str] = &["thread_rng", "RandomState", "DefaultHasher"];

/// `A::b` paths that violate `D2`.
const D2_PATHS: &[(&str, &str)] = &[
    ("Instant", "now"),
    ("SystemTime", "now"),
    ("rand", "random"),
    ("rand", "rng"),
];

/// Bare idents that violate `C1`: ad-hoc parallelism primitives whose
/// scheduling order would leak into outcomes.
const C1_IDENTS: &[&str] = &["rayon", "mpsc", "crossbeam", "parking_lot"];

/// `thread::member` calls that violate `C1`.
const C1_THREAD_MEMBERS: &[&str] = &["spawn", "scope", "Builder"];

/// Interior-mutability types that make a `static` shared mutable state.
const C1_INTERIOR_MUTABLE: &[&str] = &[
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyCell",
    "LazyLock",
    "Condvar",
    "AtomicBool",
    "AtomicUsize",
    "AtomicIsize",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicPtr",
];

/// Iterator sources whose order is not a stable index order; a float
/// reduction drawn from one of these is flagged by `C1`.
const C1_UNORDERED_SOURCES: &[&str] = &[
    "values",
    "into_values",
    "keys",
    "into_keys",
    "par_iter",
    "into_par_iter",
    "par_bridge",
];

/// Scan one file's source and return its finalized diagnostics. This is
/// the single-file convenience path (no cross-file `X1` and no other
/// files' waivers); [`crate::check_root`] runs the full pipeline.
pub fn scan_file(rel: &Path, ctx: &FileContext, src: &str) -> Vec<Diagnostic> {
    let fa = FileAnalysis::new(rel, ctx.clone(), src);
    let raw = file_rules(&fa);
    finalize(std::slice::from_ref(&fa), raw)
}

/// Per-file rules, *before* waivers are applied.
pub fn file_rules(fa: &FileAnalysis) -> Vec<Diagnostic> {
    let ctx = &fa.ctx;
    let toks = &fa.lexed.tokens;
    let mut raw: Vec<Diagnostic> = Vec::new();
    let push = |line: u32, rule: &str, message: String, raw: &mut Vec<Diagnostic>| {
        raw.push(Diagnostic {
            file: fa.file.clone(),
            line,
            rule: rule.to_string(),
            message,
        });
    };

    // Malformed waivers are always reported: a waiver that silently
    // fails to parse would silently fail to waive.
    for (line, err) in &fa.lexed.waiver_errors {
        push(
            *line,
            "W0",
            format!("malformed detlint waiver: {err}"),
            &mut raw,
        );
    }

    let mut depth: u32 = 0;
    // Brace depths at which a test region (a `#[cfg(test)]` mod or a
    // `#[test]` fn body) opened; inside any of them P1/C1 are off.
    let mut test_regions: Vec<u32> = Vec::new();
    // A test-marking attribute was seen; the next `{` opens its region.
    let mut armed = false;
    // Token indices already claimed by a P2 match (so the trailing
    // `.unwrap(` is not double-reported under P1).
    let mut claimed: Vec<usize> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let SpannedTok { line, tok } = &toks[i];
        let line = *line;
        match tok {
            Tok::Punct('#') => {
                if let Some(consumed) = attribute_span(toks, i) {
                    if attr_marks_test(&toks[i..i + consumed]) {
                        armed = true;
                    }
                    i += consumed;
                    continue;
                }
            }
            Tok::Punct('{') => {
                if armed {
                    test_regions.push(depth);
                    armed = false;
                }
                depth += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if test_regions.last() == Some(&depth) {
                    test_regions.pop();
                }
            }
            Tok::Punct(';') => {
                // `#[cfg(test)] use …;` — the attribute never opens a
                // block; disarm so an unrelated later `{` is not tagged.
                armed = false;
            }
            Tok::Ident(id) => {
                let in_test = ctx.is_test_file || !test_regions.is_empty();

                // --- P2: partial_cmp(..).unwrap() / .expect(..) -------
                if id == "partial_cmp" && is_method_call(toks, i) {
                    if let Some((end, panicky)) = call_then_panicky(toks, i) {
                        if panicky {
                            claimed.push(end); // the unwrap/expect ident
                            push(
                                line,
                                "P2",
                                "NaN-unsafe comparison: `partial_cmp(..).unwrap()` panics on NaN; \
                                 use `f64::total_cmp` (or handle the `None`)"
                                    .into(),
                                &mut raw,
                            );
                        }
                    }
                }

                // --- D1: std HashMap/HashSet ---------------------------
                if ctx.d1_applies && (id == "HashMap" || id == "HashSet") {
                    push(
                        line,
                        "D1",
                        format!(
                            "`{id}` iteration order is seeded per process and can leak into \
                             outcomes; use `Dense{0}`/`LinkMatrix` (id-keyed hot paths) or \
                             `BTree{0}`, or waive with a proof iteration order never escapes",
                            &id[4..]
                        ),
                        &mut raw,
                    );
                }

                // --- D2: ambient nondeterminism ------------------------
                if D2_IDENTS.iter().any(|d| d == id) {
                    push(
                        line,
                        "D2",
                        format!(
                            "`{id}` injects ambient nondeterminism; derive randomness from \
                                 the experiment seed (`rngutil::rng_for`)"
                        ),
                        &mut raw,
                    );
                }
                if let Some((_, b)) = D2_PATHS.iter().find(|(a, _)| a == id) {
                    if path_member_is(toks, i, b) {
                        push(
                            line,
                            "D2",
                            format!(
                                "`{id}::{b}` reads ambient state (clock/OS entropy); simulation \
                                 code must use `SimTime` / seeded RNGs"
                            ),
                            &mut raw,
                        );
                    }
                }

                // --- P1: panics in non-test router/simulator code ------
                if ctx.p1_applies && !in_test {
                    if P1_MACROS.iter().any(|m| m == id) && next_is(toks, i, '!') {
                        push(
                            line,
                            "P1",
                            format!(
                                "`{id}!` in non-test {} code; return a typed error or make \
                                     the invariant unrepresentable",
                                ctx.crate_name
                            ),
                            &mut raw,
                        );
                    }
                    if P1_METHODS.iter().any(|m| m == id)
                        && is_method_call(toks, i)
                        && next_is(toks, i, '(')
                        && !claimed.contains(&i)
                    {
                        push(
                            line,
                            "P1",
                            format!(
                                "`.{id}()` in non-test {} code; propagate the error or \
                                     carry the invariant in the type",
                                ctx.crate_name
                            ),
                            &mut raw,
                        );
                    }
                }

                // --- C1: parallel-readiness ----------------------------
                if ctx.c1_applies && !in_test {
                    c1_checks(toks, i, id, line, ctx, &mut raw, &push);
                }
            }
            _ => {}
        }
        i += 1;
    }

    // --- S1: codec completeness over the item model --------------------
    if !ctx.is_test_file {
        s1_codec_completeness(fa, &mut raw);
    }

    raw
}

/// The `C1` pack, dispatched on one ident token.
fn c1_checks(
    toks: &[SpannedTok],
    i: usize,
    id: &str,
    line: u32,
    ctx: &FileContext,
    raw: &mut Vec<Diagnostic>,
    push: &impl Fn(u32, &str, String, &mut Vec<Diagnostic>),
) {
    match id {
        "static" => {
            // (`'static` lifetimes lex as `Tok::Lifetime`, never here.)
            if let Some(SpannedTok {
                tok: Tok::Ident(next),
                ..
            }) = toks.get(i + 1)
            {
                if next == "mut" {
                    push(
                        line,
                        "C1",
                        format!(
                            "`static mut` is shared mutable state; the sharded engine \
                             (ROADMAP item 1) needs all {} mutation owned per shard — \
                             thread state through explicit parameters",
                            ctx.crate_name
                        ),
                        raw,
                    );
                } else if let Some(cell) = static_interior_mutable(toks, i) {
                    push(
                        line,
                        "C1",
                        format!(
                            "`static` with interior mutability (`{cell}`) is cross-shard \
                             shared state; pass state explicitly or waive with a proof \
                             it never affects outcomes"
                        ),
                        raw,
                    );
                }
            }
        }
        "thread_local" if next_is(toks, i, '!') => {
            push(
                line,
                "C1",
                "`thread_local!` state diverges across shard layouts; derive per-shard \
                 state explicitly from the run inputs"
                    .into(),
                raw,
            );
        }
        "thread" if !ctx.c1_thread_sanctioned => {
            if let Some(m) = C1_THREAD_MEMBERS
                .iter()
                .find(|m| path_member_is(toks, i, m))
            {
                push(
                    line,
                    "C1",
                    format!(
                        "`thread::{m}` is ad-hoc threading; parallelism must go through \
                         the deterministic shard fan-out so event order stays reproducible"
                    ),
                    raw,
                );
            }
        }
        _ if C1_IDENTS.contains(&id) && !ctx.c1_thread_sanctioned => {
            push(
                line,
                "C1",
                format!(
                    "`{id}` introduces scheduling-order nondeterminism; outcome-affecting \
                     parallelism must use the deterministic shard merge"
                ),
                raw,
            );
        }
        "sum" | "product"
            if is_method_call(toks, i)
                && turbofish_is_float(toks, i)
                && unordered_source_behind(toks, i) =>
        {
            push(
                line,
                "C1",
                format!(
                    "float `.{id}()` over a non-index-ordered iterator; float addition is \
                     not associative, so a sharded split reorders the result — collect \
                     into an index-ordered Vec first (or waive with an ordering proof)"
                ),
                raw,
            );
        }
        "fold"
            if is_method_call(toks, i)
                && next_is(toks, i, '(')
                && fold_init_is_float(toks, i)
                && unordered_source_behind(toks, i) =>
        {
            push(
                line,
                "C1",
                "float `.fold(..)` over a non-index-ordered iterator; float addition is \
                 not associative, so a sharded split reorders the result — collect into \
                 an index-ordered Vec first (or waive with an ordering proof)"
                    .into(),
                raw,
            );
        }
        _ => {}
    }
}

/// From a `static` keyword, look ahead (bounded, to the `=` or `;`) for
/// an interior-mutability type name.
fn static_interior_mutable(toks: &[SpannedTok], i: usize) -> Option<&'static str> {
    for t in toks.iter().take((i + 64).min(toks.len())).skip(i + 1) {
        match &t.tok {
            Tok::Punct('=') | Tok::Punct(';') | Tok::Punct('{') => return None,
            Tok::Ident(id) => {
                if let Some(cell) = C1_INTERIOR_MUTABLE.iter().find(|c| *c == id) {
                    return Some(cell);
                }
            }
            _ => {}
        }
    }
    None
}

/// `.sum::<f64>()` / `.product::<f32>()` turbofish detection.
fn turbofish_is_float(toks: &[SpannedTok], i: usize) -> bool {
    path_member_is(toks, i, "f64") || path_member_is(toks, i, "f32") || {
        // `::<f64>` — the member check expects an ident at i+3; with a
        // turbofish there is a `<` first.
        toks.get(i + 1).is_some_and(|t| t.tok == Tok::Punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.tok == Tok::Punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.tok == Tok::Punct('<'))
            && toks
                .get(i + 4)
                .is_some_and(|t| matches!(&t.tok, Tok::Ident(x) if x == "f64" || x == "f32"))
    }
}

/// Whether `.fold(` starts with a float accumulator (`0.0`, `-1.5`,
/// `(0.0, …)`, `0f64`).
fn fold_init_is_float(toks: &[SpannedTok], i: usize) -> bool {
    for t in toks.iter().take((i + 6).min(toks.len())).skip(i + 2) {
        match &t.tok {
            Tok::Num(_) => return t.tok.is_float(),
            Tok::Punct('-') | Tok::Punct('(') => continue,
            _ => return false,
        }
    }
    false
}

/// Backward scan (bounded to the statement start) for an iterator
/// source with no stable index order feeding this reduction.
fn unordered_source_behind(toks: &[SpannedTok], i: usize) -> bool {
    let floor = i.saturating_sub(96);
    for j in (floor..i).rev() {
        match &toks[j].tok {
            Tok::Punct(';') | Tok::Punct('{') => return false,
            Tok::Ident(id)
                if C1_UNORDERED_SOURCES.iter().any(|s| s == id) && is_method_call(toks, j) =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Which codec direction a fn name serves.
#[derive(Clone, Copy, PartialEq)]
enum Dir {
    Encode,
    Decode,
}

/// Whether `name` is a codec fn for `dir`. Generic closure-driven
/// codecs (`encode_with`/`decode_with`) are excluded: their fields
/// travel through caller-supplied closures, not the fn body.
fn is_codec_name(name: &str, dir: Dir) -> bool {
    let (exact, state, prefix) = match dir {
        Dir::Encode => ("encode", "save_state", "encode_"),
        Dir::Decode => ("decode", "restore_state", "decode_"),
    };
    name == exact || name == state || (name.starts_with(prefix) && !name.ends_with("_with"))
}

/// Codec fns bound to a struct: methods on it (any codec-ish name) plus
/// same-file free fns named exactly `encode_<snake>`/`decode_<snake>`.
fn codec_fns<'a>(fa: &'a FileAnalysis, st: &StructItem, dir: Dir) -> Vec<&'a FnItem> {
    let free_name = format!(
        "{}{}",
        match dir {
            Dir::Encode => "encode_",
            Dir::Decode => "decode_",
        },
        snake(&st.name)
    );
    fa.items
        .fns
        .iter()
        .filter(|f| match &f.owner {
            Some(owner) => owner == &st.name && is_codec_name(&f.name, dir),
            None => f.name == free_name,
        })
        .collect()
}

/// Union of idents over the body spans of a fn set.
fn union_idents<'a>(fa: &'a FileAnalysis, fns: &[&FnItem]) -> BTreeSet<&'a str> {
    let mut out = BTreeSet::new();
    for f in fns {
        for t in &fa.lexed.tokens[f.body.clone()] {
            if let Tok::Ident(id) = &t.tok {
                out.insert(id.as_str());
            }
        }
    }
    out
}

/// `S1`: every field of a struct with codec fns must be referenced in
/// each direction that exists, else a checkpoint round-trip silently
/// drops or corrupts it.
fn s1_codec_completeness(fa: &FileAnalysis, raw: &mut Vec<Diagnostic>) {
    for st in &fa.items.structs {
        if st.fields.is_empty() {
            continue;
        }
        let enc = codec_fns(fa, st, Dir::Encode);
        let dec = codec_fns(fa, st, Dir::Decode);
        if enc.is_empty() && dec.is_empty() {
            continue;
        }
        let enc_ids = union_idents(fa, &enc);
        let dec_ids = union_idents(fa, &dec);
        let fn_list = |fns: &[&FnItem]| {
            fns.iter()
                .map(|f| format!("`{}`", f.name))
                .collect::<Vec<_>>()
                .join(", ")
        };
        for field in &st.fields {
            if field.name.starts_with('_') {
                continue;
            }
            let miss_enc = !enc.is_empty() && !enc_ids.contains(field.name.as_str());
            let miss_dec = !dec.is_empty() && !dec_ids.contains(field.name.as_str());
            if !(miss_enc || miss_dec) {
                continue;
            }
            let missing = match (miss_enc, miss_dec) {
                (true, true) => format!(
                    "encode ({}) or decode ({}) paths",
                    fn_list(&enc),
                    fn_list(&dec)
                ),
                (true, false) => format!("encode path ({})", fn_list(&enc)),
                (false, true) => format!("decode path ({})", fn_list(&dec)),
                _ => unreachable!(),
            };
            raw.push(Diagnostic {
                file: fa.file.clone(),
                line: field.line,
                rule: "S1".into(),
                message: format!(
                    "field `{}` of `{}` is not referenced by its {missing}; a checkpoint \
                     round-trip would silently drop it — update the codec or waive here \
                     stating how the field is rebuilt",
                    field.name, st.name
                ),
            });
        }
    }
}

/// Resolution state of one `X1` binding, for the self-check that the
/// live bindings never silently rot away wholesale.
#[derive(Debug)]
pub struct BindingStatus {
    /// Human-readable binding name, e.g. `SimEvent ↔ KIND_TAGS`.
    pub desc: String,
    /// All named pieces were found in the analysed workspace.
    pub resolved: bool,
}

/// Find fns matching a `"Owner::name"` / bare-name spec (live files
/// only — test helpers must never satisfy a schema binding).
fn fn_matches<'a>(analyses: &'a [FileAnalysis], spec: &str) -> Vec<(&'a FileAnalysis, &'a FnItem)> {
    let (owner, name) = match spec.split_once("::") {
        Some((o, n)) => (Some(o), n),
        None => (None, spec),
    };
    let mut out = Vec::new();
    for fa in analyses {
        if fa.ctx.is_test_file {
            continue;
        }
        for f in &fa.items.fns {
            if f.name == name && f.owner.as_deref() == owner {
                out.push((fa, f));
            }
        }
    }
    out
}

/// Cross-file rules (`X1` schema exhaustiveness, `X0` binding rot),
/// *before* waivers.
pub fn cross_file_rules(analyses: &[FileAnalysis], cfg: &Config) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    for b in &cfg.enum_bindings {
        check_enum_binding(analyses, b, &mut raw);
    }
    for b in &cfg.field_bindings {
        check_field_binding(analyses, b, &mut raw);
    }
    raw
}

/// Per-binding resolution report (see [`BindingStatus`]).
pub fn binding_report(analyses: &[FileAnalysis], cfg: &Config) -> Vec<BindingStatus> {
    let mut out = Vec::new();
    for b in &cfg.enum_bindings {
        let enum_ok = find_enum(analyses, &b.enum_name).is_some();
        let const_ok = find_const(analyses, &b.tags_const).is_some();
        let fns_ok = b.fns.iter().all(|s| !fn_matches(analyses, s).is_empty());
        out.push(BindingStatus {
            desc: format!("{} ↔ {}", b.enum_name, b.tags_const),
            resolved: enum_ok && const_ok && fns_ok,
        });
    }
    for b in &cfg.field_bindings {
        let struct_ok = find_struct(analyses, &b.struct_name).is_some();
        let fn_ok = !fn_matches(analyses, &b.fn_name).is_empty();
        out.push(BindingStatus {
            desc: format!("{} ↔ {}", b.struct_name, b.fn_name),
            resolved: struct_ok && fn_ok,
        });
    }
    out
}

fn find_enum<'a>(
    analyses: &'a [FileAnalysis],
    name: &str,
) -> Option<(&'a FileAnalysis, &'a crate::items::EnumItem)> {
    analyses
        .iter()
        .filter(|fa| !fa.ctx.is_test_file)
        .find_map(|fa| {
            fa.items
                .enums
                .iter()
                .find(|e| e.name == name)
                .map(|e| (fa, e))
        })
}

fn find_struct<'a>(
    analyses: &'a [FileAnalysis],
    name: &str,
) -> Option<(&'a FileAnalysis, &'a StructItem)> {
    analyses
        .iter()
        .filter(|fa| !fa.ctx.is_test_file)
        .find_map(|fa| {
            fa.items
                .structs
                .iter()
                .find(|s| s.name == name)
                .map(|s| (fa, s))
        })
}

fn find_const<'a>(
    analyses: &'a [FileAnalysis],
    name: &str,
) -> Option<(&'a FileAnalysis, &'a crate::items::ConstItem)> {
    analyses
        .iter()
        .filter(|fa| !fa.ctx.is_test_file)
        .find_map(|fa| {
            fa.items
                .consts
                .iter()
                .find(|c| c.name == name)
                .map(|c| (fa, c))
        })
}

fn check_enum_binding(
    analyses: &[FileAnalysis],
    b: &crate::config::EnumTagBinding,
    raw: &mut Vec<Diagnostic>,
) {
    let en = find_enum(analyses, &b.enum_name);
    let tags = find_const(analyses, &b.tags_const);
    let fns: Vec<(&str, Vec<(&FileAnalysis, &FnItem)>)> = b
        .fns
        .iter()
        .map(|s| (s.as_str(), fn_matches(analyses, s)))
        .collect();
    let resolved = usize::from(en.is_some())
        + usize::from(tags.is_some())
        + fns.iter().filter(|(_, m)| !m.is_empty()).count();
    if resolved == 0 {
        // Nothing in this tree knows the binding (e.g. fixture
        // workspaces): silently out of scope.
        return;
    }
    // A partially-resolved binding is itself a finding: a rename must
    // update the binding, not quietly disable the rule.
    let anchor = en
        .map(|(fa, e)| (fa.file.clone(), e.line))
        .or_else(|| tags.map(|(fa, c)| (fa.file.clone(), c.line)))
        .or_else(|| {
            fns.iter()
                .find_map(|(_, m)| m.first().map(|(fa, f)| (fa.file.clone(), f.line)))
        })
        .expect("resolved > 0");
    let mut x0 = |what: String| {
        raw.push(Diagnostic {
            file: anchor.0.clone(),
            line: anchor.1,
            rule: "X0".into(),
            message: format!(
                "schema binding `{} ↔ {}` is half-resolved: {what} was not found — \
                 update the binding in detlint's Config alongside the rename",
                b.enum_name, b.tags_const
            ),
        });
    };
    let Some((efa, en)) = en else {
        x0(format!("enum `{}`", b.enum_name));
        return;
    };
    let Some((cfa, tags)) = tags else {
        x0(format!("const `{}`", b.tags_const));
        return;
    };
    for (spec, m) in &fns {
        if m.is_empty() {
            x0(format!("fn `{spec}`"));
        }
    }

    // Tag table must stay strictly sorted (flat per-kind counters are
    // iterated in tag order; binary searches rely on it).
    if !tags.strs.windows(2).all(|w| w[0] < w[1]) {
        raw.push(Diagnostic {
            file: cfa.file.clone(),
            line: tags.line,
            rule: "X1".into(),
            message: format!(
                "tag table `{}` is not strictly sorted; kind indices are positions in \
                 this table, so order is part of the checkpoint format",
                b.tags_const
            ),
        });
    }

    // Variants ↔ tags must be bijective under snake_case.
    let tag_set: BTreeSet<&str> = tags.strs.iter().map(String::as_str).collect();
    let variant_tags: BTreeSet<String> = en.variants.iter().map(|v| snake(&v.name)).collect();
    for v in &en.variants {
        if !tag_set.contains(snake(&v.name).as_str()) {
            raw.push(Diagnostic {
                file: efa.file.clone(),
                line: v.line,
                rule: "X1".into(),
                message: format!(
                    "variant `{}::{}` has no `{}` entry `{}`; every event kind needs a \
                     stable tag or per-kind counters and codecs silently disagree",
                    b.enum_name,
                    v.name,
                    b.tags_const,
                    snake(&v.name)
                ),
            });
        }
    }
    for t in &tags.strs {
        if !variant_tags.contains(t.as_str()) {
            raw.push(Diagnostic {
                file: cfa.file.clone(),
                line: tags.line,
                rule: "X1".into(),
                message: format!(
                    "`{}` entry `{t}` matches no `{}` variant; remove it or add the \
                     variant — orphan tags shift every kind index after them",
                    b.tags_const, b.enum_name
                ),
            });
        }
    }

    // Every bound fn must mention every variant (exhaustive matches
    // over `SimEvent` are what keep `kind_index`/codec/Display honest).
    for (spec, matches) in &fns {
        for (ffa, f) in matches {
            let ids = union_idents(ffa, &[f]);
            for v in &en.variants {
                if !ids.contains(v.name.as_str()) {
                    raw.push(Diagnostic {
                        file: ffa.file.clone(),
                        line: f.line,
                        rule: "X1".into(),
                        message: format!(
                            "`{spec}` does not mention variant `{}::{}`; this fn is bound \
                             as kind-exhaustive, so a missing arm breaks the schema",
                            b.enum_name, v.name
                        ),
                    });
                }
            }
        }
    }
}

fn check_field_binding(
    analyses: &[FileAnalysis],
    b: &crate::config::FieldLiteralBinding,
    raw: &mut Vec<Diagnostic>,
) {
    let st = find_struct(analyses, &b.struct_name);
    let fns = fn_matches(analyses, &b.fn_name);
    let resolved = usize::from(st.is_some()) + usize::from(!fns.is_empty());
    if resolved == 0 {
        return;
    }
    if st.is_none() || fns.is_empty() {
        let (file, line) = st
            .map(|(fa, s)| (fa.file.clone(), s.line))
            .or_else(|| fns.first().map(|(fa, f)| (fa.file.clone(), f.line)))
            .expect("resolved > 0");
        let what = if st.is_none() {
            format!("struct `{}`", b.struct_name)
        } else {
            format!("fn `{}`", b.fn_name)
        };
        raw.push(Diagnostic {
            file,
            line,
            rule: "X0".into(),
            message: format!(
                "schema binding `{} ↔ {}` is half-resolved: {what} was not found — \
                 update the binding in detlint's Config alongside the rename",
                b.struct_name, b.fn_name
            ),
        });
        return;
    }
    let (_, st) = st.expect("checked");
    for (ffa, f) in &fns {
        let ids = union_idents(ffa, &[f]);
        let mut words: BTreeSet<&str> = BTreeSet::new();
        for t in &ffa.lexed.tokens[f.body.clone()] {
            if let Tok::Str(s) = &t.tok {
                words.extend(s.split(|c: char| !c.is_alphanumeric() && c != '_'));
            }
        }
        for field in &st.fields {
            if field.name.starts_with('_') {
                continue;
            }
            let in_literal = words.contains(field.name.as_str());
            let in_code = ids.contains(field.name.as_str());
            if in_literal && in_code {
                continue;
            }
            let gap = match (in_literal, in_code) {
                (false, false) => "neither its schema strings nor its code",
                (false, true) => "its schema strings (column/key missing)",
                (true, false) => "its code (value never written)",
                _ => unreachable!(),
            };
            raw.push(Diagnostic {
                file: ffa.file.clone(),
                line: f.line,
                rule: "X1".into(),
                message: format!(
                    "`{}` emits the `{}` schema but field `{}` appears in {gap}; \
                     extend the writer or waive here explaining the omission",
                    b.fn_name, b.struct_name, field.name
                ),
            });
        }
    }
}

/// Final pass: report stale waivers (`W1`), apply waivers (`W0`/`W1`
/// are unwaivable), and sort deterministically.
pub fn finalize(analyses: &[FileAnalysis], mut raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    // A waiver is stale when its rule does not fire on its line in the
    // *pre-waiver* diagnostics: either the code was fixed or it moved.
    let mut stale = Vec::new();
    for fa in analyses {
        for (line, waivers) in &fa.lexed.waivers {
            for w in waivers {
                let used = raw
                    .iter()
                    .any(|d| d.rule == w.rule && d.line == *line && d.file == fa.file);
                if !used {
                    stale.push(Diagnostic {
                        file: fa.file.clone(),
                        line: *line,
                        rule: "W1".into(),
                        message: format!(
                            "stale waiver: `{}` does not fire on this line (fixed, or the \
                             code moved out from under the comment); delete the waiver",
                            w.rule
                        ),
                    });
                }
            }
        }
    }
    raw.extend(stale);

    raw.retain(|d| {
        if d.rule == "W0" || d.rule == "W1" {
            return true; // waiver hygiene cannot be waived
        }
        let waived = analyses.iter().any(|fa| {
            fa.file == d.file
                && fa
                    .lexed
                    .waivers
                    .get(&d.line)
                    .is_some_and(|ws| ws.iter().any(|w| w.rule == d.rule))
        });
        !waived
    });

    // Deterministic output order: multi-rule hits on one line must not
    // depend on rule-pack evaluation order.
    raw.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    raw
}

/// `.ident` — the token before is a dot (method call, not a free fn).
fn is_method_call(toks: &[SpannedTok], i: usize) -> bool {
    i > 0 && toks[i - 1].tok == Tok::Punct('.')
}

/// The token after `i` is the given punct.
fn next_is(toks: &[SpannedTok], i: usize, p: char) -> bool {
    toks.get(i + 1).is_some_and(|t| t.tok == Tok::Punct(p))
}

/// `ident :: member` — path access to a specific member.
fn path_member_is(toks: &[SpannedTok], i: usize, member: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.tok == Tok::Punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.tok == Tok::Punct(':'))
        && toks
            .get(i + 3)
            .is_some_and(|t| t.tok == Tok::Ident(member.to_string()))
}

/// From an ident at `i` followed by a call `(...)`, find whether the call
/// is chained into `.unwrap` / `.expect`. Returns the index of that
/// trailing method ident and whether it is panicky.
fn call_then_panicky(toks: &[SpannedTok], i: usize) -> Option<(usize, bool)> {
    if !next_is(toks, i, '(') {
        return None;
    }
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    // After the close paren: `.unwrap` / `.expect` ?
    if toks.get(j + 1).is_some_and(|t| t.tok == Tok::Punct('.')) {
        if let Some(SpannedTok {
            tok: Tok::Ident(m), ..
        }) = toks.get(j + 2)
        {
            if m == "unwrap" || m == "expect" {
                return Some((j + 2, true));
            }
        }
    }
    Some((j, false))
}

/// An attribute starting at `#`: return how many tokens it spans
/// (`#` `[` … `]`), or `None` if this `#` is not an attribute.
fn attribute_span(toks: &[SpannedTok], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.tok == Tok::Punct('!')) {
        j += 1; // inner attribute `#![…]`
    }
    if !toks.get(j).is_some_and(|t| t.tok == Tok::Punct('[')) {
        return None;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j - i + 1);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, EnumTagBinding, FieldLiteralBinding};
    use std::path::PathBuf;

    fn scan(path: &str, src: &str) -> Vec<Diagnostic> {
        let rel = PathBuf::from(path);
        let ctx = FileContext::classify(&rel, &Config::default());
        scan_file(&rel, &ctx, src)
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule.as_str()).collect()
    }

    fn analysis(path: &str, src: &str) -> FileAnalysis {
        let rel = PathBuf::from(path);
        let ctx = FileContext::classify(&rel, &Config::default());
        FileAnalysis::new(&rel, ctx, src)
    }

    #[test]
    fn d1_fires_only_in_scoped_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules(&scan("crates/sim/src/lib.rs", src)), vec!["D1"]);
        assert!(scan("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn p1_skips_cfg_test_modules_and_test_files() {
        let src = concat!(
            "fn live() { x.unwrap(); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { y.unwrap(); panic!(\"in test\"); }\n",
            "}\n",
            "fn live2() { panic!(\"boom\"); }\n",
        );
        let d = scan("crates/dtnflow/src/x.rs", src);
        assert_eq!(rules(&d), vec!["P1", "P1"]);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 6);
        assert!(scan("crates/dtnflow/tests/x.rs", src).is_empty());
    }

    #[test]
    fn p2_beats_p1_and_fires_everywhere() {
        let src = "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        // In a P1 crate the unwrap is reported once, as P2.
        assert_eq!(rules(&scan("crates/sim/src/x.rs", src)), vec!["P2"]);
        // Outside P1 scope — and even in test files — P2 still fires.
        assert_eq!(rules(&scan("crates/bench/src/x.rs", src)), vec!["P2"]);
        assert_eq!(rules(&scan("crates/bench/tests/x.rs", src)), vec!["P2"]);
        // total_cmp is the fix and is clean.
        let fixed = "fn f() { v.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(scan("crates/sim/src/x.rs", fixed).is_empty());
        // partial_cmp without a panicky tail is fine.
        let handled = "fn f() { a.partial_cmp(b).unwrap_or(Ordering::Equal); }\n";
        assert!(scan("crates/sim/src/x.rs", handled).is_empty());
    }

    #[test]
    fn d2_catches_clocks_and_rngs() {
        let src = concat!(
            "let t = Instant::now();\n",
            "let s = std::time::SystemTime::now();\n",
            "let r = rand::random::<f64>();\n",
            "let g = thread_rng();\n",
        );
        let d = scan("crates/mobility/src/x.rs", src);
        assert_eq!(rules(&d), vec!["D2", "D2", "D2", "D2"]);
    }

    #[test]
    fn waivers_suppress_exactly_their_rule_and_line() {
        let src = concat!(
            "let t = Instant::now(); // detlint: allow(D2, reason = \"bench wall-clock\")\n",
            "let u = Instant::now(); // detlint: allow(P1, reason = \"wrong rule\")\n",
            "let v = Instant::now(); // detlint: allow(D2)\n",
        );
        let d = scan("crates/bench/src/x.rs", src);
        // Line 1 waived (used → no W1); line 2's wrong-rule waiver leaves
        // the D2 standing and is itself stale (W1); line 3's malformed
        // waiver leaves the D2 standing and is reported (W0).
        assert_eq!(rules(&d), vec!["D2", "W1", "D2", "W0"]);
        assert_eq!(d.iter().filter(|x| x.rule == "D2").count(), 2);
    }

    #[test]
    fn own_line_waiver_covers_the_next_line() {
        let src = concat!(
            "// detlint: allow(D2, reason = \"quarantined wall-clock helper\")\n",
            "let t = Instant::now();\n",
            "let u = Instant::now();\n",
        );
        let d = scan("crates/bench/src/x.rs", src);
        // Line 2 is waived by the comment above it; line 3 is not.
        assert_eq!(rules(&d), vec!["D2"]);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn stale_waiver_is_w1_and_unwaivable() {
        let src = "fn f() {} // detlint: allow(D2, reason = \"nothing here fires D2\")\n";
        let d = scan("crates/sim/src/x.rs", src);
        assert_eq!(rules(&d), vec!["W1"]);
        assert_eq!(d[0].line, 1);
        // Waiving the W1 itself does not work: waiver hygiene rules
        // would otherwise waive each other into silence.
        let src2 = concat!(
            "// detlint: allow(W1, reason = \"please ignore\")\n",
            "fn f() {} // detlint: allow(D2, reason = \"stale\")\n",
        );
        let d2 = scan("crates/sim/src/x.rs", src2);
        assert!(rules(&d2).contains(&"W1"));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = concat!(
            "// HashMap Instant::now() unwrap() panic!\n",
            "let s = \"HashMap thread_rng() partial_cmp\";\n",
            "let r = r#\"SystemTime::now()\"#;\n",
            "/* todo! unreachable! */\n",
        );
        assert!(scan("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_like_names_are_not_unwrap() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.expect_err(\"e\"); }\n";
        assert!(scan("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_still_counts_as_live_code() {
        let src = concat!(
            "#[cfg(not(test))]\n",
            "mod live {\n",
            "    fn f() { x.unwrap(); }\n",
            "}\n",
        );
        assert_eq!(rules(&scan("crates/sim/src/x.rs", src)), vec!["P1"]);
    }

    #[test]
    fn multiline_p2_is_matched() {
        let src = concat!(
            "links.sort_by(|a, b| {\n",
            "    b.2.partial_cmp(&a.2)\n",
            "        .unwrap()\n",
            "        .then(a.0.cmp(&b.0))\n",
            "});\n",
        );
        let d = scan("crates/mobility/src/x.rs", src);
        assert_eq!(rules(&d), vec!["P2"]);
        assert_eq!(d[0].line, 2, "anchored at the partial_cmp call");
    }

    // --- C1 ------------------------------------------------------------

    #[test]
    fn c1_flags_shared_mutable_statics() {
        let d = scan(
            "crates/sim/src/x.rs",
            concat!(
                "static mut SHARED: u64 = 0;\n",
                "static CACHE: Mutex<Vec<u64>> = Mutex::new(Vec::new());\n",
                "static COUNT: AtomicU64 = AtomicU64::new(0);\n",
                "thread_local! { static TL: RefCell<u64> = RefCell::new(0); }\n",
            ),
        );
        // Line 4: thread_local! plus the interior-mutable static inside.
        assert_eq!(rules(&d), vec!["C1", "C1", "C1", "C1", "C1"]);
        // Plain immutable statics and `'static` lifetimes are fine.
        let ok = concat!(
            "static NAMES: [&str; 2] = [\"a\", \"b\"];\n",
            "fn f(s: &'static str) -> &'static str { s }\n",
        );
        assert!(scan("crates/sim/src/x.rs", ok).is_empty());
    }

    #[test]
    fn c1_flags_adhoc_threading_but_not_in_tests() {
        let src = concat!(
            "fn f() { std::thread::spawn(|| {}); }\n",
            "fn g() { let (tx, rx) = mpsc::channel(); }\n",
            "fn h() { rayon::join(a, b); }\n",
        );
        let d = scan("crates/sim/src/x.rs", src);
        assert_eq!(rules(&d), vec!["C1", "C1", "C1"]);
        // Out of C1 scope (bench) and in test files: allowed.
        assert!(scan("crates/bench/src/x.rs", src).is_empty());
        assert!(scan("crates/sim/tests/x.rs", src).is_empty());
    }

    #[test]
    fn c1_flags_unordered_float_reduction_only() {
        // Unordered source + float reduction: fires.
        let bad = "fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().sum::<f64>() }\n";
        assert_eq!(rules(&scan("crates/sim/src/x.rs", bad)), vec!["C1"]);
        let bad_fold = "fn f(m: &M) -> f64 { m.values().fold(0.0, |a, b| a + b) }\n";
        assert_eq!(rules(&scan("crates/sim/src/x.rs", bad_fold)), vec!["C1"]);
        // Index-ordered source: fine.
        let ok = "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n";
        assert!(scan("crates/sim/src/x.rs", ok).is_empty());
        // Integer reduction over an unordered source: associative, fine.
        let ok_int = "fn f(m: &M) -> u64 { m.values().sum::<u64>() }\n";
        assert!(scan("crates/sim/src/x.rs", ok_int).is_empty());
        let ok_int_fold = "fn f(m: &M) -> u64 { m.values().fold(0, |a, b| a + b) }\n";
        assert!(scan("crates/sim/src/x.rs", ok_int_fold).is_empty());
    }

    // --- S1 ------------------------------------------------------------

    #[test]
    fn s1_flags_field_missing_from_codec() {
        let src = concat!(
            "pub struct Blob {\n",
            "    pub a: u32,\n",
            "    pub b: u32,\n",
            "}\n",
            "impl Blob {\n",
            "    pub fn encode(&self, w: &mut W) { w.put_u32(self.a); }\n",
            "    pub fn decode(r: &mut R) -> Blob { Blob { a: r.u32(), b: 0 } }\n",
            "}\n",
        );
        let d = scan("crates/snapshot/src/x.rs", src);
        assert_eq!(rules(&d), vec!["S1"]);
        assert_eq!(d[0].line, 3, "anchored at the field declaration");
        assert!(d[0].message.contains("`b`") && d[0].message.contains("encode"));
    }

    #[test]
    fn s1_checks_each_direction_independently() {
        // Only an encode side exists (decode is rebuilt elsewhere):
        // missing fields are reported against encode only.
        let src = concat!(
            "pub struct State { pub x: u32, pub y: u32 }\n",
            "impl State {\n",
            "    pub fn save_state(&self, w: &mut W) { w.put_u32(self.x); }\n",
            "}\n",
        );
        let d = scan("crates/sim/src/x.rs", src);
        assert_eq!(rules(&d), vec!["S1"]);
        assert!(d[0].message.contains("`y`"));
        assert!(d[0].message.contains("save_state"));
    }

    #[test]
    fn s1_unions_split_codecs_and_binds_free_fns() {
        // Codec split across helpers: the union covers all fields.
        let src = concat!(
            "pub struct NodeState { pub id: u32, pub seen: Vec<u32> }\n",
            "fn encode_node_state(s: &NodeState, w: &mut W) { w.put(s.id); w.put(&s.seen); }\n",
            "fn decode_node_state(r: &mut R) -> NodeState {\n",
            "    NodeState { id: r.u32(), seen: r.vec() }\n",
            "}\n",
        );
        assert!(scan("crates/dtnflow/src/x.rs", src).is_empty());
        // Generic closure-driven codecs are exempt (`*_with`).
        let dense = concat!(
            "pub struct DenseMap { pub slots: Vec<u32>, pub live: u32 }\n",
            "impl DenseMap {\n",
            "    pub fn encode_with(&self, w: &mut W, f: impl Fn(&T)) { f(&self.slots) }\n",
            "}\n",
        );
        assert!(scan("crates/dtnflow-core/src/x.rs", dense).is_empty());
    }

    #[test]
    fn s1_skips_structs_without_codecs_and_underscore_fields() {
        let src = "pub struct Plain { pub a: u32 }\nfn other() {}\n";
        assert!(scan("crates/sim/src/x.rs", src).is_empty());
        let underscore = concat!(
            "pub struct P { pub a: u32, _pad: u32 }\n",
            "impl P { pub fn encode(&self, w: &mut W) { w.put(self.a) } }\n",
        );
        assert!(scan("crates/sim/src/x.rs", underscore).is_empty());
    }

    // --- X1 ------------------------------------------------------------

    fn x1_config() -> Config {
        Config {
            enum_bindings: vec![EnumTagBinding {
                enum_name: "Ev".into(),
                tags_const: "TAGS".into(),
                fns: vec!["Ev::kind_index".into()],
            }],
            field_bindings: vec![FieldLiteralBinding {
                struct_name: "Row".into(),
                fn_name: "row_csv".into(),
            }],
            ..Config::default()
        }
    }

    fn x1_diags(src: &str) -> Vec<Diagnostic> {
        let fa = analysis("crates/obs/src/x.rs", src);
        let analyses = vec![fa];
        let raw = cross_file_rules(&analyses, &x1_config());
        finalize(&analyses, raw)
    }

    #[test]
    fn x1_catches_missing_tag_orphan_tag_and_unsorted_table() {
        let src = concat!(
            "pub enum Ev { Alpha, Gamma }\n",
            "pub const TAGS: [&str; 2] = [\"gamma\", \"alpha\"];\n", // unsorted
            "impl Ev {\n",
            "    pub fn kind_index(&self) -> usize {\n",
            "        match self { Ev::Alpha => 0, Ev::Gamma => 1 }\n",
            "    }\n",
            "}\n",
        );
        let d = x1_diags(src);
        assert_eq!(rules(&d), vec!["X1"], "unsorted table: {d:?}");
        // Bijection violations: Beta has no tag, `zeta` has no variant.
        let src2 = concat!(
            "pub enum Ev { Alpha, Beta }\n",
            "pub const TAGS: [&str; 2] = [\"alpha\", \"zeta\"];\n",
            "impl Ev {\n",
            "    pub fn kind_index(&self) -> usize {\n",
            "        match self { Ev::Alpha => 0, Ev::Beta => 1 }\n",
            "    }\n",
            "}\n",
        );
        let d2 = x1_diags(src2);
        assert_eq!(rules(&d2), vec!["X1", "X1"]);
        assert!(d2.iter().any(|x| x.message.contains("Beta")));
        assert!(d2.iter().any(|x| x.message.contains("zeta")));
    }

    #[test]
    fn x1_catches_non_exhaustive_bound_fn() {
        let src = concat!(
            "pub enum Ev { Alpha, Beta }\n",
            "pub const TAGS: [&str; 2] = [\"alpha\", \"beta\"];\n",
            "impl Ev {\n",
            "    pub fn kind_index(&self) -> usize {\n",
            "        match self { Ev::Alpha => 0, _ => 1 }\n", // Beta unnamed
            "    }\n",
            "}\n",
        );
        let d = x1_diags(src);
        assert_eq!(rules(&d), vec!["X1"]);
        assert!(d[0].message.contains("kind_index") && d[0].message.contains("Beta"));
    }

    #[test]
    fn x1_field_literal_binding_checks_strings_and_code() {
        let clean = concat!(
            "pub struct Row { pub gen: u32, pub lost: u32 }\n",
            "pub fn row_csv(r: &Row) -> String {\n",
            "    format!(\"gen,lost\\n{},{}\", r.gen, r.lost)\n",
            "}\n",
        );
        assert!(x1_diags(clean).is_empty());
        // Column missing from the header string → X1.
        let missing_col = concat!(
            "pub struct Row { pub gen: u32, pub lost: u32 }\n",
            "pub fn row_csv(r: &Row) -> String {\n",
            "    format!(\"gen\\n{},{}\", r.gen, r.lost)\n",
            "}\n",
        );
        let d = x1_diags(missing_col);
        assert_eq!(rules(&d), vec!["X1"]);
        assert!(d[0].message.contains("lost") && d[0].message.contains("column/key missing"));
    }

    #[test]
    fn x0_reports_half_resolved_bindings_but_skips_foreign_trees() {
        // Nothing resolves: out of scope (fixture trees hit this).
        assert!(x1_diags("pub fn unrelated() {}\n").is_empty());
        // Enum present but const renamed: X0, so the binding cannot rot.
        let renamed = concat!(
            "pub enum Ev { Alpha }\n",
            "pub const TAG_NAMES: [&str; 1] = [\"alpha\"];\n",
            "impl Ev { pub fn kind_index(&self) -> usize { match self { Ev::Alpha => 0 } } }\n",
        );
        let d = x1_diags(renamed);
        assert_eq!(rules(&d), vec!["X0"]);
        assert!(d[0].message.contains("TAGS"));
    }

    // --- ordering ------------------------------------------------------

    #[test]
    fn multi_rule_hits_on_one_line_sort_deterministically() {
        // One line fires D1, D2 and P1: output must be rule-sorted, not
        // pack-evaluation-ordered.
        let src = "fn f() { let m: HashMap<u32, u32> = x.unwrap(); thread_rng(); }\n";
        let d = scan("crates/sim/src/x.rs", src);
        assert_eq!(rules(&d), vec!["D1", "D2", "P1"]);
        // And a full-pipeline variant with two files out of name order.
        let fa_b = analysis("crates/sim/src/b.rs", "fn f() { x.unwrap(); }\n");
        let fa_a = analysis("crates/sim/src/a.rs", "fn g() { y.unwrap(); }\n");
        let analyses = vec![fa_b, fa_a];
        let mut raw = Vec::new();
        for fa in &analyses {
            raw.extend(file_rules(fa));
        }
        let out = finalize(&analyses, raw);
        let files: Vec<&str> = out.iter().map(|x| x.file.as_str()).collect();
        assert_eq!(files, vec!["crates/sim/src/a.rs", "crates/sim/src/b.rs"]);
    }
}
