//! The rule engine: matches rule patterns over the token stream, tracks
//! `#[cfg(test)]`/`#[test]` regions, and applies per-line waivers.

use crate::config::FileContext;
use crate::diag::Diagnostic;
use crate::lexer::{lex, SpannedTok, Tok};
use std::path::Path;

/// Idents that, called as macros (`ident!`), violate `P1`.
const P1_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Idents that, called as methods (`.ident(`), violate `P1`.
const P1_METHODS: &[&str] = &["unwrap", "expect"];

/// Bare idents that violate `D2` wherever they appear in code.
const D2_IDENTS: &[&str] = &["thread_rng", "RandomState", "DefaultHasher"];

/// `A::b` paths that violate `D2`.
const D2_PATHS: &[(&str, &str)] = &[
    ("Instant", "now"),
    ("SystemTime", "now"),
    ("rand", "random"),
    ("rand", "rng"),
];

/// Scan one file's source and return its diagnostics (unsorted).
pub fn scan_file(rel: &Path, ctx: &FileContext, src: &str) -> Vec<Diagnostic> {
    let file = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect::<Vec<_>>()
        .join("/");
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let mut raw: Vec<Diagnostic> = Vec::new();
    let push = |line: u32, rule: &str, message: String, raw: &mut Vec<Diagnostic>| {
        raw.push(Diagnostic {
            file: file.clone(),
            line,
            rule: rule.to_string(),
            message,
        });
    };

    // Malformed waivers are always reported: a waiver that silently
    // fails to parse would silently fail to waive.
    for (line, err) in &lexed.waiver_errors {
        push(
            *line,
            "W0",
            format!("malformed detlint waiver: {err}"),
            &mut raw,
        );
    }

    let mut depth: u32 = 0;
    // Brace depths at which a test region (a `#[cfg(test)]` mod or a
    // `#[test]` fn body) opened; inside any of them P1 is off.
    let mut test_regions: Vec<u32> = Vec::new();
    // A test-marking attribute was seen; the next `{` opens its region.
    let mut armed = false;
    // Token indices already claimed by a P2 match (so the trailing
    // `.unwrap(` is not double-reported under P1).
    let mut claimed: Vec<usize> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let SpannedTok { line, tok } = &toks[i];
        let line = *line;
        match tok {
            Tok::Punct('#') => {
                if let Some(consumed) = attribute_span(toks, i) {
                    if attribute_marks_test(&toks[i..i + consumed]) {
                        armed = true;
                    }
                    i += consumed;
                    continue;
                }
            }
            Tok::Punct('{') => {
                if armed {
                    test_regions.push(depth);
                    armed = false;
                }
                depth += 1;
            }
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if test_regions.last() == Some(&depth) {
                    test_regions.pop();
                }
            }
            Tok::Punct(';') => {
                // `#[cfg(test)] use …;` — the attribute never opens a
                // block; disarm so an unrelated later `{` is not tagged.
                armed = false;
            }
            Tok::Ident(id) => {
                let in_test = ctx.is_test_file || !test_regions.is_empty();

                // --- P2: partial_cmp(..).unwrap() / .expect(..) -------
                if id == "partial_cmp" && is_method_call(toks, i) {
                    if let Some((end, panicky)) = call_then_panicky(toks, i) {
                        if panicky {
                            claimed.push(end); // the unwrap/expect ident
                            push(
                                line,
                                "P2",
                                "NaN-unsafe comparison: `partial_cmp(..).unwrap()` panics on NaN; \
                                 use `f64::total_cmp` (or handle the `None`)"
                                    .into(),
                                &mut raw,
                            );
                        }
                    }
                }

                // --- D1: std HashMap/HashSet ---------------------------
                if ctx.d1_applies && (id == "HashMap" || id == "HashSet") {
                    push(
                        line,
                        "D1",
                        format!(
                            "`{id}` iteration order is seeded per process and can leak into \
                             outcomes; use `Dense{0}`/`LinkMatrix` (id-keyed hot paths) or \
                             `BTree{0}`, or waive with a proof iteration order never escapes",
                            &id[4..]
                        ),
                        &mut raw,
                    );
                }

                // --- D2: ambient nondeterminism ------------------------
                if D2_IDENTS.iter().any(|d| d == id) {
                    push(
                        line,
                        "D2",
                        format!(
                            "`{id}` injects ambient nondeterminism; derive randomness from \
                                 the experiment seed (`rngutil::rng_for`)"
                        ),
                        &mut raw,
                    );
                }
                if let Some((_, b)) = D2_PATHS.iter().find(|(a, _)| a == id) {
                    if path_member_is(toks, i, b) {
                        push(
                            line,
                            "D2",
                            format!(
                                "`{id}::{b}` reads ambient state (clock/OS entropy); simulation \
                                 code must use `SimTime` / seeded RNGs"
                            ),
                            &mut raw,
                        );
                    }
                }

                // --- P1: panics in non-test router/simulator code ------
                if ctx.p1_applies && !in_test {
                    if P1_MACROS.iter().any(|m| m == id) && next_is(toks, i, '!') {
                        push(
                            line,
                            "P1",
                            format!(
                                "`{id}!` in non-test {} code; return a typed error or make \
                                     the invariant unrepresentable",
                                ctx.crate_name
                            ),
                            &mut raw,
                        );
                    }
                    if P1_METHODS.iter().any(|m| m == id)
                        && is_method_call(toks, i)
                        && next_is(toks, i, '(')
                        && !claimed.contains(&i)
                    {
                        push(
                            line,
                            "P1",
                            format!(
                                "`.{id}()` in non-test {} code; propagate the error or \
                                     carry the invariant in the type",
                                ctx.crate_name
                            ),
                            &mut raw,
                        );
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    // Apply per-line waivers (never to W0 itself).
    raw.retain(|d| {
        d.rule == "W0"
            || !lexed
                .waivers
                .get(&d.line)
                .is_some_and(|ws| ws.iter().any(|w| w.rule == d.rule))
    });
    raw
}

/// `.ident` — the token before is a dot (method call, not a free fn).
fn is_method_call(toks: &[SpannedTok], i: usize) -> bool {
    i > 0 && toks[i - 1].tok == Tok::Punct('.')
}

/// The token after `i` is the given punct.
fn next_is(toks: &[SpannedTok], i: usize, p: char) -> bool {
    toks.get(i + 1).is_some_and(|t| t.tok == Tok::Punct(p))
}

/// `ident :: member` — path access to a specific member.
fn path_member_is(toks: &[SpannedTok], i: usize, member: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.tok == Tok::Punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.tok == Tok::Punct(':'))
        && toks
            .get(i + 3)
            .is_some_and(|t| t.tok == Tok::Ident(member.to_string()))
}

/// From an ident at `i` followed by a call `(...)`, find whether the call
/// is chained into `.unwrap` / `.expect`. Returns the index of that
/// trailing method ident and whether it is panicky.
fn call_then_panicky(toks: &[SpannedTok], i: usize) -> Option<(usize, bool)> {
    if !next_is(toks, i, '(') {
        return None;
    }
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    // After the close paren: `.unwrap` / `.expect` ?
    if toks.get(j + 1).is_some_and(|t| t.tok == Tok::Punct('.')) {
        if let Some(SpannedTok {
            tok: Tok::Ident(m), ..
        }) = toks.get(j + 2)
        {
            if m == "unwrap" || m == "expect" {
                return Some((j + 2, true));
            }
        }
    }
    Some((j, false))
}

/// An attribute starting at `#`: return how many tokens it spans
/// (`#` `[` … `]`), or `None` if this `#` is not an attribute.
fn attribute_span(toks: &[SpannedTok], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.tok == Tok::Punct('!')) {
        j += 1; // inner attribute `#![…]`
    }
    if !toks.get(j).is_some_and(|t| t.tok == Tok::Punct('[')) {
        return None;
    }
    let mut depth = 0i32;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j - i + 1);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Whether an attribute token slice marks test code: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(any(test, …))]` — but not `#[cfg(not(test))]`.
fn attribute_marks_test(attr: &[SpannedTok]) -> bool {
    let mut has_test = false;
    let mut has_not = false;
    for t in attr {
        if let Tok::Ident(id) = &t.tok {
            match id.as_str() {
                "test" => has_test = true,
                "not" => has_not = true,
                _ => {}
            }
        }
    }
    has_test && !has_not
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use std::path::PathBuf;

    fn scan(path: &str, src: &str) -> Vec<Diagnostic> {
        let rel = PathBuf::from(path);
        let ctx = FileContext::classify(&rel, &Config::default());
        scan_file(&rel, &ctx, src)
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn d1_fires_only_in_scoped_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules(&scan("crates/sim/src/lib.rs", src)), vec!["D1"]);
        assert!(scan("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn p1_skips_cfg_test_modules_and_test_files() {
        let src = concat!(
            "fn live() { x.unwrap(); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { y.unwrap(); panic!(\"in test\"); }\n",
            "}\n",
            "fn live2() { panic!(\"boom\"); }\n",
        );
        let d = scan("crates/dtnflow/src/x.rs", src);
        assert_eq!(rules(&d), vec!["P1", "P1"]);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 6);
        assert!(scan("crates/dtnflow/tests/x.rs", src).is_empty());
    }

    #[test]
    fn p2_beats_p1_and_fires_everywhere() {
        let src = "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        // In a P1 crate the unwrap is reported once, as P2.
        assert_eq!(rules(&scan("crates/sim/src/x.rs", src)), vec!["P2"]);
        // Outside P1 scope — and even in test files — P2 still fires.
        assert_eq!(rules(&scan("crates/bench/src/x.rs", src)), vec!["P2"]);
        assert_eq!(rules(&scan("crates/bench/tests/x.rs", src)), vec!["P2"]);
        // total_cmp is the fix and is clean.
        let fixed = "fn f() { v.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(scan("crates/sim/src/x.rs", fixed).is_empty());
        // partial_cmp without a panicky tail is fine.
        let handled = "fn f() { a.partial_cmp(b).unwrap_or(Ordering::Equal); }\n";
        assert!(scan("crates/sim/src/x.rs", handled).is_empty());
    }

    #[test]
    fn d2_catches_clocks_and_rngs() {
        let src = concat!(
            "let t = Instant::now();\n",
            "let s = std::time::SystemTime::now();\n",
            "let r = rand::random::<f64>();\n",
            "let g = thread_rng();\n",
        );
        let d = scan("crates/mobility/src/x.rs", src);
        assert_eq!(rules(&d), vec!["D2", "D2", "D2", "D2"]);
    }

    #[test]
    fn waivers_suppress_exactly_their_rule_and_line() {
        let src = concat!(
            "let t = Instant::now(); // detlint: allow(D2, reason = \"bench wall-clock\")\n",
            "let u = Instant::now(); // detlint: allow(P1, reason = \"wrong rule\")\n",
            "let v = Instant::now(); // detlint: allow(D2)\n",
        );
        let d = scan("crates/bench/src/x.rs", src);
        // Line 1 waived; line 2 wrong rule; line 3 malformed waiver: the
        // D2 stands and the bad waiver is reported.
        assert_eq!(rules(&d), vec!["W0", "D2", "D2"]);
        assert_eq!(d.iter().filter(|x| x.rule == "D2").count(), 2);
    }

    #[test]
    fn own_line_waiver_covers_the_next_line() {
        let src = concat!(
            "// detlint: allow(D2, reason = \"quarantined wall-clock helper\")\n",
            "let t = Instant::now();\n",
            "let u = Instant::now();\n",
        );
        let d = scan("crates/bench/src/x.rs", src);
        // Line 2 is waived by the comment above it; line 3 is not.
        assert_eq!(rules(&d), vec!["D2"]);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = concat!(
            "// HashMap Instant::now() unwrap() panic!\n",
            "let s = \"HashMap thread_rng() partial_cmp\";\n",
            "let r = r#\"SystemTime::now()\"#;\n",
            "/* todo! unreachable! */\n",
        );
        assert!(scan("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_like_names_are_not_unwrap() {
        let src = "fn f() { a.unwrap_or(0); b.unwrap_or_else(|| 1); c.expect_err(\"e\"); }\n";
        assert!(scan("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_not_test_still_counts_as_live_code() {
        let src = concat!(
            "#[cfg(not(test))]\n",
            "mod live {\n",
            "    fn f() { x.unwrap(); }\n",
            "}\n",
        );
        assert_eq!(rules(&scan("crates/sim/src/x.rs", src)), vec!["P1"]);
    }

    #[test]
    fn multiline_p2_is_matched() {
        let src = concat!(
            "links.sort_by(|a, b| {\n",
            "    b.2.partial_cmp(&a.2)\n",
            "        .unwrap()\n",
            "        .then(a.0.cmp(&b.0))\n",
            "});\n",
        );
        let d = scan("crates/mobility/src/x.rs", src);
        assert_eq!(rules(&d), vec!["P2"]);
        assert_eq!(d[0].line, 2, "anchored at the partial_cmp call");
    }
}
