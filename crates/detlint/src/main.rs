//! CLI: `cargo run -p detlint -- check [--root DIR] [--json]`.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return usage();
    };
    if cmd != "check" {
        eprintln!("unknown command `{cmd}`");
        return usage();
    }
    let mut root = PathBuf::from(".");
    let mut json = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory argument");
                    return usage();
                }
            },
            other => {
                eprintln!("unknown flag `{other}`");
                return usage();
            }
        }
    }

    let diags = match detlint::check_root(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("detlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", detlint::diag::to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            eprintln!("detlint: workspace clean");
        } else {
            eprintln!(
                "detlint: {} violation{} (waive with `// detlint: allow(<rule>, reason = \"...\")`)",
                diags.len(),
                if diags.len() == 1 { "" } else { "s" }
            );
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: detlint check [--root DIR] [--json]");
    ExitCode::from(2)
}
