//! Recursive `.rs` discovery under a workspace root.

use crate::config::Config;
use std::io;
use std::path::{Path, PathBuf};

/// All `.rs` files under `root`, as workspace-relative paths with `/`
/// separators, sorted (the scan must itself be deterministic). Skips the
/// configured directory names at any depth.
pub fn rust_sources(root: &Path, cfg: &Config) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    visit(root, Path::new(""), cfg, &mut out)?;
    out.sort();
    Ok(out)
}

fn visit(abs: &Path, rel: &Path, cfg: &Config, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(abs)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let child_rel = rel.join(name);
        if path.is_dir() {
            if cfg.skip_dirs.iter().any(|d| d == name) || name.starts_with('.') {
                continue;
            }
            visit(&path, &child_rel, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(child_rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_own_sources_and_skips_fixtures() {
        // The detlint crate root: src/ is found, tests/fixtures/ is not.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = rust_sources(root, &Config::default()).unwrap();
        assert!(files.iter().any(|f| f.ends_with("src/lexer.rs")));
        // The fixtures *directory* is skipped (tests/fixtures.rs, the
        // integration test driving it, is a file and is found).
        assert!(files
            .iter()
            .all(|f| !f.components().any(|c| c.as_os_str() == "fixtures")));
        assert!(files.iter().any(|f| f.ends_with("tests/fixtures.rs")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted, "walk order is deterministic");
    }
}
