//! The workspace polices itself: `cargo test` fails if anyone introduces
//! a new determinism or panic-safety violation anywhere in the repo.
//! This is the same scan CI runs as `cargo run -p detlint -- check`.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("detlint lives at <root>/crates/detlint")
}

#[test]
fn live_workspace_is_violation_free() {
    let diags = detlint::check_root(workspace_root()).expect("workspace scan");
    assert!(
        diags.is_empty(),
        "detlint found {} violation(s); fix them or add a \
         `// detlint: allow(<rule>, reason = \"...\")` waiver:\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Every default `X1` binding must fully resolve against the live tree.
/// Without this, a wholesale rename (`SimEvent` → something else) would
/// silently turn the schema-exhaustiveness rule off instead of failing;
/// `X0` only catches *partial* rot.
#[test]
fn x1_bindings_resolve_against_live_workspace() {
    let cfg = detlint::Config::default();
    let analyses = detlint::analyze_root(workspace_root(), &cfg).expect("workspace scan");
    let report = detlint::rules::binding_report(&analyses, &cfg);
    assert!(!report.is_empty(), "default config must carry bindings");
    let unresolved: Vec<&str> = report
        .iter()
        .filter(|b| !b.resolved)
        .map(|b| b.desc.as_str())
        .collect();
    assert!(
        unresolved.is_empty(),
        "X1 bindings no longer match the code (rename both sides together, \
         updating detlint's Config): {unresolved:?}"
    );
}
