//! The workspace polices itself: `cargo test` fails if anyone introduces
//! a new determinism or panic-safety violation anywhere in the repo.
//! This is the same scan CI runs as `cargo run -p detlint -- check`.

use std::path::Path;

#[test]
fn live_workspace_is_violation_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("detlint lives at <root>/crates/detlint");
    let diags = detlint::check_root(root).expect("workspace scan");
    assert!(
        diags.is_empty(),
        "detlint found {} violation(s); fix them or add a \
         `// detlint: allow(<rule>, reason = \"...\")` waiver:\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
