//! End-to-end rule coverage over the fixture workspaces in
//! `tests/fixtures/`. Each fixture is a miniature repo layout (never
//! compiled — the walker only reads the files), so these tests exercise
//! the full pipeline: walking, crate classification, lexing, item
//! parsing, rule matching, cross-file bindings, and waivers.

use detlint::config::{Config, EnumTagBinding, FieldLiteralBinding};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// `(file, line, rule)` triples, in detlint's deterministic order.
fn check(name: &str) -> Vec<(String, u32, String)> {
    detlint::check_root(&fixture(name))
        .expect("fixture scan")
        .into_iter()
        .map(|d| (d.file, d.line, d.rule))
        .collect()
}

fn check_with(name: &str, cfg: &Config) -> Vec<(String, u32, String)> {
    detlint::check_root_with(&fixture(name), cfg)
        .expect("fixture scan")
        .into_iter()
        .map(|d| (d.file, d.line, d.rule))
        .collect()
}

fn triple(file: &str, line: u32, rule: &str) -> (String, u32, String) {
    (file.to_string(), line, rule.to_string())
}

#[test]
fn violations_fixture_flags_each_rule_in_scope() {
    let got = check("violations");
    let want = vec![
        // bench: out of D1/P1 scope, D2 still applies.
        triple("crates/bench/src/lib.rs", 7, "D2"),
        triple("crates/bench/src/lib.rs", 8, "D2"),
        // sim/src: everything fires.
        triple("crates/sim/src/engine.rs", 2, "D1"),
        triple("crates/sim/src/engine.rs", 5, "D1"),
        triple("crates/sim/src/engine.rs", 5, "D1"),
        triple("crates/sim/src/engine.rs", 6, "D2"),
        triple("crates/sim/src/engine.rs", 7, "P1"),
        triple("crates/sim/src/engine.rs", 8, "P2"),
        triple("crates/sim/src/engine.rs", 9, "P1"),
        // sim/tests: P1 exempt, P2 and D1 are not.
        triple("crates/sim/tests/it.rs", 5, "P2"),
        triple("crates/sim/tests/it.rs", 6, "D1"),
        // snapshot: codec crate is in D1 and P1 scope (decode paths must
        // return typed errors, not unwrap).
        triple("crates/snapshot/src/lib.rs", 3, "D1"),
        triple("crates/snapshot/src/lib.rs", 6, "D1"),
        triple("crates/snapshot/src/lib.rs", 6, "D1"),
        triple("crates/snapshot/src/lib.rs", 7, "P1"),
    ];
    assert_eq!(got, want);
}

#[test]
fn waivers_fixture_suppresses_exactly_what_it_says() {
    let got = check("waivers");
    let want = vec![
        // Line 3 (trailing waiver) and line 5 (own-line waiver above)
        // are suppressed; a wrong-rule waiver leaves its D2 standing and
        // is itself stale (W1); a malformed waiver leaves its D2
        // standing and is reported as W0.
        triple("crates/sim/src/lib.rs", 6, "D2"),
        triple("crates/sim/src/lib.rs", 6, "W1"),
        triple("crates/sim/src/lib.rs", 7, "D2"),
        triple("crates/sim/src/lib.rs", 7, "W0"),
    ];
    assert_eq!(got, want);
}

#[test]
fn core_bad_fixture_fires_d1_p1_s1_in_the_hotpath_crate() {
    // `dtnflow-core` joined D1/P1 scope when the timing wheel and rank
    // index put it on the forwarding path (it was already C1/S1).
    let got = check("core/bad");
    let want = vec![
        triple("crates/dtnflow-core/src/lib.rs", 4, "D1"),
        triple("crates/dtnflow-core/src/lib.rs", 9, "S1"),
        triple("crates/dtnflow-core/src/lib.rs", 25, "D1"),
        triple("crates/dtnflow-core/src/lib.rs", 26, "P1"),
    ];
    assert_eq!(got, want);
}

#[test]
fn core_clean_fixture_passes_with_rebuilt_field_waivers() {
    // Mirrors the live `TimingWheel` codec shape: canonical entry list
    // on the wire, placement rebuilt on decode behind a reasoned S1
    // waiver.
    assert_eq!(check("core/clean"), Vec::new());
}

#[test]
fn clean_fixture_has_no_findings() {
    // Includes `crates/sim/src/dense_ok.rs`: the approved dense containers
    // (`DenseMap`/`DenseSet`/`LinkMatrix`) never trip D1.
    assert_eq!(check("clean"), Vec::new());
}

#[test]
fn s1_fixture_flags_each_missing_codec_direction() {
    let got = check("s1/bad");
    let want = vec![
        // `hops` written but never read back; `ttl` in neither
        // direction; `seen` read back but never written.
        triple("crates/snapshot/src/lib.rs", 7, "S1"),
        triple("crates/snapshot/src/lib.rs", 8, "S1"),
        triple("crates/snapshot/src/lib.rs", 28, "S1"),
    ];
    assert_eq!(got, want);

    let diags = detlint::check_root(&fixture("s1/bad")).expect("fixture scan");
    assert!(
        diags[0].message.contains("hops") && diags[0].message.contains("decode path"),
        "S1 names the field and the missing direction: {}",
        diags[0].message
    );
    assert!(
        diags[2].message.contains("seen") && diags[2].message.contains("encode path"),
        "S1 names the field and the missing direction: {}",
        diags[2].message
    );
}

#[test]
fn s1_clean_fixture_passes_via_completeness_waiver_and_with_exemption() {
    // Complete codec, a reasoned S1 waiver on a derived-cache field, a
    // `*_with` closure codec, and a codec-less struct: all quiet.
    assert_eq!(check("s1/clean"), Vec::new());
}

fn x1_fixture_config() -> Config {
    Config {
        enum_bindings: vec![EnumTagBinding {
            enum_name: "FixEvent".into(),
            tags_const: "FIX_TAGS".into(),
            fns: vec!["FixEvent::kind_index".into()],
        }],
        field_bindings: vec![FieldLiteralBinding {
            struct_name: "FixRow".into(),
            fn_name: "fix_row_csv".into(),
        }],
        ..Config::default()
    }
}

#[test]
fn x1_fixture_flags_tag_table_and_writer_drift() {
    let got = check_with("x1/bad", &x1_fixture_config());
    let want = vec![
        // `MisTransit` has no tag.
        triple("crates/obs/src/lib.rs", 7, "X1"),
        // The table is unsorted AND carries the orphan `restored`.
        triple("crates/obs/src/lib.rs", 12, "X1"),
        triple("crates/obs/src/lib.rs", 12, "X1"),
        // `kind_index` hides `PacketLost` behind a catch-all arm.
        triple("crates/obs/src/lib.rs", 16, "X1"),
        // `fix_row_csv`: `delivered` in the header but not the code,
        // `expired` in neither.
        triple("crates/obs/src/lib.rs", 33, "X1"),
        triple("crates/obs/src/lib.rs", 33, "X1"),
    ];
    assert_eq!(got, want);
}

#[test]
fn x1_clean_fixture_is_bijective_and_quiet() {
    assert_eq!(check_with("x1/clean", &x1_fixture_config()), Vec::new());
}

#[test]
fn x1_default_bindings_silently_skip_foreign_trees() {
    // Under the default config none of the `SimEvent`/`Snapshot`
    // bindings resolve inside this fixture tree: that is a silent skip,
    // not a storm of X0s (fixtures and downstream users are not the
    // live workspace).
    assert_eq!(check("x1/bad"), Vec::new());
}

#[test]
fn c1_fixture_flags_each_parallel_hazard() {
    let got = check("c1/bad");
    let want = vec![
        triple("crates/sim/src/lib.rs", 4, "C1"),  // static mut
        triple("crates/sim/src/lib.rs", 6, "C1"),  // Mutex static
        triple("crates/sim/src/lib.rs", 8, "C1"),  // thread_local!
        triple("crates/sim/src/lib.rs", 9, "C1"),  // RefCell static inside it
        triple("crates/sim/src/lib.rs", 13, "C1"), // thread::spawn
        triple("crates/sim/src/lib.rs", 14, "C1"), // mpsc channel
        triple("crates/sim/src/lib.rs", 19, "C1"), // float sum over .values()
        triple("crates/sim/src/lib.rs", 23, "C1"), // float fold over .values()
    ];
    assert_eq!(got, want);
}

#[test]
fn c1allow_bad_fixture_scopes_the_thread_waiver_tightly() {
    let got = check("c1allow/bad");
    let want = vec![
        // The sanctioned file: its `thread::spawn` is quiet, but shared
        // mutable state and unordered float reductions still fire.
        triple("crates/shard/src/exec.rs", 5, "C1"),
        triple("crates/shard/src/exec.rs", 12, "C1"),
        // Same crate, different file: the allowlist is per-file.
        triple("crates/shard/src/plan.rs", 5, "C1"),
        // An ordinary C1-scope crate: threading fires as always.
        triple("crates/sim/src/lib.rs", 5, "C1"),
        triple("crates/sim/src/lib.rs", 6, "C1"),
    ];
    assert_eq!(got, want);
}

#[test]
fn c1allow_clean_fixture_sanctions_the_one_spawn_site() {
    assert_eq!(check("c1allow/clean"), Vec::new());
}

#[test]
fn c1allow_empty_allowlist_restores_full_strictness() {
    // With the allowlist emptied, the clean fixture's sanctioned file
    // turns red: the exemption is config, not a hardcoded hole.
    let cfg = Config {
        c1_thread_allow: Vec::new(),
        ..Config::default()
    };
    let got = check_with("c1allow/clean", &cfg);
    assert!(
        got.iter()
            .filter(|(f, _, r)| f == "crates/shard/src/exec.rs" && r == "C1")
            .count()
            >= 2,
        "spawn + scope must fire without the allowlist: {got:?}"
    );
}

#[test]
fn c1_clean_fixture_allows_shardsafe_counterparts() {
    // Immutable statics, `'static` lifetimes, slice-ordered float sums,
    // integer reductions over map values, and threading in test code.
    assert_eq!(check("c1/clean"), Vec::new());
}

#[test]
fn w1_fixture_separates_stale_from_live_waivers() {
    let got = check("w1/bad");
    let want = vec![
        // A trailing waiver whose violation was fixed, and an own-line
        // waiver whose covered (next) line no longer violates anything —
        // W1 anchors at the covered line, where the fix happened.
        triple("crates/sim/src/lib.rs", 5, "W1"),
        triple("crates/sim/src/lib.rs", 10, "W1"),
    ];
    assert_eq!(got, want);
    assert_eq!(check("w1/clean"), Vec::new());
}

#[test]
fn d1_message_names_the_approved_dense_containers() {
    let diags = detlint::check_root(&fixture("violations")).expect("fixture scan");
    let d1_map = diags
        .iter()
        .find(|d| d.rule == "D1" && d.message.contains("HashMap"))
        .expect("a HashMap D1 finding");
    assert!(
        d1_map.message.contains("DenseMap") && d1_map.message.contains("LinkMatrix"),
        "D1 should steer toward the dense hot-path containers: {}",
        d1_map.message
    );
}

#[test]
fn json_output_is_well_formed() {
    let diags = detlint::check_root(&fixture("waivers")).expect("fixture scan");
    let json = detlint::diag::to_json(&diags);
    assert!(
        json.starts_with(&format!(
            "{{\"schema_version\":{},",
            detlint::diag::JSON_SCHEMA_VERSION
        )),
        "report is a versioned envelope: {json}"
    );
    assert!(json.contains("\"diagnostics\":["));
    assert!(json.ends_with("]}"));
    assert!(json.contains("\"rule\":\"W0\""));
    assert!(json.contains("\"rule\":\"W1\""));
    assert!(json.contains("\"line\":6"));
}
