//! End-to-end rule coverage over the fixture workspaces in
//! `tests/fixtures/`. Each fixture is a miniature repo layout (never
//! compiled — the walker only reads the files), so these tests exercise
//! the full pipeline: walking, crate classification, lexing, rule
//! matching, and waivers.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// `(file, line, rule)` triples, in detlint's deterministic order.
fn check(name: &str) -> Vec<(String, u32, String)> {
    detlint::check_root(&fixture(name))
        .expect("fixture scan")
        .into_iter()
        .map(|d| (d.file, d.line, d.rule))
        .collect()
}

fn triple(file: &str, line: u32, rule: &str) -> (String, u32, String) {
    (file.to_string(), line, rule.to_string())
}

#[test]
fn violations_fixture_flags_each_rule_in_scope() {
    let got = check("violations");
    let want = vec![
        // bench: out of D1/P1 scope, D2 still applies.
        triple("crates/bench/src/lib.rs", 7, "D2"),
        triple("crates/bench/src/lib.rs", 8, "D2"),
        // sim/src: everything fires.
        triple("crates/sim/src/engine.rs", 2, "D1"),
        triple("crates/sim/src/engine.rs", 5, "D1"),
        triple("crates/sim/src/engine.rs", 5, "D1"),
        triple("crates/sim/src/engine.rs", 6, "D2"),
        triple("crates/sim/src/engine.rs", 7, "P1"),
        triple("crates/sim/src/engine.rs", 8, "P2"),
        triple("crates/sim/src/engine.rs", 9, "P1"),
        // sim/tests: P1 exempt, P2 and D1 are not.
        triple("crates/sim/tests/it.rs", 5, "P2"),
        triple("crates/sim/tests/it.rs", 6, "D1"),
        // snapshot: codec crate is in D1 and P1 scope (decode paths must
        // return typed errors, not unwrap).
        triple("crates/snapshot/src/lib.rs", 3, "D1"),
        triple("crates/snapshot/src/lib.rs", 6, "D1"),
        triple("crates/snapshot/src/lib.rs", 6, "D1"),
        triple("crates/snapshot/src/lib.rs", 7, "P1"),
    ];
    assert_eq!(got, want);
}

#[test]
fn waivers_fixture_suppresses_exactly_what_it_says() {
    let got = check("waivers");
    let want = vec![
        // Line 3 (trailing waiver) and line 5 (own-line waiver above)
        // are suppressed; a wrong-rule waiver and a malformed waiver
        // leave their D2s standing.
        triple("crates/sim/src/lib.rs", 6, "D2"),
        triple("crates/sim/src/lib.rs", 7, "D2"),
        triple("crates/sim/src/lib.rs", 7, "W0"),
    ];
    assert_eq!(got, want);
}

#[test]
fn clean_fixture_has_no_findings() {
    // Includes `crates/sim/src/dense_ok.rs`: the approved dense containers
    // (`DenseMap`/`DenseSet`/`LinkMatrix`) never trip D1.
    assert_eq!(check("clean"), Vec::new());
}

#[test]
fn d1_message_names_the_approved_dense_containers() {
    let diags = detlint::check_root(&fixture("violations")).expect("fixture scan");
    let d1_map = diags
        .iter()
        .find(|d| d.rule == "D1" && d.message.contains("HashMap"))
        .expect("a HashMap D1 finding");
    assert!(
        d1_map.message.contains("DenseMap") && d1_map.message.contains("LinkMatrix"),
        "D1 should steer toward the dense hot-path containers: {}",
        d1_map.message
    );
}

#[test]
fn json_output_is_well_formed() {
    let diags = detlint::check_root(&fixture("waivers")).expect("fixture scan");
    let json = detlint::diag::to_json(&diags);
    assert!(json.starts_with('[') && json.ends_with(']'));
    assert!(json.contains("\"rule\":\"W0\""));
    assert!(json.contains("\"line\":6"));
}
