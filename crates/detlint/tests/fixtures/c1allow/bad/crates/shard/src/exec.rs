// Fixture: the sanctioned site only waives the ad-hoc-threading arms —
// shared mutable state and unordered float reductions still fire here.
// Never compiled.

static mut SHARED: u64 = 0; // line 5: C1 (static mut, never sanctioned)

pub fn fan_out(parts: Vec<u64>) {
    std::thread::spawn(move || drop(parts)); // sanctioned: no finding
}

pub fn tally(m: &BTreeMap<u32, f64>) -> f64 {
    m.values().sum::<f64>() // line 12: C1 (float sum, never sanctioned)
}
