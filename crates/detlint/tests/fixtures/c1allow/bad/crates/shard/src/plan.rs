// Fixture: same crate as the sanctioned site, different file — the
// allowlist is per-file, so threading here still fires. Never compiled.

pub fn sneaky() {
    std::thread::spawn(|| {}); // line 5: C1 (ad-hoc threading)
}
