// Fixture: ad-hoc threading outside the allowlist entirely. Never
// compiled.

pub fn fan_out() {
    std::thread::spawn(|| {}); // line 5: C1 (ad-hoc threading)
    let (tx, rx) = mpsc::channel(); // line 6: C1 (channel)
    drop((tx, rx));
}
