// Fixture: the sanctioned spawn/join site. Thread primitives are legal
// exactly here (`c1_thread_allow` names this path). Never compiled.

use std::thread;

pub fn map_parts(parts: Vec<u64>) -> Vec<u64> {
    thread::scope(|s| {
        let handles: Vec<_> = parts.into_iter().map(|p| s.spawn(move || p * 2)).collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).collect()
    })
}

pub fn one_off() {
    thread::spawn(|| {});
}
