// Fixture: an ordinary C1-scope file with no thread primitives at all —
// the allowlist must not be needed for shard-safe code. Never compiled.

pub fn tally(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
