// Fixture: enum ↔ tag table ↔ bound fns all agree. Never compiled.

pub enum FixEvent {
    ContactOpen,
    MisTransit,
    PacketLost,
}

pub const FIX_TAGS: [&str; 3] = ["contact_open", "mis_transit", "packet_lost"];

impl FixEvent {
    pub fn kind_index(&self) -> usize {
        match self {
            FixEvent::ContactOpen => 0,
            FixEvent::MisTransit => 1,
            FixEvent::PacketLost => 2,
        }
    }
}

pub struct FixRow {
    pub generated: u64,
    pub delivered: u64,
    pub expired: u64,
}

pub fn fix_row_csv(r: &FixRow) -> String {
    format!(
        "generated,delivered,expired\n{},{},{}\n",
        r.generated, r.delivered, r.expired
    )
}
