// Fixture: schema drift between an event enum, its tag table, and the
// fns bound as kind-exhaustive. Never compiled. The test binds
// FixEvent ↔ FIX_TAGS ↔ FixEvent::kind_index, and FixRow ↔ fix_row_csv.

pub enum FixEvent {
    ContactOpen,
    MisTransit,
    PacketLost,
}

/// Unsorted, missing `mis_transit`, and carrying an orphan `restored`.
pub const FIX_TAGS: [&str; 3] = ["packet_lost", "contact_open", "restored"];

impl FixEvent {
    /// Non-exhaustive: `PacketLost` hides behind the catch-all arm.
    pub fn kind_index(&self) -> usize {
        match self {
            FixEvent::ContactOpen => 0,
            FixEvent::MisTransit => 1,
            _ => 2,
        }
    }
}

pub struct FixRow {
    pub generated: u64,
    pub delivered: u64,
    pub expired: u64,
}

/// Header misses the `expired` column; `delivered` is in the header but
/// its value is never written.
pub fn fix_row_csv(r: &FixRow) -> String {
    format!("generated,delivered\n{}\n", r.generated)
}
