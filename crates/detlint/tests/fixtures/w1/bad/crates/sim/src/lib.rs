// Fixture: stale waivers. Never compiled.

/// The D2 was fixed but the trailing waiver stayed behind.
pub fn fixed() -> u64 {
    42 // detlint: allow(D2, reason = "was Instant::now once, fixed in a refactor")
}

/// An own-line waiver whose target line no longer violates anything.
// detlint: allow(P1, reason = "the unwrap below was replaced by a typed error")
pub fn also_fixed() -> Result<u64, E> {
    Ok(42)
}
