// Fixture: live waivers that still suppress something. Never compiled.

pub fn wall_clock() -> Instant {
    Instant::now() // detlint: allow(D2, reason = "quarantined wall-clock helper for bench reporting")
}

// detlint: allow(D2, reason = "own-line waiver, still covering a live violation")
pub fn wall_clock2() -> Instant { Instant::now() }
