// Fixture: incomplete snapshot codecs. Never compiled.

/// `hops` is written but never read back; `ttl` is absent from both
/// directions (the `..Default::default()` hides it from decode).
pub struct Blob {
    pub id: u64,
    pub hops: u32,
    pub ttl: u32,
}

impl Blob {
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.id);
        w.put_u32(self.hops);
    }

    pub fn decode(r: &mut Reader) -> Blob {
        Blob {
            id: r.u64(),
            ..Default::default()
        }
    }
}

/// Free-fn codec pair: `seen` is missing from the encode side.
pub struct NodeState {
    pub id: u32,
    pub seen: Vec<u32>,
}

pub fn encode_node_state(w: &mut Writer, s: &NodeState) {
    w.put_u32(s.id);
}

pub fn decode_node_state(r: &mut Reader) -> NodeState {
    NodeState {
        id: r.u32(),
        seen: r.vec_u32(),
    }
}
