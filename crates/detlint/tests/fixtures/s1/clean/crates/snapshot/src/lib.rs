// Fixture: complete and properly-waived snapshot codecs. Never compiled.

pub struct Blob {
    pub id: u64,
    pub hops: u32,
    /// Rebuilt lazily; excluded from the wire format on purpose.
    // detlint: allow(S1, reason = "derived cache, recomputed from id on first access")
    pub cache: Option<u64>,
}

impl Blob {
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.id);
        w.put_u32(self.hops);
    }

    pub fn decode(r: &mut Reader) -> Blob {
        Blob {
            id: r.u64(),
            hops: r.u32(),
            cache: None,
        }
    }
}

/// Closure-driven generic codecs are exempt: the element codec is the
/// caller's business.
pub struct DenseMap {
    pub slots: Vec<u64>,
    pub live: u32,
}

impl DenseMap {
    pub fn encode_with(&self, w: &mut Writer, f: impl Fn(&mut Writer, &u64)) {
        for s in &self.slots {
            f(w, s);
        }
    }
}

/// No codec at all: S1 has nothing to say.
pub struct Plain {
    pub a: u32,
}
