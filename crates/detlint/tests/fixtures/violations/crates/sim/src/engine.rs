// Fixture: every rule fires in an in-scope crate. Never compiled.
use std::collections::HashMap; // line 2: D1

pub fn run(xs: &mut Vec<f64>) {
    let m: HashMap<u32, f64> = HashMap::new(); // line 5: D1 x2
    let t = Instant::now(); // line 6: D2
    let v = m.get(&0).unwrap(); // line 7: P1
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); // line 8: P2 (not P1)
    panic!("{t:?} {v}"); // line 9: P1
}

#[cfg(test)]
mod tests {
    fn inside_test_region() {
        let y: Option<u8> = None;
        y.unwrap(); // in a test region: no P1
    }
}
