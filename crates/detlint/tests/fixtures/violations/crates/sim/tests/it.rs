// Fixture: integration tests are exempt from P1 but not from P2/D1/D2.
pub fn helper(xs: &mut Vec<f64>) {
    let x: Option<u8> = None;
    x.unwrap(); // test file: no P1
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); // line 5: P2 fires even here
    let s: std::collections::HashSet<u32> = Default::default(); // line 6: D1 (tests included)
    drop(s);
}
