// Fixture: bench is outside D1/P1 scope; D2 still applies everywhere.
use std::collections::HashMap; // no D1: bench may hash

pub fn run() {
    let m: HashMap<u32, u32> = HashMap::new();
    m.get(&0).unwrap(); // no P1: bench is not simulator code
    let g = thread_rng(); // line 7: D2
    let t = SystemTime::now(); // line 8: D2
    drop((g, t));
}
