// Fixture: the snapshot codec is in D1 and P1 scope — decode paths must
// use typed `SnapshotError`s, never unwrap. Never compiled.
use std::collections::HashMap; // line 3: D1

pub fn decode(bytes: &[u8]) -> u64 {
    let m: HashMap<u8, u64> = HashMap::new(); // line 6: D1 x2
    *m.get(&bytes[0]).unwrap() // line 7: P1
}
