// Fixture: the approved dense containers pass D1 in an in-scope crate.
use dtnflow_core::dense::{DenseMap, DenseSet, LinkMatrix};

pub fn run() -> usize {
    let mut m: DenseMap<u16, u64> = DenseMap::new();
    let mut s: DenseSet<u16> = DenseSet::new();
    let mut bw = LinkMatrix::with_landmarks(4);
    m.insert(3, 7);
    s.insert(3);
    bw.set(0, 1, 0.5);
    m.len() + s.len() + bw.side()
}
