// Fixture: forbidden spellings inside comments and literals never fire.
// HashMap HashSet Instant::now() unwrap() expect() panic! thread_rng()

pub fn run(xs: &mut Vec<f64>) {
    let s = "HashMap thread_rng partial_cmp unwrap";
    let r = r#"SystemTime::now() panic!("boom")"#;
    /* unreachable! todo! RandomState
    DefaultHasher rand::random */
    let ord = "it's fine: unwrap_or and expect_err are not panicky";
    xs.sort_by(f64::total_cmp);
    drop((s, r, ord));
}
