// Fixture: parallel-readiness hazards in an outcome-affecting crate.
// Never compiled.

static mut SHARED: u64 = 0; // line 4: C1 (static mut)

static CACHE: Mutex<Vec<u64>> = Mutex::new(Vec::new()); // line 6: C1 (interior-mutable static)

thread_local! { // line 8: C1 x2 (thread_local + the RefCell static inside)
    static SCRATCH: RefCell<Vec<u64>> = RefCell::new(Vec::new());
}

pub fn fan_out() {
    std::thread::spawn(|| {}); // line 13: C1 (ad-hoc threading)
    let (tx, rx) = mpsc::channel(); // line 14: C1 (channel)
    drop((tx, rx));
}

pub fn tally(m: &BTreeMap<u32, f64>) -> f64 {
    m.values().sum::<f64>() // line 19: C1 (float sum over non-index order)
}

pub fn tally_fold(m: &BTreeMap<u32, f64>) -> f64 {
    m.values().fold(0.0, |acc, x| acc + x) // line 23: C1
}
