// Fixture: shard-safe counterparts of the c1/bad patterns. Never
// compiled.

/// Immutable statics are fine.
static NAMES: [&str; 2] = ["alpha", "beta"];

/// `'static` lifetimes are not the `static` keyword.
pub fn name(i: usize) -> &'static str {
    NAMES[i]
}

/// Float reduction over an index-ordered slice: deterministic under
/// any shard split that preserves index ranges.
pub fn tally(v: &[f64]) -> f64 {
    v.iter().sum::<f64>()
}

/// Integer reduction over map values: addition is associative, order
/// cannot change the result.
pub fn count(m: &BTreeMap<u32, u64>) -> u64 {
    m.values().sum::<u64>()
}

#[cfg(test)]
mod tests {
    /// Test code may thread freely (e.g. timeout harnesses).
    fn with_timeout() {
        std::thread::spawn(|| {});
    }
}
