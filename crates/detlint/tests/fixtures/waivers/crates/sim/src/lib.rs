// Fixture: waiver forms. Never compiled.
pub fn run() {
    let a = Instant::now(); // detlint: allow(D2, reason = "trailing waiver on the offending line")
    // detlint: allow(D2, reason = "own-line waiver covers the next line")
    let b = Instant::now();
    let c = Instant::now(); // detlint: allow(P1, reason = "wrong rule, D2 must still fire")
    let d = Instant::now(); // detlint: allow(D2)
    drop((a, b, c, d));
}
