// Fixture: the dtnflow-core crate is in D1/P1/C1 scope (hot-path round
// 2 put its wheel/rank-index modules on the forwarding path) and its
// codecs are S1-checked. Never compiled.
use std::collections::HashMap; // line 4: D1

/// A wheel-shaped schedule whose codec forgot a field.
pub struct MiniWheel {
    pub base: u64,
    pub entries: Vec<u64>, // line 9: S1 (absent from decode)
}

impl MiniWheel {
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.base);
        w.put_usize(self.entries.len());
    }

    pub fn decode(r: &mut Reader) -> MiniWheel {
        MiniWheel {
            base: r.u64(),
            ..Default::default()
        }
    }

    pub fn first(&self, m: &HashMap<u32, u64>) -> u64 { // line 25: D1
        *m.get(&0).unwrap() // line 26: P1
    }
}
