// Fixture: dtnflow-core hot-path code written to policy — dense
// containers instead of hash maps, typed errors instead of panics, and
// a wheel-shaped codec whose rebuilt-on-decode fields carry reasoned
// S1 waivers (mirroring the live `TimingWheel`). Never compiled.

pub struct MiniWheel {
    pub base: u64,
    /// Canonical entry list; slot placement below is derived from it.
    pub entries: Vec<u64>,
    // detlint: allow(S1, reason = "slot placement is derived; decode re-places every entry against base")
    pub slots: Vec<Vec<u64>>,
}

impl MiniWheel {
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.base);
        w.put_usize(self.entries.len());
        for &e in &self.entries {
            w.put_u64(e);
        }
    }

    pub fn decode(r: &mut Reader) -> Result<MiniWheel, SnapshotError> {
        let base = r.u64()?;
        let n = r.usize()?;
        let mut entries = Vec::new();
        for _ in 0..n {
            entries.push(r.u64()?);
        }
        let mut wheel = MiniWheel {
            base,
            entries,
            slots: Vec::new(),
        };
        wheel.place_all();
        Ok(wheel)
    }

    fn place_all(&mut self) {}
}
