//! Schema test for the `--json` report envelope, in the same spirit as
//! `obs-validate`: parse the rendered report with the workspace's own
//! JSON parser and check the shape downstream tooling depends on, so a
//! format change must consciously bump [`detlint::diag::JSON_SCHEMA_VERSION`].

use detlint::diag::{to_json, JSON_SCHEMA_VERSION};
use detlint::Diagnostic;
use dtnflow_obs::json::{parse, Value};

fn sample() -> Vec<Diagnostic> {
    vec![
        Diagnostic {
            file: "crates/sim/src/lib.rs".into(),
            line: 6,
            rule: "D2".into(),
            message: "ambient nondeterminism: `Instant::now`".into(),
        },
        Diagnostic {
            file: "crates/sim/src/lib.rs".into(),
            line: 6,
            rule: "W1".into(),
            message: "stale waiver: `P1` does not fire on this line — \"quoted\" \\ pain".into(),
        },
    ]
}

#[test]
fn report_envelope_matches_schema() {
    let v = parse(&to_json(&sample())).expect("report must be valid JSON");

    let version = v
        .get("schema_version")
        .and_then(Value::as_f64)
        .expect("schema_version is a number");
    assert_eq!(version, JSON_SCHEMA_VERSION as f64);

    let diags = v
        .get("diagnostics")
        .and_then(Value::as_array)
        .expect("diagnostics is an array");
    assert_eq!(diags.len(), 2);
    for d in diags {
        assert!(d.get("file").and_then(Value::as_str).is_some());
        assert!(d.get("line").and_then(Value::as_f64).is_some());
        assert!(d.get("rule").and_then(Value::as_str).is_some());
        assert!(d.get("message").and_then(Value::as_str).is_some());
    }
    // Escaping survives the round trip.
    assert_eq!(
        diags[1].get("message").and_then(Value::as_str),
        Some("stale waiver: `P1` does not fire on this line — \"quoted\" \\ pain")
    );
}

#[test]
fn empty_report_still_carries_the_version() {
    let v = parse(&to_json(&[])).expect("empty report must be valid JSON");
    assert_eq!(
        v.get("schema_version").and_then(Value::as_f64),
        Some(JSON_SCHEMA_VERSION as f64)
    );
    assert_eq!(
        v.get("diagnostics")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(0)
    );
}
