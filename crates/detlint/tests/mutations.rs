//! Seeded-mutation proofs that the item-aware rule packs have teeth
//! against the *live* sources: each test takes a real workspace file,
//! asserts it scans clean as-is, applies the one-line mutation a tired
//! refactor would make, and asserts exactly the right rule turns red.

use detlint::config::{Config, FileContext};
use detlint::{rules, Diagnostic, FileAnalysis};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn live_source(rel: &str) -> String {
    std::fs::read_to_string(workspace_root().join(rel))
        .unwrap_or_else(|e| panic!("read live source {rel}: {e}"))
}

/// Single-file scan under the default config, as `scan_file` would see
/// the file during a workspace walk.
fn scan(rel: &str, src: &str) -> Vec<Diagnostic> {
    let cfg = Config::default();
    let rel = PathBuf::from(rel);
    let ctx = FileContext::classify(&rel, &cfg);
    rules::scan_file(&rel, &ctx, src)
}

/// Cross-file scan of a single analysis set under the default config
/// (the `X1` bindings that don't resolve in the set silently skip).
fn scan_cross(rel: &str, src: &str) -> Vec<Diagnostic> {
    let cfg = Config::default();
    let rel = PathBuf::from(rel);
    let ctx = FileContext::classify(&rel, &cfg);
    let fa = FileAnalysis::new(&rel, ctx, src);
    let analyses = [fa];
    let raw = rules::cross_file_rules(&analyses, &cfg);
    rules::finalize(&analyses, raw)
}

#[test]
fn deleting_a_codec_line_turns_s1_red() {
    let rel = "crates/dtnflow-core/src/packet.rs";
    let src = live_source(rel);
    assert_eq!(scan(rel, &src), Vec::new(), "live {rel} must scan clean");

    let needle = "w.put_u32(self.hops);";
    assert!(src.contains(needle), "mutation anchor moved in {rel}");
    let mutated: String = src
        .lines()
        .filter(|l| !l.contains(needle))
        .map(|l| format!("{l}\n"))
        .collect();

    let diags = scan(rel, &mutated);
    let s1: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "S1").collect();
    assert_eq!(s1.len(), 1, "exactly one S1 after dropping hops: {diags:?}");
    assert!(
        s1[0].message.contains("hops") && s1[0].message.contains("encode path"),
        "S1 names the dropped field and direction: {}",
        s1[0].message
    );
}

#[test]
fn deleting_the_wheel_base_from_its_codec_turns_s1_red() {
    // The timing wheel's codec writes the canonical sorted entry list;
    // its only directly-serialized field is `base`. A refactor that
    // drops the base write desynchronizes every restored schedule.
    let rel = "crates/dtnflow-core/src/wheel.rs";
    let src = live_source(rel);
    assert_eq!(scan(rel, &src), Vec::new(), "live {rel} must scan clean");

    let needle = "w.put_u64(self.base);";
    assert!(src.contains(needle), "mutation anchor moved in {rel}");
    let mutated: String = src
        .lines()
        .filter(|l| !l.contains(needle))
        .map(|l| format!("{l}\n"))
        .collect();

    let diags = scan(rel, &mutated);
    let s1: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "S1").collect();
    assert_eq!(s1.len(), 1, "exactly one S1 after dropping base: {diags:?}");
    assert!(
        s1[0].message.contains("base") && s1[0].message.contains("encode path"),
        "S1 names the dropped field and direction: {}",
        s1[0].message
    );
}

#[test]
fn deleting_the_rank_index_from_the_router_codec_turns_s1_red() {
    // `FlowRouter::save_state` serializes the carrier rank index; a
    // checkpoint that forgets it would restore a router that never
    // assigns packets to carriers again.
    let rel = "crates/dtnflow/src/router.rs";
    let src = live_source(rel);
    assert_eq!(scan(rel, &src), Vec::new(), "live {rel} must scan clean");

    let needle = "self.rank.encode(w);";
    assert!(src.contains(needle), "mutation anchor moved in {rel}");
    let mutated: String = src
        .lines()
        .filter(|l| !l.contains(needle))
        .map(|l| format!("{l}\n"))
        .collect();

    let diags = scan(rel, &mutated);
    let s1: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "S1").collect();
    assert_eq!(s1.len(), 1, "exactly one S1 after dropping rank: {diags:?}");
    assert!(
        s1[0].message.contains("rank") && s1[0].message.contains("encode path"),
        "S1 names the dropped field and direction: {}",
        s1[0].message
    );

    // The route-cache hit counter travels through the landmark codec
    // the same way: dropping it must fire too (restored lineages would
    // report diverged observability totals).
    let needle = "w.put_u64(st.cache_hits);";
    assert!(src.contains(needle), "mutation anchor moved in {rel}");
    let mutated: String = src
        .lines()
        .filter(|l| !l.contains(needle))
        .map(|l| format!("{l}\n"))
        .collect();
    let diags = scan(rel, &mutated);
    let s1: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "S1").collect();
    assert_eq!(
        s1.len(),
        1,
        "exactly one S1 after dropping cache_hits: {diags:?}"
    );
    assert!(
        s1[0].message.contains("cache_hits") && s1[0].message.contains("encode path"),
        "S1 names the dropped field and direction: {}",
        s1[0].message
    );
}

#[test]
fn deleting_a_kind_tag_turns_x1_red() {
    let rel = "crates/obs/src/event.rs";
    let src = live_source(rel);
    assert_eq!(
        scan_cross(rel, &src),
        Vec::new(),
        "live {rel} must satisfy the SimEvent ↔ KIND_TAGS binding alone"
    );

    let needle = "\"mis_transit\",";
    assert!(src.contains(needle), "mutation anchor moved in {rel}");
    let mutated: String = src
        .lines()
        .filter(|l| l.trim() != needle)
        .map(|l| format!("{l}\n"))
        .collect();

    let diags = scan_cross(rel, &mutated);
    let x1: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "X1").collect();
    assert_eq!(
        x1.len(),
        1,
        "exactly one X1 after dropping the tag: {diags:?}"
    );
    assert!(
        x1[0].message.contains("mis_transit") && x1[0].message.contains("MisTransit"),
        "X1 names the tagless variant: {}",
        x1[0].message
    );
}

#[test]
fn adding_a_thread_spawn_outside_the_allowlist_turns_c1_red() {
    // The live sanctioned site scans clean with its real thread::spawn…
    let sanctioned = "crates/shard/src/exec.rs";
    let src = live_source(sanctioned);
    assert!(
        src.contains("thread::scope"),
        "mutation anchor moved in {sanctioned}"
    );
    assert_eq!(
        scan(sanctioned, &src),
        Vec::new(),
        "live {sanctioned} must scan clean under the allowlist"
    );

    // …but the identical spawn dropped into any other live C1-scope
    // file fires exactly one C1: the allowlist does not leak.
    for rel in ["crates/shard/src/plan.rs", "crates/sim/src/engine.rs"] {
        let src = live_source(rel);
        assert_eq!(scan(rel, &src), Vec::new(), "live {rel} must scan clean");
        let mutated = format!("pub fn sneak() {{ std::thread::spawn(|| {{}}); }}\n{src}");
        let diags = scan(rel, &mutated);
        let c1: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "C1").collect();
        assert_eq!(
            c1.len(),
            1,
            "exactly one C1 after the ad-hoc spawn in {rel}: {diags:?}"
        );
        assert_eq!(c1[0].line, 1);
        assert!(
            c1[0].message.contains("thread::spawn"),
            "C1 names the hazard: {}",
            c1[0].message
        );
    }

    // And even in the sanctioned file, a static mut still turns red:
    // the waiver covers threading arms only.
    let mutated = format!("static mut SHARED: u64 = 0;\n{}", live_source(sanctioned));
    let diags = scan(sanctioned, &mutated);
    assert_eq!(
        diags.iter().filter(|d| d.rule == "C1").count(),
        1,
        "static mut must fire inside the sanctioned file: {diags:?}"
    );
}

#[test]
fn adding_a_static_mut_turns_c1_red() {
    let rel = "crates/sim/src/engine.rs";
    let src = live_source(rel);
    assert_eq!(scan(rel, &src), Vec::new(), "live {rel} must scan clean");

    let mutated = format!("static mut SHARED: u64 = 0;\n{src}");
    let diags = scan(rel, &mutated);
    let c1: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "C1").collect();
    assert_eq!(
        c1.len(),
        1,
        "exactly one C1 after the static mut: {diags:?}"
    );
    assert_eq!(c1[0].line, 1);
    assert!(
        c1[0].message.contains("static mut"),
        "C1 names the hazard: {}",
        c1[0].message
    );
    assert_eq!(
        diags.len(),
        1,
        "the mutation must not disturb anything else: {diags:?}"
    );
}
