//! §IV-D mis-transit regression: a carrier that transits to the *wrong*
//! landmark uploads its packets there only when that landmark's expected
//! delay to the destination beats the delay stamped on the packet —
//! otherwise it keeps carrying them. The flight recorder's `MisTransit`
//! events pin the decision either way.
//!
//! Topology: 4 landmarks. Node 0 shuttles l0→l1 daily (so l0 routes
//! l3-bound packets via l1); node 1 shuttles l1→l3→l1 (so l1 reaches l3).
//! On day 8, node 0 picks up an l0→l3 packet and then deviates to l2.
//!
//! * With a third node running fast l2↔l3 round trips, l2's expected
//!   delay to l3 is far below the stamped one → upload at l2.
//! * Without it, l2 has zero bandwidth anywhere → infinite delay → the
//!   carrier keeps the packet.

use dtnflow_core::config::SimConfig;
use dtnflow_core::geometry::Point;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::packet::PacketLoc;
use dtnflow_core::time::{SimTime, DAY};
use dtnflow_mobility::{Trace, Visit};
use dtnflow_router::{FlowConfig, FlowRouter};
use dtnflow_sim::workload::GenEvent;
use dtnflow_sim::{run_traced, FaultPlan, Recorder, SimEvent, SimOutcome, Workload};

const L0: LandmarkId = LandmarkId(0);
const L1: LandmarkId = LandmarkId(1);
const L2: LandmarkId = LandmarkId(2);
const L3: LandmarkId = LandmarkId(3);

/// Eight training days plus the day-8 deviation. `with_shuttle` adds the
/// l2↔l3 ferry that makes l2 an attractive upload point.
fn scenario(with_shuttle: bool) -> Trace {
    let mut v = Vec::new();
    for d in 0..8u64 {
        let base = d * 86_400;
        // Node 0: l0 morning → l1 midday, home overnight.
        v.push(Visit::new(
            NodeId(0),
            L0,
            SimTime(base + 1_000),
            SimTime(base + 5_000),
        ));
        v.push(Visit::new(
            NodeId(0),
            L1,
            SimTime(base + 20_000),
            SimTime(base + 25_000),
        ));
        // Node 1: l1 → l3 → l1 daily.
        v.push(Visit::new(
            NodeId(1),
            L1,
            SimTime(base + 30_000),
            SimTime(base + 35_000),
        ));
        v.push(Visit::new(
            NodeId(1),
            L3,
            SimTime(base + 50_000),
            SimTime(base + 55_000),
        ));
        v.push(Visit::new(
            NodeId(1),
            L1,
            SimTime(base + 70_000),
            SimTime(base + 75_000),
        ));
        if with_shuttle {
            // Node 2: three fast l2 ↔ l3 round trips per day.
            for k in 0..3u64 {
                let o = base + 10_000 + k * 20_000;
                v.push(Visit::new(NodeId(2), L2, SimTime(o), SimTime(o + 3_000)));
                v.push(Visit::new(
                    NodeId(2),
                    L3,
                    SimTime(o + 6_000),
                    SimTime(o + 9_000),
                ));
            }
        }
    }
    // Day 8: node 0 picks up at l0, then deviates to l2 instead of l1.
    let base = 8 * 86_400;
    v.push(Visit::new(
        NodeId(0),
        L0,
        SimTime(base + 1_000),
        SimTime(base + 5_000),
    ));
    v.push(Visit::new(
        NodeId(0),
        L2,
        SimTime(base + 20_000),
        SimTime(base + 25_000),
    ));
    if with_shuttle {
        for k in 0..3u64 {
            let o = base + 30_000 + k * 20_000;
            v.push(Visit::new(NodeId(2), L2, SimTime(o), SimTime(o + 3_000)));
            v.push(Visit::new(
                NodeId(2),
                L3,
                SimTime(o + 6_000),
                SimTime(o + 9_000),
            ));
        }
    }
    let num_nodes = if with_shuttle { 3 } else { 2 };
    let positions = (0..4).map(|i| Point::new(i as f64 * 500.0, 0.0)).collect();
    Trace::new("mis-transit", num_nodes, 4, positions, v).expect("valid scenario trace")
}

/// One l0 → l3 packet, generated just before node 0's day-8 pickup.
fn run(with_shuttle: bool) -> SimOutcome {
    let trace = scenario(with_shuttle);
    let cfg = SimConfig {
        ttl: DAY.mul(6),
        time_unit: DAY,
        seed: 11,
        ..SimConfig::default()
    };
    let wl = Workload::from_events(
        vec![GenEvent {
            at: SimTime(8 * 86_400 + 500),
            src: L0,
            dst: L3,
        }],
        SimTime(0),
    );
    let mut router = FlowRouter::new(FlowConfig::default(), trace.num_nodes(), 4);
    run_traced(
        &trace,
        &cfg,
        &wl,
        &FaultPlan::none(),
        &mut router,
        Box::new(Recorder::new(4_096)),
    )
}

#[test]
fn wrong_landmark_with_better_delay_uploads() {
    let mut out = run(true);
    let rec = out
        .trace
        .take()
        .and_then(Recorder::downcast)
        .expect("recorder sink attached");
    let decisions: Vec<bool> = rec
        .events()
        .filter_map(|ev| match *ev {
            SimEvent::MisTransit { lm, uploaded, .. } if lm == L2 => Some(uploaded),
            _ => None,
        })
        .collect();
    assert_eq!(decisions, vec![true], "one upload decision at l2");

    let p = &out.packets[0];
    assert!(
        p.visited.contains(&L2),
        "packet must be uploaded at the mis-transit landmark: visited {:?}",
        p.visited
    );
    // The l2↔l3 ferry then completes the delivery.
    assert!(
        matches!(p.loc, PacketLoc::Delivered(_)),
        "ferry delivers it: loc {:?}",
        p.loc
    );
}

#[test]
fn wrong_landmark_with_worse_delay_keeps_carrying() {
    let mut out = run(false);
    let rec = out
        .trace
        .take()
        .and_then(Recorder::downcast)
        .expect("recorder sink attached");
    let decisions: Vec<bool> = rec
        .events()
        .filter_map(|ev| match *ev {
            SimEvent::MisTransit { lm, uploaded, .. } if lm == L2 => Some(uploaded),
            _ => None,
        })
        .collect();
    assert_eq!(decisions, vec![false], "one keep-carrying decision at l2");

    let p = &out.packets[0];
    assert!(
        !p.visited.contains(&L2),
        "an isolated l2 must not receive the packet: visited {:?}",
        p.visited
    );
    // The packet rides out the rest of the trace on its carrier.
    assert_eq!(p.loc, PacketLoc::OnNode(NodeId(0)));
}
