//! Golden tests for the paper's bandwidth and link-delay arithmetic:
//! Eq. 4 EWMA smoothing with a hand-computed sequence, and the per-hop
//! delay models `d(i→j) = T/B` (transit interval) and
//! `d(i→j) = T·S/(B·M)` (throughput), including the zero-/low-bandwidth
//! edge cases that make a link unusable.

use dtnflow_core::config::SimConfig;
use dtnflow_core::ids::LandmarkId;
use dtnflow_router::{BandwidthTable, FlowConfig, LinkDelayModel};

fn lm(i: u16) -> LandmarkId {
    LandmarkId(i)
}

/// Eq. 4 at α = 0.2 over per-unit arrival counts [3, 1, 0, 2]:
///   B₁ = 0.2·3            = 0.6
///   B₂ = 0.2·1 + 0.8·0.6  = 0.68
///   B₃ = 0.2·0 + 0.8·0.68 = 0.544
///   B₄ = 0.2·2 + 0.8·0.544 = 0.8352
#[test]
fn ewma_matches_hand_computed_sequence() {
    let mut t = BandwidthTable::new(2, 0.2);
    let expected = [0.6, 0.68, 0.544, 0.8352];
    for (count, want) in [3u32, 1, 0, 2].into_iter().zip(expected) {
        for _ in 0..count {
            t.record_arrival_from(lm(1));
        }
        t.end_of_unit();
        assert!(
            (t.incoming(lm(1)) - want).abs() < 1e-12,
            "after count {count}: {} != {want}",
            t.incoming(lm(1))
        );
    }
    // A landmark with no arrivals stays at zero through every fold.
    assert_eq!(t.incoming(lm(0)), 0.0);
}

/// Transit-interval model: `d = T/B`. With the default 3-day unit
/// (T = 259 200 s) and B = 2 transits/unit, d = 129 600 s.
#[test]
fn transit_interval_delay_matches_formula() {
    let mut t = BandwidthTable::new(2, 1.0);
    t.record_arrival_from(lm(1));
    t.record_arrival_from(lm(1));
    t.end_of_unit();
    let sim = SimConfig::default();
    assert_eq!(sim.time_unit.secs(), 259_200);
    let flow = FlowConfig {
        delay_model: LinkDelayModel::TransitInterval,
        ..FlowConfig::default()
    };
    let d = t.link_delay(lm(1), &flow, &sim);
    assert!((d - 129_600.0).abs() < 1e-9, "d = {d}");
}

/// Throughput model: `d = T·S/(B·M)`. Defaults: T = 259 200 s,
/// S = 1 024 B, M = 2 048 000 B; with B = 2,
/// d = 259 200 · 1 024 / (2 · 2 048 000) = 64.8 s.
#[test]
fn throughput_delay_matches_formula() {
    let mut t = BandwidthTable::new(2, 1.0);
    t.record_arrival_from(lm(1));
    t.record_arrival_from(lm(1));
    t.end_of_unit();
    let sim = SimConfig::default();
    assert_eq!(sim.packet_size, 1_024);
    assert_eq!(sim.node_memory, 2_048_000);
    let flow = FlowConfig {
        delay_model: LinkDelayModel::Throughput,
        ..FlowConfig::default()
    };
    let d = t.link_delay(lm(1), &flow, &sim);
    assert!((d - 64.8).abs() < 1e-9, "d = {d}");
}

/// A never-measured link has B = 0 < min_bandwidth: infinite delay under
/// both models (the zero-bandwidth edge case — no division blow-up).
#[test]
fn zero_bandwidth_link_is_unusable() {
    let t = BandwidthTable::new(2, 0.2);
    let sim = SimConfig::default();
    for model in [LinkDelayModel::TransitInterval, LinkDelayModel::Throughput] {
        let flow = FlowConfig {
            delay_model: model,
            ..FlowConfig::default()
        };
        assert!(t.link_delay(lm(1), &flow, &sim).is_infinite());
    }
}

/// A measured-but-weak link below `min_bandwidth` is also unusable, and
/// crossing the threshold flips it to a finite delay.
#[test]
fn below_min_bandwidth_is_unusable() {
    let mut t = BandwidthTable::new(2, 0.2);
    t.record_arrival_from(lm(1));
    t.end_of_unit(); // B = 0.2·1 = 0.2
    let sim = SimConfig::default();
    let strict = FlowConfig {
        min_bandwidth: 0.25,
        ..FlowConfig::default()
    };
    assert!(t.link_delay(lm(1), &strict, &sim).is_infinite());
    let lax = FlowConfig {
        min_bandwidth: 0.1,
        ..FlowConfig::default()
    };
    let d = t.link_delay(lm(1), &lax, &sim);
    assert!((d - 259_200.0 / 0.2).abs() < 1e-9, "d = {d}");
}

/// A reported zero overrides the symmetric fallback (one-way road): the
/// link becomes unusable even though incoming traffic suggests otherwise.
#[test]
fn zero_report_overrides_symmetric_fallback() {
    let mut t = BandwidthTable::new(2, 1.0);
    for _ in 0..4 {
        t.record_arrival_from(lm(1));
    }
    t.end_of_unit(); // incoming B(1→me) = 4: symmetry would claim 4 back
    let sim = SimConfig::default();
    let flow = FlowConfig::default();
    assert!((t.link_delay(lm(1), &flow, &sim) - 259_200.0 / 4.0).abs() < 1e-9);
    assert!(t.apply_report(lm(1), 0.0, 1));
    assert!(t.link_delay(lm(1), &flow, &sim).is_infinite());
}
