//! Property tests for the DTN-FLOW routing substrate: the distance-vector
//! table and the bandwidth table.

use dtnflow_core::config::SimConfig;
use dtnflow_core::ids::LandmarkId;
use dtnflow_router::{BandwidthTable, FlowConfig, RoutingTable, StoredVector};
use proptest::prelude::*;

/// Random link-delay function over `n` landmarks as a dense vector.
fn arb_links(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![3 => (1u32..1_000).prop_map(|d| d as f64), 1 => Just(f64::INFINITY)],
        n..=n,
    )
}

proptest! {
    #[test]
    fn recomputed_routes_satisfy_triangle_consistency(
        n in 3usize..10,
        seed_links in (3usize..10).prop_flat_map(arb_links),
        vec_delays in proptest::collection::vec(0u32..500, 0..60),
    ) {
        let n = n.min(seed_links.len()).max(3);
        let links = &seed_links[..n];
        let mut rt = RoutingTable::new(LandmarkId(0), n);
        // Install some random neighbour vectors.
        let mut k = 0usize;
        for from in 1..n {
            let mut delays = vec![f64::INFINITY; n];
            delays[from] = 0.0;
            for (d, slot) in delays.iter_mut().enumerate() {
                if d != from && k < vec_delays.len() && vec_delays[k] % 3 != 0 {
                    *slot = vec_delays[k] as f64;
                }
                k += 1;
            }
            rt.receive(LandmarkId::from(from), StoredVector { seq: 1, delays });
        }
        let link = |l: LandmarkId| links[l.index()];
        rt.recompute(&link);
        for dest in 1..n {
            let e = rt.entry(LandmarkId::from(dest));
            if let Some(next) = e.next {
                // The chosen route's delay is exactly link + claimed.
                prop_assert!(links[next.index()].is_finite());
                prop_assert!(e.delay >= links[next.index()] - 1e-9);
                // Backup (when present) is a different neighbour and no
                // better than the primary.
                if let Some(b) = e.backup {
                    prop_assert_ne!(b, next);
                    prop_assert!(e.backup_delay >= e.delay - 1e-9);
                }
            } else {
                prop_assert!(e.delay.is_infinite());
            }
        }
        // Self entry is always zero.
        prop_assert_eq!(rt.delay_to(LandmarkId(0)), 0.0);
        // Coverage equals the fraction of finite entries.
        let finite = (1..n)
            .filter(|&d| rt.delay_to(LandmarkId::from(d)).is_finite())
            .count();
        prop_assert!((rt.coverage() - finite as f64 / (n - 1) as f64).abs() < 1e-12);
    }

    #[test]
    fn snapshot_roundtrips_through_receive(
        n in 3usize..8,
        links in (3usize..8).prop_flat_map(arb_links),
    ) {
        let n = n.min(links.len()).max(3);
        // A landmark's snapshot can be received by another landmark and
        // recomputed without panicking; the receiving side's entries via
        // that neighbour are link + snapshot.
        let mut a = RoutingTable::new(LandmarkId(1), n);
        a.recompute(&|l| links[l.index() % links.len()]);
        let snap = a.snapshot();
        prop_assert_eq!(snap.len(), n);
        prop_assert_eq!(snap[1], 0.0);

        let mut b = RoutingTable::new(LandmarkId(0), n);
        b.receive(LandmarkId(1), StoredVector { seq: 3, delays: snap.clone() });
        b.recompute(&|l| if l.index() == 1 { 5.0 } else { f64::INFINITY });
        for (d, &s) in snap.iter().enumerate().skip(1) {
            let expect = 5.0 + s;
            let got = b.delay_to(LandmarkId::from(d));
            if expect.is_finite() {
                prop_assert!((got - expect).abs() < 1e-9);
            } else {
                prop_assert!(got.is_infinite());
            }
        }
    }

    #[test]
    fn ewma_bandwidth_is_bounded_by_observations(
        arrivals in proptest::collection::vec(0u8..20, 1..40),
        alpha in 0.05f64..1.0,
    ) {
        let mut t = BandwidthTable::new(2, alpha);
        let max = *arrivals.iter().max().unwrap() as f64;
        for &count in &arrivals {
            for _ in 0..count {
                t.record_arrival_from(LandmarkId(1));
            }
            t.end_of_unit();
            // EWMA of values in [0, max] stays in [0, max].
            let b = t.incoming(LandmarkId(1));
            prop_assert!((0.0..=max + 1e-9).contains(&b), "b {b} max {max}");
        }
    }

    #[test]
    fn reports_are_monotone_in_seq(
        updates in proptest::collection::vec((0u64..50, 0u32..100), 1..40),
    ) {
        let mut t = BandwidthTable::new(2, 0.5);
        let mut best_seq = None;
        let mut current = None;
        for &(seq, val) in &updates {
            let accepted = t.apply_report(LandmarkId(1), val as f64, seq);
            let newer = best_seq.is_none_or(|s| seq > s);
            prop_assert_eq!(accepted, newer);
            if newer {
                best_seq = Some(seq);
                current = Some(val as f64);
            }
            prop_assert_eq!(t.outgoing(LandmarkId(1)), current.unwrap());
        }
    }

    #[test]
    fn link_delay_decreases_with_bandwidth(c1 in 1u8..40, c2 in 1u8..40) {
        let sim = SimConfig::default();
        let flow = FlowConfig::default();
        let make = |count: u8| {
            let mut t = BandwidthTable::new(2, 1.0);
            for _ in 0..count {
                t.record_arrival_from(LandmarkId(1));
            }
            t.end_of_unit();
            t.link_delay(LandmarkId(1), &flow, &sim)
        };
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(make(hi) <= make(lo) + 1e-9);
    }
}
