//! Property equivalence: the `FlowRouter` next-hop route cache vs an
//! uncached recompute, across recompute stamps and epoch flushes
//! (DESIGN.md §14). A cached router serving an arbitrary interleaving
//! of table growth, recomputes, cache flushes, and lookups must answer
//! every lookup exactly as a cold router (fresh cache, same table)
//! does — the cache may only ever memoize, never change, a decision.

use dtnflow_core::ids::LandmarkId;
use dtnflow_router::{FlowConfig, FlowRouter, RoutingTable};
use proptest::prelude::*;

const LANDMARKS: usize = 8;

#[derive(Debug, Clone)]
enum Op {
    /// Store a fresher distance claim `from -> dst` and recompute, the
    /// way a carried-table merge does. Bumps the table's recompute
    /// stamp, so every cached cell must refill.
    Claim { from: u16, dst: u16, delay: u16 },
    /// Re-derive entries over unchanged vectors (stamp still bumps).
    Recompute,
    /// A station up/down transition: router-wide epoch bump.
    FlushEpoch,
    /// One next-hop decision at landmark 0.
    Lookup { dst: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let lm = 1..LANDMARKS as u16;
    prop_oneof![
        2 => (lm.clone(), lm.clone(), 1u16..2_000).prop_map(|(from, dst, delay)| {
            Op::Claim { from, dst, delay }
        }),
        1 => Just(Op::Recompute),
        1 => Just(Op::FlushEpoch),
        4 => (1..LANDMARKS as u16).prop_map(|dst| Op::Lookup { dst }),
    ]
}

fn link_delay(lm: LandmarkId) -> f64 {
    30.0 + f64::from(lm.0) * 5.0
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn cached_lookup_matches_cold_router(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut table = RoutingTable::new(LandmarkId(0), LANDMARKS);
        let mut cached = FlowRouter::new(FlowConfig::default(), 1, LANDMARKS);
        cached.bench_install_table(LandmarkId(0), table.clone());
        let mut claim_seq = 0u64;
        for op in ops {
            match op {
                Op::Claim { from, dst, delay } => {
                    claim_seq += 1;
                    table.set_claim(
                        LandmarkId(from),
                        LandmarkId(dst),
                        f64::from(delay),
                        claim_seq,
                    );
                    table.recompute(&link_delay);
                    cached.bench_install_table(LandmarkId(0), table.clone());
                }
                Op::Recompute => {
                    table.recompute(&link_delay);
                    cached.bench_install_table(LandmarkId(0), table.clone());
                }
                Op::FlushEpoch => cached.bench_flush_route_cache(),
                Op::Lookup { dst } => {
                    let dst = LandmarkId(dst);
                    // Cold reference: a fresh router whose first (and
                    // only) lookup takes the uncached recompute path.
                    let mut cold = FlowRouter::new(FlowConfig::default(), 1, LANDMARKS);
                    cold.bench_install_table(LandmarkId(0), table.clone());
                    let want = cold.bench_route_lookup(LandmarkId(0), dst);
                    let got = cached.bench_route_lookup(LandmarkId(0), dst);
                    prop_assert_eq!(got, want, "dst {:?}", dst);
                    // A repeat is a guaranteed hit and must agree too.
                    prop_assert_eq!(cached.bench_route_lookup(LandmarkId(0), dst), want);
                }
            }
        }
    }
}
