//! The DTN-FLOW router (paper §IV).
//!
//! DTN-FLOW equips each subarea's landmark with a station that acts as a
//! router: it measures the transit-link bandwidth to its neighbours
//! (§IV-C.1), builds a distance-vector routing table shipped around by
//! mobile nodes (§IV-C.2), and forwards each packet to the connected node
//! most likely to transit to the packet's next-hop landmark (§IV-D).
//!
//! * [`bandwidth::BandwidthTable`] — Table III, Eq. 4;
//! * [`routing_table::RoutingTable`] — Tables IV/V, Fig. 7;
//! * [`config::FlowConfig`] — all knobs, including the §IV-E extensions;
//! * [`router::FlowRouter`] — the `dtnflow_sim::Router` implementation;
//! * [`observer`] — routing-table coverage/stability snapshots (Fig. 8);
//! * [`hybrid::HybridFlowRouter`] — the §VI future-work extension adding
//!   opportunistic node-to-node handoffs on top of DTN-FLOW.

#![forbid(unsafe_code)]
// Non-test code in this crate must not unwrap/expect (detlint P1);
// clippy enforces the same invariant at compile time.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bandwidth;
pub mod config;
pub mod hybrid;
pub mod observer;
pub mod router;
pub mod routing_table;

pub use bandwidth::{BandwidthMatrix, BandwidthTable};
pub use config::{
    DeadEndConfig, DegradationConfig, FlowConfig, LinkDelayModel, LoadBalanceConfig, LoopInjection,
};
pub use hybrid::HybridFlowRouter;
pub use observer::ObservationRow;
pub use router::FlowRouter;
pub use routing_table::{RouteEntry, RoutingTable, StoredVector};
