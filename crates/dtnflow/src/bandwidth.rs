//! Per-landmark transit-link bandwidth measurement (paper §IV-C.1,
//! Table III, Eq. 4).
//!
//! A landmark `j` directly measures its *incoming* links: every node
//! arriving at `j` reports its previous landmark `i`, so `j` counts the
//! per-unit transits `n(i→j)` and smooths them with Eq. 4,
//! `B = α·n + (1−α)·B_prev`.
//!
//! The *outgoing* bandwidth `B(j→i)` is measured at `i`, not at `j`. Two
//! mechanisms give `j` an estimate: a fresh report of `i`'s measurement,
//! carried from `i` back to `j` by a node that `i` predicts will leave for
//! `j`; and, absent a fresh report, the O3 symmetry assumption
//! `B(j→i) ≈ B(i→j)` using `j`'s own incoming measurement.

use crate::config::{FlowConfig, LinkDelayModel};
use dtnflow_core::config::SimConfig;
use dtnflow_core::dense::LinkMatrix;
use dtnflow_core::ids::LandmarkId;
use dtnflow_snapshot::{Reader, SnapshotError, Writer};

/// All landmarks' transit-link measurements in one flat `n×n` store.
///
/// Row `me` holds landmark `me`'s view: this unit's incoming transit
/// counts `n(from→me)`, the Eq. 4 smoothed incoming bandwidths
/// `B(from→me)` (a [`LinkMatrix`] cell `me * n + from`), and the carried
/// outgoing-bandwidth reports `B(me→to)`. Keeping every landmark's row in
/// the same flat arrays lets the end-of-unit EWMA fold run as a single
/// linear pass over all `n²` links instead of `n` per-landmark loops.
#[derive(Debug, Clone)]
pub struct BandwidthMatrix {
    n: usize,
    /// This unit's incoming transit counts, cell `me * n + from`.
    counts: Vec<u32>,
    /// Smoothed incoming bandwidth `B(from→me)`, cell `me * n + from`.
    incoming: LinkMatrix,
    /// Reported outgoing bandwidth `B(me→to)` with the time-unit sequence
    /// of the report (freshness guard), cell `me * n + to`.
    reported: Vec<Option<(f64, u64)>>,
    alpha: f64,
}

impl BandwidthMatrix {
    /// Empty measurements for a network of `num_landmarks` landmarks.
    pub fn new(num_landmarks: usize, alpha: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        BandwidthMatrix {
            n: num_landmarks,
            counts: vec![0; num_landmarks * num_landmarks],
            incoming: LinkMatrix::filled(num_landmarks, 0.0),
            reported: vec![None; num_landmarks * num_landmarks],
            alpha,
        }
    }

    #[inline]
    fn cell(&self, me: LandmarkId, other: LandmarkId) -> usize {
        me.index() * self.n + other.index()
    }

    /// The network size the matrix was built for (one side of the n×n
    /// store).
    pub fn side(&self) -> usize {
        self.n
    }

    /// A node arrived at `me`, reporting `from` as its previous landmark.
    pub fn record_arrival_from(&mut self, me: LandmarkId, from: LandmarkId) {
        let i = self.cell(me, from);
        self.counts[i] += 1;
    }

    /// Close the current time unit for *every* landmark at once: fold
    /// each link's count into its smoothed incoming bandwidth (Eq. 4,
    /// `B = α·n + (1−α)·B_prev`) and reset the counters. Per-landmark
    /// folds are independent, so one flat pass computes exactly what `n`
    /// per-row folds would.
    pub fn end_of_unit_all(&mut self) {
        let alpha = self.alpha;
        for (b, c) in self
            .incoming
            .as_mut_slice()
            .iter_mut()
            .zip(self.counts.iter_mut())
        {
            *b = alpha * (*c as f64) + (1.0 - alpha) * *b;
            *c = 0;
        }
    }

    /// The smoothed incoming bandwidth `B(from → me)`.
    #[inline]
    pub fn incoming(&self, me: LandmarkId, from: LandmarkId) -> f64 {
        self.incoming.at(me.0, from.0)
    }

    /// Apply at `me` a carried report of its outgoing bandwidth
    /// `B(me → to)` measured at `to`, stamped with the measuring unit.
    /// Stale reports (sequence not newer than the stored one) are
    /// discarded, as in the paper. Returns whether the report was
    /// accepted.
    pub fn apply_report(
        &mut self,
        me: LandmarkId,
        to: LandmarkId,
        value: f64,
        unit_seq: u64,
    ) -> bool {
        let i = self.cell(me, to);
        match self.reported[i] {
            Some((_, seq)) if seq >= unit_seq => false,
            _ => {
                self.reported[i] = Some((value, unit_seq));
                true
            }
        }
    }

    /// Best available estimate at `me` of the outgoing bandwidth
    /// `B(me → to)`: a received report when present, else the symmetric
    /// assumption (its incoming measurement of `to → me`).
    #[inline]
    pub fn outgoing(&self, me: LandmarkId, to: LandmarkId) -> f64 {
        match self.reported[self.cell(me, to)] {
            Some((v, _)) => v,
            None => self.incoming.at(me.0, to.0),
        }
    }

    /// All landmarks with usable outgoing bandwidth from `me` (the
    /// neighbour set of the distance-vector protocol).
    pub fn neighbors(&self, me: LandmarkId, min_bandwidth: f64) -> Vec<LandmarkId> {
        (0..self.n)
            .map(LandmarkId::from)
            .filter(|&l| self.outgoing(me, l) >= min_bandwidth)
            .collect()
    }

    /// Expected per-hop delay of the link `me → to` in seconds, under the
    /// configured delay model; `f64::INFINITY` when the link is unusable.
    pub fn link_delay(
        &self,
        me: LandmarkId,
        to: LandmarkId,
        flow: &FlowConfig,
        sim: &SimConfig,
    ) -> f64 {
        let b = self.outgoing(me, to);
        if b < flow.min_bandwidth {
            return f64::INFINITY;
        }
        let t = sim.time_unit.secs() as f64;
        match flow.delay_model {
            LinkDelayModel::TransitInterval => t / b,
            LinkDelayModel::Throughput => t * sim.packet_size as f64 / (b * sim.node_memory as f64),
        }
    }

    /// Checkpoint encoding (DESIGN.md §11): counts, smoothed EWMA cells
    /// (raw f64 bits), carried reports, and alpha.
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.n);
        for &c in &self.counts {
            w.put_u32(c);
        }
        self.incoming.encode(w);
        for slot in &self.reported {
            match slot {
                None => w.put_u8(0),
                Some((v, seq)) => {
                    w.put_u8(1);
                    w.put_f64(*v);
                    w.put_u64(*seq);
                }
            }
        }
        w.put_f64(self.alpha);
    }

    /// Inverse of [`BandwidthMatrix::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<BandwidthMatrix, SnapshotError> {
        const CTX: &str = "BandwidthMatrix";
        let n = r.usize(CTX)?;
        let cells = n
            .checked_mul(n)
            .ok_or(SnapshotError::Corrupt { context: CTX })?;
        if cells > r.remaining() / 4 {
            return Err(SnapshotError::Corrupt { context: CTX });
        }
        let mut counts = Vec::with_capacity(cells);
        for _ in 0..cells {
            counts.push(r.u32(CTX)?);
        }
        let incoming = LinkMatrix::decode(r)?;
        if incoming.side() != n {
            return Err(SnapshotError::Corrupt { context: CTX });
        }
        let mut reported = Vec::with_capacity(cells);
        for _ in 0..cells {
            reported.push(match r.u8(CTX)? {
                0 => None,
                1 => Some((r.f64(CTX)?, r.u64(CTX)?)),
                t => {
                    return Err(SnapshotError::InvalidTag {
                        context: "BandwidthMatrix.reported",
                        tag: t as u64,
                    })
                }
            });
        }
        let alpha = r.f64(CTX)?;
        Ok(BandwidthMatrix {
            n,
            counts,
            incoming,
            reported,
            alpha,
        })
    }
}

/// One landmark's view of its transit links — a single-row façade over
/// [`BandwidthMatrix`], kept as the stable single-landmark API (the
/// worked-example and property tests for Eq. 4 speak it directly).
#[derive(Debug, Clone)]
pub struct BandwidthTable {
    matrix: BandwidthMatrix,
}

impl BandwidthTable {
    const ME: LandmarkId = LandmarkId(0);

    /// Empty table for a network of `num_landmarks` landmarks.
    pub fn new(num_landmarks: usize, alpha: f64) -> Self {
        BandwidthTable {
            matrix: BandwidthMatrix::new(num_landmarks, alpha),
        }
    }

    /// A node arrived here, reporting `from` as its previous landmark.
    pub fn record_arrival_from(&mut self, from: LandmarkId) {
        self.matrix.record_arrival_from(Self::ME, from);
    }

    /// Close the current time unit: fold this unit's counts into the
    /// smoothed incoming bandwidths (Eq. 4) and reset the counters.
    pub fn end_of_unit(&mut self) {
        self.matrix.end_of_unit_all();
    }

    /// The smoothed incoming bandwidth `B(from → me)`.
    pub fn incoming(&self, from: LandmarkId) -> f64 {
        self.matrix.incoming(Self::ME, from)
    }

    /// Apply a carried report of our outgoing bandwidth `B(me → to)`
    /// measured at `to`, stamped with the measuring unit. Stale reports
    /// (sequence not newer than the stored one) are discarded, as in the
    /// paper. Returns whether the report was accepted.
    pub fn apply_report(&mut self, to: LandmarkId, value: f64, unit_seq: u64) -> bool {
        self.matrix.apply_report(Self::ME, to, value, unit_seq)
    }

    /// Best available estimate of the outgoing bandwidth `B(me → to)`:
    /// a received report when present, else the symmetric assumption
    /// (our incoming measurement of `to → me`).
    pub fn outgoing(&self, to: LandmarkId) -> f64 {
        self.matrix.outgoing(Self::ME, to)
    }

    /// All landmarks with usable outgoing bandwidth (the neighbour set of
    /// the distance-vector protocol).
    pub fn neighbors(&self, min_bandwidth: f64) -> Vec<LandmarkId> {
        self.matrix.neighbors(Self::ME, min_bandwidth)
    }

    /// Expected per-hop delay of the link `me → to` in seconds, under the
    /// configured delay model; `f64::INFINITY` when the link is unusable.
    pub fn link_delay(&self, to: LandmarkId, flow: &FlowConfig, sim: &SimConfig) -> f64 {
        self.matrix.link_delay(Self::ME, to, flow, sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(i: u16) -> LandmarkId {
        LandmarkId(i)
    }

    #[test]
    fn ewma_follows_eq4() {
        let mut t = BandwidthTable::new(3, 0.5);
        t.record_arrival_from(lm(1));
        t.record_arrival_from(lm(1));
        t.end_of_unit();
        assert!((t.incoming(lm(1)) - 1.0).abs() < 1e-12); // 0.5*2 + 0.5*0
        t.record_arrival_from(lm(1));
        t.end_of_unit();
        assert!((t.incoming(lm(1)) - 1.0).abs() < 1e-12); // 0.5*1 + 0.5*1
        t.end_of_unit();
        assert!((t.incoming(lm(1)) - 0.5).abs() < 1e-12); // decays
        assert_eq!(t.incoming(lm(2)), 0.0);
    }

    #[test]
    fn reports_override_symmetry_and_staleness_is_rejected() {
        let mut t = BandwidthTable::new(2, 0.5);
        t.record_arrival_from(lm(1));
        t.record_arrival_from(lm(1));
        t.end_of_unit();
        // No report: symmetric fallback uses incoming(1) = 1.0.
        assert!((t.outgoing(lm(1)) - 1.0).abs() < 1e-12);
        assert!(t.apply_report(lm(1), 3.0, 5));
        assert!((t.outgoing(lm(1)) - 3.0).abs() < 1e-12);
        // Stale (same or older unit) reports are discarded.
        assert!(!t.apply_report(lm(1), 9.0, 5));
        assert!(!t.apply_report(lm(1), 9.0, 4));
        assert!((t.outgoing(lm(1)) - 3.0).abs() < 1e-12);
        assert!(t.apply_report(lm(1), 2.0, 6));
        assert!((t.outgoing(lm(1)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_filter_by_bandwidth() {
        let mut t = BandwidthTable::new(3, 1.0);
        t.record_arrival_from(lm(1));
        t.end_of_unit();
        t.apply_report(lm(2), 0.01, 1);
        let n = t.neighbors(0.05);
        assert_eq!(n, vec![lm(1)]);
    }

    #[test]
    fn link_delay_models() {
        let mut t = BandwidthTable::new(2, 1.0);
        t.record_arrival_from(lm(1));
        t.record_arrival_from(lm(1));
        t.end_of_unit(); // B = 2
        let sim = SimConfig::default(); // T = 3 days, S = 1 kB, M = 2000 kB
        let mut flow = FlowConfig::default();
        let d = t.link_delay(lm(1), &flow, &sim);
        assert!((d - 259_200.0 / 2.0).abs() < 1e-9);
        flow.delay_model = LinkDelayModel::Throughput;
        let d2 = t.link_delay(lm(1), &flow, &sim);
        assert!((d2 - 259_200.0 * 1_024.0 / (2.0 * 2_048_000.0)).abs() < 1e-9);
        // Dead link is infinite under both models.
        assert!(t.link_delay(lm(0), &flow, &sim).is_infinite());
    }

    #[test]
    fn asymmetric_links_need_reports() {
        // One-way road: traffic flows 1 -> me only. The symmetric fallback
        // wrongly claims me -> 1 capacity; a report fixes it.
        let mut t = BandwidthTable::new(2, 1.0);
        for _ in 0..5 {
            t.record_arrival_from(lm(1));
        }
        t.end_of_unit();
        assert!((t.outgoing(lm(1)) - 5.0).abs() < 1e-12); // wrong (symmetry)
        t.apply_report(lm(1), 0.0, 1); // the truth from the other side
        assert_eq!(t.outgoing(lm(1)), 0.0);
        assert!(t.neighbors(0.05).is_empty());
    }
}
