//! The per-landmark distance-vector routing table (paper §IV-C.2,
//! Tables IV/V, Fig. 7).
//!
//! Each landmark stores the most recent distance vector received from each
//! neighbour (stamped with the sender's time-unit sequence; older vectors
//! are discarded) and computes, for every destination, the next-hop
//! neighbour minimizing `link_delay(me→n) + D_n(dest)`. A *backup* next
//! hop — the second-best distinct neighbour — supports the §IV-E.3 load
//! balancing extension (Table V) and is maintained by the same
//! computation at no extra communication cost.

use dtnflow_core::dense::DenseMap;
use dtnflow_core::ids::LandmarkId;
use dtnflow_snapshot::{Reader, SnapshotError, Writer};

/// One routing-table row (Table V layout: destination, next hop, overall
/// delay, backup next hop, backup delay).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteEntry {
    pub next: Option<LandmarkId>,
    pub delay: f64,
    pub backup: Option<LandmarkId>,
    pub backup_delay: f64,
}

impl RouteEntry {
    const UNREACHABLE: RouteEntry = RouteEntry {
        next: None,
        delay: f64::INFINITY,
        backup: None,
        backup_delay: f64::INFINITY,
    };
}

/// A distance vector as received from a neighbour.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredVector {
    /// The sender's time-unit sequence when the vector was snapshot.
    pub seq: u64,
    /// Expected delay from the sender to each destination, seconds
    /// (`INFINITY` = sender cannot reach it).
    pub delays: Vec<f64>,
}

/// One landmark's routing table.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    me: LandmarkId,
    num: usize,
    vectors: DenseMap<LandmarkId, StoredVector>,
    entries: Vec<RouteEntry>,
    /// Bumped whenever the stored vectors change (accepted receive,
    /// claim injection, distrust, stale decay) — lets observers tell
    /// "table content changed" apart from "recompute over same inputs".
    revision: u64,
    /// Bumped on every [`RoutingTable::recompute`] — the entries (what
    /// [`RoutingTable::entry`] serves) can only change when this does,
    /// so it is the validity stamp for the router's next-hop route
    /// cache (DESIGN.md §14). Distinct from `revision`: stored vectors
    /// can change without a recompute, and a recompute can rerun over
    /// changed link delays without any vector change.
    computed: u64,
}

impl RoutingTable {
    /// Empty table for landmark `me` in a network of `num` landmarks.
    pub fn new(me: LandmarkId, num: usize) -> Self {
        assert!(me.index() < num);
        let mut entries = vec![RouteEntry::UNREACHABLE; num];
        entries[me.index()] = RouteEntry {
            next: None,
            delay: 0.0,
            backup: None,
            backup_delay: 0.0,
        };
        RoutingTable {
            me,
            num,
            vectors: DenseMap::with_index_capacity(num),
            entries,
            revision: 0,
            computed: 0,
        }
    }

    /// The landmark owning this table.
    pub fn me(&self) -> LandmarkId {
        self.me
    }

    /// The network size the table was built for (number of destinations).
    pub fn size(&self) -> usize {
        self.num
    }

    /// How many times the stored vectors have changed (observability).
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// How many times the entries have been recomputed — the validity
    /// stamp for memoized next-hop decisions.
    pub fn computed(&self) -> u64 {
        self.computed
    }

    /// Store a vector received from `from` unless an equally-new or newer
    /// one is already stored. Returns whether it was accepted. The caller
    /// must recompute afterwards.
    pub fn receive(&mut self, from: LandmarkId, vector: StoredVector) -> bool {
        assert_eq!(vector.delays.len(), self.num, "vector length mismatch");
        assert!(from != self.me, "cannot receive own vector");
        match self.vectors.get(from) {
            Some(old) if old.seq >= vector.seq => false,
            _ => {
                self.vectors.insert(from, vector);
                self.revision += 1;
                true
            }
        }
    }

    /// Overwrite the stored vector entry for one destination. Two users:
    /// the §IV-E.2 loop-correction exchange installs members' fresh delay
    /// claims out-of-band, and the Table VII experiment injects falsified
    /// claims to create loops.
    pub fn set_claim(&mut self, from: LandmarkId, dest: LandmarkId, delay: f64, seq: u64) {
        let num = self.num;
        let v = self.vectors.get_or_insert_with(from, || StoredVector {
            seq,
            delays: vec![f64::INFINITY; num],
        });
        v.seq = v.seq.max(seq);
        v.delays[dest.index()] = delay;
        self.revision += 1;
    }

    /// Drop the stored entries for `dest` that came from the given
    /// landmarks (§IV-E.2 loop correction: distrust the loop members'
    /// claims about this destination until fresh vectors arrive).
    pub fn distrust(&mut self, dest: LandmarkId, members: &[LandmarkId]) {
        let mut touched = false;
        for m in members {
            if let Some(v) = self.vectors.get_mut(*m) {
                v.delays[dest.index()] = f64::INFINITY;
                touched = true;
            }
        }
        if touched {
            self.revision += 1;
        }
    }

    /// Age out stale neighbour vectors (graceful degradation under
    /// faults): every stored vector whose sequence lags `current_seq` by
    /// more than `max_age` units has each finite, non-zero delay claim
    /// multiplied by `factor`. Called once per time unit, the penalty
    /// compounds per unit of excess staleness, so routes learned before
    /// an outage look progressively worse until a fresh vector
    /// ([`RoutingTable::receive`]) replaces the decayed one wholesale.
    /// Returns how many vectors were decayed; the caller must recompute
    /// when it is non-zero.
    pub fn decay_stale(&mut self, current_seq: u64, max_age: u64, factor: f64) -> usize {
        assert!(factor >= 1.0, "decay factor must be at least 1");
        let mut decayed = 0;
        for v in self.vectors.values_mut() {
            if current_seq.saturating_sub(v.seq) <= max_age {
                continue;
            }
            let mut touched = false;
            for d in v.delays.iter_mut() {
                if d.is_finite() && *d > 0.0 {
                    *d *= factor;
                    touched = true;
                }
            }
            if touched {
                decayed += 1;
            }
        }
        if decayed > 0 {
            self.revision += 1;
        }
        decayed
    }

    /// Recompute every entry from the stored vectors, given the current
    /// per-neighbour link delays (`INFINITY` = not a neighbour). Neighbours
    /// without a stored vector still provide their direct link (a vector
    /// in which only they are reachable, at delay 0).
    pub fn recompute(&mut self, link_delay: &dyn Fn(LandmarkId) -> f64) {
        // Neighbour-outer, destination-inner: the link delay is evaluated
        // once per neighbour (n calls, not n²) and each neighbour's stored
        // vector is scanned contiguously. Per destination the candidate
        // neighbours still arrive in ascending id order — the same update
        // sequence as the destination-outer form — so best/backup choices
        // and tie-breaks are unchanged.
        let me = self.me.index();
        for (dest, e) in self.entries.iter_mut().enumerate() {
            if dest != me {
                *e = RouteEntry::UNREACHABLE;
            }
        }
        for n in 0..self.num {
            if n == me {
                continue;
            }
            let nlm = LandmarkId::from(n);
            let ld = link_delay(nlm);
            if !ld.is_finite() {
                continue;
            }
            let stored = self.vectors.get(nlm);
            for dest in 0..self.num {
                if dest == me {
                    continue;
                }
                let via = match stored {
                    Some(v) => v.delays[dest],
                    // No vector yet: only the neighbour itself is known.
                    None if n == dest => 0.0,
                    None => f64::INFINITY,
                };
                let total = ld + via;
                if !total.is_finite() {
                    continue;
                }
                let best = &mut self.entries[dest];
                if total < best.delay {
                    best.backup = best.next;
                    best.backup_delay = best.delay;
                    best.next = Some(nlm);
                    best.delay = total;
                } else if total < best.backup_delay && best.next != Some(nlm) {
                    best.backup = Some(nlm);
                    best.backup_delay = total;
                }
            }
        }
        self.computed += 1;
    }

    /// The routing entry for a destination.
    pub fn entry(&self, dest: LandmarkId) -> &RouteEntry {
        &self.entries[dest.index()]
    }

    /// Expected delay to a destination (0 for self, `INFINITY` when
    /// unreachable).
    pub fn delay_to(&self, dest: LandmarkId) -> f64 {
        self.entries[dest.index()].delay
    }

    /// The next-hop landmark toward a destination.
    pub fn next_hop(&self, dest: LandmarkId) -> Option<LandmarkId> {
        self.entries[dest.index()].next
    }

    /// This landmark's own distance vector: expected delay to every
    /// destination (self = 0).
    pub fn snapshot(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.delay).collect()
    }

    /// Fraction of other landmarks with a usable route — the Fig. 8
    /// coverage metric.
    pub fn coverage(&self) -> f64 {
        if self.num <= 1 {
            return 1.0;
        }
        let covered = self
            .entries
            .iter()
            .enumerate()
            .filter(|&(d, e)| d != self.me.index() && e.delay.is_finite())
            .count();
        covered as f64 / (self.num - 1) as f64
    }

    /// The next-hop column, for the Fig. 8 stability metric.
    pub fn next_hops(&self) -> Vec<Option<LandmarkId>> {
        self.entries.iter().map(|e| e.next).collect()
    }

    /// Rows with a usable route, for display (Table X): destination,
    /// next hop, delay in seconds.
    pub fn rows(&self) -> Vec<(LandmarkId, LandmarkId, f64)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(d, e)| {
                let next = e.next?;
                (d != self.me.index()).then_some((LandmarkId::from(d), next, e.delay))
            })
            .collect()
    }

    /// Number of finite-delay entries (maintenance-cost accounting).
    pub fn table_size(&self) -> usize {
        self.entries.iter().filter(|e| e.delay.is_finite()).count()
    }

    /// Checkpoint encoding (DESIGN.md §11): stored vectors, computed
    /// entries AND the revision counter are all serialized verbatim —
    /// entries are *not* recomputed on restore (recompute needs the live
    /// link-delay closure, and the revision counter feeds the Fig. 8
    /// observer, so both must survive exactly).
    pub fn encode(&self, w: &mut Writer) {
        w.put_u16(self.me.0);
        w.put_usize(self.num);
        self.vectors.encode_with(w, |w, v| {
            w.put_u64(v.seq);
            w.put_usize(v.delays.len());
            for &d in &v.delays {
                w.put_f64(d);
            }
        });
        w.put_usize(self.entries.len());
        for e in &self.entries {
            encode_opt_lm(w, e.next);
            w.put_f64(e.delay);
            encode_opt_lm(w, e.backup);
            w.put_f64(e.backup_delay);
        }
        w.put_u64(self.revision);
        w.put_u64(self.computed);
    }

    /// Inverse of [`RoutingTable::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<RoutingTable, SnapshotError> {
        const CTX: &str = "RoutingTable";
        let me = LandmarkId(r.u16(CTX)?);
        let num = r.usize(CTX)?;
        if me.index() >= num {
            return Err(SnapshotError::Corrupt { context: CTX });
        }
        let vectors = DenseMap::decode_with(r, |r| {
            let seq = r.u64("StoredVector")?;
            let n = r.seq_len("StoredVector.delays")?;
            if n != num {
                return Err(SnapshotError::Corrupt {
                    context: "StoredVector",
                });
            }
            let mut delays = Vec::with_capacity(n);
            for _ in 0..n {
                delays.push(r.f64("StoredVector")?);
            }
            Ok::<_, SnapshotError>(StoredVector { seq, delays })
        })?;
        let n = r.seq_len("RoutingTable.entries")?;
        if n != num {
            return Err(SnapshotError::Corrupt { context: CTX });
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            entries.push(RouteEntry {
                next: decode_opt_lm(r, "RouteEntry.next")?,
                delay: r.f64(CTX)?,
                backup: decode_opt_lm(r, "RouteEntry.backup")?,
                backup_delay: r.f64(CTX)?,
            });
        }
        let revision = r.u64(CTX)?;
        let computed = r.u64(CTX)?;
        Ok(RoutingTable {
            me,
            num,
            vectors,
            entries,
            revision,
            computed,
        })
    }
}

pub(crate) fn encode_opt_lm(w: &mut Writer, lm: Option<LandmarkId>) {
    match lm {
        None => w.put_u8(0),
        Some(l) => {
            w.put_u8(1);
            w.put_u16(l.0);
        }
    }
}

pub(crate) fn decode_opt_lm(
    r: &mut Reader<'_>,
    context: &'static str,
) -> Result<Option<LandmarkId>, SnapshotError> {
    match r.u8(context)? {
        0 => Ok(None),
        1 => Ok(Some(LandmarkId(r.u16(context)?))),
        t => Err(SnapshotError::InvalidTag {
            context,
            tag: t as u64,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(i: u16) -> LandmarkId {
        LandmarkId(i)
    }

    fn vector(num: usize, pairs: &[(u16, f64)], seq: u64) -> StoredVector {
        let mut delays = vec![f64::INFINITY; num];
        for &(d, v) in pairs {
            delays[d as usize] = v;
        }
        StoredVector { seq, delays }
    }

    /// The paper's Fig. 7 worked example, recast to our recompute
    /// semantics. Landmark `me` has neighbours 1 (link 8), 7 (link 6) and
    /// 6 (link 7); after receiving l6's vector the final entries must be
    /// (1,1,8), (3,6,17), (4,6,18), (7,7,6), (9,7,34).
    #[test]
    fn fig7_worked_example() {
        let num = 10;
        let me = lm(0);
        let mut rt = RoutingTable::new(me, num);
        let link = |l: LandmarkId| -> f64 {
            match l.0 {
                1 => 8.0,
                7 => 6.0,
                6 => 7.0,
                _ => f64::INFINITY,
            }
        };
        // Initial state: vectors from 1 and 7 giving the original entries
        // (1,1,8), (4,7,20), (7,7,6), (9,7,34).
        assert!(rt.receive(lm(1), vector(num, &[(1, 0.0)], 1)));
        assert!(rt.receive(lm(7), vector(num, &[(7, 0.0), (4, 14.0), (9, 28.0)], 1)));
        rt.recompute(&link);
        assert_eq!(
            rt.entry(lm(1)),
            &RouteEntry {
                next: Some(lm(1)),
                delay: 8.0,
                backup: None,
                backup_delay: f64::INFINITY
            }
        );
        assert_eq!(rt.next_hop(lm(4)), Some(lm(7)));
        assert!((rt.delay_to(lm(4)) - 20.0).abs() < 1e-12);
        assert!((rt.delay_to(lm(7)) - 6.0).abs() < 1e-12);
        assert!((rt.delay_to(lm(9)) - 34.0).abs() < 1e-12);
        assert!(rt.delay_to(lm(3)).is_infinite());

        // l6's vector arrives: (3,10), (9,30), (4,11), (6,0).
        assert!(rt.receive(
            lm(6),
            vector(num, &[(6, 0.0), (3, 10.0), (9, 30.0), (4, 11.0)], 1)
        ));
        rt.recompute(&link);
        // New destination l3 inserted via l6.
        assert_eq!(rt.next_hop(lm(3)), Some(lm(6)));
        assert!((rt.delay_to(lm(3)) - 17.0).abs() < 1e-12);
        // l9 via l6 would be 37 > 34: unchanged.
        assert_eq!(rt.next_hop(lm(9)), Some(lm(7)));
        assert!((rt.delay_to(lm(9)) - 34.0).abs() < 1e-12);
        // l4 via l6 is 18 < 20: updated.
        assert_eq!(rt.next_hop(lm(4)), Some(lm(6)));
        assert!((rt.delay_to(lm(4)) - 18.0).abs() < 1e-12);
        // l1 and l7 unchanged.
        assert!((rt.delay_to(lm(1)) - 8.0).abs() < 1e-12);
        assert_eq!(rt.next_hop(lm(7)), Some(lm(7)));
    }

    #[test]
    fn backup_next_hop_is_second_best_distinct() {
        let num = 4;
        let mut rt = RoutingTable::new(lm(0), num);
        let link = |l: LandmarkId| -> f64 {
            match l.0 {
                1 => 1.0,
                2 => 2.0,
                _ => f64::INFINITY,
            }
        };
        rt.receive(lm(1), vector(num, &[(1, 0.0), (3, 5.0)], 1));
        rt.receive(lm(2), vector(num, &[(2, 0.0), (3, 5.0)], 1));
        rt.recompute(&link);
        let e = rt.entry(lm(3));
        assert_eq!(e.next, Some(lm(1)));
        assert!((e.delay - 6.0).abs() < 1e-12);
        assert_eq!(e.backup, Some(lm(2)));
        assert!((e.backup_delay - 7.0).abs() < 1e-12);
    }

    #[test]
    fn stale_vectors_are_rejected() {
        let num = 3;
        let mut rt = RoutingTable::new(lm(0), num);
        assert!(rt.receive(lm(1), vector(num, &[(1, 0.0), (2, 9.0)], 5)));
        assert!(!rt.receive(lm(1), vector(num, &[(1, 0.0), (2, 1.0)], 5)));
        assert!(!rt.receive(lm(1), vector(num, &[(1, 0.0), (2, 1.0)], 4)));
        assert!(rt.receive(lm(1), vector(num, &[(1, 0.0), (2, 1.0)], 6)));
    }

    #[test]
    fn neighbor_without_vector_is_directly_reachable() {
        let num = 3;
        let mut rt = RoutingTable::new(lm(0), num);
        let link = |l: LandmarkId| if l.0 == 1 { 4.0 } else { f64::INFINITY };
        rt.recompute(&link);
        assert_eq!(rt.next_hop(lm(1)), Some(lm(1)));
        assert!((rt.delay_to(lm(1)) - 4.0).abs() < 1e-12);
        assert!(rt.delay_to(lm(2)).is_infinite());
        assert!((rt.coverage() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn link_delay_changes_propagate_on_recompute() {
        let num = 3;
        let mut rt = RoutingTable::new(lm(0), num);
        rt.receive(lm(1), vector(num, &[(1, 0.0), (2, 10.0)], 1));
        rt.receive(lm(2), vector(num, &[(2, 0.0)], 1));
        rt.recompute(&|l| match l.0 {
            1 => 1.0,
            2 => 20.0,
            _ => f64::INFINITY,
        });
        assert_eq!(rt.next_hop(lm(2)), Some(lm(1))); // 11 < 20
        rt.recompute(&|l| match l.0 {
            1 => 1.0,
            2 => 5.0,
            _ => f64::INFINITY,
        });
        assert_eq!(rt.next_hop(lm(2)), Some(lm(2))); // 5 < 11
    }

    #[test]
    fn distrust_breaks_a_claimed_route() {
        let num = 3;
        let mut rt = RoutingTable::new(lm(0), num);
        rt.receive(lm(1), vector(num, &[(1, 0.0), (2, 3.0)], 1));
        let link = |l: LandmarkId| if l.0 == 1 { 1.0 } else { f64::INFINITY };
        rt.recompute(&link);
        assert!((rt.delay_to(lm(2)) - 4.0).abs() < 1e-12);
        rt.distrust(lm(2), &[lm(1)]);
        rt.recompute(&link);
        assert!(rt.delay_to(lm(2)).is_infinite());
        // l1 itself is still reachable.
        assert!((rt.delay_to(lm(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_claim_injects_bogus_claims() {
        let num = 3;
        let mut rt = RoutingTable::new(lm(0), num);
        rt.set_claim(lm(1), lm(2), 0.5, 7);
        let link = |l: LandmarkId| if l.0 == 1 { 1.0 } else { f64::INFINITY };
        rt.recompute(&link);
        assert_eq!(rt.next_hop(lm(2)), Some(lm(1)));
        assert!((rt.delay_to(lm(2)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_and_rows_reflect_entries() {
        let num = 3;
        let mut rt = RoutingTable::new(lm(0), num);
        rt.receive(lm(1), vector(num, &[(1, 0.0), (2, 2.0)], 1));
        rt.recompute(&|l| if l.0 == 1 { 1.0 } else { f64::INFINITY });
        let snap = rt.snapshot();
        assert_eq!(snap[0], 0.0);
        assert!((snap[1] - 1.0).abs() < 1e-12);
        assert!((snap[2] - 3.0).abs() < 1e-12);
        let rows = rt.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rt.table_size(), 3);
    }

    #[test]
    fn decay_stale_penalizes_old_vectors_until_refreshed() {
        let num = 3;
        let mut rt = RoutingTable::new(lm(0), num);
        let link = |l: LandmarkId| if l.0 == 1 { 1.0 } else { f64::INFINITY };
        rt.receive(lm(1), vector(num, &[(1, 0.0), (2, 10.0)], 0));
        rt.recompute(&link);
        assert!((rt.delay_to(lm(2)) - 11.0).abs() < 1e-12);

        // Within max_age: untouched.
        assert_eq!(rt.decay_stale(2, 2, 2.0), 0);
        rt.recompute(&link);
        assert!((rt.delay_to(lm(2)) - 11.0).abs() < 1e-12);

        // Past max_age: the claim doubles per call; the neighbour's own
        // 0-delay entry and infinite entries are untouched.
        assert_eq!(rt.decay_stale(3, 2, 2.0), 1);
        rt.recompute(&link);
        assert!((rt.delay_to(lm(2)) - 21.0).abs() < 1e-12);
        assert_eq!(rt.decay_stale(4, 2, 2.0), 1);
        rt.recompute(&link);
        assert!((rt.delay_to(lm(2)) - 41.0).abs() < 1e-12);
        assert!((rt.delay_to(lm(1)) - 1.0).abs() < 1e-12);

        // A fresh vector replaces the decayed claims wholesale.
        assert!(rt.receive(lm(1), vector(num, &[(1, 0.0), (2, 10.0)], 4)));
        rt.recompute(&link);
        assert!((rt.delay_to(lm(2)) - 11.0).abs() < 1e-12);
        assert_eq!(rt.decay_stale(5, 2, 2.0), 0);
    }

    #[test]
    #[should_panic(expected = "own vector")]
    fn rejects_vector_from_self() {
        let mut rt = RoutingTable::new(lm(0), 2);
        rt.receive(lm(0), vector(2, &[(0, 0.0)], 1));
    }
}
