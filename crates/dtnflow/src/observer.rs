//! Routing-table coverage and stability snapshots (paper Fig. 8).
//!
//! At each observation point `i`, a landmark's *coverage* is the fraction
//! of destinations with a usable route, and its *stability* is
//! `1 − changed/size`, where `changed` counts destinations whose next hop
//! differs from the previous observation point. The figure plots the
//! averages over all landmarks.

use dtnflow_core::ids::LandmarkId;
use dtnflow_snapshot::{Reader, SnapshotError, Writer};

/// One observation point's averages over all landmarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservationRow {
    pub index: usize,
    pub avg_coverage: f64,
    pub avg_stability: f64,
}

/// Incremental coverage/stability computation across observation points.
#[derive(Debug, Clone, Default)]
pub struct TableObserver {
    prev_next_hops: Vec<Vec<Option<LandmarkId>>>,
    rows: Vec<ObservationRow>,
}

impl TableObserver {
    pub fn new() -> Self {
        TableObserver::default()
    }

    /// Record an observation point given each landmark's coverage and
    /// next-hop column.
    pub fn observe(&mut self, index: usize, per_landmark: Vec<(f64, Vec<Option<LandmarkId>>)>) {
        let n = per_landmark.len().max(1) as f64;
        let avg_coverage = per_landmark.iter().map(|(c, _)| c).sum::<f64>() / n;
        let avg_stability = if self.prev_next_hops.is_empty() {
            // First observation: no previous column; the paper starts the
            // stability series at 1 (nothing has changed yet).
            1.0
        } else {
            let mut total = 0.0;
            for ((_, hops), prev) in per_landmark.iter().zip(&self.prev_next_hops) {
                let size = hops.iter().filter(|h| h.is_some()).count();
                if size == 0 {
                    total += 1.0;
                    continue;
                }
                let changed = hops
                    .iter()
                    .zip(prev)
                    .filter(|(now, before)| now.is_some() && now != before)
                    .count();
                total += 1.0 - changed as f64 / size as f64;
            }
            total / n
        };
        self.prev_next_hops = per_landmark.into_iter().map(|(_, h)| h).collect();
        self.rows.push(ObservationRow {
            index,
            avg_coverage,
            avg_stability,
        });
    }

    /// All observation rows so far.
    pub fn rows(&self) -> &[ObservationRow] {
        &self.rows
    }

    /// Checkpoint encoding (DESIGN.md §11): the previous next-hop columns
    /// (stability baseline) and the accumulated rows.
    pub fn encode(&self, w: &mut Writer) {
        w.put_usize(self.prev_next_hops.len());
        for col in &self.prev_next_hops {
            w.put_usize(col.len());
            for hop in col {
                match hop {
                    None => w.put_u8(0),
                    Some(l) => {
                        w.put_u8(1);
                        w.put_u16(l.0);
                    }
                }
            }
        }
        w.put_usize(self.rows.len());
        for row in &self.rows {
            w.put_usize(row.index);
            w.put_f64(row.avg_coverage);
            w.put_f64(row.avg_stability);
        }
    }

    /// Inverse of [`TableObserver::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<TableObserver, SnapshotError> {
        const CTX: &str = "TableObserver";
        let n = r.seq_len("TableObserver.prev_next_hops")?;
        let mut prev_next_hops = Vec::with_capacity(n);
        for _ in 0..n {
            let m = r.seq_len("TableObserver.column")?;
            let mut col = Vec::with_capacity(m);
            for _ in 0..m {
                col.push(match r.u8(CTX)? {
                    0 => None,
                    1 => Some(LandmarkId(r.u16(CTX)?)),
                    t => {
                        return Err(SnapshotError::InvalidTag {
                            context: "TableObserver.hop",
                            tag: t as u64,
                        })
                    }
                });
            }
            prev_next_hops.push(col);
        }
        let nr = r.seq_len("TableObserver.rows")?;
        let mut rows = Vec::with_capacity(nr);
        for _ in 0..nr {
            rows.push(ObservationRow {
                index: r.usize(CTX)?,
                avg_coverage: r.f64(CTX)?,
                avg_stability: r.f64(CTX)?,
            });
        }
        Ok(TableObserver {
            prev_next_hops,
            rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm(i: u16) -> Option<LandmarkId> {
        Some(LandmarkId(i))
    }

    #[test]
    fn coverage_averages_over_landmarks() {
        let mut o = TableObserver::new();
        o.observe(0, vec![(1.0, vec![lm(1)]), (0.5, vec![None])]);
        assert!((o.rows()[0].avg_coverage - 0.75).abs() < 1e-12);
        assert_eq!(o.rows()[0].avg_stability, 1.0);
    }

    #[test]
    fn stability_counts_next_hop_changes() {
        let mut o = TableObserver::new();
        o.observe(0, vec![(1.0, vec![lm(1), lm(2)])]);
        // One of two next hops changed.
        o.observe(1, vec![(1.0, vec![lm(1), lm(3)])]);
        assert!((o.rows()[1].avg_stability - 0.5).abs() < 1e-12);
        // Nothing changed.
        o.observe(2, vec![(1.0, vec![lm(1), lm(3)])]);
        assert!((o.rows()[2].avg_stability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn newly_routable_dest_counts_as_change() {
        let mut o = TableObserver::new();
        o.observe(0, vec![(0.5, vec![lm(1), None])]);
        o.observe(1, vec![(1.0, vec![lm(1), lm(2)])]);
        // dest 1 went None -> Some: a change over a table of size 2.
        assert!((o.rows()[1].avg_stability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_table_is_fully_stable() {
        let mut o = TableObserver::new();
        o.observe(0, vec![(0.0, vec![None, None])]);
        o.observe(1, vec![(0.0, vec![None, None])]);
        assert_eq!(o.rows()[1].avg_stability, 1.0);
    }
}
