//! The DTN-FLOW router: the paper's §IV algorithm wired into the
//! simulator's event hooks.
//!
//! Responsibilities per event:
//!
//! * **arrival** — measure the transit for the bandwidth table, settle the
//!   node's previous prediction (accuracy tracking, §IV-D.4), deliver the
//!   carried routing table / bandwidth report / loop corrections, make the
//!   node's next prediction, run the uplink (packets the node should hand
//!   to this station, §IV-D.1/3 step 5), then the downlink (packets this
//!   station should hand to the node, §IV-D.3 steps 2–4), and arm the
//!   dead-end timer (§IV-E.1);
//! * **departure** — record the completed stay and snapshot the carried
//!   routing table + reverse-bandwidth report (§IV-C.1/2);
//! * **time unit** — Eq. 4 bandwidth smoothing, routing-table recompute,
//!   load-balance rate bookkeeping (§IV-E.3), station re-bucketing, and
//!   any scheduled loop injections (the Table VII experiment).

use crate::bandwidth::BandwidthMatrix;
use crate::config::{FlowConfig, LoopInjection};
use crate::observer::{ObservationRow, TableObserver};
use crate::routing_table::{decode_opt_lm, encode_opt_lm, RoutingTable, StoredVector};
use dtnflow_core::dense::{DenseMap, DenseSet};
use dtnflow_core::ids::{LandmarkId, NodeId, PacketId};
use dtnflow_core::packet::PacketLoc;
use dtnflow_core::rankidx::{RankEntry, RankIndex};
use dtnflow_core::time::{SimDuration, SimTime};
use dtnflow_predictor::{AccuracyTracker, MarkovPredictor, VisitHistory};
use dtnflow_sim::{
    EventBuffer, LossReason, Router, ShardBuffers, Sharding, SimEvent, TransferError, World,
    WorldView,
};
use dtnflow_snapshot::{Reader, SnapshotError, Writer};
use std::collections::BTreeSet;

/// Routing-table snapshot + control info a node carries between landmarks.
#[derive(Debug, Clone)]
struct Carried {
    from: LandmarkId,
    seq: u64,
    vector: Vec<f64>,
    entries: usize,
    /// Reverse-bandwidth report: `(addressee, B(addressee→from), unit)`.
    report: Option<(LandmarkId, f64, u64)>,
    corrections: Vec<Correction>,
}

/// A §IV-E.2 loop-correction notice, flooded among the loop members.
/// As it travels, each member appends its *current* delay claim for the
/// destination, so receivers get fresh distance-vector entries immediately
/// instead of waiting for the next periodic exchange ("immediately send
/// their updated distance vector … repeatedly until the next-hop landmark
/// remains unchanged").
#[derive(Debug, Clone, PartialEq)]
struct Correction {
    dest: LandmarkId,
    members: Vec<LandmarkId>,
    hops_left: u32,
    /// `(landmark, its current delay to dest)` — freshest claim per member.
    claims: Vec<(u16, f64)>,
}

/// Per-mobile-node router state.
struct NodeState {
    predictor: MarkovPredictor,
    accuracy: AccuracyTracker,
    history: VisitHistory,
    /// The prediction currently in force: (made at, predicted next, prob).
    predicted: Option<(LandmarkId, LandmarkId, f64)>,
    /// Where the node is and since when (while connected).
    arrival: Option<(LandmarkId, dtnflow_core::time::SimTime)>,
    last_landmark: Option<LandmarkId>,
    carried: Option<Carried>,
    /// Bumped on every arrive/depart; stale dead-end timers no-op.
    episode: u64,
}

/// One memoized [`choose_next_in`] result (DESIGN.md §14). Valid while
/// the owning table's `computed` stamp and the router-wide
/// `route_epoch` (bumped on `known_down` changes) both still match the
/// values the cell was filled under; `computed == u64::MAX` marks a
/// never-filled cell (a table's real stamp counts up from zero).
#[derive(Debug, Clone, Copy)]
struct RouteCacheCell {
    computed: u64,
    epoch: u64,
    next: Option<LandmarkId>,
    expected: f64,
    lb_diverted: bool,
    fellback: bool,
}

impl RouteCacheCell {
    const EMPTY: RouteCacheCell = RouteCacheCell {
        computed: u64::MAX,
        epoch: 0,
        next: None,
        expected: f64::INFINITY,
        lb_diverted: false,
        fellback: false,
    };
}

/// Per-landmark router state.
struct LandmarkState {
    rt: RoutingTable,
    /// Station packets waiting for a carrier toward a next-hop landmark.
    /// Bucket sets are cleared but never dropped on rebucket, so their
    /// storage is reused tick after tick.
    by_next_hop: DenseMap<LandmarkId, DenseSet<PacketId>>,
    /// Station packets indexed by final destination (direct-delivery
    /// opportunities, §IV-D.2).
    by_dst: DenseMap<LandmarkId, DenseSet<PacketId>>,
    /// Station packets addressed to a mobile node (§IV-E.4).
    by_dst_node: DenseMap<NodeId, DenseSet<PacketId>>,
    pending_corrections: Vec<(u64, Correction)>,
    seen_corrections: BTreeSet<(u16, u16)>,
    /// Per-next-hop packet counts this unit (load balancing, §IV-E.3).
    lb_incoming: Vec<u64>,
    lb_outgoing: Vec<u64>,
    overloaded: Vec<bool>,
    unit_seq: u64,
    /// §IV-D.3 next-hop decisions memoized per destination
    /// (DESIGN.md §14): forwarding between table changes is one flat
    /// lookup instead of a fresh divert/fallback evaluation.
    route_cache: Vec<RouteCacheCell>,
    /// Cumulative route-cache hit/miss counts, exported through the
    /// obs stream at each observation point and serialized verbatim so
    /// a restored lineage reports the same totals as an uninterrupted
    /// run.
    cache_hits: u64,
    cache_misses: u64,
}

impl LandmarkState {
    /// A throwaway placeholder for `mem::replace` while a landmark's real
    /// state is away on a shard worker (DESIGN.md §13). Never observed:
    /// the commit phase puts the real state back before any other code
    /// touches the slot.
    fn vacant() -> LandmarkState {
        LandmarkState {
            rt: RoutingTable::new(LandmarkId(0), 1),
            by_next_hop: DenseMap::new(),
            by_dst: DenseMap::new(),
            by_dst_node: DenseMap::new(),
            pending_corrections: Vec::new(),
            seen_corrections: BTreeSet::new(),
            lb_incoming: Vec::new(),
            lb_outgoing: Vec::new(),
            overloaded: Vec::new(),
            unit_seq: 0,
            route_cache: Vec::new(),
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// Empty every station bucket, keeping the allocated sets for reuse.
    fn clear_buckets(&mut self) {
        for s in self.by_next_hop.values_mut() {
            s.clear();
        }
        for s in self.by_dst.values_mut() {
            s.clear();
        }
        for s in self.by_dst_node.values_mut() {
            s.clear();
        }
    }
}

/// Routing metadata DTN-FLOW stamps on a packet when forwarding it
/// (§IV-D.3 step 3: next-hop landmark id + expected overall delay).
#[derive(Debug, Clone, Copy)]
struct PktMeta {
    next_hop: Option<LandmarkId>,
    expected: f64,
    /// How many station outages have stranded this packet (degradation:
    /// re-queued on recovery until `DegradationConfig::max_retries`).
    retries: u32,
}

impl Default for PktMeta {
    fn default() -> Self {
        PktMeta {
            next_hop: None,
            expected: f64::INFINITY,
            retries: 0,
        }
    }
}

/// The §IV-D.3 next-hop choice for a `dst`-bound packet sitting at `lm`:
/// the routing-table entry, diverted to the backup next hop when the
/// primary is overloaded (§IV-E.3) or a known-down landmark
/// (degradation). Returns `(next, expected delay, lb-diverted,
/// down-fallback)`.
///
/// A free function over explicit borrows (rather than a `&self` method)
/// so shard workers can call it on a taken-out [`LandmarkState`] while
/// the router itself stays on the engine thread.
fn choose_next_in(
    st: &LandmarkState,
    cfg: &FlowConfig,
    known_down: &[bool],
    lm: LandmarkId,
    dst: LandmarkId,
) -> (Option<LandmarkId>, f64, bool, bool) {
    let entry = st.rt.entry(dst);
    let mut next = entry.next;
    let mut expected = entry.delay;
    let mut lb_diverted = false;
    let mut fellback = false;
    if let Some(lb) = &cfg.load_balance {
        if let (Some(nh), Some(bk)) = (next, entry.backup) {
            if st.overloaded[nh.index()]
                && !st.overloaded[bk.index()]
                && entry.backup_delay <= lb.max_detour * entry.delay
            {
                next = Some(bk);
                expected = entry.backup_delay;
                lb_diverted = true;
            }
        }
    }
    if cfg.degradation.is_some() {
        if let Some(nh) = next {
            if known_down[nh.index()] {
                if let Some(bk) = entry.backup {
                    if bk != nh && !known_down[bk.index()] && entry.backup_delay.is_finite() {
                        next = Some(bk);
                        expected = entry.backup_delay;
                        fellback = true;
                    }
                }
            }
        }
    }
    if dst == lm {
        // A node-addressed packet already at its via landmark: it just
        // waits for the destination node.
        next = None;
        expected = 0.0;
    }
    (next, expected, lb_diverted, fellback)
}

/// [`choose_next_in`] behind the per-destination route cache
/// (DESIGN.md §14). Sound because every input that can change the
/// choice is covered by the two stamps: the table entries only move on
/// `recompute` (the `computed` stamp), `overloaded` only moves at unit
/// boundaries *before* that unit's recompute (so the same stamp covers
/// it), and `known_down` only moves with the router-wide `route_epoch`.
/// Like [`choose_next_in`], a free function so shard workers can run it
/// against a taken-out [`LandmarkState`].
fn choose_next_cached(
    st: &mut LandmarkState,
    cfg: &FlowConfig,
    known_down: &[bool],
    route_epoch: u64,
    lm: LandmarkId,
    dst: LandmarkId,
) -> (Option<LandmarkId>, f64, bool, bool) {
    let computed = st.rt.computed();
    let cell = st.route_cache[dst.index()];
    if cell.computed == computed && cell.epoch == route_epoch {
        st.cache_hits += 1;
        return (cell.next, cell.expected, cell.lb_diverted, cell.fellback);
    }
    st.cache_misses += 1;
    let (next, expected, lb_diverted, fellback) = choose_next_in(st, cfg, known_down, lm, dst);
    st.route_cache[dst.index()] = RouteCacheCell {
        computed,
        epoch: route_epoch,
        next,
        expected,
        lb_diverted,
        fellback,
    };
    (next, expected, lb_diverted, fellback)
}

/// What one shard worker computed for one landmark at a unit boundary
/// (DESIGN.md §13): the updated state to put back, buffered trace events,
/// the packet-metadata stamps, and the fallback-reroute count — all
/// committed serially in ascending landmark order.
struct LandmarkUnitResult {
    l: usize,
    st: LandmarkState,
    events: EventBuffer,
    metas: Vec<(PacketId, PktMeta)>,
    fallbacks: u64,
}

/// The per-landmark §IV-C.1 unit-boundary work, as run by a shard worker
/// on a taken-out [`LandmarkState`]: trace snapshot of the freshly-folded
/// Eq. 4 estimates, staleness decay, correction/load-balance bookkeeping,
/// routing-table recompute, and the station re-bucketing — byte-for-byte
/// the same computation as the sequential loop body in `on_time_unit`,
/// against the same pre-unit inputs:
///
/// * `bw` is read-only after the serial `end_of_unit_all` fold;
/// * `meta` is the pre-unit stamp table — safe, because a packet sits at
///   exactly one station, so no other landmark's rebucket touches its
///   stamp this unit and the pre-unit `retries` is what the sequential
///   interleaving reads too;
/// * trace events go into the returned buffer, flushed in ascending
///   landmark order by the commit phase — the sequential emission order.
#[allow(clippy::too_many_arguments)] // a worker gets exactly the shared read-only slices
fn landmark_unit_work(
    l: usize,
    mut st: LandmarkState,
    unit: u64,
    trace_on: bool,
    view: &WorldView<'_>,
    bw: &BandwidthMatrix,
    cfg: &FlowConfig,
    known_down: &[bool],
    route_epoch: u64,
    meta: &[PktMeta],
) -> LandmarkUnitResult {
    let lm = LandmarkId::from(l);
    let mut events = EventBuffer::new();
    if trace_on {
        for j in (0..st.overloaded.len()).map(LandmarkId::from) {
            let value = bw.incoming(lm, j);
            if value > 0.0 {
                let at = view.now();
                events.record(SimEvent::BandwidthUpdated {
                    at,
                    from: j,
                    to: lm,
                    value,
                });
            }
        }
    }
    if let Some(deg) = &cfg.degradation {
        st.rt
            .decay_stale(unit, deg.staleness_max_age, deg.staleness_factor);
    }
    st.unit_seq = unit;
    st.seen_corrections.clear();
    st.pending_corrections
        .retain(|(born, _)| unit.saturating_sub(*born) <= 1);
    if let Some(lb) = &cfg.load_balance {
        for h in 0..st.overloaded.len() {
            st.overloaded[h] = st.lb_incoming[h] >= lb.min_incoming
                && st.lb_incoming[h] as f64 > lb.theta * st.lb_outgoing[h] as f64;
        }
    }
    st.lb_incoming.iter_mut().for_each(|c| *c = 0);
    st.lb_outgoing.iter_mut().for_each(|c| *c = 0);
    st.rt
        .recompute(&|to| bw.link_delay(lm, to, cfg, view.config()));
    // Rebucket against the (frozen) station contents: same packets, same
    // ascending-id order as `FlowRouter::rebucket`.
    st.clear_buckets();
    let mut metas = Vec::new();
    let mut fallbacks = 0u64;
    for pkt in view.station_packets(lm) {
        let p = view.packet(pkt);
        let (next, expected, _, fellback) =
            choose_next_cached(&mut st, cfg, known_down, route_epoch, lm, p.dst);
        if fellback {
            fallbacks += 1;
        }
        let retries = meta.get(pkt.index()).map_or(0, |m| m.retries);
        metas.push((
            pkt,
            PktMeta {
                next_hop: next,
                expected,
                retries,
            },
        ));
        st.by_dst.get_or_default(p.dst).insert(pkt);
        if let Some(nh) = next {
            st.by_next_hop.get_or_default(nh).insert(pkt);
        }
        if let Some(n) = p.dst_node {
            st.by_dst_node.get_or_default(n).insert(pkt);
        }
    }
    LandmarkUnitResult {
        l,
        st,
        events,
        metas,
        fallbacks,
    }
}

/// Extension-event counters, for tests and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    pub dead_ends_detected: u64,
    pub loops_detected: u64,
    pub lb_reroutes: u64,
    pub tables_received: u64,
    pub reports_applied: u64,
    /// Packets re-aimed at their backup next hop because the primary was
    /// a known-down landmark (degradation).
    pub fallback_reroutes: u64,
    /// Stranded packets re-queued after their station recovered.
    pub stranded_requeues: u64,
    /// Stranded packets dropped after exhausting their retry budget.
    pub stranded_drops: u64,
}

/// Timer-token namespace tag for station-recovery retries (see
/// [`FlowRouter::retry_token`]): retries ride the engine timing wheel as
/// ordinary shard-local timer events, distinguished from dead-end timers
/// by this bit.
const RETRY_TOKEN_TAG: u64 = 1 << 63;

/// The DTN-FLOW router.
pub struct FlowRouter {
    // detlint: allow(S1, reason = "run input, not state: restore_state receives the same FlowConfig the run started with")
    cfg: FlowConfig,
    nodes: Vec<NodeState>,
    landmarks: Vec<LandmarkState>,
    /// All landmarks' Eq. 4 bandwidth measurements, one flat matrix.
    bw: BandwidthMatrix,
    meta: Vec<PktMeta>,
    observer: TableObserver,
    current_unit: u64,
    // detlint: allow(S1, reason = "derived from cfg.inject_loops on restore, same as in new()")
    injections: Vec<LoopInjection>,
    /// Frequently-visited landmarks registered per node (§IV-E.4).
    registrations: Vec<Vec<LandmarkId>>,
    /// Landmarks currently known to be down (fault hooks); routing falls
    /// back to backup next hops around them.
    known_down: Vec<bool>,
    /// Bumped whenever `known_down` changes; the second validity stamp
    /// of every landmark's route cache (DESIGN.md §14).
    route_epoch: u64,
    /// Per-(landmark, target-landmark) connected carriers ranked by
    /// `accuracy × transit-probability` (DESIGN.md §14), maintained on
    /// arrive/depart/fail so `try_assign_packet` walks a pre-ranked
    /// list instead of rescanning every connected node per packet.
    rank: RankIndex,
    stats: FlowStats,
    /// Reusable packet-id buffer for the per-contact and per-tick loops
    /// (rebucket, uplink, §IV-E.4 delivery), taken and restored around
    /// each use so the hot paths never allocate once warm.
    // detlint: allow(S1, reason = "scratch buffer, empty between events by construction")
    scratch_pkts: Vec<PacketId>,
    /// Reusable per-bucket candidate buffer for `assign_to_node`.
    // detlint: allow(S1, reason = "scratch buffer, empty between events by construction")
    scratch_bucket: Vec<PacketId>,
    /// Reusable successor-distribution buffer for `assign_to_node`.
    // detlint: allow(S1, reason = "scratch buffer, empty between events by construction")
    scratch_dist: Vec<(LandmarkId, f64)>,
}

impl FlowRouter {
    /// Create a DTN-FLOW router for a network of the given size.
    pub fn new(cfg: FlowConfig, num_nodes: usize, num_landmarks: usize) -> Self {
        cfg.validate();
        let nodes = (0..num_nodes)
            .map(|_| NodeState {
                predictor: MarkovPredictor::with_landmarks(cfg.order_k, num_landmarks),
                accuracy: AccuracyTracker::with_factors(
                    num_landmarks,
                    cfg.accuracy.init,
                    cfg.accuracy.up,
                    cfg.accuracy.down,
                    cfg.accuracy.floor,
                ),
                history: VisitHistory::new(num_landmarks),
                predicted: None,
                arrival: None,
                last_landmark: None,
                carried: None,
                episode: 0,
            })
            .collect();
        let landmarks = (0..num_landmarks)
            .map(|l| LandmarkState {
                rt: RoutingTable::new(LandmarkId::from(l), num_landmarks),
                by_next_hop: DenseMap::with_index_capacity(num_landmarks),
                by_dst: DenseMap::with_index_capacity(num_landmarks),
                by_dst_node: DenseMap::new(),
                pending_corrections: Vec::new(),
                seen_corrections: BTreeSet::new(),
                lb_incoming: vec![0; num_landmarks],
                lb_outgoing: vec![0; num_landmarks],
                overloaded: vec![false; num_landmarks],
                unit_seq: 0,
                route_cache: vec![RouteCacheCell::EMPTY; num_landmarks],
                cache_hits: 0,
                cache_misses: 0,
            })
            .collect();
        let injections = cfg.inject_loops.clone();
        let bandwidth_alpha = cfg.bandwidth_alpha;
        FlowRouter {
            cfg,
            nodes,
            landmarks,
            bw: BandwidthMatrix::new(num_landmarks, bandwidth_alpha),
            meta: Vec::new(),
            observer: TableObserver::new(),
            current_unit: 0,
            injections,
            registrations: vec![Vec::new(); num_nodes],
            known_down: vec![false; num_landmarks],
            route_epoch: 0,
            rank: RankIndex::new(num_landmarks),
            stats: FlowStats::default(),
            scratch_pkts: Vec::new(),
            scratch_bucket: Vec::new(),
            scratch_dist: Vec::new(),
        }
    }

    /// Extension-event counters.
    pub fn stats(&self) -> FlowStats {
        self.stats
    }

    /// Fig. 8 observation rows collected so far.
    pub fn observations(&self) -> &[ObservationRow] {
        self.observer.rows()
    }

    /// The current routing-table rows of a landmark (Table X).
    pub fn routing_rows(&self, lm: LandmarkId) -> Vec<(LandmarkId, LandmarkId, f64)> {
        self.landmarks[lm.index()].rt.rows()
    }

    /// The effective outgoing bandwidth estimate `B(from→to)` (Fig. 16b).
    pub fn bandwidth(&self, from: LandmarkId, to: LandmarkId) -> f64 {
        self.bw.outgoing(from, to)
    }

    /// A node's current prediction, if any: (predicted landmark, prob).
    pub fn prediction(&self, node: NodeId) -> Option<(LandmarkId, f64)> {
        self.nodes[node.index()].predicted.map(|(_, to, p)| (to, p))
    }

    /// The frequently-visited landmarks currently registered for a node.
    pub fn registered_landmarks(&self, node: NodeId) -> &[LandmarkId] {
        &self.registrations[node.index()]
    }

    /// §IV-E.4: send a packet from `src`'s subarea to a mobile node, by
    /// copying it to each of the destination node's registered frequent
    /// landmarks. Returns the created packet copies (empty if the node has
    /// no registration yet).
    pub fn send_to_node(
        &mut self,
        world: &mut World,
        src: LandmarkId,
        dst_node: NodeId,
    ) -> Vec<PacketId> {
        let vias = self.registrations[dst_node.index()].clone();
        let mut out = Vec::with_capacity(vias.len());
        for via in vias {
            let pkt = world.create_node_packet(src, via, dst_node, true);
            self.station_accept(world, src, pkt, None);
            out.push(pkt);
        }
        out
    }

    // ---- crate-internal services (used by the hybrid extension) ----------

    /// The overall transit score `p_a(lm) · p_pred(lm → toward)` of a node
    /// currently at `lm`; zero when the node is elsewhere or has never
    /// made that transit.
    pub(crate) fn transit_score(&self, node: NodeId, lm: LandmarkId, toward: LandmarkId) -> f64 {
        let ns = &self.nodes[node.index()];
        if ns.predictor.current() != Some(lm) {
            return 0.0;
        }
        ns.accuracy.overall(lm, ns.predictor.probability(toward))
    }

    /// The next-hop landmark stamped on a packet, if any.
    pub(crate) fn stamped_next_hop(&self, pkt: PacketId) -> Option<LandmarkId> {
        self.meta_of(pkt).next_hop
    }

    // ---- bench hooks ------------------------------------------------------
    //
    // The `hotpath` microbenches (crates/bench) drive the real cached
    // next-hop chooser without standing up a `World`. Hidden from docs;
    // not a stable API.

    /// Install a pre-built routing table at `lm` (bench support).
    #[doc(hidden)]
    pub fn bench_install_table(&mut self, lm: LandmarkId, rt: RoutingTable) {
        self.landmarks[lm.index()].rt = rt;
    }

    /// One next-hop decision through the route cache (bench support).
    #[doc(hidden)]
    pub fn bench_route_lookup(&mut self, lm: LandmarkId, dst: LandmarkId) -> Option<LandmarkId> {
        self.choose_next(lm, dst).0
    }

    /// Invalidate every landmark's route cache, as a station up/down
    /// transition would (bench support).
    #[doc(hidden)]
    pub fn bench_flush_route_cache(&mut self) {
        self.route_epoch += 1;
    }

    // ---- internals --------------------------------------------------------

    fn meta_of(&self, pkt: PacketId) -> PktMeta {
        self.meta.get(pkt.index()).copied().unwrap_or_default()
    }

    fn set_meta(&mut self, pkt: PacketId, m: PktMeta) {
        if self.meta.len() <= pkt.index() {
            self.meta.resize(pkt.index() + 1, PktMeta::default());
        }
        self.meta[pkt.index()] = m;
    }

    /// File (`insert == true`) or delete (`insert == false`) `node`'s
    /// carrier-rank entries at `lm`: one `(accuracy × transit-prob,
    /// node)` key per positive-probability successor of its current
    /// context (DESIGN.md §14). Insert and remove recompute identical
    /// keys because a node's predictor distribution and accuracy are
    /// frozen during its stay — both only move inside `on_arrive`,
    /// before the arrival insert. A node whose predictor does not place
    /// it at `lm` (e.g. its visit record was dropped by the fault plan
    /// and it was last observed elsewhere) files nothing, exactly as
    /// the scan this index replaces skipped it.
    fn rank_update(&mut self, node: NodeId, lm: LandmarkId, insert: bool) {
        let mut dist = std::mem::take(&mut self.scratch_dist);
        let ns = &self.nodes[node.index()];
        if ns.predictor.current() != Some(lm) {
            self.scratch_dist = dist;
            return;
        }
        ns.predictor.distribution_into(&mut dist);
        let acc = ns.accuracy.get(lm);
        for &(target, p) in dist.iter() {
            if target == lm || p <= 0.0 {
                continue;
            }
            let score = acc * p;
            if insert {
                self.rank.insert(lm.index(), target.0, score, node.0);
            } else {
                self.rank.remove(lm.index(), target.0, score, node.0);
            }
        }
        self.scratch_dist = dist;
    }

    fn recompute_tables(&mut self, lm: LandmarkId, world: &World) {
        let flow = &self.cfg;
        let sim = world.config();
        let bw = &self.bw;
        let st = &mut self.landmarks[lm.index()];
        st.rt.recompute(&|to| bw.link_delay(lm, to, flow, sim));
    }

    /// Choose the next hop for a `dst`-bound packet sitting at `lm`:
    /// the routing-table entry, diverted to the backup next hop when the
    /// primary is overloaded (§IV-E.3) or a known-down landmark
    /// (degradation). Returns `(next, expected delay, lb-diverted,
    /// down-fallback)`. Served from the per-destination route cache
    /// between table changes (DESIGN.md §14).
    fn choose_next(
        &mut self,
        lm: LandmarkId,
        dst: LandmarkId,
    ) -> (Option<LandmarkId>, f64, bool, bool) {
        choose_next_cached(
            &mut self.landmarks[lm.index()],
            &self.cfg,
            &self.known_down,
            self.route_epoch,
            lm,
            dst,
        )
    }

    /// A packet landed at (or was generated at) station `lm`: choose its
    /// next hop (load-balance aware), stamp it, index it, and try to hand
    /// it to a suitable connected node right away (§IV-D.2/3).
    fn station_accept(
        &mut self,
        world: &mut World,
        lm: LandmarkId,
        pkt: PacketId,
        exclude: Option<NodeId>,
    ) {
        let p = world.packet(pkt);
        let dst = p.dst;
        let dst_node = p.dst_node;
        debug_assert_eq!(p.loc, PacketLoc::AtStation(lm));

        let (next, expected, lb_diverted, fellback) = self.choose_next(lm, dst);
        if lb_diverted {
            self.stats.lb_reroutes += 1;
        }
        if fellback {
            self.stats.fallback_reroutes += 1;
        }
        let retries = self.meta_of(pkt).retries;
        self.set_meta(
            pkt,
            PktMeta {
                next_hop: next,
                expected,
                retries,
            },
        );

        let st = &mut self.landmarks[lm.index()];
        st.by_dst.get_or_default(dst).insert(pkt);
        if let Some(nh) = next {
            st.by_next_hop.get_or_default(nh).insert(pkt);
            st.lb_incoming[nh.index()] += 1;
        }
        if let Some(n) = dst_node {
            st.by_dst_node.get_or_default(n).insert(pkt);
        }

        self.try_assign_packet(world, lm, pkt, exclude);
    }

    /// Find the best connected carrier for one station packet: a node
    /// predicted to transit to the packet's destination (direct delivery)
    /// or, failing that, to its next-hop landmark — ranked by the overall
    /// transit probability `p_a · p_pred` (§IV-D.4).
    ///
    /// Served by the incrementally maintained carrier rank index
    /// (DESIGN.md §14): the pre-ranked `(lm, dst)` list is walked first
    /// — any direct-delivery candidate beats every routed one, whatever
    /// the scores — then the `(lm, next-hop)` list. Each walk stops at
    /// the first eligible member; the lists' `(score desc, id asc)`
    /// order makes that exactly the scan's best-score/lowest-id winner.
    fn try_assign_packet(
        &mut self,
        world: &mut World,
        lm: LandmarkId,
        pkt: PacketId,
        exclude: Option<NodeId>,
    ) {
        let meta = self.meta_of(pkt);
        let p = world.packet(pkt);
        if p.loc != PacketLoc::AtStation(lm) {
            return;
        }
        let dst = p.dst;
        let remaining = p.remaining_ttl(world.now()).secs() as f64;

        let pick = |world: &World, list: &[RankEntry]| -> Option<NodeId> {
            list.iter()
                .map(|e| NodeId(e.member))
                .find(|&n| Some(n) != exclude && world.node_has_space(n))
        };
        // Direct delivery (§IV-D.2): any candidate here wins outright.
        if dst != lm {
            if let Some(n) = pick(world, self.rank.ranked(lm.index(), dst.0)) {
                self.hand_to_carrier(world, lm, pkt, n, dst);
                return;
            }
        }
        // Next-hop relay (§IV-D.3 step 4), only when the stamped route
        // still fits the remaining TTL (§IV-D.5 step 4).
        if let Some(nh) = meta.next_hop {
            if nh != lm && meta.expected < remaining {
                if let Some(n) = pick(world, self.rank.ranked(lm.index(), nh.0)) {
                    self.hand_to_carrier(world, lm, pkt, n, nh);
                }
            }
        }
    }

    /// Transfer a station packet to a chosen carrier and stamp it.
    fn hand_to_carrier(
        &mut self,
        world: &mut World,
        lm: LandmarkId,
        pkt: PacketId,
        carrier: NodeId,
        toward: LandmarkId,
    ) -> bool {
        let dst = world.packet(pkt).dst;
        let expected = self.landmarks[lm.index()].rt.delay_to(dst);
        match world.transfer_to_node(pkt, carrier) {
            Ok(()) => {
                self.unindex(lm, pkt, dst, world.packet(pkt).dst_node);
                let st = &mut self.landmarks[lm.index()];
                st.lb_outgoing[toward.index()] += 1;
                let retries = self.meta_of(pkt).retries;
                self.set_meta(
                    pkt,
                    PktMeta {
                        next_hop: Some(toward),
                        expected,
                        retries,
                    },
                );
                true
            }
            Err(TransferError::Expired) => {
                self.unindex(lm, pkt, dst, None);
                false
            }
            Err(_) => false,
        }
    }

    fn unindex(
        &mut self,
        lm: LandmarkId,
        pkt: PacketId,
        dst: LandmarkId,
        dst_node: Option<NodeId>,
    ) {
        let meta = self.meta_of(pkt);
        let st = &mut self.landmarks[lm.index()];
        if let Some(set) = st.by_dst.get_mut(dst) {
            set.remove(pkt);
        }
        if let Some(nh) = meta.next_hop {
            if let Some(set) = st.by_next_hop.get_mut(nh) {
                set.remove(pkt);
            }
        }
        if let Some(n) = dst_node {
            if let Some(set) = st.by_dst_node.get_mut(n) {
                set.remove(pkt);
            }
        }
    }

    /// Downlink at node arrival: give the node up to `upload_cap` station
    /// packets it can usefully carry — direct-delivery packets first, then
    /// packets routed toward its predicted landmark, in minimum-remaining-
    /// TTL order (§IV-D.5 step 4; TTL order equals id order because every
    /// packet shares one TTL).
    fn assign_to_node(&mut self, world: &mut World, lm: LandmarkId, node: NodeId) {
        // The node can carry packets toward *any* landmark it has a
        // positive predicted probability of transiting to — its whole
        // successor distribution, best first. Within each target, direct-
        // delivery packets (dst == target) precede routed packets
        // (next hop == target), in minimum-remaining-TTL order (equal to
        // id order, since every packet shares one TTL).
        // The distribution and per-bucket candidate lists land in scratch
        // buffers owned by the router (taken here, restored at the single
        // exit below), so this per-contact path stops allocating once the
        // buffers are warm.
        let mut dist = std::mem::take(&mut self.scratch_dist);
        let at_lm = {
            let ns = &self.nodes[node.index()];
            ns.predictor.distribution_into(&mut dist);
            ns.predictor.current()
        };
        if at_lm != Some(lm) || dist.is_empty() {
            self.scratch_dist = dist;
            return;
        }
        // `upload_cap` (K = 50) is the §IV-D.5 *per-round* granularity and
        // only applies when the radio is actually contended; with an
        // unconstrained radio the transfer is bounded by node memory, as
        // in the paper's trace experiments.
        let cap = if world.config().radio_budget_per_unit.is_some() {
            world.config().upload_cap
        } else {
            usize::MAX
        };
        let mut assigned = 0usize;
        let now = world.now();

        // Phase 0 honours the §IV-D.5 priority: packets whose expected
        // delay fits their remaining TTL go first. Phase 1 is best-effort
        // mop-up — a packet past its feasible window still rides along if
        // capacity remains, rather than freezing at the station.
        let mut bucket = std::mem::take(&mut self.scratch_bucket);
        'phases: for phase in 0..2 {
            for &(h, p) in &dist {
                if h == lm {
                    continue;
                }
                if assigned >= cap || !world.node_has_space(node) {
                    break 'phases;
                }
                // Bulk-load proportionally to the transit confidence: a
                // carrier that only sometimes heads to `h` takes only a
                // slice of the queue, leaving the rest for better-matched
                // carriers instead of stranding mis-transited packets.
                let free_slots =
                    (world.node_free_bytes(node) / world.config().packet_size) as usize;
                let mut bucket_quota = ((free_slots as f64) * p).ceil() as usize;
                for direct in [true, false] {
                    if phase == 1 && direct {
                        continue; // direct packets were never deferred
                    }
                    let st = &self.landmarks[lm.index()];
                    let index = if direct { &st.by_dst } else { &st.by_next_hop };
                    let Some(set) = index.get(h) else { continue };
                    bucket.clear();
                    bucket.extend(set.iter());
                    for &pkt in bucket.iter() {
                        if assigned >= cap || bucket_quota == 0 || !world.node_has_space(node) {
                            break;
                        }
                        let p = world.packet(pkt);
                        // Lazily drop stale index entries.
                        if p.loc != PacketLoc::AtStation(lm) {
                            let dst = p.dst;
                            let dn = p.dst_node;
                            self.unindex(lm, pkt, dst, dn);
                            continue;
                        }
                        if !direct {
                            if p.dst == h {
                                continue; // handled by the direct pass
                            }
                            let meta = self.meta_of(pkt);
                            let remaining = p.remaining_ttl(now).secs() as f64;
                            let feasible = meta.expected < remaining;
                            if feasible != (phase == 0) {
                                continue;
                            }
                        }
                        if self.hand_to_carrier(world, lm, pkt, node, h) {
                            assigned += 1;
                            bucket_quota -= 1;
                        }
                    }
                }
            }
        }
        self.scratch_bucket = bucket;
        self.scratch_dist = dist;
    }

    /// A packet closed a loop at `lm`: raise and apply a correction
    /// (§IV-E.2).
    fn handle_loop(&mut self, world: &mut World, lm: LandmarkId, pkt: PacketId) {
        self.stats.loops_detected += 1;
        if !self.cfg.loop_correction {
            return;
        }
        let p = world.packet(pkt);
        let dest = p.dst;
        let mut members: Vec<LandmarkId> = p.loop_members(lm).to_vec();
        members.sort();
        members.dedup();
        if members.len() < 2 {
            return;
        }
        let correction = Correction {
            dest,
            members,
            hops_left: 8,
            claims: Vec::new(),
        };
        self.apply_correction(world, lm, correction);
    }

    /// Apply a correction at `lm`.
    ///
    /// 1. Any claims already in the notice are installed as fresh
    ///    distance-vector entries for the destination (this is the
    ///    "updated distance vector" exchange of §IV-E.2).
    /// 2. The *first* time a member landmark sees this loop in a unit, it
    ///    distrusts the other members' stored claims for the destination —
    ///    this is what actually removes the stale entry sustaining the
    ///    loop.
    /// 3. The member appends its own (now recomputed) delay claim and the
    ///    notice is queued for further relaying with a hop budget.
    fn apply_correction(&mut self, world: &World, lm: LandmarkId, mut c: Correction) {
        let dest = c.dest;
        let mut changed = false;
        for &(j, v) in &c.claims {
            if j != lm.0 {
                let seq = self.landmarks[lm.index()].unit_seq;
                self.landmarks[lm.index()]
                    .rt
                    .set_claim(LandmarkId(j), dest, v, seq);
                changed = true;
            }
        }
        let key = (dest.0, c.members.first().map(|m| m.0).unwrap_or(0));
        let first_time = self.landmarks[lm.index()].seen_corrections.insert(key);
        if first_time && c.members.contains(&lm) {
            let others: Vec<LandmarkId> = c.members.iter().copied().filter(|&m| m != lm).collect();
            self.landmarks[lm.index()].rt.distrust(dest, &others);
            changed = true;
        }
        if changed {
            self.recompute_tables(lm, world);
        }
        if c.members.contains(&lm) {
            let my_delay = self.landmarks[lm.index()].rt.delay_to(dest);
            c.claims.retain(|&(j, _)| j != lm.0);
            c.claims.push((lm.0, my_delay));
        }
        if first_time && c.hops_left > 0 {
            let unit = self.current_unit;
            self.landmarks[lm.index()].pending_corrections.push((
                unit,
                Correction {
                    hops_left: c.hops_left - 1,
                    ..c
                },
            ));
        }
    }

    /// Rebuild a landmark's station indices after a routing-table refresh.
    fn rebucket(&mut self, world: &World, lm: LandmarkId) {
        let mut packets = std::mem::take(&mut self.scratch_pkts);
        packets.clear();
        packets.extend(world.station_packets(lm));
        self.landmarks[lm.index()].clear_buckets();
        for &pkt in packets.iter() {
            let p = world.packet(pkt);
            let dst = p.dst;
            let dst_node = p.dst_node;
            let (next, expected, _, fellback) = self.choose_next(lm, dst);
            if fellback {
                self.stats.fallback_reroutes += 1;
            }
            let retries = self.meta_of(pkt).retries;
            self.set_meta(
                pkt,
                PktMeta {
                    next_hop: next,
                    expected,
                    retries,
                },
            );
            let st = &mut self.landmarks[lm.index()];
            st.by_dst.get_or_default(dst).insert(pkt);
            if let Some(nh) = next {
                st.by_next_hop.get_or_default(nh).insert(pkt);
            }
            if let Some(n) = dst_node {
                st.by_dst_node.get_or_default(n).insert(pkt);
            }
        }
        self.scratch_pkts = packets;
    }

    /// The serial start of every unit boundary: scheduled loop injections
    /// and the flat Eq. 4 bandwidth fold. Shared verbatim by the
    /// sequential and sharded `on_time_unit` paths.
    fn unit_prelude(&mut self, unit: u64) {
        self.current_unit = unit;

        // Scheduled loop injections (Table VII experiment). An index walk
        // instead of a filter/collect: only the (rare) due injections are
        // cloned, and the common tick clones nothing.
        for i in 0..self.injections.len() {
            if self.injections[i].at_unit != unit {
                continue;
            }
            let inj = self.injections[i].clone();
            let k = inj.members.len();
            for (idx, &m) in inj.members.iter().enumerate() {
                let next = inj.members[(idx + 1) % k];
                self.landmarks[m.index()]
                    .rt
                    .set_claim(next, inj.dest, 1.0, unit);
            }
        }

        // One flat Eq. 4 fold over every landmark's incoming links (the
        // per-landmark folds are independent, so folding them all before
        // the per-landmark bookkeeping computes identical values).
        self.bw.end_of_unit_all();
    }

    /// Refresh §IV-E.4 registrations, reusing each node's buffer.
    fn refresh_registrations(&mut self) {
        let top = self.cfg.frequent_landmarks;
        for n in 0..self.nodes.len() {
            self.nodes[n]
                .history
                .frequent_landmarks_into(top, &mut self.registrations[n]);
        }
    }

    /// [`FlowRouter::refresh_registrations`] fanned out over contiguous
    /// node chunks. Each chunk pairs a read-only slice of node state with
    /// the matching mutable slice of registration buffers — per-node
    /// outputs are independent, so chunk order is immaterial and the
    /// result is identical to the sequential walk.
    fn refresh_registrations_sharded(&mut self, exec: &dtnflow_sim::ShardExec) {
        /// Below this node count the spawn overhead dwarfs the refresh.
        const PAR_MIN: usize = 256;
        if !exec.parallel() || self.nodes.len() < PAR_MIN {
            self.refresh_registrations();
            return;
        }
        let top = self.cfg.frequent_landmarks;
        let chunk = self.nodes.len().div_ceil(exec.threads()).max(1);
        let parts: Vec<(&[NodeState], &mut [Vec<LandmarkId>])> = self
            .nodes
            .chunks(chunk)
            .zip(self.registrations.chunks_mut(chunk))
            .collect();
        exec.map_parts(parts, |_, (nodes, regs)| {
            for (ns, reg) in nodes.iter().zip(regs.iter_mut()) {
                ns.history.frequent_landmarks_into(top, reg);
            }
        });
    }

    fn timer_token(node: NodeId, episode: u64) -> u64 {
        (episode << 24) | node.0 as u64
    }

    fn decode_token(token: u64) -> (NodeId, u64) {
        (NodeId((token & 0xFF_FFFF) as u32), token >> 24)
    }

    /// Token for a station-recovery retry timer: bit 63 tags the retry
    /// namespace, the low bits carry the landmark. Dead-end tokens
    /// (`(episode << 24) | node`) never reach bit 63 — episodes count a
    /// node's visits, bounded far below `2^39`.
    fn retry_token(lm: LandmarkId) -> u64 {
        RETRY_TOKEN_TAG | lm.0 as u64
    }

    /// The landmark of a retry token, or `None` for dead-end tokens.
    fn decode_retry_token(token: u64) -> Option<LandmarkId> {
        (token & RETRY_TOKEN_TAG != 0).then_some(LandmarkId((token & 0xFFFF) as u16))
    }

    /// The stranded-packet scan a station-recovery retry timer triggers
    /// (scheduled by `on_station_up`). Packets stranded inside the failed
    /// station survived the outage: re-queue each one (retry budget
    /// permitting) and try to move the survivors out through any
    /// connected carriers right away.
    fn process_stranded_retries(&mut self, world: &mut World, lm: LandmarkId) {
        let Some(deg) = self.cfg.degradation else {
            return;
        };
        // A delayed retry may outlive its recovery window: if the station
        // went down again before the timer fired, the next recovery
        // schedules a fresh one.
        if !world.station_is_up(lm) || self.known_down[lm.index()] {
            return;
        }
        let stranded: Vec<PacketId> = world.station_packets(lm).collect();
        for pkt in stranded {
            let (dst, dst_node) = {
                let p = world.packet(pkt);
                (p.dst, p.dst_node)
            };
            let mut meta = self.meta_of(pkt);
            meta.retries += 1;
            if meta.retries > deg.max_retries {
                self.unindex(lm, pkt, dst, dst_node);
                if world.drop_lost(pkt, LossReason::Outage).is_ok() {
                    self.stats.stranded_drops += 1;
                }
                continue;
            }
            self.set_meta(pkt, meta);
            world.record_retry();
            world.emit(|at| SimEvent::RetryQueued { at, lm, pkt });
            self.stats.stranded_requeues += 1;
        }
        self.rebucket(world, lm);
        let survivors: Vec<PacketId> = world.station_packets(lm).collect();
        for pkt in survivors {
            self.try_assign_packet(world, lm, pkt, None);
        }
    }

    // ---- checkpoint codec (DESIGN.md §11) ---------------------------------

    /// Serialize the complete mutable router state: per-node learning
    /// state, per-landmark tables and station indices, the bandwidth
    /// matrix, packet metadata, the Fig. 8 observer, and the extension
    /// counters. The config and its derived loop-injection schedule are
    /// *not* written — the restoring run supplies the same `FlowConfig`
    /// it started with. Scratch buffers are excluded (empty between
    /// events by construction).
    ///
    /// The station indices (`by_next_hop`/`by_dst`/`by_dst_node`) are
    /// serialized verbatim rather than rebuilt via `rebucket` on restore:
    /// rebucketing re-runs `choose_next`, which mutates
    /// `stats.fallback_reroutes` and would diverge from the
    /// uninterrupted run.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_usize(self.nodes.len());
        for ns in &self.nodes {
            encode_node_state(w, ns);
        }
        w.put_usize(self.landmarks.len());
        for st in &self.landmarks {
            encode_landmark_state(w, st);
        }
        self.bw.encode(w);
        w.put_usize(self.meta.len());
        for m in &self.meta {
            encode_opt_lm(w, m.next_hop);
            w.put_f64(m.expected);
            w.put_u32(m.retries);
        }
        self.observer.encode(w);
        w.put_u64(self.current_unit);
        w.put_usize(self.registrations.len());
        for reg in &self.registrations {
            w.put_usize(reg.len());
            for l in reg {
                w.put_u16(l.0);
            }
        }
        w.put_usize(self.known_down.len());
        for &d in &self.known_down {
            w.put_u8(d as u8);
        }
        w.put_u64(self.route_epoch);
        self.rank.encode(w);
        w.put_u64(self.stats.dead_ends_detected);
        w.put_u64(self.stats.loops_detected);
        w.put_u64(self.stats.lb_reroutes);
        w.put_u64(self.stats.tables_received);
        w.put_u64(self.stats.reports_applied);
        w.put_u64(self.stats.fallback_reroutes);
        w.put_u64(self.stats.stranded_requeues);
        w.put_u64(self.stats.stranded_drops);
    }

    /// Inverse of [`FlowRouter::save_state`]. The caller supplies the
    /// same `FlowConfig` and network dimensions the checkpointed run was
    /// started with; a snapshot whose dimensions disagree is rejected
    /// with [`SnapshotError::Mismatch`].
    pub fn restore_state(
        r: &mut Reader<'_>,
        cfg: FlowConfig,
        num_nodes: usize,
        num_landmarks: usize,
    ) -> Result<FlowRouter, SnapshotError> {
        const CTX: &str = "FlowRouter";
        cfg.validate();
        let n = r.seq_len("FlowRouter.nodes")?;
        if n != num_nodes {
            return Err(SnapshotError::Mismatch {
                context: format!("FlowRouter.nodes: snapshot has {n}, run has {num_nodes}"),
            });
        }
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            nodes.push(decode_node_state(r, num_landmarks)?);
        }
        let nl = r.seq_len("FlowRouter.landmarks")?;
        if nl != num_landmarks {
            return Err(SnapshotError::Mismatch {
                context: format!(
                    "FlowRouter.landmarks: snapshot has {nl}, run has {num_landmarks}"
                ),
            });
        }
        let mut landmarks = Vec::with_capacity(nl);
        for l in 0..nl {
            landmarks.push(decode_landmark_state(
                r,
                LandmarkId::from(l),
                num_landmarks,
            )?);
        }
        let bw = BandwidthMatrix::decode(r)?;
        if bw.side() != num_landmarks {
            return Err(SnapshotError::Mismatch {
                context: format!(
                    "FlowRouter.bw: snapshot side {}, run has {num_landmarks}",
                    bw.side()
                ),
            });
        }
        let nm = r.seq_len("FlowRouter.meta")?;
        let mut meta = Vec::with_capacity(nm);
        for _ in 0..nm {
            meta.push(PktMeta {
                next_hop: decode_opt_lm(r, "PktMeta.next_hop")?,
                expected: r.f64(CTX)?,
                retries: r.u32(CTX)?,
            });
        }
        let observer = TableObserver::decode(r)?;
        let current_unit = r.u64(CTX)?;
        let nr = r.seq_len("FlowRouter.registrations")?;
        if nr != num_nodes {
            return Err(SnapshotError::Corrupt {
                context: "FlowRouter.registrations",
            });
        }
        let mut registrations = Vec::with_capacity(nr);
        for _ in 0..nr {
            let k = r.seq_len("FlowRouter.registration")?;
            let mut reg = Vec::with_capacity(k);
            for _ in 0..k {
                reg.push(LandmarkId(r.u16(CTX)?));
            }
            registrations.push(reg);
        }
        let nd = r.seq_len("FlowRouter.known_down")?;
        if nd != num_landmarks {
            return Err(SnapshotError::Corrupt {
                context: "FlowRouter.known_down",
            });
        }
        let mut known_down = Vec::with_capacity(nd);
        for _ in 0..nd {
            known_down.push(decode_bool(r, "FlowRouter.known_down")?);
        }
        let route_epoch = r.u64(CTX)?;
        let rank = RankIndex::decode(r)?;
        if rank.groups() != num_landmarks {
            return Err(SnapshotError::Corrupt {
                context: "FlowRouter.rank",
            });
        }
        let stats = FlowStats {
            dead_ends_detected: r.u64(CTX)?,
            loops_detected: r.u64(CTX)?,
            lb_reroutes: r.u64(CTX)?,
            tables_received: r.u64(CTX)?,
            reports_applied: r.u64(CTX)?,
            fallback_reroutes: r.u64(CTX)?,
            stranded_requeues: r.u64(CTX)?,
            stranded_drops: r.u64(CTX)?,
        };
        let injections = cfg.inject_loops.clone();
        Ok(FlowRouter {
            cfg,
            nodes,
            landmarks,
            bw,
            meta,
            observer,
            current_unit,
            injections,
            registrations,
            known_down,
            route_epoch,
            rank,
            stats,
            scratch_pkts: Vec::new(),
            scratch_bucket: Vec::new(),
            scratch_dist: Vec::new(),
        })
    }
}

// ---- checkpoint codec helpers (module-private state) ----------------------

fn encode_correction(w: &mut Writer, c: &Correction) {
    w.put_u16(c.dest.0);
    w.put_usize(c.members.len());
    for m in &c.members {
        w.put_u16(m.0);
    }
    w.put_u32(c.hops_left);
    w.put_usize(c.claims.len());
    for &(l, d) in &c.claims {
        w.put_u16(l);
        w.put_f64(d);
    }
}

fn decode_correction(r: &mut Reader<'_>) -> Result<Correction, SnapshotError> {
    const CTX: &str = "Correction";
    let dest = LandmarkId(r.u16(CTX)?);
    let nm = r.seq_len("Correction.members")?;
    let mut members = Vec::with_capacity(nm);
    for _ in 0..nm {
        members.push(LandmarkId(r.u16(CTX)?));
    }
    let hops_left = r.u32(CTX)?;
    let nc = r.seq_len("Correction.claims")?;
    let mut claims = Vec::with_capacity(nc);
    for _ in 0..nc {
        claims.push((r.u16(CTX)?, r.f64(CTX)?));
    }
    Ok(Correction {
        dest,
        members,
        hops_left,
        claims,
    })
}

fn encode_node_state(w: &mut Writer, ns: &NodeState) {
    ns.predictor.encode(w);
    ns.accuracy.encode(w);
    ns.history.encode(w);
    match ns.predicted {
        None => w.put_u8(0),
        Some((at, to, p)) => {
            w.put_u8(1);
            w.put_u16(at.0);
            w.put_u16(to.0);
            w.put_f64(p);
        }
    }
    match ns.arrival {
        None => w.put_u8(0),
        Some((lm, since)) => {
            w.put_u8(1);
            w.put_u16(lm.0);
            w.put_u64(since.secs());
        }
    }
    encode_opt_lm(w, ns.last_landmark);
    match &ns.carried {
        None => w.put_u8(0),
        Some(c) => {
            w.put_u8(1);
            w.put_u16(c.from.0);
            w.put_u64(c.seq);
            w.put_usize(c.vector.len());
            for &v in &c.vector {
                w.put_f64(v);
            }
            w.put_usize(c.entries);
            match c.report {
                None => w.put_u8(0),
                Some((to, value, seq)) => {
                    w.put_u8(1);
                    w.put_u16(to.0);
                    w.put_f64(value);
                    w.put_u64(seq);
                }
            }
            w.put_usize(c.corrections.len());
            for corr in &c.corrections {
                encode_correction(w, corr);
            }
        }
    }
    w.put_u64(ns.episode);
}

fn decode_node_state(r: &mut Reader<'_>, num_landmarks: usize) -> Result<NodeState, SnapshotError> {
    const CTX: &str = "NodeState";
    let predictor = MarkovPredictor::decode(r)?;
    let accuracy = AccuracyTracker::decode(r)?;
    let history = VisitHistory::decode(r)?;
    let predicted = match r.u8(CTX)? {
        0 => None,
        1 => Some((
            LandmarkId(r.u16(CTX)?),
            LandmarkId(r.u16(CTX)?),
            r.f64(CTX)?,
        )),
        t => {
            return Err(SnapshotError::InvalidTag {
                context: "NodeState.predicted",
                tag: t as u64,
            })
        }
    };
    let arrival = match r.u8(CTX)? {
        0 => None,
        1 => Some((LandmarkId(r.u16(CTX)?), SimTime(r.u64(CTX)?))),
        t => {
            return Err(SnapshotError::InvalidTag {
                context: "NodeState.arrival",
                tag: t as u64,
            })
        }
    };
    let last_landmark = decode_opt_lm(r, "NodeState.last_landmark")?;
    let carried = match r.u8(CTX)? {
        0 => None,
        1 => {
            let from = LandmarkId(r.u16(CTX)?);
            let seq = r.u64(CTX)?;
            let nv = r.seq_len("Carried.vector")?;
            if nv != num_landmarks {
                return Err(SnapshotError::Corrupt {
                    context: "Carried.vector",
                });
            }
            let mut vector = Vec::with_capacity(nv);
            for _ in 0..nv {
                vector.push(r.f64("Carried")?);
            }
            let entries = r.usize("Carried")?;
            let report = match r.u8("Carried")? {
                0 => None,
                1 => Some((
                    LandmarkId(r.u16("Carried")?),
                    r.f64("Carried")?,
                    r.u64("Carried")?,
                )),
                t => {
                    return Err(SnapshotError::InvalidTag {
                        context: "Carried.report",
                        tag: t as u64,
                    })
                }
            };
            let nc = r.seq_len("Carried.corrections")?;
            let mut corrections = Vec::with_capacity(nc);
            for _ in 0..nc {
                corrections.push(decode_correction(r)?);
            }
            Some(Carried {
                from,
                seq,
                vector,
                entries,
                report,
                corrections,
            })
        }
        t => {
            return Err(SnapshotError::InvalidTag {
                context: "NodeState.carried",
                tag: t as u64,
            })
        }
    };
    let episode = r.u64(CTX)?;
    Ok(NodeState {
        predictor,
        accuracy,
        history,
        predicted,
        arrival,
        last_landmark,
        carried,
        episode,
    })
}

fn encode_landmark_state(w: &mut Writer, st: &LandmarkState) {
    st.rt.encode(w);
    st.by_next_hop.encode_with(w, |w, s| s.encode(w));
    st.by_dst.encode_with(w, |w, s| s.encode(w));
    st.by_dst_node.encode_with(w, |w, s| s.encode(w));
    w.put_usize(st.pending_corrections.len());
    for (born, c) in &st.pending_corrections {
        w.put_u64(*born);
        encode_correction(w, c);
    }
    w.put_usize(st.seen_corrections.len());
    for &(a, b) in &st.seen_corrections {
        w.put_u16(a);
        w.put_u16(b);
    }
    w.put_usize(st.lb_incoming.len());
    for &v in &st.lb_incoming {
        w.put_u64(v);
    }
    w.put_usize(st.lb_outgoing.len());
    for &v in &st.lb_outgoing {
        w.put_u64(v);
    }
    w.put_usize(st.overloaded.len());
    for &b in &st.overloaded {
        w.put_u8(b as u8);
    }
    w.put_u64(st.unit_seq);
    // The route cache travels verbatim (cells, then the counters): a
    // restored lineage must serve the same hits and misses as the
    // uninterrupted run, and a cold cache would diverge the counters.
    w.put_usize(st.route_cache.len());
    for c in &st.route_cache {
        w.put_u64(c.computed);
        w.put_u64(c.epoch);
        encode_opt_lm(w, c.next);
        w.put_f64(c.expected);
        w.put_u8(c.lb_diverted as u8);
        w.put_u8(c.fellback as u8);
    }
    w.put_u64(st.cache_hits);
    w.put_u64(st.cache_misses);
}

fn decode_landmark_state(
    r: &mut Reader<'_>,
    me: LandmarkId,
    num_landmarks: usize,
) -> Result<LandmarkState, SnapshotError> {
    const CTX: &str = "LandmarkState";
    let rt = RoutingTable::decode(r)?;
    if rt.me() != me || rt.size() != num_landmarks {
        return Err(SnapshotError::Mismatch {
            context: format!(
                "LandmarkState.rt: snapshot is for landmark {} of {}, expected {} of {num_landmarks}",
                rt.me().0,
                rt.size(),
                me.0
            ),
        });
    }
    let by_next_hop = DenseMap::decode_with(r, DenseSet::decode)?;
    let by_dst = DenseMap::decode_with(r, DenseSet::decode)?;
    let by_dst_node = DenseMap::decode_with(r, DenseSet::decode)?;
    let np = r.seq_len("LandmarkState.pending_corrections")?;
    let mut pending_corrections = Vec::with_capacity(np);
    for _ in 0..np {
        let born = r.u64(CTX)?;
        pending_corrections.push((born, decode_correction(r)?));
    }
    let ns = r.seq_len("LandmarkState.seen_corrections")?;
    let mut seen_corrections = BTreeSet::new();
    let mut prev: Option<(u16, u16)> = None;
    for _ in 0..ns {
        let key = (r.u16(CTX)?, r.u16(CTX)?);
        if prev.is_some_and(|p| key <= p) {
            return Err(SnapshotError::Corrupt {
                context: "LandmarkState.seen_corrections",
            });
        }
        prev = Some(key);
        seen_corrections.insert(key);
    }
    let expect_vec_u64 = |r: &mut Reader<'_>, context: &'static str| {
        let n = r.seq_len(context)?;
        if n != num_landmarks {
            return Err(SnapshotError::Corrupt { context });
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(r.u64(context)?);
        }
        Ok(v)
    };
    let lb_incoming = expect_vec_u64(r, "LandmarkState.lb_incoming")?;
    let lb_outgoing = expect_vec_u64(r, "LandmarkState.lb_outgoing")?;
    let no = r.seq_len("LandmarkState.overloaded")?;
    if no != num_landmarks {
        return Err(SnapshotError::Corrupt {
            context: "LandmarkState.overloaded",
        });
    }
    let mut overloaded = Vec::with_capacity(no);
    for _ in 0..no {
        overloaded.push(decode_bool(r, "LandmarkState.overloaded")?);
    }
    let unit_seq = r.u64(CTX)?;
    let nc = r.seq_len("LandmarkState.route_cache")?;
    if nc != num_landmarks {
        return Err(SnapshotError::Corrupt {
            context: "LandmarkState.route_cache",
        });
    }
    let mut route_cache = Vec::with_capacity(nc);
    for _ in 0..nc {
        route_cache.push(RouteCacheCell {
            computed: r.u64("RouteCacheCell")?,
            epoch: r.u64("RouteCacheCell")?,
            next: decode_opt_lm(r, "RouteCacheCell.next")?,
            expected: r.f64("RouteCacheCell")?,
            lb_diverted: decode_bool(r, "RouteCacheCell.lb_diverted")?,
            fellback: decode_bool(r, "RouteCacheCell.fellback")?,
        });
    }
    let cache_hits = r.u64(CTX)?;
    let cache_misses = r.u64(CTX)?;
    Ok(LandmarkState {
        rt,
        by_next_hop,
        by_dst,
        by_dst_node,
        pending_corrections,
        seen_corrections,
        lb_incoming,
        lb_outgoing,
        overloaded,
        unit_seq,
        route_cache,
        cache_hits,
        cache_misses,
    })
}

fn decode_bool(r: &mut Reader<'_>, context: &'static str) -> Result<bool, SnapshotError> {
    match r.u8(context)? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(SnapshotError::InvalidTag {
            context,
            tag: t as u64,
        }),
    }
}

impl Router for FlowRouter {
    fn name(&self) -> &'static str {
        "DTN-FLOW"
    }

    fn uses_stations(&self) -> bool {
        true
    }

    fn on_arrive(&mut self, world: &mut World, node: NodeId, lm: LandmarkId) {
        let now = world.now();
        // When the fault plan drops this visit's record, the learning
        // pipeline never sees it: no bandwidth measurement, no accuracy
        // settlement, no predictor observation, no stay history. The
        // physical exchanges (packets, carried tables) still happen.
        let recorded = world.visit_recorded();
        // A down station buffers nothing and learns nothing: no bandwidth
        // measurement and no carried-table delivery until it recovers
        // (this is what lets its neighbours' stored vectors go stale).
        let station_up = world.station_is_up(lm);

        // 1. Transit bookkeeping: bandwidth measurement + prediction
        //    settlement.
        let (prev, predicted) = {
            let ns = &self.nodes[node.index()];
            (ns.last_landmark, ns.predicted)
        };
        // `filter` encodes "a transit has a distinct source" in the type:
        // no source, or a revisit of the same landmark, is not a transit.
        let transit_from = if recorded {
            prev.filter(|&p| p != lm)
        } else {
            None
        };
        if let Some(from) = transit_from {
            if station_up {
                self.bw.record_arrival_from(lm, from);
            }
            if let Some((made_at, to, _)) = predicted {
                if made_at == from {
                    self.nodes[node.index()].accuracy.record(from, to == lm);
                }
            }
        }

        // 2. Deliver carried routing info.
        if station_up {
            if let Some(carried) = self.nodes[node.index()].carried.take() {
                if carried.from != lm {
                    let (c_from, c_entries) = (carried.from, carried.entries);
                    let accepted = self.landmarks[lm.index()].rt.receive(
                        carried.from,
                        StoredVector {
                            seq: carried.seq,
                            delays: carried.vector,
                        },
                    );
                    world.record_table_exchange(carried.entries);
                    world.emit(|at| SimEvent::TableExchanged {
                        at,
                        from: c_from,
                        to: lm,
                        entries: c_entries,
                        accepted,
                    });
                    self.stats.tables_received += 1;
                    if let Some((addressee, value, seq)) = carried.report {
                        if addressee == lm && self.bw.apply_report(lm, carried.from, value, seq) {
                            self.stats.reports_applied += 1;
                        }
                    }
                    if accepted {
                        self.recompute_tables(lm, world);
                    }
                    // `carried` is owned here, so the corrections can be
                    // consumed without the clone a borrowed walk would need.
                    for c in carried.corrections {
                        self.apply_correction(world, lm, c);
                    }
                }
            }
        }

        // 3. Update the node's predictor and make the next prediction.
        {
            let ns = &mut self.nodes[node.index()];
            ns.arrival = Some((lm, now));
            ns.episode += 1;
            if recorded {
                ns.predictor.observe(lm);
                ns.predicted = ns.predictor.predict().map(|(to, p)| (lm, to, p));
            }
        }
        // File the node in the carrier rank index now that its predictor
        // is settled for this stay — the uplink below may already need it
        // as a candidate for other packets at this station.
        self.rank_update(node, lm, true);

        // 4. Uplink: hand over deliverable/improvable packets (§IV-D.1).
        let mut carried_pkts = std::mem::take(&mut self.scratch_pkts);
        carried_pkts.clear();
        carried_pkts.extend(world.node_packets(node));
        for &pkt in carried_pkts.iter() {
            let p = world.packet(pkt);
            let dst = p.dst;
            let meta = self.meta_of(pkt);
            let here_delay = self.landmarks[lm.index()].rt.delay_to(dst);
            let upload = dst == lm
                || meta.next_hop == Some(lm)
                || here_delay < meta.expected * (1.0 + self.cfg.mis_transit_tolerance);
            // §IV-D mis-transit: the packet was stamped toward a different
            // landmark than the one its carrier actually reached.
            if meta.next_hop.is_some_and(|nh| nh != lm && dst != lm) {
                world.emit(|at| SimEvent::MisTransit {
                    at,
                    pkt,
                    node,
                    lm,
                    uploaded: upload,
                });
            }
            if !upload {
                continue;
            }
            match world.transfer_to_station(pkt, lm) {
                Ok(out) => {
                    if out.loop_closed {
                        self.handle_loop(world, lm, pkt);
                    }
                    if !out.delivered {
                        self.station_accept(world, lm, pkt, Some(node));
                    }
                }
                Err(_) => continue,
            }
        }

        // 5. §IV-E.4 deliveries: station packets addressed to this node
        //    (reusing the uplink buffer).
        let mut addressed = carried_pkts;
        addressed.clear();
        if let Some(s) = self.landmarks[lm.index()].by_dst_node.get(node) {
            addressed.extend(s.iter());
        }
        for &pkt in addressed.iter() {
            let dst = world.packet(pkt).dst;
            if world.deliver_to_dst_node(pkt, node).is_ok() {
                self.unindex(lm, pkt, dst, Some(node));
            }
        }
        self.scratch_pkts = addressed;

        // 6. Downlink: load the node with packets it can usefully carry.
        self.assign_to_node(world, lm, node);

        // 7. Dead-end timer (§IV-E.1).
        if let Some(de) = self.cfg.dead_end {
            let ns = &self.nodes[node.index()];
            if ns.history.len() >= de.min_stays {
                let overall = ns.history.avg_stay_overall().map(|d| d.secs());
                let here = ns.history.avg_stay_at(lm).map(|d| d.secs());
                let base = match (overall, here) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                if let Some(avg) = base {
                    let thr = SimDuration::from_secs(((avg as f64) * de.gamma).round() as u64 + 1);
                    world.schedule_timer(
                        now + thr,
                        Self::timer_token(node, self.nodes[node.index()].episode),
                    );
                }
            }
        }
    }

    fn on_depart(&mut self, world: &mut World, node: NodeId, lm: LandmarkId) {
        // The node is leaving: delete its carrier-rank entries (same keys
        // the arrival filed — its predictor state has not moved since).
        self.rank_update(node, lm, false);
        // Last-call downlink: packets that reached this station during the
        // node's stay leave with it if they match its prediction.
        self.assign_to_node(world, lm, node);
        let now = world.now();
        // A visit whose record was lost leaves no trace in the learning
        // pipeline: no stay history, and the next transit is measured
        // from the last *recorded* landmark.
        let recorded = world.visit_recorded();
        {
            let ns = &mut self.nodes[node.index()];
            if let Some((at, since)) = ns.arrival.take() {
                debug_assert_eq!(at, lm);
                if recorded && now > since {
                    ns.history.record(lm, since, now);
                }
            }
            if recorded {
                ns.last_landmark = Some(lm);
            }
            ns.episode += 1;
        }
        // Snapshot the carried routing table + reverse-bandwidth report.
        let predicted_to = self.nodes[node.index()]
            .predicted
            .and_then(|(at, to, _)| (at == lm).then_some(to));
        let st = &self.landmarks[lm.index()];
        let report = predicted_to.map(|h| (h, self.bw.incoming(lm, h), st.unit_seq));
        let corrections = st
            .pending_corrections
            .iter()
            .map(|(_, c)| c.clone())
            .collect();
        self.nodes[node.index()].carried = Some(Carried {
            from: lm,
            seq: st.unit_seq,
            vector: st.rt.snapshot(),
            entries: st.rt.table_size(),
            report,
            corrections,
        });
        let _ = world;
    }

    fn on_packet_generated(&mut self, world: &mut World, pkt: PacketId) {
        // Station-mode packets are born at their source station; anything
        // else would be a sim-side bug, and dropping the event is strictly
        // safer than bringing the whole run down.
        let PacketLoc::AtStation(src) = world.packet(pkt).loc else {
            return;
        };
        self.station_accept(world, src, pkt, None);
    }

    fn on_time_unit(&mut self, world: &mut World, unit: u64) {
        self.unit_prelude(unit);

        for l in 0..self.landmarks.len() {
            let lm = LandmarkId::from(l);
            {
                let st = &mut self.landmarks[l];
                // Snapshot the freshly-folded Eq. 4 estimates for the
                // trace; only links with measured traffic are reported.
                if world.trace_enabled() {
                    for j in (0..st.overloaded.len()).map(LandmarkId::from) {
                        let value = self.bw.incoming(lm, j);
                        if value > 0.0 {
                            world.emit(|at| SimEvent::BandwidthUpdated {
                                at,
                                from: j,
                                to: lm,
                                value,
                            });
                        }
                    }
                }
                // Degradation: age out neighbour vectors that have not
                // been refreshed (e.g. across a station outage) before
                // the recompute below re-ranks routes.
                if let Some(deg) = &self.cfg.degradation {
                    st.rt
                        .decay_stale(unit, deg.staleness_max_age, deg.staleness_factor);
                }
                st.unit_seq = unit;
                st.seen_corrections.clear();
                st.pending_corrections
                    .retain(|(born, _)| unit.saturating_sub(*born) <= 1);
                // Load-balance rates: overloaded when incoming exceeds
                // theta x outgoing with real pressure behind it.
                if let Some(lb) = &self.cfg.load_balance {
                    for h in 0..st.overloaded.len() {
                        st.overloaded[h] = st.lb_incoming[h] >= lb.min_incoming
                            && st.lb_incoming[h] as f64 > lb.theta * st.lb_outgoing[h] as f64;
                    }
                }
                st.lb_incoming.iter_mut().for_each(|c| *c = 0);
                st.lb_outgoing.iter_mut().for_each(|c| *c = 0);
            }
            self.recompute_tables(lm, world);
            self.rebucket(world, lm);
        }

        self.refresh_registrations();
    }

    /// [`FlowRouter::on_time_unit`]'s per-landmark loop fanned out over a
    /// shard runtime (DESIGN.md §13): compute-parallel, commit-ordered.
    ///
    /// The serial prelude (loop injections, the Eq. 4 fold) and every
    /// commit (state put-back, metadata stamps, stats, trace flush) run on
    /// the engine thread in ascending landmark order; only the
    /// independent per-landmark work ([`landmark_unit_work`]) crosses
    /// threads, one shard group per worker. Byte-identical to the
    /// sequential path for any plan — pinned by the differential battery
    /// in `crates/bench`.
    fn on_time_unit_sharded(&mut self, world: &mut World, unit: u64, shards: &Sharding<'_>) {
        if !shards.is_parallel() {
            self.on_time_unit(world, unit);
            return;
        }
        self.unit_prelude(unit);

        let num_landmarks = self.landmarks.len();
        // Take each shard's landmark states out of the router (groups are
        // ascending within a shard, so workers walk them in the sequential
        // loop's relative order).
        let parts: Vec<Vec<(usize, LandmarkState)>> = shards
            .plan
            .groups()
            .iter()
            .map(|group| {
                group
                    .iter()
                    .map(|&l| {
                        (
                            l,
                            std::mem::replace(&mut self.landmarks[l], LandmarkState::vacant()),
                        )
                    })
                    .collect()
            })
            .collect();

        let trace_on = world.trace_enabled();
        let view = world.view();
        let bw = &self.bw;
        let cfg = &self.cfg;
        let known_down = &self.known_down;
        let route_epoch = self.route_epoch;
        let meta = &self.meta;
        let results = shards.exec.map_parts(parts, |_, group| {
            group
                .into_iter()
                .map(|(l, st)| {
                    landmark_unit_work(
                        l,
                        st,
                        unit,
                        trace_on,
                        &view,
                        bw,
                        cfg,
                        known_down,
                        route_epoch,
                        meta,
                    )
                })
                .collect::<Vec<LandmarkUnitResult>>()
        });

        // Commit in ascending landmark order regardless of which shard
        // computed what (round-robin and adversarial plans interleave).
        let mut all: Vec<LandmarkUnitResult> = results.into_iter().flatten().collect();
        all.sort_unstable_by_key(|r| r.l);
        let mut bufs = ShardBuffers::new(num_landmarks);
        for r in all {
            self.landmarks[r.l] = r.st;
            for (pkt, m) in r.metas {
                self.set_meta(pkt, m);
            }
            self.stats.fallback_reroutes += r.fallbacks;
            bufs.set(r.l, r.events);
        }
        world.flush_shard_buffers(&mut bufs);

        self.refresh_registrations_sharded(shards.exec);
    }

    fn on_observe(&mut self, world: &mut World, idx: usize) {
        if world.trace_enabled() {
            for (l, st) in self.landmarks.iter().enumerate() {
                let lm = LandmarkId::from(l);
                let coverage = st.rt.coverage();
                let revision = st.rt.revision();
                world.emit(|at| SimEvent::RouteCoverage {
                    at,
                    lm,
                    coverage,
                    revision,
                });
                let (hits, misses) = (st.cache_hits, st.cache_misses);
                world.emit(|at| SimEvent::RouteCacheHit {
                    at,
                    lm,
                    count: hits,
                });
                world.emit(|at| SimEvent::RouteCacheMiss {
                    at,
                    lm,
                    count: misses,
                });
            }
        }
        let per_landmark = self
            .landmarks
            .iter()
            .map(|st| (st.rt.coverage(), st.rt.next_hops()))
            .collect();
        self.observer.observe(idx, per_landmark);
    }

    fn on_timer(&mut self, world: &mut World, token: u64) {
        // Station-recovery retries share the timer channel with dead-end
        // detection; the tag bit separates the namespaces.
        if let Some(lm) = Self::decode_retry_token(token) {
            self.process_stranded_retries(world, lm);
            return;
        }
        let Some(de) = self.cfg.dead_end else { return };
        let (node, episode) = Self::decode_token(token);
        if node.index() >= self.nodes.len() {
            return;
        }
        {
            let ns = &self.nodes[node.index()];
            if ns.episode != episode {
                return; // the stay this timer was armed for has ended
            }
        }
        let Some((lm, since)) = self.nodes[node.index()].arrival else {
            return;
        };
        let elapsed = world.now().since(since);
        let stuck =
            self.nodes[node.index()]
                .history
                .is_dead_end(lm, elapsed, de.gamma, de.min_stays);
        if !stuck {
            return;
        }
        self.stats.dead_ends_detected += 1;
        // Hand packets back to the landmark so other nodes can take over
        // (§IV-E.1) — but only those the landmark can route onward
        // (the station "utilizes its routing table to decide the next-hop
        // landmark ... and forwards them to the nodes that can carry them
        // out"); a station with no route would just strand the packet.
        let pkts: Vec<PacketId> = world
            .node_packets(node)
            .filter(|&p| {
                let dst = world.packet(p).dst;
                dst == lm || self.landmarks[lm.index()].rt.delay_to(dst).is_finite()
            })
            .collect();
        for pkt in pkts {
            match world.transfer_to_station(pkt, lm) {
                Ok(out) => {
                    if out.loop_closed {
                        self.handle_loop(world, lm, pkt);
                    }
                    if !out.delivered {
                        self.station_accept(world, lm, pkt, Some(node));
                    }
                }
                Err(_) => continue,
            }
        }
    }

    fn on_station_down(&mut self, world: &mut World, lm: LandmarkId) {
        self.known_down[lm.index()] = true;
        self.route_epoch += 1; // `known_down` changed: stale route caches
        if self.cfg.degradation.is_none() {
            return;
        }
        // Re-stamp packets at other stations that were aimed at the downed
        // landmark, so carriers stop ferrying toward a dead end and the
        // backup next hop takes over where one exists.
        let affected: Vec<LandmarkId> = (0..self.landmarks.len())
            .map(LandmarkId::from)
            .filter(|&l| {
                l != lm
                    && world.station_is_up(l)
                    && self.landmarks[l.index()]
                        .by_next_hop
                        .get(lm)
                        .is_some_and(|s| !s.is_empty())
            })
            .collect();
        for l in affected {
            self.rebucket(world, l);
        }
    }

    fn on_station_up(&mut self, world: &mut World, lm: LandmarkId) {
        self.known_down[lm.index()] = false;
        self.route_epoch += 1; // `known_down` changed: stale route caches
        let Some(deg) = self.cfg.degradation else {
            return;
        };
        // Recompute routes with the landmark available again, then hand
        // the stranded-packet scan to the timing wheel: the retry fires
        // as an ordinary shard-local timer event — immediately with the
        // default zero delay, or after the configured grace period (in
        // which case it survives checkpoints like any pending timer).
        self.recompute_tables(lm, world);
        let at = world.now() + SimDuration::from_secs(deg.retry_delay_secs);
        world.schedule_timer(at, Self::retry_token(lm));
    }

    fn on_node_fail(&mut self, _world: &mut World, node: NodeId, at: Option<LandmarkId>) {
        // A node that dies while connected leaves without an `on_depart`:
        // delete its carrier-rank entries here instead (the predictor
        // state the keys derive from is untouched by the failure).
        if let Some(lm) = at {
            self.rank_update(node, lm, false);
        }
        // Everything the node carried (packets, snapshot tables) is
        // already destroyed by the engine. Reset the router-side view of
        // its in-flight state; its long-term mobility model (predictor,
        // accuracy, stay history) is the node's own persistent memory and
        // survives the failure, so it rejoins with it intact.
        let ns = &mut self.nodes[node.index()];
        ns.carried = None;
        ns.predicted = None;
        ns.arrival = None;
        // Clearing this keeps the failure gap out of the bandwidth
        // measurements: the first post-recovery arrival is not a transit.
        ns.last_landmark = None;
        ns.episode += 1; // stale dead-end timers no-op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::config::SimConfig;
    use dtnflow_core::geometry::Point;
    use dtnflow_core::time::{SimTime, DAY};
    use dtnflow_mobility::{Trace, Visit};
    use dtnflow_sim::run;

    /// A three-landmark corridor: node 0 shuttles l0<->l1, node 1 shuttles
    /// l1<->l2, daily. No node ever visits both ends, so only inter-
    /// landmark relaying can deliver l0->l2 packets.
    fn corridor_trace(days: u64) -> Trace {
        let mut visits = Vec::new();
        for d in 0..days {
            let base = d * 86_400;
            // Node 0: l0 morning, l1 noon, l0 evening.
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(0),
                SimTime(base + 1_000),
                SimTime(base + 10_000),
            ));
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(1),
                SimTime(base + 20_000),
                SimTime(base + 30_000),
            ));
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(0),
                SimTime(base + 40_000),
                SimTime(base + 50_000),
            ));
            // Node 1: l1 late morning, l2 afternoon, l1 night — offset so
            // it picks up what node 0 dropped at l1.
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(1),
                SimTime(base + 32_000),
                SimTime(base + 42_000),
            ));
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(2),
                SimTime(base + 52_000),
                SimTime(base + 62_000),
            ));
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(1),
                SimTime(base + 72_000),
                SimTime(base + 82_000),
            ));
        }
        let positions = (0..3).map(|i| Point::new(i as f64 * 500.0, 0.0)).collect();
        Trace::new("corridor", 2, 3, positions, visits).unwrap()
    }

    fn corridor_cfg() -> SimConfig {
        SimConfig {
            packets_per_landmark_per_day: 6.0,
            ttl: DAY.mul(6),
            time_unit: DAY,
            seed: 11,
            ..SimConfig::default()
        }
    }

    #[test]
    fn relays_across_landmarks_without_end_to_end_carriers() {
        let trace = corridor_trace(16);
        let cfg = corridor_cfg();
        let mut router = FlowRouter::new(FlowConfig::default(), 2, 3);
        let out = run(&trace, &cfg, &mut router);
        assert!(out.metrics.generated > 0);
        // l0 -> l2 (and reverse) packets require the two-hop relay; a
        // healthy DTN-FLOW delivers most packets.
        assert!(
            out.metrics.success_rate() > 0.6,
            "success {}",
            out.metrics.success_rate()
        );
        // Multi-hop deliveries exist: some packet crossed l0 -> l1 -> l2.
        let crossed = out
            .packets
            .iter()
            .any(|p| matches!(p.loc, PacketLoc::Delivered(_)) && p.visited.len() >= 2);
        assert!(crossed, "expected at least one relayed delivery");
        assert!(out.metrics.maintenance_ops > 0.0, "tables were exchanged");
    }

    #[test]
    fn fallback_next_hop_avoids_known_down_landmark() {
        // l0 routes to l3 via l1 (delay 6) with backup l2 (delay 7).
        let mut router = FlowRouter::new(FlowConfig::with_degradation(), 2, 4);
        let mk = |pairs: &[(usize, f64)], seq| {
            let mut delays = vec![f64::INFINITY; 4];
            for &(d, v) in pairs {
                delays[d] = v;
            }
            StoredVector { seq, delays }
        };
        let link = |l: LandmarkId| match l.index() {
            1 => 1.0,
            2 => 2.0,
            _ => f64::INFINITY,
        };
        let st = &mut router.landmarks[0];
        st.rt.receive(LandmarkId(1), mk(&[(1, 0.0), (3, 5.0)], 1));
        st.rt.receive(LandmarkId(2), mk(&[(2, 0.0), (3, 5.0)], 1));
        st.rt.recompute(&link);

        // Healthy: the primary wins, no fallback flagged.
        let (next, delay, _, fellback) = router.choose_next(LandmarkId(0), LandmarkId(3));
        assert_eq!(next, Some(LandmarkId(1)));
        assert!((delay - 6.0).abs() < 1e-12);
        assert!(!fellback);

        // Primary's landmark is known down: divert to the backup. Every
        // raw `known_down` write mirrors the station-fault path's epoch
        // bump — that is the route-cache invalidation contract.
        router.known_down[1] = true;
        router.route_epoch += 1;
        let (next, delay, _, fellback) = router.choose_next(LandmarkId(0), LandmarkId(3));
        assert_eq!(next, Some(LandmarkId(2)));
        assert!((delay - 7.0).abs() < 1e-12);
        assert!(fellback);

        // Backup down too: nothing better exists, keep the primary.
        router.known_down[2] = true;
        router.route_epoch += 1;
        let (next, _, _, fellback) = router.choose_next(LandmarkId(0), LandmarkId(3));
        assert_eq!(next, Some(LandmarkId(1)));
        assert!(!fellback);

        // Without the degradation extension the down-set is ignored.
        router.cfg.degradation = None;
        router.known_down[2] = false;
        router.route_epoch += 1;
        let (next, _, _, fellback) = router.choose_next(LandmarkId(0), LandmarkId(3));
        assert_eq!(next, Some(LandmarkId(1)));
        assert!(!fellback);
    }

    #[test]
    fn sharded_unit_boundaries_match_sequential_exactly() {
        // The compute-parallel unit boundary must reproduce the sequential
        // run bit-for-bit: metrics, packet states, extension counters,
        // routing tables AND the full trace-event stream — under balanced,
        // striped and adversarial partitions, with the extension features
        // (load balance, degradation) switched on.
        use dtnflow_core::ids::PacketId;
        use dtnflow_sim::{
            run_traced, FaultPlan, Recorder, ShardExec, ShardPlan, SimSession, Workload,
        };
        let trace = corridor_trace(16);
        let cfg = corridor_cfg();
        let workload = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        for flow in [FlowConfig::default(), FlowConfig::with_degradation()] {
            let mut base_router = FlowRouter::new(flow.clone(), 2, 3);
            let base = run_traced(
                &trace,
                &cfg,
                &workload,
                &FaultPlan::none(),
                &mut base_router,
                Box::new(Recorder::new(1 << 14)),
            );
            let base_rec = Recorder::downcast(base.trace.unwrap()).unwrap();
            let base_events: Vec<_> = base_rec.events().cloned().collect();
            let plans = [
                ShardPlan::contiguous(3, 2),
                ShardPlan::round_robin(3, 3),
                // Adversarial: everything on one shard of eight.
                ShardPlan::from_assignment(vec![7, 7, 7], 8).unwrap(),
            ];
            for plan in plans {
                let threads = plan.num_shards();
                let mut router = FlowRouter::new(flow.clone(), 2, 3);
                let mut session = SimSession::start_sharded(
                    &trace,
                    &cfg,
                    &workload,
                    &FaultPlan::none(),
                    &mut router,
                    Some(Box::new(Recorder::new(1 << 14))),
                    plan.clone(),
                    ShardExec::new(threads),
                );
                session.run_to_end();
                let out = session.finish();
                assert_eq!(
                    format!("{:?}", out.metrics),
                    format!("{:?}", base.metrics),
                    "metrics diverged under {plan:?}"
                );
                assert_eq!(
                    format!("{:?}", out.packets),
                    format!("{:?}", base.packets),
                    "packets diverged under {plan:?}"
                );
                assert_eq!(
                    router.stats(),
                    base_router.stats(),
                    "stats diverged under {plan:?}"
                );
                for l in 0..3 {
                    let lm = LandmarkId::from(l);
                    assert_eq!(
                        format!("{:?}", router.routing_rows(lm)),
                        format!("{:?}", base_router.routing_rows(lm)),
                        "routing table {l} diverged under {plan:?}"
                    );
                }
                let rec = Recorder::downcast(out.trace.unwrap()).unwrap();
                let events: Vec<_> = rec.events().cloned().collect();
                assert_eq!(events, base_events, "trace diverged under {plan:?}");
                // Packet metadata stamps must agree too.
                for i in 0..base.packets.len() {
                    let pkt = PacketId::from(i);
                    assert_eq!(
                        router.stamped_next_hop(pkt),
                        base_router.stamped_next_hop(pkt),
                        "meta diverged for packet {i} under {plan:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn bandwidth_tables_learn_the_corridor() {
        let trace = corridor_trace(16);
        let cfg = corridor_cfg();
        let mut router = FlowRouter::new(FlowConfig::default(), 2, 3);
        let _ = run(&trace, &cfg, &mut router);
        // l0 sees ~2 transits/day to l1 (node 0 shuttling), none to l2.
        let b01 = router.bandwidth(LandmarkId(0), LandmarkId(1));
        let b02 = router.bandwidth(LandmarkId(0), LandmarkId(2));
        assert!(b01 > 0.5, "b01 {b01}");
        assert!(b02 < 0.05, "b02 {b02}");
    }

    #[test]
    fn routing_tables_point_down_the_corridor() {
        let trace = corridor_trace(16);
        let cfg = corridor_cfg();
        let mut router = FlowRouter::new(FlowConfig::default(), 2, 3);
        let _ = run(&trace, &cfg, &mut router);
        let rows = router.routing_rows(LandmarkId(0));
        let to_l2 = rows.iter().find(|(d, _, _)| *d == LandmarkId(2));
        let (_, next, delay) = to_l2.expect("l0 must know a route to l2");
        assert_eq!(*next, LandmarkId(1), "l0 routes to l2 via l1");
        assert!(delay.is_finite());
    }

    #[test]
    fn predictions_become_confident_on_periodic_movement() {
        let trace = corridor_trace(16);
        let cfg = corridor_cfg();
        let mut router = FlowRouter::new(FlowConfig::default(), 2, 3);
        let _ = run(&trace, &cfg, &mut router);
        // Node 0 ends at l0 (last visit), so prediction is l1 next.
        let (to, prob) = router.prediction(NodeId(0)).expect("prediction exists");
        assert_eq!(to, LandmarkId(1));
        assert!(prob > 0.9, "prob {prob}");
    }

    #[test]
    fn observer_rows_cover_and_stabilize() {
        let trace = corridor_trace(16);
        let mut cfg = corridor_cfg();
        cfg.observe_points = 10;
        let mut router = FlowRouter::new(FlowConfig::default(), 2, 3);
        let _ = run(&trace, &cfg, &mut router);
        let rows = router.observations();
        assert_eq!(rows.len(), 10);
        let last = rows.last().unwrap();
        assert!(last.avg_coverage > 0.9, "coverage {}", last.avg_coverage);
        assert!(last.avg_stability > 0.9, "stability {}", last.avg_stability);
    }

    #[test]
    fn dead_end_detection_rescues_packets() {
        // Node 0 shuttles for a while, then gets stuck at l1 for days.
        let mut visits = Vec::new();
        for d in 0..10u64 {
            let base = d * 86_400;
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(0),
                SimTime(base + 1_000),
                SimTime(base + 10_000),
            ));
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(1),
                SimTime(base + 20_000),
                SimTime(base + 30_000),
            ));
            // Node 1 also shuttles l1 <-> l0, slightly offset.
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(1),
                SimTime(base + 32_000),
                SimTime(base + 40_000),
            ));
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(0),
                SimTime(base + 50_000),
                SimTime(base + 60_000),
            ));
        }
        // Day 10: node 0 arrives at l1 and never leaves (maintenance).
        visits.push(Visit::new(
            NodeId(0),
            LandmarkId(1),
            SimTime(10 * 86_400),
            SimTime(14 * 86_400),
        ));
        // Node 1 keeps shuttling during the stall.
        for d in 10..14u64 {
            let base = d * 86_400;
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(1),
                SimTime(base + 32_000),
                SimTime(base + 40_000),
            ));
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(0),
                SimTime(base + 50_000),
                SimTime(base + 60_000),
            ));
        }
        let positions = (0..2).map(|i| Point::new(i as f64 * 500.0, 0.0)).collect();
        let trace = Trace::new("stall", 2, 2, positions, visits).unwrap();
        let cfg = SimConfig {
            packets_per_landmark_per_day: 4.0,
            ttl: DAY.mul(3),
            time_unit: DAY,
            seed: 5,
            ..SimConfig::default()
        };
        let flow = FlowConfig {
            dead_end: Some(crate::config::DeadEndConfig {
                gamma: 2.0,
                min_stays: 5,
            }),
            ..FlowConfig::default()
        };
        let mut router = FlowRouter::new(flow, 2, 2);
        let _ = run(&trace, &cfg, &mut router);
        assert!(
            router.stats().dead_ends_detected > 0,
            "the four-day stall must be detected"
        );
    }

    /// Like the corridor, but the l0<->l1 leg runs at twice the bandwidth
    /// of l1<->l2, so a falsified near-zero claim makes the cheap backward
    /// link attractive and a real routing loop forms (the Fig. 9
    /// scenario: via-l0 = ½T + ε beats the direct 1T link at l1).
    fn asymmetric_corridor_trace(days: u64) -> Trace {
        let mut visits = Vec::new();
        for d in 0..days {
            let base = d * 86_400;
            // Node 0: two l0<->l1 round trips per day.
            for (k, s) in [(0u64, 1_000u64), (1, 43_000)] {
                let o = base + s + k; // k keeps instants distinct
                visits.push(Visit::new(
                    NodeId(0),
                    LandmarkId(0),
                    SimTime(o),
                    SimTime(o + 6_000),
                ));
                visits.push(Visit::new(
                    NodeId(0),
                    LandmarkId(1),
                    SimTime(o + 10_000),
                    SimTime(o + 16_000),
                ));
                visits.push(Visit::new(
                    NodeId(0),
                    LandmarkId(0),
                    SimTime(o + 20_000),
                    SimTime(o + 26_000),
                ));
            }
            // Node 1: one l1<->l2 round trip per day.
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(1),
                SimTime(base + 30_000),
                SimTime(base + 36_000),
            ));
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(2),
                SimTime(base + 40_000),
                SimTime(base + 46_000),
            ));
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(1),
                SimTime(base + 50_000),
                SimTime(base + 56_000),
            ));
        }
        let positions = (0..3).map(|i| Point::new(i as f64 * 500.0, 0.0)).collect();
        Trace::new("asym-corridor", 2, 3, positions, visits).unwrap()
    }

    #[test]
    fn injected_loop_is_detected_and_corrected() {
        let trace = asymmetric_corridor_trace(16);
        let cfg = corridor_cfg();
        let inject = vec![LoopInjection {
            at_unit: 6,
            members: vec![LandmarkId(0), LandmarkId(1)],
            dest: LandmarkId(2),
        }];
        let flow = FlowConfig {
            loop_correction: true,
            inject_loops: inject.clone(),
            ..FlowConfig::default()
        };
        let mut with = FlowRouter::new(flow, 2, 3);
        let out_with = run(&trace, &cfg, &mut with);
        assert!(
            with.stats().loops_detected > 0,
            "looping packets must be noticed"
        );
        // Corrected run still delivers most packets.
        assert!(
            out_with.metrics.success_rate() > 0.5,
            "success {}",
            out_with.metrics.success_rate()
        );
        // Without correction the loops are never acted upon: the router
        // keeps bouncing packets (detections keep accumulating) and
        // success suffers relative to the corrected run.
        let flow_org = FlowConfig {
            loop_correction: false,
            inject_loops: inject,
            ..FlowConfig::default()
        };
        let mut org = FlowRouter::new(flow_org, 2, 3);
        let out_org = run(&trace, &cfg, &mut org);
        assert!(
            out_with.metrics.success_rate() >= out_org.metrics.success_rate(),
            "correction must not hurt: with {} vs org {}",
            out_with.metrics.success_rate(),
            out_org.metrics.success_rate()
        );
    }

    #[test]
    fn send_to_node_uses_registrations() {
        let trace = corridor_trace(16);
        let cfg = corridor_cfg();

        struct Wrapper {
            inner: FlowRouter,
            sent: bool,
            created: Vec<PacketId>,
        }
        impl Router for Wrapper {
            fn name(&self) -> &'static str {
                "wrapper"
            }
            fn uses_stations(&self) -> bool {
                true
            }
            fn on_arrive(&mut self, w: &mut World, n: NodeId, l: LandmarkId) {
                self.inner.on_arrive(w, n, l);
            }
            fn on_depart(&mut self, w: &mut World, n: NodeId, l: LandmarkId) {
                self.inner.on_depart(w, n, l);
            }
            fn on_packet_generated(&mut self, w: &mut World, p: PacketId) {
                self.inner.on_packet_generated(w, p);
            }
            fn on_time_unit(&mut self, w: &mut World, u: u64) {
                self.inner.on_time_unit(w, u);
                // Mid-run, send a packet from l2's subarea to node 0
                // (who frequents l0/l1, never l2).
                if u == 8 && !self.sent {
                    self.sent = true;
                    self.created = self.inner.send_to_node(w, LandmarkId(2), NodeId(0));
                }
            }
            fn on_timer(&mut self, w: &mut World, t: u64) {
                self.inner.on_timer(w, t);
            }
        }

        let mut router = Wrapper {
            inner: FlowRouter::new(FlowConfig::default(), 2, 3),
            sent: false,
            created: Vec::new(),
        };
        let out = run(&trace, &cfg, &mut router);
        assert!(!router.created.is_empty(), "copies were created");
        // At least one copy reached node 0.
        let delivered = router
            .created
            .iter()
            .any(|&p| matches!(out.packets[p.index()].loc, PacketLoc::Delivered(_)));
        assert!(delivered, "node-addressed packet must reach node 0");
        // Registrations for node 0 are its frequent haunts.
        let regs = router.inner.registered_landmarks(NodeId(0));
        assert!(regs.contains(&LandmarkId(0)) || regs.contains(&LandmarkId(1)));
    }

    #[test]
    fn timer_token_roundtrip() {
        let (n, e) = FlowRouter::decode_token(FlowRouter::timer_token(NodeId(123), 456));
        assert_eq!(n, NodeId(123));
        assert_eq!(e, 456);
    }
}
