//! The paper's stated future work (§VI): "combine node-to-node
//! communication to further enhance the packet routing efficiency."
//!
//! [`HybridFlowRouter`] wraps the plain [`FlowRouter`] and adds one
//! mechanism: when two carriers are connected to the same landmark, a
//! packet hops to the peer whose overall transit probability toward the
//! packet's stamped next-hop landmark is decisively higher. Everything
//! else — stations, bandwidth measurement, routing tables, carrier
//! selection — is inherited unchanged, so the wrapper isolates exactly
//! the marginal value of node-to-node handoffs.

use crate::config::FlowConfig;
use crate::router::FlowRouter;
use dtnflow_core::ids::{LandmarkId, NodeId, PacketId};
use dtnflow_sim::{Router, TransferError, World};

/// DTN-FLOW plus opportunistic node-to-node handoffs.
pub struct HybridFlowRouter {
    inner: FlowRouter,
    /// A handoff requires the peer's score to exceed the holder's by this
    /// relative margin (hysteresis against ping-pong).
    margin: f64,
    handoffs: u64,
}

impl HybridFlowRouter {
    /// Wrap a fresh DTN-FLOW router; `margin` is the relative score
    /// hysteresis (0.25 works well — see the ablation bench).
    pub fn new(cfg: FlowConfig, num_nodes: usize, num_landmarks: usize, margin: f64) -> Self {
        assert!(margin >= 0.0, "margin must be non-negative");
        HybridFlowRouter {
            inner: FlowRouter::new(cfg, num_nodes, num_landmarks),
            margin,
            handoffs: 0,
        }
    }

    /// The wrapped router (routing tables, stats, registrations, …).
    pub fn inner(&self) -> &FlowRouter {
        &self.inner
    }

    /// Number of node-to-node handoffs performed.
    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    /// One direction of an encounter: move `holder`'s packets to `other`
    /// when `other` is decisively more likely to make the needed transit.
    fn handoff_pass(&mut self, world: &mut World, holder: NodeId, other: NodeId, lm: LandmarkId) {
        let pkts: Vec<PacketId> = world.node_packets(holder).collect();
        for pkt in pkts {
            if !world.node_has_space(other) {
                break;
            }
            let p = world.packet(pkt);
            // Prefer the final destination when the peer can deliver
            // directly; otherwise compare on the stamped next hop.
            let target = if self.inner.transit_score(other, lm, p.dst) > 0.0 {
                p.dst
            } else {
                match self.inner.stamped_next_hop(pkt) {
                    Some(h) => h,
                    None => continue,
                }
            };
            let mine = self.inner.transit_score(holder, lm, target);
            let theirs = self.inner.transit_score(other, lm, target);
            if theirs > mine * (1.0 + self.margin) && theirs > 0.0 {
                match world.transfer_to_node(pkt, other) {
                    Ok(()) => self.handoffs += 1,
                    Err(TransferError::NoSpace) => break,
                    Err(_) => continue,
                }
            }
        }
    }
}

impl Router for HybridFlowRouter {
    fn name(&self) -> &'static str {
        "DTN-FLOW+n2n"
    }

    fn uses_stations(&self) -> bool {
        true
    }

    fn on_arrive(&mut self, world: &mut World, node: NodeId, lm: LandmarkId) {
        self.inner.on_arrive(world, node, lm);
    }

    fn on_depart(&mut self, world: &mut World, node: NodeId, lm: LandmarkId) {
        self.inner.on_depart(world, node, lm);
    }

    fn on_encounter(
        &mut self,
        world: &mut World,
        newcomer: NodeId,
        present: NodeId,
        lm: LandmarkId,
    ) {
        // Note: fires before `on_arrive`, so the newcomer's prediction is
        // still the one made at its previous landmark — its scores here
        // are zero and packets flow *to* nodes settled at `lm`. The
        // reverse direction happens at the peer's own next encounter.
        self.handoff_pass(world, newcomer, present, lm);
        self.handoff_pass(world, present, newcomer, lm);
    }

    fn on_packet_generated(&mut self, world: &mut World, pkt: PacketId) {
        self.inner.on_packet_generated(world, pkt);
    }

    fn on_time_unit(&mut self, world: &mut World, unit: u64) {
        self.inner.on_time_unit(world, unit);
    }

    fn on_observe(&mut self, world: &mut World, idx: usize) {
        self.inner.on_observe(world, idx);
    }

    fn on_timer(&mut self, world: &mut World, token: u64) {
        self.inner.on_timer(world, token);
    }

    fn on_station_down(&mut self, world: &mut World, lm: LandmarkId) {
        self.inner.on_station_down(world, lm);
    }

    fn on_station_up(&mut self, world: &mut World, lm: LandmarkId) {
        self.inner.on_station_up(world, lm);
    }

    fn on_node_fail(&mut self, world: &mut World, node: NodeId, at: Option<LandmarkId>) {
        self.inner.on_node_fail(world, node, at);
    }

    fn on_node_recover(&mut self, world: &mut World, node: NodeId) {
        self.inner.on_node_recover(world, node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::config::SimConfig;
    use dtnflow_core::geometry::Point;
    use dtnflow_core::time::{SimTime, DAY};
    use dtnflow_mobility::{Trace, Visit};
    use dtnflow_sim::run;

    /// Node 0 picks packets up at l0 but then dawdles at l1; node 1
    /// reliably shuttles l1 -> l2. Handoffs at l1 should move l2-bound
    /// packets from node 0 to node 1.
    fn handoff_trace(days: u64) -> Trace {
        let mut visits = Vec::new();
        for d in 0..days {
            let base = d * 86_400;
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(0),
                SimTime(base + 1_000),
                SimTime(base + 8_000),
            ));
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(1),
                SimTime(base + 12_000),
                SimTime(base + 40_000),
            ));
            // Node 1 arrives at l1 while node 0 is there, then goes to l2.
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(1),
                SimTime(base + 20_000),
                SimTime(base + 26_000),
            ));
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(2),
                SimTime(base + 30_000),
                SimTime(base + 36_000),
            ));
        }
        Trace::new(
            "handoff",
            2,
            3,
            (0..3).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect(),
            visits,
        )
        .unwrap()
    }

    fn cfg() -> SimConfig {
        SimConfig {
            packets_per_landmark_per_day: 6.0,
            ttl: DAY.mul(4),
            time_unit: DAY,
            seed: 17,
            ..SimConfig::default()
        }
    }

    #[test]
    fn handoffs_happen_and_do_not_hurt() {
        let trace = handoff_trace(14);
        let mut hybrid = HybridFlowRouter::new(FlowConfig::default(), 2, 3, 0.25);
        let hybrid_out = run(&trace, &cfg(), &mut hybrid);
        assert!(hybrid.handoffs() > 0, "handoffs must occur at l1");

        let mut plain = FlowRouter::new(FlowConfig::default(), 2, 3);
        let plain_out = run(&trace, &cfg(), &mut plain);
        assert!(
            hybrid_out.metrics.success_rate() >= plain_out.metrics.success_rate(),
            "hybrid {} vs plain {}",
            hybrid_out.metrics.success_rate(),
            plain_out.metrics.success_rate()
        );
    }

    #[test]
    fn conservation_holds_with_handoffs() {
        let trace = handoff_trace(10);
        let mut hybrid = HybridFlowRouter::new(FlowConfig::default(), 2, 3, 0.1);
        let out = run(&trace, &cfg(), &mut hybrid);
        let m = &out.metrics;
        let live = out.packets.iter().filter(|p| p.loc.is_live()).count() as u64;
        assert_eq!(m.delivered + m.expired + live, m.generated);
        let hops: u64 = out.packets.iter().map(|p| p.hops as u64).sum();
        assert_eq!(hops, m.forwarding_ops);
    }

    #[test]
    fn inner_state_is_accessible() {
        let trace = handoff_trace(10);
        let mut hybrid = HybridFlowRouter::new(FlowConfig::default(), 2, 3, 0.25);
        let _ = run(&trace, &cfg(), &mut hybrid);
        // The wrapped router built real routing tables.
        assert!(!hybrid.inner().routing_rows(LandmarkId(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "margin must be non-negative")]
    fn rejects_negative_margin() {
        HybridFlowRouter::new(FlowConfig::default(), 1, 2, -0.5);
    }
}
