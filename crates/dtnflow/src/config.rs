//! DTN-FLOW configuration: the base algorithm knobs plus the §IV-E
//! extension switches, all defaulting to the paper's settings.

use dtnflow_core::ids::LandmarkId;

/// How a transit link's bandwidth maps to an expected per-hop delay
/// (§IV-C.2 leaves the constant factors open; both models are ∝ 1/B and
/// therefore rank paths identically — they differ in the absolute scale
/// used by TTL-feasibility checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDelayModel {
    /// `d = T / B`: the mean wait for the next transit on the link. The
    /// default: the honest single-packet latency estimate.
    TransitInterval,
    /// `d = T·S / (B·M)`: the throughput-based per-packet delay (each
    /// transit can move `M/S` packets).
    Throughput,
}

/// Dead-end prevention (§IV-E.1) parameters.
#[derive(Debug, Clone, Copy)]
pub struct DeadEndConfig {
    /// Stay-time factor `γ`: a stay `γ×` longer than the node's average
    /// marks a dead end. The paper finds 2 best (Table VI).
    pub gamma: f64,
    /// Minimum recorded stays before detection activates (false-positive
    /// guard).
    pub min_stays: usize,
}

impl Default for DeadEndConfig {
    fn default() -> Self {
        DeadEndConfig {
            gamma: 2.0,
            min_stays: 10,
        }
    }
}

/// Load balancing (§IV-E.3) parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoadBalanceConfig {
    /// A link is overloaded when its per-unit incoming packet rate exceeds
    /// `theta ×` its outgoing rate.
    pub theta: f64,
    /// Ignore links with fewer incoming packets than this per unit
    /// (overload needs actual pressure).
    pub min_incoming: u64,
    /// Only divert to the backup next hop when its delay is at most this
    /// factor of the primary's — offloading onto a far slower path costs
    /// more than the queueing it avoids.
    pub max_detour: f64,
}

impl Default for LoadBalanceConfig {
    fn default() -> Self {
        LoadBalanceConfig {
            theta: 2.0,
            min_incoming: 50,
            max_detour: 2.0,
        }
    }
}

/// Graceful-degradation parameters for fault-injected runs (station
/// outages and node churn — see `dtnflow_sim::faults`). All three
/// mechanisms are pure functions of information the router already has,
/// so they change nothing in a fault-free run until a vector actually
/// goes stale or a station actually goes down.
#[derive(Debug, Clone, Copy)]
pub struct DegradationConfig {
    /// A stored distance vector older than this many time units is
    /// considered stale and starts decaying.
    pub staleness_max_age: u64,
    /// Multiplicative penalty applied once per unit to every finite delay
    /// claim in a stale vector — stale routes look progressively worse
    /// until a fresh vector arrives, instead of being trusted forever.
    pub staleness_factor: f64,
    /// How many station outages a stranded packet survives (being
    /// re-queued on recovery each time) before it is dropped.
    pub max_retries: u32,
    /// Delay, in seconds, between a station recovering and its stranded
    /// packets being re-queued. The retry rides the engine timing wheel
    /// as an ordinary shard-local timer event, so with `0` (the default)
    /// it fires at the recovery instant and with a positive delay it
    /// survives checkpoints like any other pending timer.
    pub retry_delay_secs: u64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            staleness_max_age: 2,
            staleness_factor: 1.5,
            max_retries: 8,
            retry_delay_secs: 0,
        }
    }
}

/// A deliberately injected routing loop (the Table VII experiment): at
/// time-unit `at_unit`, each member landmark's stored vector from the next
/// member (cyclically) is falsified to claim a near-zero delay to `dest`.
#[derive(Debug, Clone)]
pub struct LoopInjection {
    pub at_unit: u64,
    pub members: Vec<LandmarkId>,
    pub dest: LandmarkId,
}

/// Accuracy-tracker factors (§IV-D.4).
#[derive(Debug, Clone, Copy)]
pub struct AccuracyFactors {
    pub init: f64,
    pub up: f64,
    pub down: f64,
    pub floor: f64,
}

impl Default for AccuracyFactors {
    fn default() -> Self {
        AccuracyFactors {
            init: 0.5,
            up: 1.1,
            down: 0.8,
            floor: 0.05,
        }
    }
}

/// Complete DTN-FLOW configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Markov predictor order (the paper uses 1 after Fig. 6).
    pub order_k: usize,
    /// EWMA weight `α` in Eq. 4.
    pub bandwidth_alpha: f64,
    /// Bandwidth below which a transit link is not considered a usable
    /// neighbour link.
    pub min_bandwidth: f64,
    /// Link delay model.
    pub delay_model: LinkDelayModel,
    /// Carrier-ranking accuracy factors.
    pub accuracy: AccuracyFactors,
    /// Mis-transit handling slack (§IV-D.1): a carrier that landed at an
    /// unpredicted landmark `m` hands the packet over when
    /// `D_m(dst) < expected × (1 + tolerance)`. The paper's strict rule is
    /// tolerance 0; a positive slack lets near-equivalent landmarks take
    /// the packet back into the routed system instead of stranding it on
    /// a wandering carrier.
    pub mis_transit_tolerance: f64,
    /// Dead-end prevention; `None` = the paper's "ORG" configuration.
    pub dead_end: Option<DeadEndConfig>,
    /// Routing-loop detection and correction (§IV-E.2).
    pub loop_correction: bool,
    /// Load balancing via backup next hops; `None` disables.
    pub load_balance: Option<LoadBalanceConfig>,
    /// Deliberate loop injections for the Table VII experiment.
    pub inject_loops: Vec<LoopInjection>,
    /// How many frequently-visited landmarks a node registers for the
    /// §IV-E.4 routing-to-mobile-nodes extension.
    pub frequent_landmarks: usize,
    /// Graceful degradation under injected faults; `None` disables
    /// staleness decay, down-landmark avoidance and stranded-packet
    /// retries.
    pub degradation: Option<DegradationConfig>,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            order_k: 1,
            bandwidth_alpha: 0.2,
            min_bandwidth: 0.05,
            delay_model: LinkDelayModel::TransitInterval,
            accuracy: AccuracyFactors::default(),
            mis_transit_tolerance: 0.0,
            dead_end: None,
            loop_correction: false,
            load_balance: None,
            inject_loops: Vec::new(),
            frequent_landmarks: 2,
            // Off by default: staleness decay perturbs routing tables
            // even in fault-free runs (vectors can go stale for benign
            // reasons), and the paper's baseline configuration has no
            // fault handling. Fault experiments switch it on.
            degradation: None,
        }
    }
}

impl FlowConfig {
    /// The paper's full configuration with every extension enabled.
    pub fn with_all_extensions() -> Self {
        FlowConfig {
            dead_end: Some(DeadEndConfig::default()),
            loop_correction: true,
            load_balance: Some(LoadBalanceConfig::default()),
            degradation: Some(DegradationConfig::default()),
            ..FlowConfig::default()
        }
    }

    /// The default configuration with graceful degradation enabled, for
    /// fault-injected runs.
    pub fn with_degradation() -> Self {
        FlowConfig {
            degradation: Some(DegradationConfig::default()),
            ..FlowConfig::default()
        }
    }

    /// Panics on out-of-range parameters.
    pub fn validate(&self) {
        assert!(self.order_k >= 1, "order_k must be at least 1");
        assert!(
            (0.0..=1.0).contains(&self.bandwidth_alpha),
            "alpha must be a weight in [0,1]"
        );
        assert!(self.min_bandwidth >= 0.0);
        if let Some(d) = &self.dead_end {
            assert!(d.gamma >= 1.0, "gamma must be at least 1");
        }
        if let Some(l) = &self.load_balance {
            assert!(l.theta >= 1.0, "theta must be at least 1");
            assert!(l.max_detour >= 1.0, "max_detour must be at least 1");
        }
        assert!(
            self.mis_transit_tolerance >= 0.0,
            "mis-transit tolerance must be non-negative"
        );
        assert!(self.frequent_landmarks >= 1);
        if let Some(d) = &self.degradation {
            assert!(
                d.staleness_factor >= 1.0,
                "staleness_factor must be at least 1"
            );
            assert!(d.max_retries >= 1, "max_retries must be at least 1");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_defaults() {
        let c = FlowConfig::default();
        assert_eq!(c.order_k, 1);
        assert!((c.bandwidth_alpha - 0.2).abs() < 1e-12);
        assert!(c.dead_end.is_none());
        assert!(!c.loop_correction);
        assert!(c.load_balance.is_none());
        c.validate();
    }

    #[test]
    fn all_extensions_config() {
        let c = FlowConfig::with_all_extensions();
        assert!(c.dead_end.is_some());
        assert!(c.loop_correction);
        assert!(c.load_balance.is_some());
        assert!((c.dead_end.unwrap().gamma - 2.0).abs() < 1e-12);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_gamma_below_one() {
        let c = FlowConfig {
            dead_end: Some(DeadEndConfig {
                gamma: 0.5,
                min_stays: 1,
            }),
            ..FlowConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let c = FlowConfig {
            bandwidth_alpha: 1.5,
            ..FlowConfig::default()
        };
        c.validate();
    }
}
