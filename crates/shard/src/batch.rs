//! In-unit batch planning for parallel event dispatch (DESIGN.md §15).
//!
//! Between two unit boundaries the engine's merge-ordered event stream
//! contains long runs of *shard-local* events: arrivals, departures,
//! station fault flips and packet generations whose target landmark —
//! and therefore whose touched node/packet set — belongs to a single
//! shard of the [`crate::ShardPlan`]. The planner groups a maximal
//! prefix of such a run into one *window* of per-shard batches that can
//! be staged concurrently against a frozen world view, with the commit
//! replaying the original merge order exactly.
//!
//! The planner never sees engine types; the engine classifies each
//! event into a [`Claim`] (owning shard plus the touched node, if any)
//! and the planner applies the partition rule:
//!
//! * events of different shards touching disjoint nodes may share a
//!   window (their batches stage concurrently);
//! * a node claimed by two *different* shards inside one window — a
//!   handoff between differently-sharded landmarks (depart at shard A,
//!   arrive at shard B) — cuts the window before the second claim:
//!   such an event is a barrier and dispatches sequentially;
//! * control events (unit boundaries, node fault flips, timers,
//!   observations) never reach the planner — the engine cuts the run
//!   before them.
//!
//! Planning is a pure function of the claim sequence, so batch
//! boundaries are deterministic: the same run always produces the same
//! windows, and — because the commit phase replays merge order — the
//! boundaries are invisible in every output byte.

use std::collections::BTreeMap;

/// How the engine dispatches events between unit boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Sequential in-unit dispatch; only the unit-*boundary* maintenance
    /// fans out (the DESIGN.md §13 region).
    Boundary,
    /// Boundary fan-out plus in-unit shard-local execution batches
    /// (DESIGN.md §15). The default for sharded runs.
    #[default]
    InUnit,
}

impl DispatchMode {
    /// The `parallel_region` tag benches record next to wall times, so
    /// curves measured under different regions are never compared
    /// silently.
    pub fn region_label(self) -> &'static str {
        match self {
            DispatchMode::Boundary => "boundary",
            DispatchMode::InUnit => "boundary+dispatch",
        }
    }

    /// Parse a CLI/bench flag value (`"on"`/`"off"` or a region label).
    pub fn parse(s: &str) -> Option<DispatchMode> {
        match s {
            "on" | "dispatch" | "boundary+dispatch" | "in-unit" => Some(DispatchMode::InUnit),
            "off" | "boundary" => Some(DispatchMode::Boundary),
            _ => None,
        }
    }
}

/// One shard-local event, as classified by the engine: the shard that
/// owns it and the node it touches (`None` for node-less events such as
/// generations and station fault flips).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Claim {
    /// Owning shard (the event's target landmark under the plan).
    pub shard: usize,
    /// Touched node, if any — the conflict key for the handoff rule.
    pub node: Option<u64>,
}

/// One shard's slice of a window: the positions (indexes into the
/// window's merge-ordered event run) this shard stages, in merge order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// The staging shard.
    pub shard: usize,
    /// Window positions owned by this shard, ascending.
    pub positions: Vec<usize>,
}

/// A planned window: how many leading claims it covers and the
/// per-shard batches (ascending shard id, so iteration order is
/// deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowPlan {
    /// Number of leading claims in the window. Claims past `len` were
    /// cut off by the handoff rule and belong to the next window.
    pub len: usize,
    /// Per-shard batches, ascending by shard id; only non-empty shards
    /// appear.
    pub batches: Vec<Batch>,
    /// True when `len` was limited by a cross-shard node handoff (the
    /// claim at `len` touches a node already claimed by another shard).
    pub cut_by_handoff: bool,
}

/// Plan the largest window over a prefix of `claims`.
///
/// Walks the claims in merge order, tracking which shard last claimed
/// each node; stops at the first claim whose node is already owned by a
/// *different* shard in this window. Everything before the cut is
/// grouped into per-shard batches.
pub fn plan_window(claims: &[Claim]) -> WindowPlan {
    let mut owner: BTreeMap<u64, usize> = BTreeMap::new();
    let mut per_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut len = 0;
    let mut cut_by_handoff = false;
    for (i, c) in claims.iter().enumerate() {
        if let Some(n) = c.node {
            match owner.get(&n) {
                Some(&s) if s != c.shard => {
                    cut_by_handoff = true;
                    break;
                }
                _ => {
                    owner.insert(n, c.shard);
                }
            }
        }
        per_shard.entry(c.shard).or_default().push(i);
        len = i + 1;
    }
    WindowPlan {
        len,
        batches: per_shard
            .into_iter()
            .map(|(shard, positions)| Batch { shard, positions })
            .collect(),
        cut_by_handoff,
    }
}

/// Log₂ batch-size histogram buckets: `1, 2, 4, …, ≥ 2^(N-1)` events.
pub const HIST_BUCKETS: usize = 10;

/// Diagnostics from in-unit parallel dispatch: how many events staged
/// vs dispatched sequentially, window/batch counts, cut reasons, and a
/// batch-size histogram. Pure throughput telemetry — never checkpointed
/// and never output-affecting (the differential battery ignores it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Staged windows executed (≥ 2 batches each).
    pub windows: u64,
    /// Events dispatched through staged windows.
    pub staged_events: u64,
    /// Events dispatched on the ordinary sequential path (control
    /// events, barriers, single-batch runs, timers).
    pub sequential_events: u64,
    /// Per-shard batches staged.
    pub batches: u64,
    /// Windows cut short by a cross-shard node handoff barrier.
    pub handoff_cuts: u64,
    /// Log₂ histogram of staged batch sizes (`batch_hist[i]` counts
    /// batches of `2^i ..< 2^(i+1)` events; the last bucket is open).
    pub batch_hist: [u64; HIST_BUCKETS],
}

impl DispatchStats {
    /// File one staged batch of `len` events into the histogram.
    pub fn record_batch(&mut self, len: usize) {
        self.batches += 1;
        let bucket = (usize::BITS - 1 - len.max(1).leading_zeros()) as usize;
        self.batch_hist[bucket.min(HIST_BUCKETS - 1)] += 1;
    }

    /// Fold another run's stats into this one (bench aggregation).
    pub fn merge(&mut self, other: &DispatchStats) {
        self.windows += other.windows;
        self.staged_events += other.staged_events;
        self.sequential_events += other.sequential_events;
        self.batches += other.batches;
        self.handoff_cuts += other.handoff_cuts;
        for (a, b) in self.batch_hist.iter_mut().zip(other.batch_hist.iter()) {
            *a += b;
        }
    }

    /// Human label for histogram bucket `i` (`"1"`, `"2-3"`, …,
    /// `">=512"`).
    pub fn bucket_label(i: usize) -> String {
        if i + 1 >= HIST_BUCKETS {
            format!(">={}", 1usize << i)
        } else if i == 0 {
            "1".to_owned()
        } else {
            format!("{}-{}", 1usize << i, (1usize << (i + 1)) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(shard: usize, node: Option<u64>) -> Claim {
        Claim { shard, node }
    }

    #[test]
    fn disjoint_shards_share_one_window() {
        let claims = [
            c(0, Some(1)),
            c(1, Some(2)),
            c(0, None),
            c(1, Some(3)),
            c(0, Some(1)), // same node, same shard: fine
        ];
        let plan = plan_window(&claims);
        assert_eq!(plan.len, 5);
        assert!(!plan.cut_by_handoff);
        assert_eq!(
            plan.batches,
            vec![
                Batch {
                    shard: 0,
                    positions: vec![0, 2, 4]
                },
                Batch {
                    shard: 1,
                    positions: vec![1, 3]
                },
            ]
        );
    }

    #[test]
    fn cross_shard_handoff_cuts_the_window() {
        // Node 7 departs at shard 0 then arrives at shard 2: the arrive
        // is a barrier.
        let claims = [c(0, Some(7)), c(1, None), c(2, Some(7)), c(2, Some(8))];
        let plan = plan_window(&claims);
        assert_eq!(plan.len, 2);
        assert!(plan.cut_by_handoff);
        assert_eq!(plan.batches.len(), 2);
        // Planning resumes past the barrier: the rest forms its own window.
        let rest = plan_window(&claims[plan.len..]);
        assert_eq!(rest.len, 2);
        assert!(!rest.cut_by_handoff);
    }

    #[test]
    fn empty_and_single_claims() {
        assert_eq!(plan_window(&[]).len, 0);
        let plan = plan_window(&[c(3, Some(9))]);
        assert_eq!(plan.len, 1);
        assert_eq!(plan.batches.len(), 1);
        assert_eq!(plan.batches[0].shard, 3);
    }

    #[test]
    fn immediate_handoff_still_makes_progress() {
        // First claim always enters the window even if a later plan saw
        // its node elsewhere — ownership is per-window, so a barrier
        // event planned alone forms a 1-event window.
        let claims = [c(1, Some(4)), c(0, Some(4))];
        let plan = plan_window(&claims);
        assert_eq!(plan.len, 1);
        assert!(plan.cut_by_handoff);
        let rest = plan_window(&claims[1..]);
        assert_eq!(rest.len, 1);
    }

    #[test]
    fn histogram_buckets_and_labels() {
        let mut s = DispatchStats::default();
        s.record_batch(1);
        s.record_batch(2);
        s.record_batch(3);
        s.record_batch(700);
        assert_eq!(s.batches, 4);
        assert_eq!(s.batch_hist[0], 1);
        assert_eq!(s.batch_hist[1], 2);
        assert_eq!(s.batch_hist[HIST_BUCKETS - 1], 1);
        assert_eq!(DispatchStats::bucket_label(0), "1");
        assert_eq!(DispatchStats::bucket_label(1), "2-3");
        assert_eq!(DispatchStats::bucket_label(HIST_BUCKETS - 1), ">=512");
        let mut t = DispatchStats::default();
        t.record_batch(1);
        t.merge(&s);
        assert_eq!(t.batches, 5);
        assert_eq!(t.batch_hist[0], 2);
    }

    #[test]
    fn dispatch_mode_labels_and_parse() {
        assert_eq!(DispatchMode::default(), DispatchMode::InUnit);
        assert_eq!(DispatchMode::InUnit.region_label(), "boundary+dispatch");
        assert_eq!(DispatchMode::Boundary.region_label(), "boundary");
        assert_eq!(DispatchMode::parse("on"), Some(DispatchMode::InUnit));
        assert_eq!(DispatchMode::parse("off"), Some(DispatchMode::Boundary));
        assert_eq!(
            DispatchMode::parse("boundary"),
            Some(DispatchMode::Boundary)
        );
        assert_eq!(DispatchMode::parse("nope"), None);
    }
}
