//! The sanctioned fan-out: scoped threads, part-ordered results.
//!
//! This file is the **only** place in the workspace allowed to touch
//! thread primitives (detlint C1 carries a scoped allowlist naming
//! exactly this path; an ad-hoc `thread::spawn` anywhere else still
//! fires). Determinism holds because nothing here depends on scheduling:
//! each part computes an independent result, and results are joined and
//! consumed in part order — completion order never escapes.

use std::thread;

/// A deterministic fork/join executor.
///
/// `map_parts` is the whole API: run one closure per part, return the
/// results indexed by part. With `threads <= 1` (or fewer than two
/// parts) everything runs inline on the caller's thread; otherwise one
/// scoped thread per part. Both paths produce the identical result
/// vector — the thread count is a throughput knob, never a semantic one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardExec {
    threads: usize,
}

impl ShardExec {
    /// An executor that fans out when `threads > 1` (clamped to ≥ 1).
    pub fn new(threads: usize) -> ShardExec {
        ShardExec {
            threads: threads.max(1),
        }
    }

    /// The inline executor: every part runs on the caller's thread.
    pub fn sequential() -> ShardExec {
        ShardExec { threads: 1 }
    }

    /// An executor sized to the host (`available_parallelism`, falling
    /// back to 1 when the host will not say). Outcome-neutral by
    /// construction; used by the bench bins to label scaling curves.
    pub fn host() -> ShardExec {
        let threads = thread::available_parallelism().map_or(1, |n| n.get());
        ShardExec::new(threads)
    }

    /// Configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when [`ShardExec::map_parts`] actually spawns.
    pub fn parallel(&self) -> bool {
        self.threads > 1
    }

    /// Run `f(part_index, part)` for every part and return the results
    /// in part order.
    ///
    /// Parallel mode spawns one scoped thread per part and joins them in
    /// part order; a panicking part is re-raised on the caller's thread
    /// after all parts have been joined by the scope. Sequential mode is
    /// a plain loop. The two are observationally identical.
    pub fn map_parts<P, R, F>(&self, parts: Vec<P>, f: F) -> Vec<R>
    where
        P: Send,
        R: Send,
        F: Fn(usize, P) -> R + Sync,
    {
        if !self.parallel() || parts.len() <= 1 {
            return parts
                .into_iter()
                .enumerate()
                .map(|(i, p)| f(i, p))
                .collect();
        }
        let f = &f;
        thread::scope(|s| {
            let handles: Vec<_> = parts
                .into_iter()
                .enumerate()
                .map(|(i, p)| s.spawn(move || f(i, p)))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_part_order() {
        for threads in [1, 2, 8] {
            let exec = ShardExec::new(threads);
            let parts: Vec<u64> = (0..16).collect();
            let got = exec.map_parts(parts, |i, p| {
                // Stagger finish times so completion order differs from
                // part order under real threads.
                std::thread::sleep(std::time::Duration::from_micros((16 - i as u64) * 50));
                p * 10 + i as u64
            });
            let want: Vec<u64> = (0..16).map(|i| i * 10 + i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let parts: Vec<usize> = (0..9).collect();
        let seq = ShardExec::sequential().map_parts(parts.clone(), |i, p| (i, p * p));
        let par = ShardExec::new(4).map_parts(parts, |i, p| (i, p * p));
        assert_eq!(seq, par);
    }

    #[test]
    fn zero_threads_clamps_to_inline() {
        let exec = ShardExec::new(0);
        assert_eq!(exec.threads(), 1);
        assert!(!exec.parallel());
        assert_eq!(exec.map_parts(vec![5], |i, p: u32| p + i as u32), vec![5]);
    }

    #[test]
    fn empty_and_singleton_part_lists() {
        let exec = ShardExec::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(exec.map_parts(empty, |_, p: u32| p).is_empty());
        assert_eq!(exec.map_parts(vec![3u32], |_, p| p * 2), vec![6]);
    }

    #[test]
    fn worker_panic_propagates() {
        let exec = ShardExec::new(4);
        let res = std::panic::catch_unwind(|| {
            exec.map_parts(vec![0u32, 1, 2, 3], |_, p| {
                if p == 2 {
                    panic!("boom {p}");
                }
                p
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn host_reports_at_least_one_thread() {
        assert!(ShardExec::host().threads() >= 1);
    }
}
