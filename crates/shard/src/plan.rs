//! Landmark → shard partition plans.
//!
//! A plan is a pure description: it never touches simulation state and
//! never affects outcomes (the differential battery proves that). The
//! constructors cover the layouts the tests exercise — balanced
//! contiguous ranges (the default), round-robin striping, and arbitrary
//! maps for adversarial partitions (all landmarks in one shard, one
//! landmark per shard).

/// Why a partition map was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPlanError {
    /// A plan must have at least one shard.
    ZeroShards,
    /// An assignment named a shard outside `0..num_shards`.
    ShardOutOfRange {
        /// The offending landmark index.
        landmark: usize,
        /// The shard it was assigned to.
        shard: usize,
        /// The declared shard count.
        num_shards: usize,
    },
}

impl std::fmt::Display for ShardPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ShardPlanError::ZeroShards => write!(f, "shard plan needs at least one shard"),
            ShardPlanError::ShardOutOfRange {
                landmark,
                shard,
                num_shards,
            } => write!(
                f,
                "landmark {landmark} assigned to shard {shard}, \
                 but the plan has only {num_shards} shards"
            ),
        }
    }
}

impl std::error::Error for ShardPlanError {}

/// A validated partition of landmark indexes into shards.
///
/// Shards may be empty (a plan with more shards than landmarks is legal;
/// the adversarial tests rely on it). Every landmark belongs to exactly
/// one shard, and [`ShardPlan::landmarks_of`] lists each shard's
/// landmarks in ascending index order — the order the commit phase
/// walks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// `assign[landmark] = shard`.
    assign: Vec<usize>,
    /// `groups[shard]` = that shard's landmarks, ascending.
    groups: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Everything in one shard: the sequential layout every other plan
    /// must reproduce byte-for-byte.
    pub fn single(num_landmarks: usize) -> ShardPlan {
        ShardPlan {
            assign: vec![0; num_landmarks],
            groups: vec![(0..num_landmarks).collect()],
        }
    }

    /// Balanced contiguous ranges: the first `num_landmarks % shards`
    /// shards hold one extra landmark. `shards == 0` is clamped to 1;
    /// shards beyond the landmark count stay empty.
    pub fn contiguous(num_landmarks: usize, shards: usize) -> ShardPlan {
        let shards = shards.max(1);
        let base = num_landmarks / shards;
        let extra = num_landmarks % shards;
        let mut assign = Vec::with_capacity(num_landmarks);
        let mut groups = vec![Vec::new(); shards];
        let mut next = 0usize;
        for (s, group) in groups.iter_mut().enumerate() {
            let len = base + usize::from(s < extra);
            for _ in 0..len {
                assign.push(s);
                group.push(next);
                next += 1;
            }
        }
        ShardPlan { assign, groups }
    }

    /// Round-robin striping (`landmark % shards`): deliberately scatters
    /// neighbouring landmarks across shards, so commits interleave across
    /// shard boundaries — a stress layout for the ascending-id reduction.
    pub fn round_robin(num_landmarks: usize, shards: usize) -> ShardPlan {
        let shards = shards.max(1);
        let mut assign = Vec::with_capacity(num_landmarks);
        let mut groups = vec![Vec::new(); shards];
        for lm in 0..num_landmarks {
            let s = lm % shards;
            assign.push(s);
            groups[s].push(lm);
        }
        ShardPlan { assign, groups }
    }

    /// An arbitrary partition map (`assign[landmark] = shard`) with an
    /// explicit shard count, which may exceed the highest shard actually
    /// used — that is how the adversarial "all landmarks in one shard of
    /// eight" layout is built.
    pub fn from_assignment(
        assign: Vec<usize>,
        num_shards: usize,
    ) -> Result<ShardPlan, ShardPlanError> {
        if num_shards == 0 {
            return Err(ShardPlanError::ZeroShards);
        }
        let mut groups = vec![Vec::new(); num_shards];
        for (landmark, &shard) in assign.iter().enumerate() {
            if shard >= num_shards {
                return Err(ShardPlanError::ShardOutOfRange {
                    landmark,
                    shard,
                    num_shards,
                });
            }
            groups[shard].push(landmark);
        }
        Ok(ShardPlan { assign, groups })
    }

    /// Number of shards (≥ 1; some may be empty).
    pub fn num_shards(&self) -> usize {
        self.groups.len()
    }

    /// Number of partitioned landmarks.
    pub fn num_landmarks(&self) -> usize {
        self.assign.len()
    }

    /// The shard owning `landmark`. Out-of-range indexes (entities the
    /// plan never partitioned) fold into shard 0 — the control shard.
    pub fn shard_of(&self, landmark: usize) -> usize {
        self.assign.get(landmark).copied().unwrap_or(0)
    }

    /// The landmarks of `shard`, ascending.
    pub fn landmarks_of(&self, shard: usize) -> &[usize] {
        self.groups.get(shard).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All shard groups, ascending shard index (each group ascending by
    /// landmark index).
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// True when the plan is the degenerate single-shard layout.
    pub fn is_single(&self) -> bool {
        self.groups.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_owns_everything() {
        let p = ShardPlan::single(5);
        assert_eq!(p.num_shards(), 1);
        assert!(p.is_single());
        assert_eq!(p.landmarks_of(0), &[0, 1, 2, 3, 4]);
        assert!((0..5).all(|l| p.shard_of(l) == 0));
    }

    #[test]
    fn contiguous_is_balanced_and_covers() {
        let p = ShardPlan::contiguous(10, 4);
        assert_eq!(p.num_shards(), 4);
        assert_eq!(p.landmarks_of(0), &[0, 1, 2]);
        assert_eq!(p.landmarks_of(1), &[3, 4, 5]);
        assert_eq!(p.landmarks_of(2), &[6, 7]);
        assert_eq!(p.landmarks_of(3), &[8, 9]);
        let total: usize = p.groups().iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn contiguous_with_more_shards_than_landmarks_leaves_empties() {
        let p = ShardPlan::contiguous(3, 8);
        assert_eq!(p.num_shards(), 8);
        assert_eq!(p.landmarks_of(0), &[0]);
        assert_eq!(p.landmarks_of(2), &[2]);
        assert!(p.landmarks_of(3).is_empty());
        assert!(p.landmarks_of(7).is_empty());
    }

    #[test]
    fn zero_shards_clamps_in_layouts_and_errors_in_maps() {
        assert_eq!(ShardPlan::contiguous(4, 0).num_shards(), 1);
        assert_eq!(ShardPlan::round_robin(4, 0).num_shards(), 1);
        assert_eq!(
            ShardPlan::from_assignment(vec![0], 0),
            Err(ShardPlanError::ZeroShards)
        );
    }

    #[test]
    fn round_robin_stripes() {
        let p = ShardPlan::round_robin(7, 3);
        assert_eq!(p.landmarks_of(0), &[0, 3, 6]);
        assert_eq!(p.landmarks_of(1), &[1, 4]);
        assert_eq!(p.landmarks_of(2), &[2, 5]);
    }

    #[test]
    fn from_assignment_validates_range() {
        let p = ShardPlan::from_assignment(vec![7, 7, 7], 8).unwrap();
        assert_eq!(p.num_shards(), 8);
        assert_eq!(p.landmarks_of(7), &[0, 1, 2]);
        assert!(p.landmarks_of(0).is_empty());

        let err = ShardPlan::from_assignment(vec![0, 3], 3).unwrap_err();
        assert_eq!(
            err,
            ShardPlanError::ShardOutOfRange {
                landmark: 1,
                shard: 3,
                num_shards: 3
            }
        );
        assert!(err.to_string().contains("landmark 1"));
    }

    #[test]
    fn out_of_range_lookup_folds_to_control_shard() {
        let p = ShardPlan::contiguous(4, 2);
        assert_eq!(p.shard_of(99), 0);
    }
}
