//! Deterministic sharding runtime (DESIGN.md §13).
//!
//! The sharded engine follows a *compute-parallel, commit-ordered* model:
//! shards compute independently within a time unit and their effects are
//! committed in a fixed order (ascending shard, ascending entity id), so
//! every output byte is identical for any shard count. This crate holds
//! the two pieces that model needs:
//!
//! * [`ShardPlan`] — a validated partition of landmark indexes into
//!   shards (contiguous, round-robin, or arbitrary maps for adversarial
//!   tests);
//! * [`ShardExec`] — the **one sanctioned spawn/join site** in the
//!   workspace (detlint C1 allowlists exactly `src/exec.rs`): a scoped
//!   fan-out whose results are consumed in part order, never in
//!   completion order;
//! * [`batch`] — the in-unit window planner (DESIGN.md §15): groups
//!   runs of shard-local events into per-shard execution batches that
//!   stage concurrently and commit in exact merge order.
//!
//! Nothing here may influence *what* is computed — only *where*. The
//! differential test battery in `crates/bench` holds that line by
//! byte-comparing every artifact across shard counts.

#![forbid(unsafe_code)]
// Non-test code in this crate must not unwrap/expect (detlint P1);
// clippy enforces the same invariant at compile time.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod exec;
pub mod plan;

pub use batch::{plan_window, Batch, Claim, DispatchMode, DispatchStats, WindowPlan};
pub use exec::ShardExec;
pub use plan::{ShardPlan, ShardPlanError};

/// The shard runtime handed to engine/router hooks: the partition plus
/// the executor. Borrowed, so one plan/executor pair drives a whole run.
#[derive(Debug, Clone, Copy)]
pub struct Sharding<'a> {
    /// Which landmark belongs to which shard.
    pub plan: &'a ShardPlan,
    /// The fan-out executor.
    pub exec: &'a ShardExec,
}

impl<'a> Sharding<'a> {
    /// Bundle a plan and an executor.
    pub fn new(plan: &'a ShardPlan, exec: &'a ShardExec) -> Sharding<'a> {
        Sharding { plan, exec }
    }

    /// True when this runtime actually fans out (more than one shard and
    /// a parallel executor). Single-shard or sequential runtimes take the
    /// plain sequential code paths, which the parallel paths must match
    /// byte-for-byte.
    pub fn is_parallel(&self) -> bool {
        self.exec.parallel() && self.plan.num_shards() > 1
    }
}
