//! Byte-accounted packet storage for nodes and stations.
//!
//! Nodes have limited memory (`M` in the paper); landmark stations are
//! "additional infrastructure with high processing and storage capacity"
//! (§I) and are modelled as unbounded. Iteration order is deterministic
//! (ascending packet id) so simulations are reproducible.

use dtnflow_core::dense::DenseSet;
use dtnflow_core::ids::PacketId;
use dtnflow_snapshot::{Reader, SnapshotError, Writer};

/// A set of packets with byte accounting and an optional capacity.
#[derive(Debug, Clone)]
pub struct PacketStore {
    capacity: Option<u64>,
    used: u64,
    packets: DenseSet<PacketId>,
}

impl PacketStore {
    /// A bounded store (mobile node memory).
    pub fn bounded(capacity: u64) -> Self {
        PacketStore {
            capacity: Some(capacity),
            used: 0,
            packets: DenseSet::new(),
        }
    }

    /// An unbounded store (landmark station).
    pub fn unbounded() -> Self {
        PacketStore {
            capacity: None,
            used: 0,
            packets: DenseSet::new(),
        }
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Free bytes; `u64::MAX` when unbounded.
    pub fn free_bytes(&self) -> u64 {
        match self.capacity {
            Some(c) => c.saturating_sub(self.used),
            None => u64::MAX,
        }
    }

    /// Whether `size` more bytes fit.
    pub fn fits(&self, size: u64) -> bool {
        self.free_bytes() >= size
    }

    /// Number of packets stored.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Whether a packet is present.
    pub fn contains(&self, pkt: PacketId) -> bool {
        self.packets.contains(pkt)
    }

    /// Insert a packet of `size` bytes. Fails (returns `false`) when the
    /// packet would not fit; inserting a packet twice is a logic error.
    pub fn insert(&mut self, pkt: PacketId, size: u64) -> bool {
        if !self.fits(size) {
            return false;
        }
        let inserted = self.packets.insert(pkt);
        assert!(inserted, "packet {pkt} inserted twice");
        self.used += size;
        true
    }

    /// Remove a packet of `size` bytes; `false` when absent.
    pub fn remove(&mut self, pkt: PacketId, size: u64) -> bool {
        if self.packets.remove(pkt) {
            debug_assert!(self.used >= size, "byte accounting underflow");
            self.used -= size;
            true
        } else {
            false
        }
    }

    /// Iterate packets in ascending id order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = PacketId> + '_ {
        self.packets.iter()
    }

    /// Checkpoint encoding (DESIGN.md §11): capacity tag, byte count and
    /// the member set.
    pub fn encode(&self, w: &mut Writer) {
        match self.capacity {
            None => w.put_u8(0),
            Some(c) => {
                w.put_u8(1);
                w.put_u64(c);
            }
        }
        w.put_u64(self.used);
        self.packets.encode(w);
    }

    /// Inverse of [`PacketStore::encode`].
    pub fn decode(r: &mut Reader<'_>) -> Result<PacketStore, SnapshotError> {
        const CTX: &str = "PacketStore";
        let capacity = match r.u8(CTX)? {
            0 => None,
            1 => Some(r.u64(CTX)?),
            t => {
                return Err(SnapshotError::InvalidTag {
                    context: "PacketStore.capacity",
                    tag: t as u64,
                })
            }
        };
        let used = r.u64(CTX)?;
        if capacity.is_some_and(|c| used > c) {
            return Err(SnapshotError::Corrupt { context: CTX });
        }
        let packets = DenseSet::decode(r)?;
        Ok(PacketStore {
            capacity,
            used,
            packets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PacketId {
        PacketId(i)
    }

    #[test]
    fn bounded_store_enforces_capacity() {
        let mut s = PacketStore::bounded(2_048);
        assert!(s.insert(p(0), 1_024));
        assert!(s.insert(p(1), 1_024));
        assert!(!s.insert(p(2), 1_024));
        assert_eq!(s.len(), 2);
        assert_eq!(s.free_bytes(), 0);
        assert!(s.remove(p(0), 1_024));
        assert!(s.insert(p(2), 1_024));
    }

    #[test]
    fn unbounded_store_never_fills() {
        let mut s = PacketStore::unbounded();
        for i in 0..10_000 {
            assert!(s.insert(p(i), 1_024));
        }
        assert_eq!(s.free_bytes(), u64::MAX);
        assert_eq!(s.used_bytes(), 10_000 * 1_024);
    }

    #[test]
    fn remove_absent_returns_false() {
        let mut s = PacketStore::bounded(1_024);
        assert!(!s.remove(p(5), 1_024));
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn iteration_is_ascending() {
        let mut s = PacketStore::unbounded();
        for i in [5u32, 1, 9, 3] {
            s.insert(p(i), 10);
        }
        let order: Vec<u32> = s.iter().map(|x| x.0).collect();
        assert_eq!(order, vec![1, 3, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn double_insert_panics() {
        let mut s = PacketStore::unbounded();
        s.insert(p(0), 10);
        s.insert(p(0), 10);
    }

    #[test]
    fn byte_accounting_balances() {
        let mut s = PacketStore::bounded(10_000);
        for i in 0..5 {
            s.insert(p(i), 100);
        }
        for i in 0..5 {
            s.remove(p(i), 100);
        }
        assert_eq!(s.used_bytes(), 0);
        assert!(s.is_empty());
    }
}
