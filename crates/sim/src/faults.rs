//! Deterministic fault injection: seeded plans of station outages, node
//! churn, contact truncation and trace-record loss.
//!
//! The paper's evaluation (§V) assumes permanently-up landmark stations,
//! complete contacts and clean traces, while §IV-B notes the real traces
//! are full of missing records. This module generates a [`FaultPlan`] —
//! a concrete, fully materialized schedule of faults — from a
//! [`FaultConfig`] of rates, using only the seeded RNG streams from
//! [`dtnflow_core::rngutil`], so a (seed, config, trace) triple always
//! yields the same plan and therefore the same simulation outcome.
//!
//! The plan is interpreted by [`crate::engine::run_with_faults`]:
//!
//! * **Station outages** — while a station is down it buffers nothing:
//!   uplinks/downlinks are refused with
//!   [`crate::TransferError::StationDown`], and packets generated in its
//!   subarea are lost (`lost_to_outage`). Packets already stored stay
//!   stranded until the station recovers.
//! * **Node churn** — a failing node drops off the network immediately;
//!   every packet it carried is destroyed (`lost_to_churn`). It rejoins
//!   at its first trace arrival after recovery.
//! * **Contact truncation** — a truncated visit ends after a random
//!   fraction of its dwell time, cutting short whatever transfers would
//!   have happened in the remainder.
//! * **Record loss** — the visit happens physically, but its record never
//!   reaches the learning layer: routers see
//!   [`crate::World::visit_recorded`] `== false` and must skip predictor
//!   and history updates for it.

use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::rngutil::{exponential, rng_for};
use dtnflow_core::time::SimTime;
use dtnflow_mobility::Trace;
use rand::Rng;

/// Fault rates; all zero (the default) means "no faults".
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Fraction of time each station spends down, in `[0, 1)`.
    pub station_outage_duty: f64,
    /// Mean length of a single station outage, seconds.
    pub mean_outage_secs: f64,
    /// Expected failures per node per day of trace time.
    pub node_failures_per_day: f64,
    /// Mean node downtime after a failure, seconds.
    pub mean_node_downtime_secs: f64,
    /// Probability that a visit's contact is cut short.
    pub contact_truncation_rate: f64,
    /// Probability that a visit record never reaches the learning layer.
    pub record_loss_rate: f64,
    /// Seed for the fault streams (independent of the simulation seed so
    /// the same workload can be stressed by different fault draws).
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            station_outage_duty: 0.0,
            mean_outage_secs: 6.0 * 3_600.0,
            node_failures_per_day: 0.0,
            mean_node_downtime_secs: 12.0 * 3_600.0,
            contact_truncation_rate: 0.0,
            record_loss_rate: 0.0,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// Validate rates and means; call before [`FaultPlan::generate`].
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.station_outage_duty) {
            return Err(format!(
                "station_outage_duty must be in [0,1), got {}",
                self.station_outage_duty
            ));
        }
        for (name, v) in [
            ("contact_truncation_rate", self.contact_truncation_rate),
            ("record_loss_rate", self.record_loss_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        if self.node_failures_per_day < 0.0 || !self.node_failures_per_day.is_finite() {
            return Err(format!(
                "node_failures_per_day must be finite and >= 0, got {}",
                self.node_failures_per_day
            ));
        }
        if self.station_outage_duty > 0.0 && self.mean_outage_secs < 1.0 {
            return Err("mean_outage_secs must be >= 1 when outages are enabled".into());
        }
        if self.node_failures_per_day > 0.0 && self.mean_node_downtime_secs < 1.0 {
            return Err("mean_node_downtime_secs must be >= 1 when churn is enabled".into());
        }
        Ok(())
    }
}

/// One station down-interval: down at `down`, back at `up` (exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StationOutage {
    pub lm: LandmarkId,
    pub down: SimTime,
    pub up: SimTime,
}

/// One node churn interval: off-network from `fail` until `recover`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeOutage {
    pub node: NodeId,
    pub fail: SimTime,
    pub recover: SimTime,
}

/// A fully materialized, deterministic schedule of faults for one trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Station down-intervals; non-overlapping per station, ascending.
    pub station_outages: Vec<StationOutage>,
    /// Node churn intervals; non-overlapping per node, ascending.
    pub node_outages: Vec<NodeOutage>,
    /// `(visit index, fraction of the dwell kept)` for truncated visits.
    pub truncations: Vec<(u32, f64)>,
    /// Visit indices whose records are dropped before the learning layer.
    pub lost_records: Vec<u32>,
}

impl FaultPlan {
    /// The empty plan: running with it is identical to running without
    /// faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether this plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.station_outages.is_empty()
            && self.node_outages.is_empty()
            && self.truncations.is_empty()
            && self.lost_records.is_empty()
    }

    /// Draw a concrete plan for `trace` from seeded streams. Same
    /// `(cfg, trace)` → same plan, always. Panics if `cfg` fails
    /// [`FaultConfig::validate`].
    ///
    /// Each subsystem uses its own `rng_for` stream (per-station,
    /// per-node, per-visit-scan), so enabling one fault class never
    /// shifts the draws of another.
    pub fn generate(cfg: &FaultConfig, trace: &Trace) -> Self {
        if let Err(e) = cfg.validate() {
            // detlint: allow(P1, reason = "documented contract: generate() requires a validated config")
            panic!("invalid fault config: {e}");
        }
        let horizon = trace.duration().secs();
        let mut plan = FaultPlan::default();

        if cfg.station_outage_duty > 0.0 {
            // Alternating up/down renewal process per station: mean up
            // time chosen so down-time fraction equals the duty cycle.
            let up_mean =
                cfg.mean_outage_secs * (1.0 - cfg.station_outage_duty) / cfg.station_outage_duty;
            for i in 0..trace.num_landmarks() {
                let mut rng = rng_for(cfg.seed, &format!("faults/station/{i}"));
                let mut t = 0.0f64;
                loop {
                    t += exponential(&mut rng, up_mean).max(1.0);
                    let down = t as u64;
                    t += exponential(&mut rng, cfg.mean_outage_secs).max(1.0);
                    let up = (t as u64).max(down + 1);
                    if down >= horizon {
                        break;
                    }
                    plan.station_outages.push(StationOutage {
                        lm: LandmarkId::from(i),
                        down: SimTime(down),
                        up: SimTime(up.min(horizon)),
                    });
                }
            }
        }

        if cfg.node_failures_per_day > 0.0 {
            let between_mean = 86_400.0 / cfg.node_failures_per_day;
            for i in 0..trace.num_nodes() {
                let mut rng = rng_for(cfg.seed, &format!("faults/node/{i}"));
                let mut t = 0.0f64;
                loop {
                    t += exponential(&mut rng, between_mean).max(1.0);
                    let fail = t as u64;
                    t += exponential(&mut rng, cfg.mean_node_downtime_secs).max(1.0);
                    let recover = (t as u64).max(fail + 1);
                    if fail >= horizon {
                        break;
                    }
                    plan.node_outages.push(NodeOutage {
                        node: NodeId::from(i),
                        fail: SimTime(fail),
                        recover: SimTime(recover.min(horizon)),
                    });
                }
            }
        }

        if cfg.contact_truncation_rate > 0.0 {
            let mut rng = rng_for(cfg.seed, "faults/truncate");
            for (idx, _) in trace.visits().iter().enumerate() {
                // Draw the fraction unconditionally so which visits are
                // truncated is independent of the rate's exact value
                // ordering across other visits.
                let hit = rng.random_bool(cfg.contact_truncation_rate);
                let frac: f64 = rng.random();
                if hit {
                    plan.truncations.push((idx as u32, frac));
                }
            }
        }

        if cfg.record_loss_rate > 0.0 {
            let mut rng = rng_for(cfg.seed, "faults/records");
            for (idx, _) in trace.visits().iter().enumerate() {
                if rng.random_bool(cfg.record_loss_rate) {
                    plan.lost_records.push(idx as u32);
                }
            }
        }

        plan
    }

    /// Panic if the plan references visits the trace does not have (a
    /// plan generated for a different trace).
    pub(crate) fn check_against(&self, trace: &Trace) {
        let n = trace.visits().len() as u32;
        let in_range = |idx: u32| idx < n;
        assert!(
            self.truncations.iter().all(|&(i, _)| in_range(i))
                && self.lost_records.iter().all(|&i| in_range(i)),
            "fault plan references visit indices beyond the trace"
        );
        assert!(
            self.truncations
                .iter()
                .all(|&(_, f)| (0.0..=1.0).contains(&f)),
            "truncation fractions must be in [0,1]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_mobility::Visit;

    fn trace() -> Trace {
        let mut visits = Vec::new();
        for d in 0..30u64 {
            for n in 0..5u32 {
                visits.push(Visit::new(
                    NodeId(n),
                    LandmarkId((n % 3) as u16),
                    SimTime(d * 86_400 + n as u64 * 1_000),
                    SimTime(d * 86_400 + n as u64 * 1_000 + 600),
                ));
            }
        }
        Trace::new(
            "faulty",
            5,
            3,
            vec![
                dtnflow_core::geometry::Point::new(0.0, 0.0),
                dtnflow_core::geometry::Point::new(1.0, 0.0),
                dtnflow_core::geometry::Point::new(0.0, 1.0),
            ],
            visits,
        )
        .unwrap()
    }

    fn full_cfg(seed: u64) -> FaultConfig {
        FaultConfig {
            station_outage_duty: 0.2,
            mean_outage_secs: 4.0 * 3_600.0,
            node_failures_per_day: 0.5,
            mean_node_downtime_secs: 3_600.0,
            contact_truncation_rate: 0.3,
            record_loss_rate: 0.2,
            seed,
        }
    }

    #[test]
    fn zero_rates_yield_empty_plan() {
        let plan = FaultPlan::generate(&FaultConfig::default(), &trace());
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::none());
    }

    #[test]
    fn same_seed_same_plan_different_seed_differs() {
        let t = trace();
        let a = FaultPlan::generate(&full_cfg(7), &t);
        let b = FaultPlan::generate(&full_cfg(7), &t);
        let c = FaultPlan::generate(&full_cfg(8), &t);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn outage_intervals_are_ordered_and_disjoint_per_station() {
        let t = trace();
        let plan = FaultPlan::generate(&full_cfg(3), &t);
        assert!(!plan.station_outages.is_empty());
        for lm in 0..t.num_landmarks() {
            let mine: Vec<_> = plan
                .station_outages
                .iter()
                .filter(|o| o.lm.index() == lm)
                .collect();
            for o in &mine {
                assert!(o.down < o.up);
                assert!(o.down.secs() < t.duration().secs());
            }
            for w in mine.windows(2) {
                assert!(w[0].up <= w[1].down, "overlapping outages");
            }
        }
    }

    #[test]
    fn outage_duty_cycle_is_roughly_honored() {
        // Long synthetic horizon so the renewal process converges.
        let visits = vec![Visit::new(
            NodeId(0),
            LandmarkId(0),
            SimTime(0),
            SimTime(365 * 86_400),
        )];
        let t = Trace::new(
            "long",
            1,
            1,
            vec![dtnflow_core::geometry::Point::new(0.0, 0.0)],
            visits,
        )
        .unwrap();
        let cfg = FaultConfig {
            station_outage_duty: 0.2,
            mean_outage_secs: 6.0 * 3_600.0,
            seed: 11,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::generate(&cfg, &t);
        let down: u64 = plan
            .station_outages
            .iter()
            .map(|o| o.up.secs() - o.down.secs())
            .sum();
        let duty = down as f64 / (365.0 * 86_400.0);
        assert!((duty - 0.2).abs() < 0.06, "observed duty {duty}");
    }

    #[test]
    fn churn_and_visit_faults_reference_valid_targets() {
        let t = trace();
        let plan = FaultPlan::generate(&full_cfg(5), &t);
        plan.check_against(&t);
        assert!(plan
            .node_outages
            .iter()
            .all(|o| o.fail < o.recover && (o.node.index()) < t.num_nodes()));
        assert!(!plan.truncations.is_empty());
        assert!(!plan.lost_records.is_empty());
        // Roughly the configured fraction of visits is affected.
        let n = t.visits().len() as f64;
        let trunc_rate = plan.truncations.len() as f64 / n;
        assert!((trunc_rate - 0.3).abs() < 0.15, "trunc rate {trunc_rate}");
    }

    #[test]
    #[should_panic(expected = "station_outage_duty")]
    fn validate_rejects_full_duty() {
        let cfg = FaultConfig {
            station_outage_duty: 1.0,
            ..FaultConfig::default()
        };
        FaultPlan::generate(&cfg, &trace());
    }

    #[test]
    #[should_panic(expected = "beyond the trace")]
    fn check_against_rejects_foreign_plan() {
        let mut plan = FaultPlan::none();
        plan.lost_records.push(10_000);
        plan.check_against(&trace());
    }
}
