//! The event loop: merges trace events, workload generations, time-unit
//! boundaries, observation points and router timers into one deterministic
//! timeline and dispatches them to the [`Router`].

use crate::faults::FaultPlan;
use crate::router::Router;
use crate::workload::Workload;
use crate::world::{World, WorldView};
use dtnflow_core::config::SimConfig;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::metrics::RunMetrics;
use dtnflow_core::packet::Packet;
use dtnflow_core::time::{SimDuration, SimTime};
use dtnflow_core::wheel::TimingWheel;
use dtnflow_mobility::Trace;
use dtnflow_obs::{Recorder, SimEvent, TraceSink};
use dtnflow_shard::{
    plan_window, Claim, DispatchMode, DispatchStats, ShardExec, ShardPlan, Sharding,
};
use dtnflow_snapshot::{Reader, SnapshotError, Writer};
use std::collections::BTreeMap;

/// What one simulation run produced.
#[derive(Debug)]
pub struct SimOutcome {
    /// The §V-A.1 metrics.
    pub metrics: RunMetrics,
    /// Every packet with its final state and visited-landmark path
    /// (for loop/path diagnostics).
    pub packets: Vec<Packet>,
    /// The observability sink attached via [`run_traced`], if any
    /// (downcast it — e.g. with `Recorder::downcast` — to read the
    /// recorded events and counters).
    pub trace: Option<Box<dyn TraceSink>>,
    /// In-unit parallel dispatch diagnostics (DESIGN.md §15): window and
    /// batch counts plus a batch-size histogram. Pure telemetry — never
    /// checkpointed, and the differential battery ignores it.
    pub dispatch: DispatchStats,
}

/// Event kinds, ordered by dispatch priority within a timestamp: unit
/// boundaries first (bandwidth snapshots), then station liveness flips
/// (so same-instant node activity sees the new station state), then
/// departures (a node leaves before another arrives at the same instant),
/// node failures (after departures: a same-instant departure completes,
/// but a same-instant arrival of the failing node is suppressed),
/// arrivals, node recoveries (after arrivals: a node that recovers the
/// instant a visit of its own starts still misses that visit and rejoins
/// at the next one), generations, timers, and observations last (they
/// snapshot the settled state).
///
/// `Arrive`/`Depart` carry the trace visit index so fault runs can look
/// up record-loss per visit; within identical timestamps the index sorts
/// exactly like the insertion sequence did (visits are pushed in trace
/// order), so fault-free runs dispatch in the same order as before.

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    TimeUnit(u64),
    StationDown(LandmarkId),
    StationUp(LandmarkId),
    Depart(NodeId, LandmarkId, u32),
    NodeFail(NodeId),
    Arrive(NodeId, LandmarkId, u32),
    NodeRecover(NodeId),
    Generate(LandmarkId, LandmarkId),
    Timer(u64),
    Observe(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at: SimTime,
    kind: EventKind,
    seq: u64,
}

/// Which per-shard queue an event belongs to (DESIGN.md §13): landmark-
/// anchored events go to their landmark's shard queue (offset by one),
/// everything else — unit boundaries, node fault flips, timers,
/// observations — to the control queue at index 0.
fn queue_of(kind: EventKind, plan: &ShardPlan) -> usize {
    match kind {
        EventKind::StationDown(l)
        | EventKind::StationUp(l)
        | EventKind::Depart(_, l, _)
        | EventKind::Arrive(_, l, _) => 1 + plan.shard_of(l.index()),
        EventKind::Generate(src, _) => 1 + plan.shard_of(src.index()),
        EventKind::TimeUnit(_)
        | EventKind::NodeFail(_)
        | EventKind::NodeRecover(_)
        | EventKind::Timer(_)
        | EventKind::Observe(_) => 0,
    }
}

/// The static schedule partitioned by shard ownership: one control queue
/// plus one queue per shard, each holding its events in ascending
/// `(at, kind, seq)` order with a consume cursor.
///
/// Dispatch is a k-way merge over the queue heads. Every event carries a
/// unique total-order key (the build sequence number breaks all ties),
/// so the merge reproduces the globally sorted order *exactly* — the
/// partition changes where events live, never when they dispatch. That
/// makes the consumed-event count (`dispatched`) shard-count-agnostic,
/// which is what the checkpoint cursor encodes: a snapshot taken under
/// one plan restores under any other.
#[derive(Debug)]
struct ShardQueues {
    /// `queues[0]` is the control queue; `queues[1 + s]` is shard `s`'s.
    queues: Vec<(Vec<Event>, usize)>,
    /// Static events consumed so far, in merge (== global sorted) order.
    dispatched: usize,
}

impl ShardQueues {
    /// Partition a globally sorted event list by shard ownership, then
    /// mark the first `consumed` events (in global order) as already
    /// dispatched — the resume path. A stable walk of a sorted list
    /// keeps every queue sorted.
    fn build(events: Vec<Event>, plan: &ShardPlan, consumed: usize) -> ShardQueues {
        let mut queues: Vec<(Vec<Event>, usize)> = (0..1 + plan.num_shards())
            .map(|_| (Vec::new(), 0))
            .collect();
        for (i, ev) in events.into_iter().enumerate() {
            let q = &mut queues[queue_of(ev.kind, plan)];
            q.0.push(ev);
            if i < consumed {
                q.1 += 1;
            }
        }
        ShardQueues {
            queues,
            dispatched: consumed,
        }
    }

    /// The next event in merge order, without consuming it.
    fn peek(&self) -> Option<Event> {
        self.queues
            .iter()
            .filter_map(|(evs, cur)| evs.get(*cur).copied())
            .min()
    }

    /// Consume and return the next event in merge order.
    fn pop(&mut self) -> Option<Event> {
        let mut best: Option<(usize, Event)> = None;
        for (i, (evs, cur)) in self.queues.iter().enumerate() {
            if let Some(&e) = evs.get(*cur) {
                let better = match best {
                    None => true,
                    Some((_, b)) => e < b,
                };
                if better {
                    best = Some((i, e));
                }
            }
        }
        let (i, e) = best?;
        self.queues[i].1 += 1;
        self.dispatched += 1;
        Some(e)
    }

    /// Static events consumed so far (the checkpoint cursor).
    fn dispatched(&self) -> usize {
        self.dispatched
    }

    /// Copy the next run of events in merge order into `out` *without*
    /// consuming them, stopping at `max` events or at the first event
    /// `keep` rejects. `cursors` is caller-owned scratch (cleared here),
    /// so window planning allocates nothing in steady state.
    fn peek_run(
        &self,
        cursors: &mut Vec<usize>,
        max: usize,
        mut keep: impl FnMut(Event) -> bool,
        out: &mut Vec<Event>,
    ) {
        cursors.clear();
        cursors.extend(self.queues.iter().map(|(_, c)| *c));
        while out.len() < max {
            let mut best: Option<(usize, Event)> = None;
            for (i, (evs, _)) in self.queues.iter().enumerate() {
                if let Some(&e) = evs.get(cursors[i]) {
                    let better = match best {
                        None => true,
                        Some((_, b)) => e < b,
                    };
                    if better {
                        best = Some((i, e));
                    }
                }
            }
            let Some((i, e)) = best else { break };
            if !keep(e) {
                break;
            }
            cursors[i] += 1;
            out.push(e);
        }
    }
}

/// Classify an event for the window planner (DESIGN.md §15): its owning
/// shard and the node it touches. `None` for control events — they are
/// barriers and never enter windows.
fn claim_of(kind: EventKind, plan: &ShardPlan) -> Option<Claim> {
    match kind {
        EventKind::StationDown(l) | EventKind::StationUp(l) => Some(Claim {
            shard: plan.shard_of(l.index()),
            node: None,
        }),
        EventKind::Depart(n, l, _) | EventKind::Arrive(n, l, _) => Some(Claim {
            shard: plan.shard_of(l.index()),
            node: Some(n.index() as u64),
        }),
        EventKind::Generate(src, _) => Some(Claim {
            shard: plan.shard_of(src.index()),
            node: None,
        }),
        EventKind::TimeUnit(_)
        | EventKind::NodeFail(_)
        | EventKind::NodeRecover(_)
        | EventKind::Timer(_)
        | EventKind::Observe(_) => None,
    }
}

/// The read-side resolution of one windowed event, computed by a shard
/// worker against the frozen [`WorldView`] (DESIGN.md §15). The commit
/// phase consumes it instead of re-deriving the same answers from the
/// live world; debug builds assert the two agree.
#[derive(Debug)]
enum Staged {
    /// Arrival: suppression (node failed) plus the encounter-partner
    /// list, ascending by id — exactly what the live dispatch reads from
    /// `World::nodes_at` after the arrive lands.
    Arrive {
        suppressed: bool,
        partners: Vec<NodeId>,
    },
    /// Departure: whether the node is actually present (its arrival may
    /// have been swallowed by a failure, or churn removed it mid-visit).
    Depart { present: bool },
    /// No read-side to precompute (generations, station flips): commit
    /// runs the ordinary live dispatch.
    Pass,
}

/// Stage one shard's batch against the frozen view: resolve each
/// event's read-side, tracking in-window moves of this shard's own
/// nodes in a local overlay (`moved`). The window planner guarantees no
/// other shard touches these nodes inside the window, and control
/// events (node fail/recover, timers) never enter windows, so the
/// frozen view plus the overlay is exact. Pure — no world mutation, no
/// router access.
fn stage_batch(view: WorldView<'_>, window: &[Event], positions: &[usize]) -> Vec<(usize, Staged)> {
    let mut moved: BTreeMap<NodeId, Option<LandmarkId>> = BTreeMap::new();
    let mut out = Vec::with_capacity(positions.len());
    for &p in positions {
        let staged =
            match window[p].kind {
                EventKind::Arrive(n, l, _) => {
                    let suppressed = view.node_is_failed(n);
                    let mut partners: Vec<NodeId> = Vec::new();
                    if !suppressed {
                        // Frozen occupancy of `l`, minus nodes the overlay
                        // moved away, plus nodes it moved in.
                        partners.extend(view.nodes_at(l).iter().filter(|&m| {
                            m != n && moved.get(&m).is_none_or(|loc| *loc == Some(l))
                        }));
                        for (&m, &loc) in moved.iter() {
                            if loc == Some(l) && m != n && !view.nodes_at(l).contains(m) {
                                partners.push(m);
                            }
                        }
                        partners.sort_unstable();
                        moved.insert(n, Some(l));
                    }
                    Staged::Arrive {
                        suppressed,
                        partners,
                    }
                }
                EventKind::Depart(n, l, _) => {
                    let loc = moved
                        .get(&n)
                        .copied()
                        .unwrap_or_else(|| view.node_location(n));
                    let present = loc == Some(l);
                    if present {
                        moved.insert(n, None);
                    }
                    Staged::Depart { present }
                }
                _ => Staged::Pass,
            };
        out.push((p, staged));
    }
    out
}

/// Run a router over a trace with the standard uniform workload.
pub fn run<R: Router + ?Sized>(trace: &Trace, cfg: &SimConfig, router: &mut R) -> SimOutcome {
    let workload = Workload::uniform(cfg, trace.num_landmarks(), trace.duration());
    run_with_workload(trace, cfg, &workload, router)
}

/// Run a router over a trace with an explicit workload.
pub fn run_with_workload<R: Router + ?Sized>(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    router: &mut R,
) -> SimOutcome {
    run_with_faults(trace, cfg, workload, &FaultPlan::none(), router)
}

/// Run a router over a trace, workload and fault plan. With
/// [`FaultPlan::none`] this is byte-identical to [`run_with_workload`]
/// (which delegates here).
pub fn run_with_faults<R: Router + ?Sized>(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    router: &mut R,
) -> SimOutcome {
    run_with_faults_sharded(trace, cfg, workload, plan, router, 1)
}

/// Like [`run_with_faults`], but with an observability sink attached: the
/// world emits structured [`SimEvent`]s into it for the whole run, and the
/// outcome returns the sink in [`SimOutcome::trace`]. Tracing is
/// observation-only — metrics, packets and CSVs are byte-identical to an
/// untraced run (enforced by `csv_determinism` and the obs proptests).
pub fn run_traced<R: Router + ?Sized>(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    router: &mut R,
    sink: Box<dyn TraceSink>,
) -> SimOutcome {
    run_traced_sharded(trace, cfg, workload, plan, router, sink, 1)
}

/// [`run_with_faults`] under a shard runtime: `shards` balanced
/// contiguous shards, one worker thread per shard. Byte-identical to the
/// sequential run for any shard count (DESIGN.md §13; the differential
/// battery in `crates/bench` enforces it).
pub fn run_with_faults_sharded<R: Router + ?Sized>(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    router: &mut R,
    shards: usize,
) -> SimOutcome {
    run_with_faults_sharded_dispatch(
        trace,
        cfg,
        workload,
        plan,
        router,
        shards,
        DispatchMode::default(),
    )
}

/// [`run_with_faults_sharded`] with an explicit [`DispatchMode`]. The
/// mode steers where in-unit work happens, never what it computes —
/// outcomes are byte-identical either way (the differential battery
/// runs both).
pub fn run_with_faults_sharded_dispatch<R: Router + ?Sized>(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    router: &mut R,
    shards: usize,
    mode: DispatchMode,
) -> SimOutcome {
    let shard_plan = ShardPlan::contiguous(trace.num_landmarks(), shards);
    let exec = ShardExec::new(shards);
    run_inner(
        trace, cfg, workload, plan, router, None, shard_plan, exec, mode,
    )
}

/// [`run_traced`] under a shard runtime (see [`run_with_faults_sharded`]).
pub fn run_traced_sharded<R: Router + ?Sized>(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    router: &mut R,
    sink: Box<dyn TraceSink>,
    shards: usize,
) -> SimOutcome {
    run_traced_sharded_dispatch(
        trace,
        cfg,
        workload,
        plan,
        router,
        sink,
        shards,
        DispatchMode::default(),
    )
}

/// [`run_traced_sharded`] with an explicit [`DispatchMode`] (see
/// [`run_with_faults_sharded_dispatch`]).
#[allow(clippy::too_many_arguments)] // the run inputs plus the shard runtime
pub fn run_traced_sharded_dispatch<R: Router + ?Sized>(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    router: &mut R,
    sink: Box<dyn TraceSink>,
    shards: usize,
    mode: DispatchMode,
) -> SimOutcome {
    let shard_plan = ShardPlan::contiguous(trace.num_landmarks(), shards);
    let exec = ShardExec::new(shards);
    run_inner(
        trace,
        cfg,
        workload,
        plan,
        router,
        Some(sink),
        shard_plan,
        exec,
        mode,
    )
}

#[allow(clippy::too_many_arguments)] // the run inputs plus the shard runtime
fn run_inner<R: Router + ?Sized>(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    router: &mut R,
    sink: Option<Box<dyn TraceSink>>,
    shard_plan: ShardPlan,
    exec: ShardExec,
    mode: DispatchMode,
) -> SimOutcome {
    let mut session =
        SimSession::start_sharded(trace, cfg, workload, plan, router, sink, shard_plan, exec);
    session.set_dispatch(mode);
    session.run_to_end();
    session.finish()
}

/// Build the pre-sorted static event list. This is a *pure function* of
/// the run inputs: a resumed session rebuilds the identical list and only
/// the cursor (`next_static`) is checkpointed.
fn build_static_events(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
) -> Vec<Event> {
    // Truncation fractions by visit index (sparse: most visits complete),
    // in a dense slot-per-index map for O(1) per-visit lookups.
    let mut truncated: dtnflow_core::dense::DenseMap<u32, f64> =
        dtnflow_core::dense::DenseMap::new();
    for &(idx, frac) in &plan.truncations {
        truncated.insert(idx, frac);
    }

    let mut events: Vec<Event> = Vec::with_capacity(
        trace.visits().len() * 2
            + workload.len()
            + 2 * (plan.station_outages.len() + plan.node_outages.len()),
    );
    let mut seq = 0u64;
    let mut push = |at: SimTime, kind: EventKind, seq: &mut u64| {
        events.push(Event {
            at,
            kind,
            seq: *seq,
        });
        *seq += 1;
    };
    for (idx, v) in trace.visits().iter().enumerate() {
        let idx = idx as u32;
        push(
            v.start,
            EventKind::Arrive(v.node, v.landmark, idx),
            &mut seq,
        );
        // A truncated contact departs after `frac` of its dwell, but at
        // least one second after arriving — a same-instant depart would
        // sort *before* the arrive and leave the node stuck as present.
        let end = match truncated.get(idx) {
            Some(&frac) => {
                let stay = v.end.secs().saturating_sub(v.start.secs());
                let kept = ((stay as f64 * frac) as u64).clamp(1, stay.max(1));
                SimTime(v.start.secs() + kept).min(v.end)
            }
            None => v.end,
        };
        push(end, EventKind::Depart(v.node, v.landmark, idx), &mut seq);
    }
    for g in workload.events() {
        push(g.at, EventKind::Generate(g.src, g.dst), &mut seq);
    }
    for o in &plan.station_outages {
        push(o.down, EventKind::StationDown(o.lm), &mut seq);
        push(o.up, EventKind::StationUp(o.lm), &mut seq);
    }
    for o in &plan.node_outages {
        push(o.fail, EventKind::NodeFail(o.node), &mut seq);
        push(o.recover, EventKind::NodeRecover(o.node), &mut seq);
    }
    let duration = trace.duration();
    let unit = cfg.time_unit;
    let mut u = 0u64;
    let mut t = SimTime::ZERO;
    while t.secs() <= duration.secs() {
        push(t, EventKind::TimeUnit(u), &mut seq);
        u += 1;
        t += unit;
    }
    if cfg.observe_points > 0 {
        for i in 0..cfg.observe_points {
            let at = SimTime(
                (duration.secs() as f64 * (i + 1) as f64 / cfg.observe_points as f64) as u64,
            );
            push(at, EventKind::Observe(i), &mut seq);
        }
    }
    events.sort_unstable();
    events
}

/// Record-loss flags, dense for O(1) dispatch lookups. Pure function of
/// the run inputs, like [`build_static_events`].
fn build_record_lost(trace: &Trace, plan: &FaultPlan) -> Vec<bool> {
    let mut record_lost = vec![false; trace.visits().len()];
    for &idx in &plan.lost_records {
        record_lost[idx as usize] = true;
    }
    record_lost
}

/// An in-flight simulation run that can be paused at time-unit boundaries
/// and checkpointed (DESIGN.md §11).
///
/// [`SimSession::start`] + [`SimSession::run_to_end`] +
/// [`SimSession::finish`] is exactly the classic [`run_with_faults`] loop
/// (those functions delegate here). The additional surface —
/// [`SimSession::run_to_unit`], the `encode_*` methods and
/// [`SimSession::resume`] — exists for crash-consistent checkpoint /
/// restore: a run killed at a unit boundary and resumed from its snapshot
/// produces byte-identical outcomes to one that never stopped.
///
/// Only the engine *cursor* is checkpointed (static-event index, timer
/// heap, timer sequence counter): the static event list itself is a pure
/// function of `(trace, cfg, workload, plan)` and is rebuilt on resume,
/// which keeps snapshots small and makes tampering with the schedule
/// detectable by the fingerprint check at the container level.
pub struct SimSession<'a, R: Router + ?Sized> {
    world: World,
    queues: ShardQueues,
    // detlint: allow(S1, reason = "run input, not state: the shard plan never affects outcomes, and resume() may use a different one")
    plan: ShardPlan,
    // detlint: allow(S1, reason = "run input, not state: a throughput knob, never a semantic one")
    exec: ShardExec,
    /// Pending router timers in a hierarchical timing wheel (DESIGN.md
    /// §14): O(1) schedule, pops in exactly the `(at, seq)` order the
    /// old binary heap produced (the wheel holds only `Timer` events,
    /// whose kind priority is constant).
    timers: TimingWheel,
    timer_seq: u64,
    // detlint: allow(S1, reason = "derived from the run's fault plan; resume() recomputes it from the same inputs")
    record_lost: Vec<bool>,
    // detlint: allow(S1, reason = "run input, not state: resume() is called with the same station flag")
    station_mode: bool,
    // detlint: allow(S1, reason = "run input, not state: resume() is called with the same duration")
    duration: SimDuration,
    // detlint: allow(S1, reason = "router state is checkpointed by its own save_state/restore_state codec, not through SimSession")
    router: &'a mut R,
    /// Encounter-partner scratch buffer, reused across arrivals.
    // detlint: allow(S1, reason = "scratch buffer, cleared before every use")
    present: Vec<NodeId>,
    /// How in-unit events dispatch (DESIGN.md §15): sequentially, or
    /// through staged shard-local windows when the plan has > 1 shard.
    // detlint: allow(S1, reason = "run knob, not state: the dispatch mode steers where work happens, never what is computed")
    dispatch_mode: DispatchMode,
    /// Upper bound on staged window length (bounds staging latency and
    /// peek-ahead cost; never affects outcomes).
    // detlint: allow(S1, reason = "run knob, not state: a throughput bound, never a semantic one")
    max_window: usize,
    /// In-unit dispatch telemetry, surfaced via [`SimOutcome::dispatch`].
    // detlint: allow(S1, reason = "throughput diagnostics, never checkpointed and never output-affecting")
    stats: DispatchStats,
    /// Window scratch: the peeked merge-order run being planned.
    // detlint: allow(S1, reason = "scratch buffer, cleared before every use")
    window: Vec<Event>,
    /// Window scratch: planner claims, parallel to `window`.
    // detlint: allow(S1, reason = "scratch buffer, cleared before every use")
    claims: Vec<Claim>,
    /// Window scratch: per-queue peek cursors.
    // detlint: allow(S1, reason = "scratch buffer, cleared before every use")
    cursors: Vec<usize>,
}

/// Default cap on staged window length.
const MAX_WINDOW: usize = 256;

/// Why [`SimSession::run_core`] stopped.
enum RunStop {
    /// Paused before a `TimeUnit(u >= target)` boundary.
    Boundary,
    /// The event budget ran out (events may remain).
    Budget,
    /// No events remain.
    Done,
}

impl<'a, R: Router + ?Sized> SimSession<'a, R> {
    /// Begin a fresh run (state as of time zero, nothing dispatched yet).
    pub fn start(
        trace: &Trace,
        cfg: &SimConfig,
        workload: &Workload,
        plan: &FaultPlan,
        router: &'a mut R,
        sink: Option<Box<dyn TraceSink>>,
    ) -> SimSession<'a, R> {
        let shard_plan = ShardPlan::single(trace.num_landmarks());
        Self::start_sharded(
            trace,
            cfg,
            workload,
            plan,
            router,
            sink,
            shard_plan,
            ShardExec::sequential(),
        )
    }

    /// [`SimSession::start`] under a shard runtime. The plan and executor
    /// steer *where* work happens, never what it computes — outcomes are
    /// byte-identical to [`SimSession::start`] for any plan.
    #[allow(clippy::too_many_arguments)] // mirrors `start` plus the shard runtime
    pub fn start_sharded(
        trace: &Trace,
        cfg: &SimConfig,
        workload: &Workload,
        plan: &FaultPlan,
        router: &'a mut R,
        sink: Option<Box<dyn TraceSink>>,
        shard_plan: ShardPlan,
        exec: ShardExec,
    ) -> SimSession<'a, R> {
        plan.check_against(trace);
        debug_assert_eq!(
            shard_plan.num_landmarks(),
            trace.num_landmarks(),
            "shard plan must partition exactly the trace's landmarks"
        );
        let mut world = World::new(cfg.clone(), trace.num_nodes(), trace.num_landmarks());
        if let Some(sink) = sink {
            world.set_trace_sink(sink);
        }
        let station_mode = router.uses_stations();
        let events = build_static_events(trace, cfg, workload, plan);
        SimSession {
            world,
            queues: ShardQueues::build(events, &shard_plan, 0),
            plan: shard_plan,
            exec,
            timers: TimingWheel::new(),
            timer_seq: u64::MAX / 2,
            record_lost: build_record_lost(trace, plan),
            station_mode,
            duration: trace.duration(),
            router,
            present: Vec::new(),
            dispatch_mode: DispatchMode::default(),
            max_window: MAX_WINDOW,
            stats: DispatchStats::default(),
            window: Vec::new(),
            claims: Vec::new(),
            cursors: Vec::new(),
        }
    }

    /// Set how in-unit events dispatch (default: [`DispatchMode::InUnit`],
    /// which only takes effect with a multi-shard plan). Outcome-neutral
    /// by construction — the differential battery runs both modes.
    pub fn set_dispatch(&mut self, mode: DispatchMode) {
        self.dispatch_mode = mode;
    }

    /// Cap staged window length (clamped to ≥ 1). A testing knob: the
    /// batch-boundary proptests fuzz it to move window cuts around and
    /// assert the cuts are invisible in every output byte.
    pub fn set_dispatch_window(&mut self, cap: usize) {
        self.max_window = cap.max(1);
    }

    /// In-unit dispatch telemetry accumulated so far.
    pub fn dispatch_stats(&self) -> DispatchStats {
        self.stats
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The simulation state (read-only).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The driven router.
    pub fn router(&self) -> &R {
        self.router
    }

    /// The driven router, mutably (checkpoint composition).
    pub fn router_mut(&mut self) -> &mut R {
        self.router
    }

    /// Emit an observability event into the attached sink (delegates to
    /// [`World::emit`]; no-op without a sink).
    pub fn emit(&mut self, make: impl FnOnce(SimTime) -> SimEvent) {
        self.world.emit(make);
    }

    /// Run until the boundary of time unit `target` is the next event:
    /// every event strictly before it (including same-instant timers,
    /// which order before a boundary exactly when their heap entry sorts
    /// earlier) is dispatched; the `TimeUnit(target)` event itself is NOT
    /// consumed. Returns `true` when paused at the boundary, `false` when
    /// the run ended first (no such boundary remained).
    ///
    /// This is the crash-consistent pause point: a checkpoint taken here
    /// and resumed replays the boundary dispatch itself identically to a
    /// run that never paused.
    pub fn run_to_unit(&mut self, target: u64) -> bool {
        matches!(self.run_core(target, None), RunStop::Boundary)
    }

    /// Dispatch up to `n` events (static events and timers combined),
    /// pausing at the next consistent point — a staged window always
    /// commits in full, so slightly more than `n` events may dispatch
    /// when a window or its interleaved timers straddle the budget.
    /// Returns `true` when the budget stopped the run (events may
    /// remain), `false` when the run ended first.
    ///
    /// Unlike [`SimSession::run_to_unit`], the pause point may fall
    /// anywhere inside a unit: the engine cursor, world and router
    /// codecs are all consistent between any two events, so mid-unit
    /// checkpoints restore byte-identically under any shard count or
    /// window cap (the shard_props battery fuzzes this).
    pub fn step_events(&mut self, n: usize) -> bool {
        matches!(self.run_core(u64::MAX, Some(n)), RunStop::Budget)
    }

    /// The merge loop behind [`SimSession::run_to_unit`] and
    /// [`SimSession::step_events`]: pick the earliest of the static
    /// merge head and the timer wheel head, dispatch, repeat. With
    /// in-unit dispatch on and a multi-shard plan, a static shard-queue
    /// head opens a staged window instead of a single dispatch.
    fn run_core(&mut self, target: u64, mut budget: Option<usize>) -> RunStop {
        loop {
            if budget == Some(0) {
                return RunStop::Budget;
            }
            let static_ev = self.queues.peek();
            let timer_ev = self.timers.peek_min().map(|e| Event {
                at: SimTime(e.at),
                kind: EventKind::Timer(e.payload),
                seq: e.seq,
            });
            let ev = match (static_ev, timer_ev) {
                (Some(s), Some(t)) if t < s => {
                    self.timers.pop_min();
                    t
                }
                (Some(s), _) => {
                    if matches!(s.kind, EventKind::TimeUnit(u) if u >= target) {
                        return RunStop::Boundary;
                    }
                    if self.dispatch_mode == DispatchMode::InUnit
                        && self.plan.num_shards() > 1
                        && claim_of(s.kind, &self.plan).is_some()
                    {
                        let cap = budget.map_or(self.max_window, |b| self.max_window.min(b));
                        let n = self.dispatch_window(cap);
                        if let Some(b) = &mut budget {
                            *b = b.saturating_sub(n);
                        }
                        continue;
                    }
                    // `s` is the merge-order minimum, so this pops it.
                    self.queues.pop();
                    s
                }
                (None, Some(t)) => {
                    self.timers.pop_min();
                    t
                }
                (None, None) => return RunStop::Done,
            };
            self.dispatch(ev);
            self.drain_timers();
            self.stats.sequential_events += 1;
            if let Some(b) = &mut budget {
                *b = b.saturating_sub(1);
            }
        }
    }

    /// Plan, stage and commit one in-unit window (DESIGN.md §15)
    /// starting at the current merge head, which must be a shard-local
    /// event sorting before every pending timer. Returns the number of
    /// events dispatched (windowed events plus interleaved timers).
    ///
    /// The three phases:
    ///
    /// 1. **Plan** — peek ahead (without consuming) over the merge
    ///    order, collecting up to `cap` shard-local events that sort
    ///    before the earliest pending timer; `plan_window` cuts the run
    ///    at the first cross-shard node handoff.
    /// 2. **Stage** — with ≥ 2 batches, shard workers resolve each
    ///    event's read-side against the frozen [`WorldView`]
    ///    concurrently. Single-batch windows skip staging: there is no
    ///    parallelism to win, and live dispatch is cheaper.
    /// 3. **Commit** — replay the window in exact merge order on the
    ///    engine thread, running the real router hooks against the live
    ///    world; staged read-sides substitute for live lookups (debug
    ///    builds assert they agree). Timers created by committed events
    ///    interleave exactly where sequential dispatch would have fired
    ///    them — timer handlers never move nodes or flip liveness, so
    ///    staged read-sides stay exact across them.
    fn dispatch_window(&mut self, cap: usize) -> usize {
        let timer_ev = self.timers.peek_min().map(|e| Event {
            at: SimTime(e.at),
            kind: EventKind::Timer(e.payload),
            seq: e.seq,
        });
        self.window.clear();
        self.claims.clear();
        {
            let plan = &self.plan;
            let claims = &mut self.claims;
            self.queues.peek_run(
                &mut self.cursors,
                cap,
                |e| {
                    if let Some(t) = timer_ev {
                        if t < e {
                            return false;
                        }
                    }
                    match claim_of(e.kind, plan) {
                        Some(c) => {
                            claims.push(c);
                            true
                        }
                        None => false,
                    }
                },
                &mut self.window,
            );
        }
        let wplan = plan_window(&self.claims);
        if wplan.cut_by_handoff {
            self.stats.handoff_cuts += 1;
        }
        let len = wplan.len;
        debug_assert!(len >= 1, "the merge head always enters the window");
        let mut staged: Vec<Option<Staged>> = Vec::new();
        if len >= 2 && wplan.batches.len() >= 2 {
            let view = self.world.view();
            let window = &self.window[..len];
            let parts: Vec<&[usize]> = wplan
                .batches
                .iter()
                .map(|b| b.positions.as_slice())
                .collect();
            let results = self
                .exec
                .map_parts(parts, |_, positions| stage_batch(view, window, positions));
            staged.resize_with(len, || None);
            for part in results {
                for (p, s) in part {
                    staged[p] = Some(s);
                }
            }
            for b in &wplan.batches {
                self.stats.record_batch(b.positions.len());
            }
            self.stats.windows += 1;
            self.stats.staged_events += len as u64;
        } else {
            // Live commit of the whole (single-batch or single-event)
            // run: no staging, but still one planning pass for many
            // events.
            staged.resize_with(len, || None);
            self.stats.sequential_events += len as u64;
        }
        let mut dispatched = 0usize;
        for (i, slot) in staged.iter_mut().enumerate().take(len) {
            let ev = self.window[i];
            // Timers created by earlier commits may sort before `ev`;
            // fire them now, exactly as the sequential loop would.
            loop {
                let t = self.timers.peek_min().map(|e| Event {
                    at: SimTime(e.at),
                    kind: EventKind::Timer(e.payload),
                    seq: e.seq,
                });
                match t {
                    Some(t) if t < ev => {
                        self.timers.pop_min();
                        self.dispatch(t);
                        self.drain_timers();
                        self.stats.sequential_events += 1;
                        dispatched += 1;
                    }
                    _ => break,
                }
            }
            let popped = self.queues.pop();
            debug_assert_eq!(
                popped,
                Some(ev),
                "window commit out of sync with merge order"
            );
            self.dispatch_staged(ev, slot.take());
            self.drain_timers();
            dispatched += 1;
        }
        dispatched
    }

    /// Dispatch every remaining event.
    pub fn run_to_end(&mut self) {
        // No real run has a unit numbered `u64::MAX`, so this never pauses.
        let paused = self.run_to_unit(u64::MAX);
        debug_assert!(!paused, "run_to_end paused at a boundary");
    }

    /// Close out the run: final expiry reckoning, then the outcome.
    pub fn finish(mut self) -> SimOutcome {
        // Final reckoning: everything past its deadline is an expiry.
        // Router timers may have fired beyond the last trace event, so
        // never move the clock backwards.
        let end = (SimTime::ZERO + self.duration).max(self.world.now());
        self.world.set_now(end);
        self.world.purge_expired_sharded(&self.exec);
        let trace_sink = self.world.take_trace_sink();
        let (metrics, packets) = self.world.into_outcome();
        SimOutcome {
            metrics,
            packets,
            trace: trace_sink,
            dispatch: self.stats,
        }
    }

    fn dispatch(&mut self, ev: Event) {
        self.dispatch_staged(ev, None);
    }

    /// Dispatch one event, consuming its staged read-side when the
    /// window machinery precomputed one (`None` = resolve live, the
    /// classic sequential path). Debug builds assert every staged
    /// answer against the live world, so the tier-1 battery proves the
    /// §15 partition rule on every run.
    fn dispatch_staged(&mut self, ev: Event, staged: Option<Staged>) {
        let world = &mut self.world;
        world.set_now(ev.at);
        match ev.kind {
            EventKind::TimeUnit(u) => {
                world.emit(|at| SimEvent::UnitBoundary { at, unit: u });
                world.purge_expired_sharded(&self.exec);
                world.reset_radio_budget();
                let sharding = Sharding::new(&self.plan, &self.exec);
                self.router.on_time_unit_sharded(world, u, &sharding);
            }
            EventKind::StationDown(l) => {
                world.station_down(l);
                self.router.on_station_down(world, l);
            }
            EventKind::StationUp(l) => {
                world.station_recover(l);
                self.router.on_station_up(world, l);
            }
            EventKind::Depart(n, l, idx) => {
                // Suppressed when the node is not actually there: its
                // arrival was swallowed by a failure, or churn removed it
                // mid-visit.
                let present = match staged {
                    Some(Staged::Depart { present }) => {
                        debug_assert_eq!(
                            present,
                            world.node_location(n) == Some(l),
                            "staged departure presence diverged from the live world"
                        );
                        present
                    }
                    _ => world.node_location(n) == Some(l),
                };
                if present {
                    world.set_visit_recorded(!self.record_lost[idx as usize]);
                    self.router.on_depart(world, n, l);
                    world.set_visit_recorded(true);
                    world.node_depart(n, l);
                }
            }
            EventKind::NodeFail(n) => {
                let at = world.node_location(n);
                world.node_fail(n);
                self.router.on_node_fail(world, n, at);
            }
            EventKind::Arrive(n, l, idx) => {
                // A failed node is off the network: its visits do not
                // happen until it recovers.
                let (suppressed, staged_partners) = match staged {
                    Some(Staged::Arrive {
                        suppressed,
                        partners,
                    }) => {
                        debug_assert_eq!(
                            suppressed,
                            world.node_is_failed(n),
                            "staged arrival suppression diverged from the live world"
                        );
                        (suppressed, Some(partners))
                    }
                    _ => (world.node_is_failed(n), None),
                };
                if !suppressed {
                    world.node_arrive(n, l);
                    if !self.station_mode {
                        world.auto_deliver_on_arrival(n, l);
                    }
                    world.set_visit_recorded(!self.record_lost[idx as usize]);
                    // Encounter partners, copied out so the router may
                    // mutate presence; the buffer is reused across
                    // arrivals to keep this allocation-free.
                    self.present.clear();
                    match staged_partners {
                        Some(partners) => {
                            debug_assert!(
                                partners
                                    .iter()
                                    .copied()
                                    .eq(world.nodes_at(l).iter().filter(|&m| m != n)),
                                "staged partner list diverged from the live world"
                            );
                            self.present.extend(partners);
                        }
                        None => self
                            .present
                            .extend(world.nodes_at(l).iter().filter(|&m| m != n)),
                    }
                    for &m in self.present.iter() {
                        self.router.on_encounter(world, n, m, l);
                    }
                    self.router.on_arrive(world, n, l);
                    world.set_visit_recorded(true);
                }
            }
            EventKind::NodeRecover(n) => {
                world.node_recover(n);
                self.router.on_node_recover(world, n);
            }
            EventKind::Generate(src, dst) => {
                let pkt = world.create_packet(src, dst, None, self.station_mode);
                // A packet generated at a down station is stillborn
                // (lost to the outage); the router never sees it.
                if world.packet(pkt).loc.is_live() {
                    self.router.on_packet_generated(world, pkt);
                }
            }
            EventKind::Timer(token) => {
                self.router.on_timer(world, token);
            }
            EventKind::Observe(i) => {
                self.router.on_observe(world, i);
            }
        }
    }

    /// Move router-requested timers into the wheel.
    fn drain_timers(&mut self) {
        for (at, token) in self.world.pending_timers.drain(..) {
            self.timers.push(at.secs(), self.timer_seq, token);
            self.timer_seq += 1;
        }
    }

    // ---- checkpoint / restore (DESIGN.md §11) ----------------------------

    /// Encode the engine cursor: consumed static-event count (in merge
    /// order, which equals global sorted order — so the value is
    /// shard-count-agnostic), timer sequence counter, and the pending
    /// timers (sorted ascending, so the encoding is canonical
    /// regardless of wheel internals — and byte-identical to the
    /// format the old binary heap produced).
    pub fn encode_engine(&self, w: &mut Writer) {
        w.put_usize(self.queues.dispatched());
        w.put_u64(self.timer_seq);
        let pending = self.timers.to_sorted_vec();
        w.put_usize(pending.len());
        for e in &pending {
            w.put_u64(e.at);
            w.put_u64(e.payload);
            w.put_u64(e.seq);
        }
    }

    /// Encode the full [`World`] state.
    pub fn encode_world(&self, w: &mut Writer) {
        self.world.encode_state(w);
    }

    /// Encode the attached [`Recorder`] in place, if the attached sink is
    /// one. Returns `false` (writing nothing) when no sink is attached or
    /// the sink is not checkpointable. Called *after* the state payload is
    /// sized so the `CheckpointWritten` event lands inside the recorder
    /// bytes of both the paused and the straight-through lineage.
    pub fn encode_recorder(&mut self, w: &mut Writer) -> bool {
        if let Some(rec) = self
            .world
            .trace_sink_mut()
            .and_then(|s| s.as_any_mut())
            .and_then(|a| a.downcast_mut::<Recorder>())
        {
            rec.encode(w);
            true
        } else {
            false
        }
    }

    /// Rebuild a paused session from checkpointed engine + world bytes and
    /// the original run inputs. The static event list and record-loss
    /// table are reconstructed from the inputs; the readers supply only
    /// the mutable mid-run state.
    #[allow(clippy::too_many_arguments)] // mirrors `start` plus the two state readers
    pub fn resume(
        trace: &Trace,
        cfg: &SimConfig,
        workload: &Workload,
        plan: &FaultPlan,
        router: &'a mut R,
        sink: Option<Box<dyn TraceSink>>,
        engine: &mut Reader<'_>,
        world: &mut Reader<'_>,
    ) -> Result<SimSession<'a, R>, SnapshotError> {
        let shard_plan = ShardPlan::single(trace.num_landmarks());
        Self::resume_sharded(
            trace,
            cfg,
            workload,
            plan,
            router,
            sink,
            engine,
            world,
            shard_plan,
            ShardExec::sequential(),
        )
    }

    /// [`SimSession::resume`] under a shard runtime. Snapshots are
    /// shard-count-agnostic: the checkpoint cursor counts events in merge
    /// order (== global sorted order), so a run checkpointed under one
    /// plan restores under any other — the chaos interop tests cross
    /// 1-shard checkpoints with 8-shard restores and vice versa.
    #[allow(clippy::too_many_arguments)] // mirrors `start_sharded` plus the two state readers
    pub fn resume_sharded(
        trace: &Trace,
        cfg: &SimConfig,
        workload: &Workload,
        plan: &FaultPlan,
        router: &'a mut R,
        sink: Option<Box<dyn TraceSink>>,
        engine: &mut Reader<'_>,
        world: &mut Reader<'_>,
        shard_plan: ShardPlan,
        exec: ShardExec,
    ) -> Result<SimSession<'a, R>, SnapshotError> {
        const CTX: &str = "SimSession";
        plan.check_against(trace);
        debug_assert_eq!(
            shard_plan.num_landmarks(),
            trace.num_landmarks(),
            "shard plan must partition exactly the trace's landmarks"
        );
        let events = build_static_events(trace, cfg, workload, plan);
        let next_static = engine.usize(CTX)?;
        if next_static > events.len() {
            return Err(SnapshotError::Corrupt { context: CTX });
        }
        let timer_seq = engine.u64(CTX)?;
        let n = engine.seq_len("SimSession.timers")?;
        let mut timers = TimingWheel::new();
        for _ in 0..n {
            let at = engine.u64(CTX)?;
            let token = engine.u64(CTX)?;
            let seq = engine.u64(CTX)?;
            timers.push(at, seq, token);
        }
        let mut restored =
            World::decode_state(world, cfg.clone(), trace.num_nodes(), trace.num_landmarks())?;
        if let Some(sink) = sink {
            restored.set_trace_sink(sink);
        }
        let station_mode = router.uses_stations();
        Ok(SimSession {
            world: restored,
            queues: ShardQueues::build(events, &shard_plan, next_static),
            plan: shard_plan,
            exec,
            timers,
            timer_seq,
            record_lost: build_record_lost(trace, plan),
            station_mode,
            duration: trace.duration(),
            router,
            present: Vec::new(),
            dispatch_mode: DispatchMode::default(),
            max_window: MAX_WINDOW,
            stats: DispatchStats::default(),
            window: Vec::new(),
            claims: Vec::new(),
            cursors: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::geometry::Point;
    use dtnflow_core::ids::PacketId;
    use dtnflow_core::packet::PacketLoc;
    use dtnflow_core::time::{SimDuration, DAY};
    use dtnflow_mobility::Visit;

    /// A router that greedily hands pending packets to any arriving node
    /// and otherwise lets carriers walk them to their destinations.
    struct DirectRouter;

    impl Router for DirectRouter {
        fn name(&self) -> &'static str {
            "direct"
        }
        fn on_arrive(&mut self, w: &mut World, node: NodeId, lm: LandmarkId) {
            let pending: Vec<PacketId> = w.pending_at(lm).collect();
            for p in pending {
                if w.transfer_to_node(p, node).is_err() {
                    break;
                }
            }
        }
        fn on_packet_generated(&mut self, w: &mut World, pkt: PacketId) {
            // If someone is already in the subarea, hand the packet over.
            let src = match w.packet(pkt).loc {
                PacketLoc::PendingAtSource(l) => l,
                _ => return,
            };
            let first = w.nodes_at(src).iter().next();
            if let Some(n) = first {
                let _ = w.transfer_to_node(pkt, n);
            }
        }
    }

    /// An event recorder validating hook ordering.
    #[derive(Default)]
    struct RecorderRouter {
        log: Vec<String>,
    }

    impl Router for RecorderRouter {
        fn name(&self) -> &'static str {
            "recorder"
        }
        fn on_arrive(&mut self, w: &mut World, node: NodeId, lm: LandmarkId) {
            self.log
                .push(format!("arrive {node} {lm} @{}", w.now().secs()));
        }
        fn on_depart(&mut self, w: &mut World, node: NodeId, lm: LandmarkId) {
            assert!(w.nodes_at(lm).contains(node), "still present at depart");
            self.log
                .push(format!("depart {node} {lm} @{}", w.now().secs()));
        }
        fn on_encounter(&mut self, _w: &mut World, a: NodeId, b: NodeId, lm: LandmarkId) {
            self.log.push(format!("meet {a} {b} {lm}"));
        }
        fn on_packet_generated(&mut self, w: &mut World, pkt: PacketId) {
            self.log.push(format!("gen {} @{}", pkt, w.now().secs()));
        }
        fn on_time_unit(&mut self, _w: &mut World, unit: u64) {
            self.log.push(format!("unit {unit}"));
        }
        fn on_observe(&mut self, _w: &mut World, idx: usize) {
            self.log.push(format!("obs {idx}"));
        }
        fn on_timer(&mut self, _w: &mut World, token: u64) {
            self.log.push(format!("timer {token}"));
        }
    }

    fn shuttle_trace() -> Trace {
        // Node 0 shuttles l0 -> l1 -> l0 ... daily; node 1 sits at l0
        // mornings only.
        let mut visits = Vec::new();
        for d in 0..8u64 {
            let base = d * 86_400;
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(0),
                SimTime(base + 1_000),
                SimTime(base + 5_000),
            ));
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(1),
                SimTime(base + 10_000),
                SimTime(base + 20_000),
            ));
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(0),
                SimTime(base + 2_000),
                SimTime(base + 4_000),
            ));
        }
        Trace::new(
            "shuttle",
            2,
            2,
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
            visits,
        )
        .unwrap()
    }

    fn small_cfg() -> SimConfig {
        SimConfig {
            packets_per_landmark_per_day: 2.0,
            ttl: DAY.mul(4),
            time_unit: DAY,
            seed: 3,
            ..SimConfig::default()
        }
    }

    #[test]
    fn direct_router_delivers_on_shuttle() {
        let trace = shuttle_trace();
        let cfg = small_cfg();
        let out = run(&trace, &cfg, &mut DirectRouter);
        assert!(out.metrics.generated > 0);
        // The shuttle reaches both landmarks daily, so most packets with a
        // 4-day TTL make it.
        assert!(
            out.metrics.success_rate() > 0.5,
            "success {}",
            out.metrics.success_rate()
        );
        // Everything delivered took at least one forwarding op.
        assert!(out.metrics.forwarding_ops >= out.metrics.delivered);
    }

    #[test]
    fn hook_ordering_and_encounters() {
        let trace = shuttle_trace();
        let mut cfg = small_cfg();
        cfg.observe_points = 2;
        cfg.packets_per_landmark_per_day = 0.5;
        let mut r = RecorderRouter::default();
        let _ = run(&trace, &cfg, &mut r);
        let log = r.log.join("\n");
        // Node 1 arrives at l0 at t=2000 while node 0 is there.
        assert!(log.contains("meet n1 n0 l0"));
        // Unit boundaries and observations both fired; the trace is just
        // over 7 days long, so boundaries at days 0..=7 exist.
        assert!(log.contains("unit 0"));
        assert!(log.contains("unit 7"));
        assert!(log.contains("obs 0"));
        assert!(log.contains("obs 1"));
        // Every arrive has a matching depart.
        let arrives = r.log.iter().filter(|l| l.starts_with("arrive")).count();
        let departs = r.log.iter().filter(|l| l.starts_with("depart")).count();
        assert_eq!(arrives, departs);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerRouter {
            fired: Vec<(u64, u64)>,
        }
        impl Router for TimerRouter {
            fn name(&self) -> &'static str {
                "timer"
            }
            fn on_arrive(&mut self, w: &mut World, _n: NodeId, _l: LandmarkId) {
                if self.fired.is_empty() && w.now().secs() < 2_000 {
                    w.schedule_timer(SimTime(7_777), 1);
                    w.schedule_timer(SimTime(3_333), 2);
                    self.fired.push((0, w.now().secs()));
                }
            }
            fn on_packet_generated(&mut self, _w: &mut World, _p: PacketId) {}
            fn on_timer(&mut self, w: &mut World, token: u64) {
                self.fired.push((token, w.now().secs()));
            }
        }
        let trace = shuttle_trace();
        let mut r = TimerRouter { fired: vec![] };
        let _ = run(&trace, &small_cfg(), &mut r);
        // Token 2 (earlier deadline) fires before token 1.
        assert_eq!(r.fired.len(), 3);
        assert_eq!(r.fired[1], (2, 3_333));
        assert_eq!(r.fired[2], (1, 7_777));
    }

    #[test]
    fn run_is_deterministic() {
        let trace = shuttle_trace();
        let cfg = small_cfg();
        let a = run(&trace, &cfg, &mut DirectRouter);
        let b = run(&trace, &cfg, &mut DirectRouter);
        assert_eq!(
            a.metrics.summary().success_rate,
            b.metrics.summary().success_rate
        );
        assert_eq!(a.metrics.forwarding_ops, b.metrics.forwarding_ops);
        assert_eq!(a.packets.len(), b.packets.len());
    }

    #[test]
    fn undelivered_packets_expire_by_the_end() {
        // A trace where node 1 never reaches l1: packets to l1 that node 1
        // picks up die by TTL; final purge must count them.
        struct GreedyRouter;
        impl Router for GreedyRouter {
            fn name(&self) -> &'static str {
                "greedy"
            }
            fn on_arrive(&mut self, w: &mut World, node: NodeId, lm: LandmarkId) {
                let pending: Vec<PacketId> = w.pending_at(lm).collect();
                for p in pending {
                    let _ = w.transfer_to_node(p, node);
                }
            }
            fn on_packet_generated(&mut self, _w: &mut World, _p: PacketId) {}
        }
        let mut visits = Vec::new();
        for d in 0..8u64 {
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(0),
                SimTime(d * 86_400),
                SimTime(d * 86_400 + 1_000),
            ));
        }
        let trace = Trace::new(
            "stuck",
            1,
            2,
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
            visits,
        )
        .unwrap();
        let cfg = SimConfig {
            packets_per_landmark_per_day: 4.0,
            ttl: DAY,
            time_unit: DAY,
            ..SimConfig::default()
        };
        let out = run(&trace, &cfg, &mut GreedyRouter);
        assert!(out.metrics.generated > 0);
        assert_eq!(out.metrics.delivered, 0);
        // Every packet either expired or (if generated within the final
        // TTL window) is still stranded; nothing is unaccounted for.
        let live = out.packets.iter().filter(|p| p.loc.is_live()).count() as u64;
        assert_eq!(out.metrics.expired + live, out.metrics.generated);
        assert!(out.metrics.expired > 0);
    }

    #[test]
    fn shard_queues_merge_reproduces_global_order() {
        // Partition a sorted schedule under several plans and check the
        // k-way merge pops the identical sequence each time.
        let trace = shuttle_trace();
        let cfg = small_cfg();
        let workload = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        let events = build_static_events(&trace, &cfg, &workload, &FaultPlan::none());
        let want = events.clone();
        for plan in [
            ShardPlan::single(2),
            ShardPlan::contiguous(2, 2),
            ShardPlan::round_robin(2, 2),
            ShardPlan::contiguous(2, 8),
        ] {
            let mut q = ShardQueues::build(events.clone(), &plan, 0);
            let mut got = Vec::with_capacity(want.len());
            while let Some(e) = q.pop() {
                got.push(e);
            }
            assert_eq!(got, want, "plan {plan:?}");
            assert_eq!(q.dispatched(), want.len());
        }
    }

    #[test]
    fn shard_queues_resume_cursor_is_plan_agnostic() {
        let trace = shuttle_trace();
        let cfg = small_cfg();
        let workload = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        let events = build_static_events(&trace, &cfg, &workload, &FaultPlan::none());
        let cut = events.len() / 2;
        let seq_tail: Vec<Event> = events[cut..].to_vec();
        for plan in [ShardPlan::contiguous(2, 2), ShardPlan::round_robin(2, 4)] {
            let mut q = ShardQueues::build(events.clone(), &plan, cut);
            assert_eq!(q.dispatched(), cut);
            let mut tail = Vec::new();
            while let Some(e) = q.pop() {
                tail.push(e);
            }
            assert_eq!(tail, seq_tail, "plan {plan:?}");
        }
    }

    #[test]
    fn sharded_run_matches_sequential() {
        let trace = shuttle_trace();
        let cfg = small_cfg();
        let workload = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        let base = run(&trace, &cfg, &mut DirectRouter);
        for shards in [2, 4, 8] {
            let out = run_with_faults_sharded(
                &trace,
                &cfg,
                &workload,
                &FaultPlan::none(),
                &mut DirectRouter,
                shards,
            );
            assert_eq!(out.metrics.delivered, base.metrics.delivered);
            assert_eq!(out.metrics.generated, base.metrics.generated);
            assert_eq!(out.metrics.forwarding_ops, base.metrics.forwarding_ops);
            assert_eq!(out.packets.len(), base.packets.len());
            for (a, b) in out.packets.iter().zip(base.packets.iter()) {
                assert_eq!(a.loc, b.loc);
                assert_eq!(a.hops, b.hops);
            }
        }
    }

    #[test]
    fn sharded_hook_log_matches_sequential() {
        // The full hook stream — arrivals, departures, encounters, units,
        // timers, observations — must be identical under any plan.
        let trace = shuttle_trace();
        let mut cfg = small_cfg();
        cfg.observe_points = 2;
        let workload = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        let mut base = RecorderRouter::default();
        let _ = run_with_workload(&trace, &cfg, &workload, &mut base);
        for shards in [2, 4] {
            let mut r = RecorderRouter::default();
            let _ = run_with_faults_sharded(
                &trace,
                &cfg,
                &workload,
                &FaultPlan::none(),
                &mut r,
                shards,
            );
            assert_eq!(r.log, base.log, "shards={shards}");
        }
    }

    /// A trace dense enough for real multi-batch windows: `nodes` mobile
    /// nodes, 4 landmarks, node `i` shuttling to landmark `i % 4` on a
    /// staggered daily schedule — arrivals and departures at different
    /// landmarks interleave tightly in the merge order, and no node ever
    /// crosses shards (each sticks to one landmark), so windows are cut
    /// only by control events and the window cap.
    fn dense_trace(nodes: u32) -> Trace {
        let mut visits = Vec::new();
        for d in 0..6u64 {
            let base = d * 86_400;
            for i in 0..nodes {
                let l = LandmarkId((i % 4) as u16);
                let start = base + 1_000 + (i as u64 * 13);
                visits.push(Visit::new(
                    NodeId(i),
                    l,
                    SimTime(start),
                    SimTime(start + 3_000),
                ));
            }
        }
        visits.sort_by_key(|v| v.start);
        Trace::new(
            "dense",
            nodes as usize,
            4,
            vec![
                Point::new(0.0, 0.0),
                Point::new(100.0, 0.0),
                Point::new(0.0, 100.0),
                Point::new(100.0, 100.0),
            ],
            visits,
        )
        .unwrap()
    }

    #[test]
    fn in_unit_dispatch_stages_windows_and_matches_boundary_mode() {
        let trace = dense_trace(12);
        let cfg = small_cfg();
        let workload = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        let mut base = RecorderRouter::default();
        let boundary = run_with_faults_sharded_dispatch(
            &trace,
            &cfg,
            &workload,
            &FaultPlan::none(),
            &mut base,
            4,
            DispatchMode::Boundary,
        );
        assert_eq!(boundary.dispatch.windows, 0, "boundary mode never stages");
        for shards in [2, 4, 8] {
            let mut r = RecorderRouter::default();
            let out = run_with_faults_sharded_dispatch(
                &trace,
                &cfg,
                &workload,
                &FaultPlan::none(),
                &mut r,
                shards,
                DispatchMode::InUnit,
            );
            assert_eq!(r.log, base.log, "shards={shards}");
            assert_eq!(out.metrics.generated, boundary.metrics.generated);
            assert_eq!(out.metrics.delivered, boundary.metrics.delivered);
            assert!(
                out.dispatch.windows > 0,
                "dense trace must form staged windows at shards={shards}"
            );
            assert!(out.dispatch.staged_events >= 2 * out.dispatch.windows);
            assert_eq!(
                out.dispatch.batch_hist.iter().sum::<u64>(),
                out.dispatch.batches
            );
        }
    }

    #[test]
    fn window_cap_is_invisible_in_outputs() {
        // Shrinking the window cap moves every batch boundary; the hook
        // stream must not move with them.
        let trace = dense_trace(10);
        let cfg = small_cfg();
        let workload = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        let mut base = RecorderRouter::default();
        let _ = run_with_workload(&trace, &cfg, &workload, &mut base);
        for cap in [1, 2, 3, 7, 64] {
            let mut r = RecorderRouter::default();
            let mut session = SimSession::start_sharded(
                &trace,
                &cfg,
                &workload,
                &FaultPlan::none(),
                &mut r,
                None,
                ShardPlan::contiguous(4, 4),
                ShardExec::new(4),
            );
            session.set_dispatch_window(cap);
            session.run_to_end();
            let _ = session.finish();
            assert_eq!(r.log, base.log, "cap={cap}");
        }
    }

    #[test]
    fn step_events_pauses_and_resumes_anywhere() {
        // Drip-feed the run a few events at a time; the hook stream must
        // equal an uninterrupted run regardless of where pauses land.
        let trace = dense_trace(8);
        let cfg = small_cfg();
        let workload = Workload::uniform(&cfg, trace.num_landmarks(), trace.duration());
        let mut base = RecorderRouter::default();
        let _ = run_with_workload(&trace, &cfg, &workload, &mut base);
        for step in [1, 3, 17] {
            let mut r = RecorderRouter::default();
            let mut session = SimSession::start_sharded(
                &trace,
                &cfg,
                &workload,
                &FaultPlan::none(),
                &mut r,
                None,
                ShardPlan::contiguous(4, 2),
                ShardExec::new(2),
            );
            while session.step_events(step) {}
            let _ = session.finish();
            assert_eq!(r.log, base.log, "step={step}");
        }
    }

    #[test]
    fn time_unit_count_covers_duration() {
        let trace = shuttle_trace();
        let mut cfg = small_cfg();
        cfg.time_unit = SimDuration::from_days(2.0);
        let mut r = RecorderRouter::default();
        let _ = run(&trace, &cfg, &mut r);
        let units = r.log.iter().filter(|l| l.starts_with("unit")).count();
        // Duration is just under 8 days: boundaries at days 0,2,4,6 (+day 8
        // only if the last visit ends exactly there).
        assert!(units == 4 || units == 5, "units {units}");
    }
}
