//! The event loop: merges trace events, workload generations, time-unit
//! boundaries, observation points and router timers into one deterministic
//! timeline and dispatches them to the [`Router`].

use crate::faults::FaultPlan;
use crate::router::Router;
use crate::workload::Workload;
use crate::world::World;
use dtnflow_core::config::SimConfig;
use dtnflow_core::ids::{LandmarkId, NodeId};
use dtnflow_core::metrics::RunMetrics;
use dtnflow_core::packet::Packet;
use dtnflow_core::time::SimTime;
use dtnflow_mobility::Trace;
use dtnflow_obs::{SimEvent, TraceSink};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What one simulation run produced.
#[derive(Debug)]
pub struct SimOutcome {
    /// The §V-A.1 metrics.
    pub metrics: RunMetrics,
    /// Every packet with its final state and visited-landmark path
    /// (for loop/path diagnostics).
    pub packets: Vec<Packet>,
    /// The observability sink attached via [`run_traced`], if any
    /// (downcast it — e.g. with `Recorder::downcast` — to read the
    /// recorded events and counters).
    pub trace: Option<Box<dyn TraceSink>>,
}

/// Event kinds, ordered by dispatch priority within a timestamp: unit
/// boundaries first (bandwidth snapshots), then station liveness flips
/// (so same-instant node activity sees the new station state), then
/// departures (a node leaves before another arrives at the same instant),
/// node failures (after departures: a same-instant departure completes,
/// but a same-instant arrival of the failing node is suppressed),
/// arrivals, node recoveries (after arrivals: a node that recovers the
/// instant a visit of its own starts still misses that visit and rejoins
/// at the next one), generations, timers, and observations last (they
/// snapshot the settled state).
///
/// `Arrive`/`Depart` carry the trace visit index so fault runs can look
/// up record-loss per visit; within identical timestamps the index sorts
/// exactly like the insertion sequence did (visits are pushed in trace
/// order), so fault-free runs dispatch in the same order as before.

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    TimeUnit(u64),
    StationDown(LandmarkId),
    StationUp(LandmarkId),
    Depart(NodeId, LandmarkId, u32),
    NodeFail(NodeId),
    Arrive(NodeId, LandmarkId, u32),
    NodeRecover(NodeId),
    Generate(LandmarkId, LandmarkId),
    Timer(u64),
    Observe(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    at: SimTime,
    kind: EventKind,
    seq: u64,
}

/// Run a router over a trace with the standard uniform workload.
pub fn run<R: Router + ?Sized>(trace: &Trace, cfg: &SimConfig, router: &mut R) -> SimOutcome {
    let workload = Workload::uniform(cfg, trace.num_landmarks(), trace.duration());
    run_with_workload(trace, cfg, &workload, router)
}

/// Run a router over a trace with an explicit workload.
pub fn run_with_workload<R: Router + ?Sized>(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    router: &mut R,
) -> SimOutcome {
    run_with_faults(trace, cfg, workload, &FaultPlan::none(), router)
}

/// Run a router over a trace, workload and fault plan. With
/// [`FaultPlan::none`] this is byte-identical to [`run_with_workload`]
/// (which delegates here).
pub fn run_with_faults<R: Router + ?Sized>(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    router: &mut R,
) -> SimOutcome {
    run_inner(trace, cfg, workload, plan, router, None)
}

/// Like [`run_with_faults`], but with an observability sink attached: the
/// world emits structured [`SimEvent`]s into it for the whole run, and the
/// outcome returns the sink in [`SimOutcome::trace`]. Tracing is
/// observation-only — metrics, packets and CSVs are byte-identical to an
/// untraced run (enforced by `csv_determinism` and the obs proptests).
pub fn run_traced<R: Router + ?Sized>(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    router: &mut R,
    sink: Box<dyn TraceSink>,
) -> SimOutcome {
    run_inner(trace, cfg, workload, plan, router, Some(sink))
}

fn run_inner<R: Router + ?Sized>(
    trace: &Trace,
    cfg: &SimConfig,
    workload: &Workload,
    plan: &FaultPlan,
    router: &mut R,
    sink: Option<Box<dyn TraceSink>>,
) -> SimOutcome {
    plan.check_against(trace);
    let mut world = World::new(cfg.clone(), trace.num_nodes(), trace.num_landmarks());
    if let Some(sink) = sink {
        world.set_trace_sink(sink);
    }
    let station_mode = router.uses_stations();

    // Truncation fractions by visit index (sparse: most visits complete),
    // in a dense slot-per-index map for O(1) per-visit lookups.
    let mut truncated: dtnflow_core::dense::DenseMap<u32, f64> =
        dtnflow_core::dense::DenseMap::new();
    for &(idx, frac) in &plan.truncations {
        truncated.insert(idx, frac);
    }
    // Record-loss flags, dense for O(1) dispatch lookups.
    let mut record_lost = vec![false; trace.visits().len()];
    for &idx in &plan.lost_records {
        record_lost[idx as usize] = true;
    }

    // Pre-sorted static event list.
    let mut events: Vec<Event> = Vec::with_capacity(
        trace.visits().len() * 2
            + workload.len()
            + 2 * (plan.station_outages.len() + plan.node_outages.len()),
    );
    let mut seq = 0u64;
    let mut push = |at: SimTime, kind: EventKind, seq: &mut u64| {
        events.push(Event {
            at,
            kind,
            seq: *seq,
        });
        *seq += 1;
    };
    for (idx, v) in trace.visits().iter().enumerate() {
        let idx = idx as u32;
        push(
            v.start,
            EventKind::Arrive(v.node, v.landmark, idx),
            &mut seq,
        );
        // A truncated contact departs after `frac` of its dwell, but at
        // least one second after arriving — a same-instant depart would
        // sort *before* the arrive and leave the node stuck as present.
        let end = match truncated.get(idx) {
            Some(&frac) => {
                let stay = v.end.secs().saturating_sub(v.start.secs());
                let kept = ((stay as f64 * frac) as u64).clamp(1, stay.max(1));
                SimTime(v.start.secs() + kept).min(v.end)
            }
            None => v.end,
        };
        push(end, EventKind::Depart(v.node, v.landmark, idx), &mut seq);
    }
    for g in workload.events() {
        push(g.at, EventKind::Generate(g.src, g.dst), &mut seq);
    }
    for o in &plan.station_outages {
        push(o.down, EventKind::StationDown(o.lm), &mut seq);
        push(o.up, EventKind::StationUp(o.lm), &mut seq);
    }
    for o in &plan.node_outages {
        push(o.fail, EventKind::NodeFail(o.node), &mut seq);
        push(o.recover, EventKind::NodeRecover(o.node), &mut seq);
    }
    let duration = trace.duration();
    let unit = cfg.time_unit;
    let mut u = 0u64;
    let mut t = SimTime::ZERO;
    while t.secs() <= duration.secs() {
        push(t, EventKind::TimeUnit(u), &mut seq);
        u += 1;
        t += unit;
    }
    if cfg.observe_points > 0 {
        for i in 0..cfg.observe_points {
            let at = SimTime(
                (duration.secs() as f64 * (i + 1) as f64 / cfg.observe_points as f64) as u64,
            );
            push(at, EventKind::Observe(i), &mut seq);
        }
    }
    events.sort_unstable();

    // Dynamic timers requested by the router.
    let mut timers: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut timer_seq = u64::MAX / 2;
    let mut drain_timers = |world: &mut World, timers: &mut BinaryHeap<Reverse<Event>>| {
        for (at, token) in world.pending_timers.drain(..) {
            timers.push(Reverse(Event {
                at,
                kind: EventKind::Timer(token),
                seq: timer_seq,
            }));
            timer_seq += 1;
        }
    };

    let mut next_static = 0usize;
    let mut present: Vec<NodeId> = Vec::new();
    loop {
        // Pick the earlier of the next static event and the next timer.
        let static_ev = events.get(next_static).copied();
        let timer_ev = timers.peek().map(|Reverse(e)| *e);
        let ev = match (static_ev, timer_ev) {
            (Some(s), Some(t)) => {
                if t < s {
                    timers.pop();
                    t
                } else {
                    next_static += 1;
                    s
                }
            }
            (Some(s), None) => {
                next_static += 1;
                s
            }
            (None, Some(t)) => {
                timers.pop();
                t
            }
            (None, None) => break,
        };

        world.set_now(ev.at);
        match ev.kind {
            EventKind::TimeUnit(u) => {
                world.emit(|at| SimEvent::UnitBoundary { at, unit: u });
                world.purge_expired();
                world.reset_radio_budget();
                router.on_time_unit(&mut world, u);
            }
            EventKind::StationDown(l) => {
                world.station_down(l);
                router.on_station_down(&mut world, l);
            }
            EventKind::StationUp(l) => {
                world.station_recover(l);
                router.on_station_up(&mut world, l);
            }
            EventKind::Depart(n, l, idx) => {
                // Suppressed when the node is not actually there: its
                // arrival was swallowed by a failure, or churn removed it
                // mid-visit.
                if world.node_location(n) == Some(l) {
                    world.set_visit_recorded(!record_lost[idx as usize]);
                    router.on_depart(&mut world, n, l);
                    world.set_visit_recorded(true);
                    world.node_depart(n, l);
                }
            }
            EventKind::NodeFail(n) => {
                let at = world.node_location(n);
                world.node_fail(n);
                router.on_node_fail(&mut world, n, at);
            }
            EventKind::Arrive(n, l, idx) => {
                // A failed node is off the network: its visits do not
                // happen until it recovers.
                if !world.node_is_failed(n) {
                    world.node_arrive(n, l);
                    if !station_mode {
                        world.auto_deliver_on_arrival(n, l);
                    }
                    world.set_visit_recorded(!record_lost[idx as usize]);
                    // Encounter partners, copied out so the router may
                    // mutate presence; the buffer is reused across
                    // arrivals to keep this allocation-free.
                    present.clear();
                    present.extend(world.nodes_at(l).iter().filter(|&m| m != n));
                    for &m in present.iter() {
                        router.on_encounter(&mut world, n, m, l);
                    }
                    router.on_arrive(&mut world, n, l);
                    world.set_visit_recorded(true);
                }
            }
            EventKind::NodeRecover(n) => {
                world.node_recover(n);
                router.on_node_recover(&mut world, n);
            }
            EventKind::Generate(src, dst) => {
                let pkt = world.create_packet(src, dst, None, station_mode);
                // A packet generated at a down station is stillborn
                // (lost to the outage); the router never sees it.
                if world.packet(pkt).loc.is_live() {
                    router.on_packet_generated(&mut world, pkt);
                }
            }
            EventKind::Timer(token) => {
                router.on_timer(&mut world, token);
            }
            EventKind::Observe(i) => {
                router.on_observe(&mut world, i);
            }
        }
        drain_timers(&mut world, &mut timers);
    }

    // Final reckoning: everything past its deadline is an expiry. Router
    // timers may have fired beyond the last trace event, so never move
    // the clock backwards.
    let end = (SimTime::ZERO + duration).max(world.now());
    world.set_now(end);
    world.purge_expired();
    let trace_sink = world.take_trace_sink();
    let (metrics, packets) = world.into_outcome();
    SimOutcome {
        metrics,
        packets,
        trace: trace_sink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtnflow_core::geometry::Point;
    use dtnflow_core::ids::PacketId;
    use dtnflow_core::packet::PacketLoc;
    use dtnflow_core::time::{SimDuration, DAY};
    use dtnflow_mobility::Visit;

    /// A router that greedily hands pending packets to any arriving node
    /// and otherwise lets carriers walk them to their destinations.
    struct DirectRouter;

    impl Router for DirectRouter {
        fn name(&self) -> &'static str {
            "direct"
        }
        fn on_arrive(&mut self, w: &mut World, node: NodeId, lm: LandmarkId) {
            let pending: Vec<PacketId> = w.pending_at(lm).collect();
            for p in pending {
                if w.transfer_to_node(p, node).is_err() {
                    break;
                }
            }
        }
        fn on_packet_generated(&mut self, w: &mut World, pkt: PacketId) {
            // If someone is already in the subarea, hand the packet over.
            let src = match w.packet(pkt).loc {
                PacketLoc::PendingAtSource(l) => l,
                _ => return,
            };
            let first = w.nodes_at(src).iter().next();
            if let Some(n) = first {
                let _ = w.transfer_to_node(pkt, n);
            }
        }
    }

    /// An event recorder validating hook ordering.
    #[derive(Default)]
    struct RecorderRouter {
        log: Vec<String>,
    }

    impl Router for RecorderRouter {
        fn name(&self) -> &'static str {
            "recorder"
        }
        fn on_arrive(&mut self, w: &mut World, node: NodeId, lm: LandmarkId) {
            self.log
                .push(format!("arrive {node} {lm} @{}", w.now().secs()));
        }
        fn on_depart(&mut self, w: &mut World, node: NodeId, lm: LandmarkId) {
            assert!(w.nodes_at(lm).contains(node), "still present at depart");
            self.log
                .push(format!("depart {node} {lm} @{}", w.now().secs()));
        }
        fn on_encounter(&mut self, _w: &mut World, a: NodeId, b: NodeId, lm: LandmarkId) {
            self.log.push(format!("meet {a} {b} {lm}"));
        }
        fn on_packet_generated(&mut self, w: &mut World, pkt: PacketId) {
            self.log.push(format!("gen {} @{}", pkt, w.now().secs()));
        }
        fn on_time_unit(&mut self, _w: &mut World, unit: u64) {
            self.log.push(format!("unit {unit}"));
        }
        fn on_observe(&mut self, _w: &mut World, idx: usize) {
            self.log.push(format!("obs {idx}"));
        }
        fn on_timer(&mut self, _w: &mut World, token: u64) {
            self.log.push(format!("timer {token}"));
        }
    }

    fn shuttle_trace() -> Trace {
        // Node 0 shuttles l0 -> l1 -> l0 ... daily; node 1 sits at l0
        // mornings only.
        let mut visits = Vec::new();
        for d in 0..8u64 {
            let base = d * 86_400;
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(0),
                SimTime(base + 1_000),
                SimTime(base + 5_000),
            ));
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(1),
                SimTime(base + 10_000),
                SimTime(base + 20_000),
            ));
            visits.push(Visit::new(
                NodeId(1),
                LandmarkId(0),
                SimTime(base + 2_000),
                SimTime(base + 4_000),
            ));
        }
        Trace::new(
            "shuttle",
            2,
            2,
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
            visits,
        )
        .unwrap()
    }

    fn small_cfg() -> SimConfig {
        SimConfig {
            packets_per_landmark_per_day: 2.0,
            ttl: DAY.mul(4),
            time_unit: DAY,
            seed: 3,
            ..SimConfig::default()
        }
    }

    #[test]
    fn direct_router_delivers_on_shuttle() {
        let trace = shuttle_trace();
        let cfg = small_cfg();
        let out = run(&trace, &cfg, &mut DirectRouter);
        assert!(out.metrics.generated > 0);
        // The shuttle reaches both landmarks daily, so most packets with a
        // 4-day TTL make it.
        assert!(
            out.metrics.success_rate() > 0.5,
            "success {}",
            out.metrics.success_rate()
        );
        // Everything delivered took at least one forwarding op.
        assert!(out.metrics.forwarding_ops >= out.metrics.delivered);
    }

    #[test]
    fn hook_ordering_and_encounters() {
        let trace = shuttle_trace();
        let mut cfg = small_cfg();
        cfg.observe_points = 2;
        cfg.packets_per_landmark_per_day = 0.5;
        let mut r = RecorderRouter::default();
        let _ = run(&trace, &cfg, &mut r);
        let log = r.log.join("\n");
        // Node 1 arrives at l0 at t=2000 while node 0 is there.
        assert!(log.contains("meet n1 n0 l0"));
        // Unit boundaries and observations both fired; the trace is just
        // over 7 days long, so boundaries at days 0..=7 exist.
        assert!(log.contains("unit 0"));
        assert!(log.contains("unit 7"));
        assert!(log.contains("obs 0"));
        assert!(log.contains("obs 1"));
        // Every arrive has a matching depart.
        let arrives = r.log.iter().filter(|l| l.starts_with("arrive")).count();
        let departs = r.log.iter().filter(|l| l.starts_with("depart")).count();
        assert_eq!(arrives, departs);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerRouter {
            fired: Vec<(u64, u64)>,
        }
        impl Router for TimerRouter {
            fn name(&self) -> &'static str {
                "timer"
            }
            fn on_arrive(&mut self, w: &mut World, _n: NodeId, _l: LandmarkId) {
                if self.fired.is_empty() && w.now().secs() < 2_000 {
                    w.schedule_timer(SimTime(7_777), 1);
                    w.schedule_timer(SimTime(3_333), 2);
                    self.fired.push((0, w.now().secs()));
                }
            }
            fn on_packet_generated(&mut self, _w: &mut World, _p: PacketId) {}
            fn on_timer(&mut self, w: &mut World, token: u64) {
                self.fired.push((token, w.now().secs()));
            }
        }
        let trace = shuttle_trace();
        let mut r = TimerRouter { fired: vec![] };
        let _ = run(&trace, &small_cfg(), &mut r);
        // Token 2 (earlier deadline) fires before token 1.
        assert_eq!(r.fired.len(), 3);
        assert_eq!(r.fired[1], (2, 3_333));
        assert_eq!(r.fired[2], (1, 7_777));
    }

    #[test]
    fn run_is_deterministic() {
        let trace = shuttle_trace();
        let cfg = small_cfg();
        let a = run(&trace, &cfg, &mut DirectRouter);
        let b = run(&trace, &cfg, &mut DirectRouter);
        assert_eq!(
            a.metrics.summary().success_rate,
            b.metrics.summary().success_rate
        );
        assert_eq!(a.metrics.forwarding_ops, b.metrics.forwarding_ops);
        assert_eq!(a.packets.len(), b.packets.len());
    }

    #[test]
    fn undelivered_packets_expire_by_the_end() {
        // A trace where node 1 never reaches l1: packets to l1 that node 1
        // picks up die by TTL; final purge must count them.
        struct GreedyRouter;
        impl Router for GreedyRouter {
            fn name(&self) -> &'static str {
                "greedy"
            }
            fn on_arrive(&mut self, w: &mut World, node: NodeId, lm: LandmarkId) {
                let pending: Vec<PacketId> = w.pending_at(lm).collect();
                for p in pending {
                    let _ = w.transfer_to_node(p, node);
                }
            }
            fn on_packet_generated(&mut self, _w: &mut World, _p: PacketId) {}
        }
        let mut visits = Vec::new();
        for d in 0..8u64 {
            visits.push(Visit::new(
                NodeId(0),
                LandmarkId(0),
                SimTime(d * 86_400),
                SimTime(d * 86_400 + 1_000),
            ));
        }
        let trace = Trace::new(
            "stuck",
            1,
            2,
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
            visits,
        )
        .unwrap();
        let cfg = SimConfig {
            packets_per_landmark_per_day: 4.0,
            ttl: DAY,
            time_unit: DAY,
            ..SimConfig::default()
        };
        let out = run(&trace, &cfg, &mut GreedyRouter);
        assert!(out.metrics.generated > 0);
        assert_eq!(out.metrics.delivered, 0);
        // Every packet either expired or (if generated within the final
        // TTL window) is still stranded; nothing is unaccounted for.
        let live = out.packets.iter().filter(|p| p.loc.is_live()).count() as u64;
        assert_eq!(out.metrics.expired + live, out.metrics.generated);
        assert!(out.metrics.expired > 0);
    }

    #[test]
    fn time_unit_count_covers_duration() {
        let trace = shuttle_trace();
        let mut cfg = small_cfg();
        cfg.time_unit = SimDuration::from_days(2.0);
        let mut r = RecorderRouter::default();
        let _ = run(&trace, &cfg, &mut r);
        let units = r.log.iter().filter(|l| l.starts_with("unit")).count();
        // Duration is just under 8 days: boundaries at days 0,2,4,6 (+day 8
        // only if the last visit ends exactly there).
        assert!(units == 4 || units == 5, "units {units}");
    }
}
